"""Golden-run regression gate: the canonical workload's digest is pinned.

Bit-identical merging (the sharded engine's whole premise) is only as
good as the underlying determinism, and determinism bugs are silent: a
stray RNG, an unstable dict order or an accidental measurement
perturbation changes every count slightly and no behavioral test
notices.  This fixture freezes a tiny canonical run — the full sparse
histogram, the headline scalars and a sha256 over the canonical JSON of
all of it — so any silent change to the counts fails the suite loudly.

If the change is *intentional* (a modeling fix that legitimately alters
counts), regenerate the fixture and commit it alongside the change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_run.py

and call out the digest change in the PR description — it is the suite's
way of making "the numbers moved" a reviewed event instead of an
accident.
"""

import hashlib
import json
import os

import pytest

from repro.core.engine import RunSpec, execute_spec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_educational.json")
UPDATE_ENV = "REPRO_UPDATE_GOLDEN"

# Small enough to run in ~100 ms, long enough that every subsystem
# (cache, TB, write buffer, devices, scheduler) has fired.
SPEC = RunSpec(workload="educational", instructions=400, warmup_instructions=100)


def _golden_payload():
    run = execute_spec(SPEC)
    counts, stalled = run.histogram
    reduction = run.result.reduction
    payload = {
        "workload": SPEC.workload,
        "instructions_requested": SPEC.instructions,
        "warmup_instructions": SPEC.warmup_instructions,
        "instructions_measured": run.result.instructions,
        "cycles": run.result.stats.cycles,
        "cpi": round(reduction.cpi, 12),
        "histogram": {str(k): v for k, v in sorted(counts.items())},
        "stalled_histogram": {str(k): v for k, v in sorted(stalled.items())},
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    payload["digest"] = hashlib.sha256(blob).hexdigest()
    return payload


class TestGoldenRun:
    def test_canonical_run_matches_the_checked_in_fixture(self):
        fresh = _golden_payload()
        if os.environ.get(UPDATE_ENV):
            with open(GOLDEN_PATH, "w") as handle:
                json.dump(fresh, handle, indent=2, sort_keys=True)
                handle.write("\n")
            pytest.skip("golden fixture regenerated; commit the new file")
        if not os.path.exists(GOLDEN_PATH):
            pytest.fail(
                "golden fixture missing; generate it with {}=1".format(UPDATE_ENV)
            )
        with open(GOLDEN_PATH) as handle:
            golden = json.load(handle)

        assert fresh["digest"] == golden["digest"], (
            "the canonical educational run no longer reproduces the "
            "checked-in histogram — counts changed silently. If this is "
            "an intentional modeling change, regenerate with {}=1 and "
            "commit the updated fixture; otherwise a determinism or "
            "measurement-perturbation bug slipped in. First divergence: "
            "{}".format(UPDATE_ENV, _first_divergence(fresh, golden))
        )
        # Belt and braces: the digest covers these, but direct compares
        # give readable diffs when something does move.
        assert fresh["histogram"] == golden["histogram"]
        assert fresh["stalled_histogram"] == golden["stalled_histogram"]
        assert fresh["cycles"] == golden["cycles"]
        assert fresh["instructions_measured"] == golden["instructions_measured"]


def _first_divergence(fresh, golden):
    for field in (
        "instructions_measured",
        "cycles",
        "cpi",
        "histogram",
        "stalled_histogram",
    ):
        if fresh.get(field) != golden.get(field):
            if isinstance(fresh.get(field), dict):
                mine, theirs = fresh[field], golden[field]
                for bucket in sorted(set(mine) | set(theirs), key=int):
                    if mine.get(bucket) != theirs.get(bucket):
                        return "{}[bucket {}]: {} != {}".format(
                            field, bucket, mine.get(bucket), theirs.get(bucket)
                        )
            return "{}: {} != {}".format(field, fresh.get(field), golden.get(field))
    return "digest only (payload shape changed?)"

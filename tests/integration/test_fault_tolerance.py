"""Differential fault-tolerance tests: recovery must be bit-identical.

The engine's whole fault-tolerance story rests on determinism — a
recomputed spec or shard produces exactly the bytes the lost one would
have.  These tests disturb real runs three ways (worker death, on-disk
cache corruption, snapshot-restore failure) and assert the recovered
output equals the undisturbed golden run bit for bit, with the healing
visible in the manifest and metrics.
"""

import os

import pytest

from repro.core.engine import (
    RunSpec,
    _shard_cache_keys,
    execute_spec_sharded,
    run_specs,
    shard_boundaries,
)
from repro.core.resilience import ResiliencePolicy, RetryPolicy
from repro.core.runcache import RunCache
from repro.obs.metrics import MetricsRegistry, resilience_counters
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultRule

SMALL = dict(instructions=600, warmup_instructions=150)
SHARDS = 3

SPEC = RunSpec(workload="timesharing_light", **SMALL)
SPECS = [
    RunSpec(workload="timesharing_light", **SMALL),
    RunSpec(workload="scientific", **SMALL),
]


@pytest.fixture(autouse=True)
def disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


def payload_of(run):
    return (run.histogram, run.result.stats, run.result.events)


def damage_object(cache, key, mode):
    """Corrupt a stored object on disk without touching its .sum."""
    path = cache._object_path(key)
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncate":
        data = data[: len(data) // 2]
    else:
        middle = len(data) // 2
        data = data[:middle] + bytes([data[middle] ^ 0x01]) + data[middle + 1 :]
    with open(path, "wb") as handle:
        handle.write(data)


def metered_policy():
    return ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3),
        metrics=resilience_counters(MetricsRegistry()),
    )


class TestSweepRecovery:
    def test_crash_and_raise_recover_bit_identical(self, tmp_path):
        golden = [payload_of(run) for run in run_specs(SPECS, jobs=2)]
        plan = FaultPlan(
            rules=[
                FaultRule(site="worker", action="crash", match="scientific", times=1),
                FaultRule(
                    site="worker", action="raise", match="timesharing", times=1
                ),
            ],
            state_dir=str(tmp_path / "faults"),
        )
        policy = metered_policy()
        with plan.active():
            disturbed = run_specs(SPECS, jobs=2, policy=policy)
        assert [payload_of(run) for run in disturbed] == golden
        counters = policy.metrics.snapshot()["counters"]
        assert counters["engine.retries"] >= 1
        assert counters["engine.pool_respawns"] >= 1
        assert counters["engine.spec_failures"] == 0


class TestShardedSelfHealing:
    def _cold_golden(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        golden = execute_spec_sharded(SPEC, shards=SHARDS, jobs=1, cache=cache)
        boundaries = shard_boundaries(SPEC.instructions, SHARDS)
        _, shard_keys, snapshot_keys = _shard_cache_keys(SPEC, boundaries)
        return cache, golden, boundaries, shard_keys, snapshot_keys

    def test_corrupt_shard_and_snapshot_are_quarantined_and_recomputed(
        self, tmp_path
    ):
        cache, golden, boundaries, shard_keys, snapshot_keys = self._cold_golden(
            tmp_path
        )
        # rot both the middle shard's result and the snapshot the worker
        # path would resume it from
        damage_object(cache, shard_keys[1], "bitflip")
        damage_object(cache, snapshot_keys[boundaries[1]], "truncate")

        warm_cache = RunCache(cache.root)
        policy = metered_policy()
        recovered = execute_spec_sharded(
            SPEC, shards=SHARDS, jobs=1, cache=warm_cache, policy=policy
        )
        assert payload_of(recovered) == payload_of(golden)
        assert recovered.manifest.quarantined_objects >= 2
        assert recovered.manifest.repaired_shards >= 1
        assert warm_cache.quarantined_objects() >= 2
        counters = policy.metrics.snapshot()["counters"]
        assert counters["engine.quarantined_objects"] >= 2
        assert counters["engine.repaired_shards"] >= 1
        # the recompute healed the store: a third run replays clean
        healed = execute_spec_sharded(
            SPEC, shards=SHARDS, jobs=1, cache=RunCache(cache.root)
        )
        assert payload_of(healed) == payload_of(golden)
        assert healed.manifest.quarantined_objects == 0
        assert healed.shards_from_cache == SHARDS

    def test_injected_snapshot_restore_failure_recovers(self, tmp_path):
        cache, golden, boundaries, shard_keys, snapshot_keys = self._cold_golden(
            tmp_path
        )
        # evict one finished shard so the warm run must restore a
        # snapshot — then make that restore fail once
        for suffix in ("", ".sum", ".json"):
            try:
                os.unlink(cache._object_path(shard_keys[1]) + suffix)
            except FileNotFoundError:
                pass
        plan = FaultPlan(
            rules=[FaultRule(site="snapshot.restore", action="raise", times=1)],
            state_dir=str(tmp_path / "faults"),
        )
        policy = metered_policy()
        with plan.active():
            recovered = execute_spec_sharded(
                SPEC, shards=SHARDS, jobs=1, cache=RunCache(cache.root), policy=policy
            )
        assert payload_of(recovered) == payload_of(golden)
        assert recovered.manifest.repaired_shards >= 1

    def test_parallel_shard_workers_survive_injected_crash(self, tmp_path):
        cache, golden, boundaries, shard_keys, snapshot_keys = self._cold_golden(
            tmp_path
        )
        # evict two shard results; their snapshots are cached, so they
        # fan out to pool workers — where one task is shot dead
        for index in (1, 2):
            for suffix in ("", ".sum", ".json"):
                try:
                    os.unlink(cache._object_path(shard_keys[index]) + suffix)
                except FileNotFoundError:
                    pass
        plan = FaultPlan(
            rules=[FaultRule(site="shard.task", action="crash", times=1)],
            state_dir=str(tmp_path / "faults"),
        )
        policy = metered_policy()
        with plan.active():
            recovered = execute_spec_sharded(
                SPEC, shards=SHARDS, jobs=2, cache=RunCache(cache.root), policy=policy
            )
        assert payload_of(recovered) == payload_of(golden)
        assert recovered.manifest.repaired_shards >= 1

"""Determinism of the parallel composite: jobs=4 must reproduce jobs=1
bit for bit — histograms, event counters, and the Table 8 matrix.

These tests are the acceptance gate for the parallel engine: fan-out is
only admissible because the results are indistinguishable from the
sequential reference.
"""

import json
import os

import pytest

from repro.core.engine import RunSpec, run_specs
from repro.core.experiment import run_composite_experiment
from repro.core.histogram_io import result_to_json
from repro.core import tables

SMALL = dict(instructions_per_workload=800, warmup_instructions=200)
WORKLOADS = ["timesharing_light", "scientific"]


@pytest.fixture(scope="module")
def sequential():
    return run_composite_experiment(workloads=WORKLOADS, jobs=1, **SMALL)


@pytest.fixture(scope="module")
def parallel():
    return run_composite_experiment(workloads=WORKLOADS, jobs=4, **SMALL)


class TestParallelCompositeDeterminism:
    def test_full_payload_bit_identical(self, sequential, parallel):
        # result_to_json covers the reduction matrix, routine cycles,
        # event counters and machine stats; serialized forms must match
        # byte for byte.
        seq = json.dumps(result_to_json(sequential), sort_keys=True)
        par = json.dumps(result_to_json(parallel), sort_keys=True)
        assert seq == par

    def test_event_counters_identical(self, sequential, parallel):
        assert sequential.events.instructions == parallel.events.instructions
        assert sequential.events.opcode_counts == parallel.events.opcode_counts
        assert sequential.events.specifier_counts == parallel.events.specifier_counts

    def test_table8_matrix_identical(self, sequential, parallel):
        assert tables.table8(sequential) == tables.table8(parallel)

    def test_raw_histogram_dumps_identical(self):
        specs = [RunSpec(workload=name, instructions=800, warmup_instructions=200) for name in WORKLOADS]
        seq_runs = run_specs(specs, jobs=1)
        par_runs = run_specs(specs, jobs=4)
        for seq, par in zip(seq_runs, par_runs):
            assert seq.histogram == par.histogram


class TestCompositePlumbing:
    def test_per_workload_overrides(self):
        plain = run_composite_experiment(workloads=WORKLOADS, jobs=1, **SMALL)
        overridden = run_composite_experiment(
            workloads=WORKLOADS,
            jobs=1,
            overrides={"scientific": {"instructions": 400}},
            **SMALL
        )
        assert overridden.instructions < plain.instructions

    def test_global_process_count(self):
        # One generated process per workload runs fine and still measures.
        result = run_composite_experiment(
            workloads=WORKLOADS, jobs=1, process_count=1, **SMALL
        )
        # The kernel loop can land a hair under the budget; near-full
        # measurement with a one-process population is what matters.
        assert result.instructions >= 2 * SMALL["instructions_per_workload"] * 0.95


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="wall-clock speedup needs >= 4 cores; equality is asserted above",
)
class TestParallelSpeedup:
    def test_parallel_composite_is_faster(self):
        import time

        config = dict(instructions_per_workload=4_000, warmup_instructions=1_000)
        started = time.perf_counter()
        run_composite_experiment(jobs=1, **config)
        sequential_wall = time.perf_counter() - started
        started = time.perf_counter()
        run_composite_experiment(jobs=4, **config)
        parallel_wall = time.perf_counter() - started
        assert sequential_wall / parallel_wall >= 1.8

"""Determinism of the parallel composite: jobs=4 must reproduce jobs=1
bit for bit — histograms, event counters, and the Table 8 matrix.

These tests are the acceptance gate for the parallel engine: fan-out is
only admissible because the results are indistinguishable from the
sequential reference.
"""

import json
import os

import pytest

from repro.core.engine import RunSpec, run_specs
from repro.core.experiment import run_composite_experiment
from repro.core.histogram_io import result_to_json
from repro.core import tables

SMALL = dict(instructions_per_workload=800, warmup_instructions=200)
WORKLOADS = ["timesharing_light", "scientific"]


@pytest.fixture(scope="module")
def sequential():
    return run_composite_experiment(workloads=WORKLOADS, jobs=1, **SMALL)


@pytest.fixture(scope="module")
def parallel():
    return run_composite_experiment(workloads=WORKLOADS, jobs=4, **SMALL)


class TestParallelCompositeDeterminism:
    def test_full_payload_bit_identical(self, sequential, parallel):
        # result_to_json covers the reduction matrix, routine cycles,
        # event counters and machine stats; serialized forms must match
        # byte for byte.
        seq = json.dumps(result_to_json(sequential), sort_keys=True)
        par = json.dumps(result_to_json(parallel), sort_keys=True)
        assert seq == par

    def test_event_counters_identical(self, sequential, parallel):
        assert sequential.events.instructions == parallel.events.instructions
        assert sequential.events.opcode_counts == parallel.events.opcode_counts
        assert sequential.events.specifier_counts == parallel.events.specifier_counts

    def test_table8_matrix_identical(self, sequential, parallel):
        assert tables.table8(sequential) == tables.table8(parallel)

    def test_raw_histogram_dumps_identical(self):
        specs = [RunSpec(workload=name, instructions=800, warmup_instructions=200) for name in WORKLOADS]
        seq_runs = run_specs(specs, jobs=1)
        par_runs = run_specs(specs, jobs=4)
        for seq, par in zip(seq_runs, par_runs):
            assert seq.histogram == par.histogram


class TestCompositePlumbing:
    def test_per_workload_overrides(self):
        plain = run_composite_experiment(workloads=WORKLOADS, jobs=1, **SMALL)
        overridden = run_composite_experiment(
            workloads=WORKLOADS,
            jobs=1,
            overrides={"scientific": {"instructions": 400}},
            **SMALL
        )
        assert overridden.instructions < plain.instructions

    def test_global_process_count(self):
        # One generated process per workload runs fine and still measures.
        result = run_composite_experiment(
            workloads=WORKLOADS, jobs=1, process_count=1, **SMALL
        )
        # The kernel loop can land a hair under the budget; near-full
        # measurement with a one-process population is what matters.
        assert result.instructions >= 2 * SMALL["instructions_per_workload"] * 0.95


def _worker_pid(_index: int) -> int:
    # A short sleep holds the first worker busy long enough that the
    # pool hands remaining items to other workers, even on one core.
    import time

    time.sleep(0.05)
    return os.getpid()


class TestParallelFanOut:
    """jobs=4 genuinely fans out over worker processes.

    Structural replacement for the old wall-clock speedup assertion,
    which could only run on >= 4 free cores and therefore skipped
    everywhere that mattered; process identity is deterministic on any
    machine, and wall-clock claims live in benchmarks/perf/bench_engine.py
    (and TestShardedRerunSpeedup below, which does not need spare cores).
    """

    def test_specs_execute_outside_the_coordinator(self):
        from repro.core.engine import parallel_map

        pids = parallel_map(_worker_pid, range(4), jobs=4)
        assert len(pids) == 4
        assert os.getpid() not in pids
        assert len(set(pids)) >= 2


class TestShardedRerunSpeedup:
    def test_warm_cache_rerun_is_faster(self, tmp_path):
        import time

        from repro.core.engine import execute_spec_sharded
        from repro.core.runcache import RunCache

        spec = RunSpec(
            workload="educational", instructions=1_200, warmup_instructions=300
        )
        cache = RunCache(str(tmp_path / "cache"))
        started = time.perf_counter()
        cold = execute_spec_sharded(spec, shards=4, cache=cache)
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = execute_spec_sharded(spec, shards=4, cache=cache)
        warm_wall = time.perf_counter() - started
        assert warm.shards_from_cache == 4
        # Replaying four finished shards is pure deserialization; even a
        # conservative 2x bound leaves a wide margin (typically > 20x).
        assert warm_wall < cold_wall / 2
        assert result_to_json(warm.result) == result_to_json(cold.result)
        assert warm.histogram == cold.histogram

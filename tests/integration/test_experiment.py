"""End-to-end tests of the experiment pipeline and composite analysis."""

import pytest

from repro.core.experiment import (
    ExperimentResult,
    composite,
    run_composite_experiment,
    run_workload,
)
from repro.core import tables as T
from repro.core.reduction import COLUMNS


@pytest.fixture(scope="module")
def small_result():
    """One modest workload run shared by the checks below."""
    return run_workload("timesharing_light", instructions=6_000, warmup_instructions=1_500)


@pytest.fixture(scope="module")
def small_composite():
    results = [
        run_workload(name, instructions=2_500, warmup_instructions=800)
        for name in ("timesharing_light", "scientific")
    ]
    return composite(results)


class TestRunWorkload:
    def test_result_shape(self, small_result):
        assert isinstance(small_result, ExperimentResult)
        assert small_result.instructions > 5_000
        assert 4.0 < small_result.cpi < 20.0

    def test_monitor_and_events_agree_on_instructions(self, small_result):
        assert small_result.reduction.instructions == small_result.events.instructions

    def test_hardware_stats_are_deltas(self, small_result):
        # The warmup ran thousands of instructions; if stats were not
        # restricted to the measurement window, IB references per
        # instruction would be far above the architectural bound.
        refs = small_result.stats.ib_references / small_result.instructions
        assert 1.0 < refs < 4.0


class TestComposite:
    def test_composite_sums_instructions(self, small_composite):
        assert small_composite.instructions > 4_000

    def test_composite_cpi_is_weighted(self):
        a = run_workload("timesharing_light", instructions=1_500, warmup_instructions=500)
        b = run_workload("scientific", instructions=1_500, warmup_instructions=500)
        merged = composite([a, b])
        low = min(a.cpi, b.cpi)
        high = max(a.cpi, b.cpi)
        assert low <= merged.cpi <= high

    def test_composite_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            composite([])


class TestTables:
    def test_table1_percentages_sum_to_100(self, small_result):
        assert sum(T.table1(small_result).values()) == pytest.approx(100.0)

    def test_table1_simple_dominates(self, small_result):
        table = T.table1(small_result)
        assert table["simple"] > 70.0
        assert table["simple"] > table["field"] > table["decimal"]

    def test_table2_taken_rates_bounded(self, small_result):
        for row, cells in T.table2(small_result).items():
            assert 0.0 <= cells["percent_taken"] <= 100.0

    def test_table2_always_taken_classes(self, small_result):
        table = T.table2(small_result)
        for row in ("subroutine", "case", "procedure"):
            if table[row]["percent_of_instructions"] > 0:
                assert table[row]["percent_taken"] == pytest.approx(100.0)

    def test_table3_specifier_rates_physical(self, small_result):
        table = T.table3(small_result)
        assert 0.4 < table["spec1"] <= 1.0  # at most one first specifier each
        assert 0.0 < table["branch_displacements"] < 1.0

    def test_table4_columns_sum_to_100(self, small_result):
        table = T.table4(small_result)
        for column in ("spec1", "spec26", "total"):
            total = sum(
                cells[column] for row, cells in table.items() if row != "percent_indexed"
            )
            assert total == pytest.approx(100.0, abs=0.5)

    def test_table4_register_mode_most_common_after_first(self, small_result):
        table = T.table4(small_result)
        assert table["register"]["spec26"] == max(
            cells["spec26"] for row, cells in table.items() if row != "percent_indexed"
        )

    def test_table5_reads_exceed_writes(self, small_result):
        totals = T.table5(small_result)["total"]
        assert totals["reads"] > totals["writes"] > 0

    def test_table6_total_consistent_with_parts(self, small_result):
        table = T.table6(small_result)
        estimated = (
            table["opcode_bytes"]
            + table["specifiers_per_instruction"] * table["specifier_size"]
            + table["displacements_per_instruction"] * table["displacement_size"]
        )
        assert estimated == pytest.approx(table["total_bytes"], rel=0.02)

    def test_table7_headways_positive(self, small_result):
        for value in T.table7(small_result).values():
            assert value > 0

    def test_table8_row_and_column_totals_agree(self, small_result):
        table = T.table8(small_result)
        row_total_sum = sum(
            cells["total"] for row, cells in table.items() if row != "total"
        )
        assert row_total_sum == pytest.approx(table["total"]["total"], rel=1e-9)
        assert table["total"]["total"] == pytest.approx(small_result.cpi, rel=1e-9)

    def test_table8_columns_complete(self, small_result):
        table = T.table8(small_result)
        assert set(table["total"]) == set(COLUMNS) | {"total"}

    def test_table9_orders_groups_by_complexity(self, small_composite):
        table = T.table9(small_composite)
        # The paper's two-orders-of-magnitude observation.
        assert table["character"]["total"] > 10 * table["simple"]["total"]
        assert table["callret"]["total"] > table["simple"]["total"]

    def test_sec41_bounds(self, small_result):
        stats = T.sec41_istream(small_result)
        assert 1.0 <= stats["bytes_per_reference"] <= 4.0
        assert stats["instruction_bytes"] > 2.0

    def test_sec42_split_sums(self, small_result):
        stats = T.sec42_cache_tb(small_result)
        assert stats["cache_read_misses_per_instruction"] == pytest.approx(
            stats["cache_read_misses_istream"] + stats["cache_read_misses_dstream"],
            rel=1e-6,
        )
        assert stats["tb_misses_per_instruction"] == pytest.approx(
            stats["tb_misses_dstream"] + stats["tb_misses_istream"], rel=1e-6
        )

    def test_all_tables_runs(self, small_result):
        everything = T.all_tables(small_result)
        assert set(everything) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "table9", "sec41", "sec42",
        }

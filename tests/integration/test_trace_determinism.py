"""Tracing is passive and deterministic.

Two contracts from the telemetry layer:

* same seed -> identical event streams (the tracer observes a
  deterministic machine and adds no nondeterminism of its own);
* tracing on versus off -> bit-identical histograms and reductions
  (the tracer only ever *reads* simulator state).
"""

from repro.core.experiment import run_workload
from repro.core.histogram_io import result_to_json
from repro.obs.trace import Tracer, validate_chrome

SMALL = dict(instructions=800, warmup_instructions=200)


def _traced_run(**kwargs):
    tracer = Tracer()
    result, board = run_workload(
        "educational", tracer=tracer, return_board=True, **kwargs
    )
    return tracer, result, board


def test_same_seed_produces_identical_event_streams():
    first, _, _ = _traced_run(**SMALL)
    second, _, _ = _traced_run(**SMALL)
    assert first.events() == second.events()
    assert first.emitted == second.emitted


def test_different_seed_produces_a_different_stream():
    base, _, _ = _traced_run(**SMALL)
    shifted, _, _ = _traced_run(seed_offset=17, **SMALL)
    assert base.events() != shifted.events()


def test_tracing_on_and_off_are_bit_identical():
    _, traced_result, traced_board = _traced_run(**SMALL)
    untraced_result, untraced_board = run_workload(
        "educational", return_board=True, **SMALL
    )
    assert traced_board.dump_sparse() == untraced_board.dump_sparse()
    assert result_to_json(traced_result) == result_to_json(untraced_result)
    assert traced_result.cpi == untraced_result.cpi


def test_real_capture_exports_a_valid_chrome_trace():
    tracer, result, _ = _traced_run(**SMALL)
    assert len(tracer) > 0
    payload = tracer.to_chrome()
    assert validate_chrome(payload) == []
    # Every track saw traffic during a real workload run.
    events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
    assert {e["tid"] for e in events} == {1, 2, 3, 4, 5}
    # Instruction spans are named by mnemonic and bracket the stream.
    begins = [e for e in events if e["ph"] == "B" and e["tid"] == 1]
    assert len(begins) > result.instructions // 2
    assert all(e["name"] for e in begins)


def test_bounded_capture_still_exports_valid_json():
    tracer = Tracer(capacity=512)
    run_workload("educational", tracer=tracer, **SMALL)
    assert tracer.dropped > 0
    assert len(tracer) == 512
    assert validate_chrome(tracer.to_chrome()) == []

"""Snapshot → restore → continue must be bit-identical to never stopping.

The acceptance gate for the snapshot layer, in the same spirit as the
parallel-composite determinism tests: interrupting a measurement at an
arbitrary instruction boundary — freezing the whole machine, reviving
it in a different object graph, and finishing the run there — must
leave no trace in any output channel.  Checked per workload with
randomized split points and seed offsets (seeded draws, so failures
reproduce), and property-based over splits for one workload:

* the raw histogram banks (both of them, sparse-dumped);
* the event counters (every Counter and scalar field);
* the hardware stats (cache/TB/write-buffer/IB/SBI);
* the serialized result (`result_to_json`, byte for byte);
* the cycle-level trace stream, when a tracer rides along.
"""

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.experiment import MachineStats, prepare_workload, result_from_machine
from repro.core.histogram_io import result_to_json
from repro.core.snapshot import capture, restore
from repro.workloads import COMPOSITE_WORKLOAD_NAMES

WARMUP = 120
MEASURED = 400


def _run_workload_capture(
    workload, split=None, seed_offset=0, tracer=None, snapshot_sink=None
):
    """One measured run, optionally interrupted at ``split`` instructions.

    When ``split`` is given the kernel is frozen there, the original is
    discarded, and a restored copy finishes the measurement — the
    interrupted path the equivalence claim is about.  Returns
    ``(result, sparse_banks)``.
    """
    kernel, monitor = prepare_workload(
        workload, seed_offset=seed_offset, tracer=tracer
    )
    kernel.run(max_instructions=WARMUP)
    baseline = MachineStats.from_machine(kernel.machine)
    kernel.start_measurement()
    if split is not None:
        kernel.run(max_instructions=split)
        snapshot = capture(kernel)
        if snapshot_sink is not None:
            snapshot_sink.append(snapshot)
        kernel = restore(snapshot, tracer=tracer)
        monitor = kernel.machine.monitor
    kernel.run(max_instructions=MEASURED - (split or 0))
    kernel.stop_measurement()
    result = result_from_machine(
        kernel.machine, monitor, name=workload, stats_baseline=baseline
    )
    return result, monitor.board.dump_sparse()


class TestSnapshotEquivalenceAllWorkloads:
    @pytest.mark.parametrize("workload", COMPOSITE_WORKLOAD_NAMES)
    def test_interrupted_run_is_bit_identical(self, workload):
        # Randomized-but-reproducible split point and seed offset per
        # workload: every suite run exercises the same draws, a changed
        # draw is one seed away.
        rng = random.Random("snapshot-equivalence:" + workload)
        split = rng.randrange(1, MEASURED)
        seed_offset = rng.randrange(0, 5)

        straight, straight_banks = _run_workload_capture(
            workload, seed_offset=seed_offset
        )
        interrupted, interrupted_banks = _run_workload_capture(
            workload, split=split, seed_offset=seed_offset
        )

        assert interrupted_banks == straight_banks
        assert interrupted.events == straight.events
        assert interrupted.stats == straight.stats
        assert json.dumps(result_to_json(interrupted), sort_keys=True) == json.dumps(
            result_to_json(straight), sort_keys=True
        )

    def test_trace_stream_identical_across_restore(self):
        from repro.obs.trace import Tracer

        straight_tracer = Tracer()
        interrupted_tracer = Tracer()
        straight, _ = _run_workload_capture("educational", tracer=straight_tracer)
        interrupted, _ = _run_workload_capture(
            "educational", split=MEASURED // 3, tracer=interrupted_tracer
        )
        assert result_to_json(interrupted) == result_to_json(straight)
        # The tracer is detached during capture and re-attached to the
        # restored kernel, so the stream is seamless: same events, same
        # cycle stamps, straight through the restore point.
        assert interrupted_tracer.to_chrome() == straight_tracer.to_chrome()

    def test_capture_does_not_perturb_the_original(self):
        # Capture mid-run, keep running the ORIGINAL kernel: the dump
        # must be invisible (monitor-grade passivity).
        straight, straight_banks = _run_workload_capture("scientific")
        kernel, monitor = prepare_workload("scientific")
        kernel.run(max_instructions=WARMUP)
        baseline = MachineStats.from_machine(kernel.machine)
        kernel.start_measurement()
        kernel.run(max_instructions=MEASURED // 2)
        capture(kernel)  # discard: only the side effects matter
        kernel.run(max_instructions=MEASURED - MEASURED // 2)
        kernel.stop_measurement()
        result = result_from_machine(
            kernel.machine, monitor, name="scientific", stats_baseline=baseline
        )
        assert monitor.board.dump_sparse() == straight_banks
        assert result_to_json(result) == result_to_json(straight)


class TestSnapshotEquivalenceProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(split=st.integers(min_value=1, max_value=MEASURED - 1))
    def test_any_split_point_is_equivalent(self, split):
        straight, straight_banks = _cached_straight_run()
        interrupted, interrupted_banks = _run_workload_capture(
            "timesharing_light", split=split
        )
        assert interrupted_banks == straight_banks
        assert interrupted.events == straight.events
        assert result_to_json(interrupted) == result_to_json(straight)

    def test_double_restore_chain(self):
        # Two successive interruptions compose: snapshot at a, resume,
        # snapshot again at b, resume, finish.
        straight, straight_banks = _cached_straight_run()
        kernel, _ = prepare_workload("timesharing_light")
        kernel.run(max_instructions=WARMUP)
        baseline = MachineStats.from_machine(kernel.machine)
        kernel.start_measurement()
        executed = 0
        for stop in (MEASURED // 4, (3 * MEASURED) // 4):
            kernel.run(max_instructions=stop - executed)
            executed = stop
            kernel = restore(capture(kernel))
        kernel.run(max_instructions=MEASURED - executed)
        kernel.stop_measurement()
        monitor = kernel.machine.monitor
        result = result_from_machine(
            kernel.machine, monitor, name="timesharing_light", stats_baseline=baseline
        )
        assert monitor.board.dump_sparse() == straight_banks
        assert result_to_json(result) == result_to_json(straight)


_straight_cache = {}


def _cached_straight_run():
    """The uninterrupted reference run, computed once per process."""
    if "run" not in _straight_cache:
        _straight_cache["run"] = _run_workload_capture("timesharing_light")
    return _straight_cache["run"]

"""Disassembler tests, including encode/decode round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import Assembler
from repro.asm.disasm import Disassembler, DisassemblyError, disassemble_image


def assemble(*instructions, origin=0x200):
    asm = Assembler(origin=origin)
    for mnemonic, *operands in instructions:
        asm.instr(mnemonic, *operands)
    return asm.assemble()


class TestBasicDisassembly:
    def test_simple_instruction(self):
        image = assemble(("MOVL", "R0", "R1"))
        (instruction,) = disassemble_image(image, origin=0x200, count=1)
        assert instruction.text == "MOVL R0, R1"
        assert instruction.length == 3

    def test_literal_and_immediate(self):
        image = assemble(("MOVL", "#5", "R0"), ("MOVL", "I^#100000", "R0"))
        first, second = disassemble_image(image, origin=0x200, count=2)
        assert first.text == "MOVL S^#5, R0"
        assert second.text == "MOVL I^#100000, R0"

    def test_memory_modes(self):
        image = assemble(
            ("MOVL", "(R3)", "R0"),
            ("MOVL", "(R4)+", "R0"),
            ("MOVL", "-(SP)", "R0"),
            ("MOVL", "@(R5)+", "R0"),
            ("MOVL", "8(R6)", "R0"),
            ("MOVL", "@#0x1234", "R0"),
        )
        texts = [i.text for i in disassemble_image(image, origin=0x200, count=6)]
        assert texts == [
            "MOVL (R3), R0",
            "MOVL (R4)+, R0",
            "MOVL -(SP), R0",
            "MOVL @(R5)+, R0",
            "MOVL B^8(R6), R0",
            "MOVL @#0x1234, R0",
        ]

    def test_indexed(self):
        image = assemble(("MOVL", "4(R1)[R2]", "R0"))
        (instruction,) = disassemble_image(image, origin=0x200, count=1)
        assert instruction.text == "MOVL B^4(R1)[R2], R0"

    def test_branch_renders_target_address(self):
        asm = Assembler(origin=0x200)
        asm.label("top")
        asm.instr("NOP")
        asm.instr("BRB", "top")
        image = asm.assemble()
        instructions = disassemble_image(image, origin=0x200, count=2)
        assert instructions[1].text == "BRB 0x200"

    def test_no_operand_instructions(self):
        image = assemble(("RSB",), ("RET",), ("HALT",))
        texts = [i.text for i in disassemble_image(image, origin=0x200, count=3)]
        assert texts == ["RSB", "RET", "HALT"]

    def test_walk_stops_at_halt(self):
        image = assemble(("NOP",), ("HALT",), ("NOP",))
        instructions = disassemble_image(image, origin=0x200)
        assert [i.opcode.mnemonic for i in instructions] == ["NOP", "HALT"]

    def test_str_includes_hex(self):
        image = assemble(("NOP",))
        (instruction,) = disassemble_image(image, origin=0x200, count=1)
        assert "01" in str(instruction)

    def test_undecodable_byte_raises(self):
        with pytest.raises(DisassemblyError):
            disassemble_image(b"\xff", count=1)  # 0xFF is not in the subset

    def test_out_of_image_raises(self):
        with pytest.raises(DisassemblyError):
            disassemble_image(b"\xd0", count=1)  # MOVL with no operands

    def test_float_immediate_integral(self):
        image = assemble(("MOVF", "I^#3", "R1"))
        (instruction,) = disassemble_image(image, origin=0x200, count=1)
        assert instruction.text == "MOVF I^#3, R1"


class TestRoundTrip:
    """assemble(disassemble(x)) == x for label-free operands."""

    CASES = [
        ("MOVL", "R1", "R2"),
        ("MOVL", "#63", "R0"),
        ("MOVB", "I^#200", "R3"),
        ("MOVW", "I^#30000", "(R4)"),
        ("ADDL3", "S^#1", "(R2)+", "-(SP)"),
        ("MOVL", "@(R5)+", "R0"),
        ("MOVL", "B^-8(FP)", "R0"),
        ("MOVL", "W^1000(R7)", "R0"),
        ("MOVL", "L^100000(R8)", "R0"),
        ("MOVL", "@B^4(R9)", "R0"),
        ("MOVL", "@#0xDEAD", "R0"),
        ("CLRQ", "R6"),
        ("MOVL", "B^4(R1)[R2]", "(R3)[R4]"),
        ("EXTZV", "#3", "#7", "R1", "R2"),
        ("MOVC3", "#12", "(R1)", "(R2)"),
        ("PUSHR", "#0x3F"),
        ("MTPR", "#5", "#18"),
        ("MOVF", "I^#2", "R4"),
    ]

    @pytest.mark.parametrize("case", CASES, ids=lambda c: " ".join(c))
    def test_round_trip(self, case):
        mnemonic, *operands = case
        original = assemble((mnemonic, *operands))
        (instruction,) = disassemble_image(original, origin=0x200, count=1)
        rebuilt = assemble((instruction.opcode.mnemonic, *instruction.operands))
        assert rebuilt == original, instruction.text

    @settings(max_examples=60, deadline=None)
    @given(
        register=st.integers(min_value=0, max_value=11),
        literal=st.integers(min_value=0, max_value=63),
        displacement=st.integers(min_value=-127, max_value=127),
    )
    def test_round_trip_property(self, register, literal, displacement):
        original = assemble(
            ("MOVL", "S^#{}".format(literal), "R{}".format(register)),
            ("ADDL2", "B^{}(R{})".format(displacement, register), "R0"),
        )
        instructions = disassemble_image(original, origin=0x200, count=2)
        rebuilt_asm = Assembler(origin=0x200)
        for instruction in instructions:
            rebuilt_asm.instr(instruction.opcode.mnemonic, *instruction.operands)
        assert rebuilt_asm.assemble() == original

    def test_workload_code_disassembles(self):
        """Every instruction the workload generator emits must decode."""
        from repro.workloads import generate_program, profile_by_name
        from repro.workloads.codegen import CODE_ORIGIN

        from repro.cpu.operands import IllegalSpecifier

        program = generate_program(profile_by_name("commercial"), variant=3)
        disassembler = Disassembler.from_bytes(program.code, origin=CODE_ORIGIN)
        decoded = 0
        # Linear sweep until inline data (procedure entry masks, CASE
        # dispatch tables) derails it — unavoidable for any linear-sweep
        # VAX disassembler; the prologue must decode cleanly first.
        try:
            for instruction in disassembler.walk(CODE_ORIGIN, count=200):
                decoded += 1
        except (DisassemblyError, IllegalSpecifier):
            pass
        assert decoded >= 9  # the whole prologue, at minimum

"""Unit tests for the two-pass assembler's byte-level encodings."""

import struct

import pytest

from repro.asm import Assembler, AssemblyError


def assemble_one(mnemonic, *operands, origin=0):
    asm = Assembler(origin=origin)
    asm.instr(mnemonic, *operands)
    return asm.assemble()


class TestBasicEncodings:
    def test_movl_register_to_register(self):
        # MOVL R0, R1 -> D0 50 51
        assert assemble_one("MOVL", "R0", "R1") == bytes([0xD0, 0x50, 0x51])

    def test_short_literal(self):
        # MOVL #5, R0 -> D0 05 50
        assert assemble_one("MOVL", "#5", "R0") == bytes([0xD0, 0x05, 0x50])

    def test_immediate_long(self):
        # MOVL #0x12345678, R0 -> D0 8F 78 56 34 12 50
        image = assemble_one("MOVL", "#0x12345678", "R0")
        assert image == bytes([0xD0, 0x8F, 0x78, 0x56, 0x34, 0x12, 0x50])

    def test_immediate_byte_sized_by_dtype(self):
        # MOVB #100, R0: immediate payload is one byte
        image = assemble_one("MOVB", "#100", "R0")
        assert image == bytes([0x90, 0x8F, 100, 0x50])

    def test_register_deferred(self):
        assert assemble_one("TSTL", "(R3)") == bytes([0xD5, 0x63])

    def test_autoincrement(self):
        assert assemble_one("MOVL", "(R1)+", "R0") == bytes([0xD0, 0x81, 0x50])

    def test_autodecrement_push_idiom(self):
        assert assemble_one("MOVL", "R0", "-(SP)") == bytes([0xD0, 0x50, 0x7E])

    def test_byte_displacement(self):
        # MOVL 4(R5), R0 -> D0 A5 04 50
        assert assemble_one("MOVL", "4(R5)", "R0") == bytes([0xD0, 0xA5, 0x04, 0x50])

    def test_negative_byte_displacement(self):
        image = assemble_one("MOVL", "-4(FP)", "R0")
        assert image == bytes([0xD0, 0xAD, 0xFC, 0x50])

    def test_word_displacement(self):
        image = assemble_one("MOVL", "W^260(R5)", "R0")
        assert image == bytes([0xD0, 0xC5, 0x04, 0x01, 0x50])

    def test_absolute(self):
        image = assemble_one("TSTL", "@#0x1000")
        assert image == bytes([0xD5, 0x9F, 0x00, 0x10, 0x00, 0x00])

    def test_indexed(self):
        # MOVL (R1)[R2], R0 -> D0 42 61 50
        image = assemble_one("MOVL", "(R1)[R2]", "R0")
        assert image == bytes([0xD0, 0x42, 0x61, 0x50])

    def test_no_operand_instruction(self):
        assert assemble_one("RSB") == bytes([0x05])
        assert assemble_one("NOP") == bytes([0x01])

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            assemble_one("MOVL", "R0")


class TestBranches:
    def test_backward_branch_byte(self):
        asm = Assembler()
        asm.label("top")
        asm.instr("NOP")
        asm.instr("BRB", "top")
        image = asm.assemble()
        # BRB at address 1, displacement from PC=3 back to 0 -> -3
        assert image == bytes([0x01, 0x11, 0xFD])

    def test_forward_branch_byte(self):
        asm = Assembler()
        asm.instr("BEQL", "skip")
        asm.instr("NOP")
        asm.label("skip")
        asm.instr("NOP")
        image = asm.assemble()
        assert image[:3] == bytes([0x13, 0x01, 0x01])

    def test_word_branch(self):
        asm = Assembler()
        asm.instr("BRW", "far")
        asm.space(300)
        asm.label("far")
        image = asm.assemble()
        displacement = struct.unpack("<h", image[1:3])[0]
        assert displacement == 300

    def test_byte_branch_out_of_range_raises(self):
        asm = Assembler()
        asm.instr("BRB", "far")
        asm.space(200)
        asm.label("far")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.instr("BRB", "nowhere")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_sobgtr_loop_shape(self):
        # SOBGTR R1, top : F5 51 <disp>
        asm = Assembler()
        asm.label("top")
        asm.instr("ADDL2", "#1", "R0")
        asm.instr("SOBGTR", "R1", "top")
        image = asm.assemble()
        assert image[0] == 0xC0  # ADDL2
        sob_at = 3
        assert image[sob_at] == 0xF5 and image[sob_at + 1] == 0x51
        displacement = struct.unpack("<b", image[sob_at + 2 : sob_at + 3])[0]
        assert sob_at + 3 + displacement == 0


class TestDataDirectives:
    def test_byte_word_long(self):
        asm = Assembler()
        asm.byte(1, 2)
        asm.word(0x0304)
        asm.long(0x05060708)
        assert asm.assemble() == bytes([1, 2, 0x04, 0x03, 0x08, 0x07, 0x06, 0x05])

    def test_ascii_and_space(self):
        asm = Assembler()
        asm.ascii("AB")
        asm.space(2, fill=0xFF)
        assert asm.assemble() == b"AB\xff\xff"

    def test_align(self):
        asm = Assembler()
        asm.byte(1)
        asm.align(4)
        asm.label("data")
        assert asm.symbols["data"] == 4

    def test_origin_offsets_symbols(self):
        asm = Assembler(origin=0x1000)
        asm.label("start")
        asm.instr("NOP")
        assert asm.symbols["start"] == 0x1000
        assert len(asm.assemble()) == 1

    def test_word_ref_table(self):
        asm = Assembler()
        asm.label("base")
        asm.word_ref("target", "base")
        asm.label("target")
        image = asm.assemble()
        assert struct.unpack("<h", image[0:2])[0] == 2


class TestPcRelativeData:
    def test_label_operand_encodes_long_relative(self):
        asm = Assembler()
        asm.instr("MOVL", "value", "R0")
        asm.label("value")
        asm.long(42)
        image = asm.assemble()
        assert image[1] == 0xEF
        # Specifier occupies bytes 1..5; PC after it is 6; label at 7 (after
        # the R0 specifier byte).  The displacement is relative to that PC.
        displacement = struct.unpack("<i", image[2:6])[0]
        assert 6 + displacement == 7

    def test_float_immediate(self):
        image = assemble_one("MOVF", "I^#1", "R6")
        assert image[0] == 0x50 and image[1] == 0x8F
        assert struct.unpack("<I", image[2:6])[0] == 0x00004080

"""Unit tests for assembler operand parsing."""

import pytest

from repro.asm.operands import OperandSyntaxError, parse_operand
from repro.isa.specifiers import AddressingMode


class TestRegisterForms:
    def test_plain_register(self):
        op = parse_operand("R5")
        assert op.mode is AddressingMode.REGISTER and op.register == 5

    def test_special_register_names(self):
        assert parse_operand("SP").register == 14
        assert parse_operand("FP").register == 13
        assert parse_operand("AP").register == 12
        assert parse_operand("PC").register == 15

    def test_register_deferred(self):
        op = parse_operand("(R3)")
        assert op.mode is AddressingMode.REGISTER_DEFERRED and op.register == 3

    def test_autoincrement(self):
        op = parse_operand("(R7)+")
        assert op.mode is AddressingMode.AUTOINCREMENT and op.register == 7

    def test_autodecrement(self):
        op = parse_operand("-(SP)")
        assert op.mode is AddressingMode.AUTODECREMENT and op.register == 14

    def test_autoincrement_deferred(self):
        op = parse_operand("@(R2)+")
        assert op.mode is AddressingMode.AUTOINCREMENT_DEFERRED


class TestLiteralForms:
    def test_small_immediate_becomes_short_literal(self):
        op = parse_operand("#63")
        assert op.mode is AddressingMode.SHORT_LITERAL and op.value == 63

    def test_large_immediate(self):
        op = parse_operand("#64")
        assert op.mode is AddressingMode.IMMEDIATE and op.value == 64

    def test_negative_immediate(self):
        op = parse_operand("#-1")
        assert op.mode is AddressingMode.IMMEDIATE

    def test_forced_short_literal(self):
        assert parse_operand("S^#0").mode is AddressingMode.SHORT_LITERAL

    def test_forced_short_literal_range_check(self):
        with pytest.raises(OperandSyntaxError):
            parse_operand("S^#64")

    def test_forced_immediate(self):
        op = parse_operand("I^#5")
        assert op.mode is AddressingMode.IMMEDIATE and op.value == 5

    def test_hex_literal(self):
        assert parse_operand("#0x20").value == 0x20


class TestDisplacementForms:
    def test_byte_displacement_inferred(self):
        op = parse_operand("12(R5)")
        assert op.mode is AddressingMode.BYTE_DISPLACEMENT and op.value == 12

    def test_word_displacement_inferred(self):
        op = parse_operand("300(R5)")
        assert op.mode is AddressingMode.WORD_DISPLACEMENT

    def test_long_displacement_inferred(self):
        op = parse_operand("70000(R5)")
        assert op.mode is AddressingMode.LONG_DISPLACEMENT

    def test_forced_width(self):
        op = parse_operand("W^4(R5)")
        assert op.mode is AddressingMode.WORD_DISPLACEMENT and op.value == 4

    def test_negative_displacement(self):
        op = parse_operand("-4(FP)")
        assert op.mode is AddressingMode.BYTE_DISPLACEMENT and op.value == -4

    def test_displacement_deferred(self):
        op = parse_operand("@8(R1)")
        assert op.mode is AddressingMode.BYTE_DISPLACEMENT_DEFERRED and op.value == 8

    def test_absolute(self):
        op = parse_operand("@#0x1000")
        assert op.mode is AddressingMode.ABSOLUTE and op.value == 0x1000


class TestIndexedForms:
    def test_indexed_register_deferred(self):
        op = parse_operand("(R1)[R2]")
        assert op.mode is AddressingMode.REGISTER_DEFERRED
        assert op.index_register == 2 and op.is_label is False

    def test_indexed_displacement(self):
        op = parse_operand("8(R1)[R3]")
        assert op.mode is AddressingMode.BYTE_DISPLACEMENT and op.index_register == 3

    def test_register_mode_cannot_be_indexed(self):
        with pytest.raises(OperandSyntaxError):
            parse_operand("R1[R2]")

    def test_literal_cannot_be_indexed(self):
        with pytest.raises(OperandSyntaxError):
            parse_operand("#5[R2]")


class TestLabels:
    def test_label_reference(self):
        op = parse_operand("loop")
        assert op.is_label and op.label == "loop"

    def test_label_with_dots(self):
        assert parse_operand("sys$entry").label == "sys$entry"


class TestErrors:
    def test_empty(self):
        with pytest.raises(OperandSyntaxError):
            parse_operand("")

    def test_garbage(self):
        with pytest.raises(OperandSyntaxError):
            parse_operand("%%%")

"""Tests for the control-store layout and cost tables."""

import pytest

from repro.isa.opcodes import OPCODES
from repro.isa.specifiers import AddressingMode
from repro.ucode import (
    CONTROL_STORE_SIZE,
    ControlStore,
    CycleKind,
    MicroSlot,
    Region,
    build_layout,
)
from repro.ucode.costs import SPEC_COSTS, exec_profile
from repro.ucode.routines import PATCHED_ROUTINES


class TestRegions:
    def test_regions_are_disjoint_and_fit(self):
        extents = sorted((r.base, r.end) for r in Region)
        for (b1, e1), (b2, e2) in zip(extents, extents[1:]):
            assert e1 <= b2
        assert extents[-1][1] <= CONTROL_STORE_SIZE

    def test_region_labels_unique(self):
        labels = [r.label for r in Region]
        assert len(labels) == len(set(labels))


class TestAllocation:
    def test_routine_gets_distinct_addresses(self):
        store = ControlStore()
        routine = store.allocate(Region.DECODE, "r")
        addresses = set(routine.slots.values())
        assert len(addresses) == len(routine.slots)
        assert all(Region.DECODE.base <= a < Region.DECODE.end for a in addresses)

    def test_reverse_lookup(self):
        store = ControlStore()
        routine = store.allocate(Region.BDISP, "x", (MicroSlot.COMPUTE_A,))
        found, slot = store.lookup(routine.address(MicroSlot.COMPUTE_A))
        assert found is routine and slot is MicroSlot.COMPUTE_A

    def test_unused_address_lookup_is_none(self):
        store = ControlStore()
        assert store.lookup(0x3FFF) is None
        assert store.kind_of(0x3FFF) is None

    def test_kind_classification(self):
        store = ControlStore()
        routine = store.allocate(Region.MEMMGMT, "m")
        assert store.kind_of(routine.address(MicroSlot.READ)) is CycleKind.READ
        assert store.kind_of(routine.address(MicroSlot.WRITE)) is CycleKind.WRITE
        assert store.kind_of(routine.address(MicroSlot.COMPUTE_A)) is CycleKind.COMPUTE
        assert store.kind_of(routine.address(MicroSlot.IB_WAIT)) is CycleKind.IB_STALL

    def test_region_overflow_raises(self):
        store = ControlStore()
        with pytest.raises(ValueError):
            for index in range(100):  # DECODE region is only 16 locations
                store.allocate(Region.DECODE, "r{}".format(index))


class TestBuiltLayout:
    @pytest.fixture(scope="class")
    def layout(self):
        return build_layout()

    def test_every_opcode_has_an_exec_routine(self, layout):
        for opcode in OPCODES.values():
            routine = layout.execute[opcode.mnemonic]
            assert routine.name == "exec." + opcode.mnemonic.lower()

    def test_every_mode_has_spec_routines_in_both_banks(self, layout):
        for mode in AddressingMode:
            if mode is AddressingMode.INDEXED:
                continue
            assert mode in layout.spec1 and mode in layout.spec26
            assert layout.spec1[mode].region is Region.SPEC1
            assert layout.spec26[mode].region is Region.SPEC26

    def test_index_microcode_shared_in_spec26(self, layout):
        # The microcode-sharing quirk the paper reports: indexed base
        # calculation lives at SPEC2-6 addresses.
        assert layout.index_shared.region is Region.SPEC26

    def test_exec_routines_in_group_regions(self, layout):
        assert layout.execute["MOVL"].region is Region.EXEC_SIMPLE
        assert layout.execute["EXTV"].region is Region.EXEC_FIELD
        assert layout.execute["ADDF2"].region is Region.EXEC_FLOAT
        assert layout.execute["CALLS"].region is Region.EXEC_CALLRET
        assert layout.execute["CHMK"].region is Region.EXEC_SYSTEM
        assert layout.execute["MOVC3"].region is Region.EXEC_CHARACTER
        assert layout.execute["ADDP4"].region is Region.EXEC_DECIMAL

    def test_overhead_routines_present(self, layout):
        assert layout.tb_miss.region is Region.MEMMGMT
        assert layout.alignment.region is Region.MEMMGMT
        assert layout.interrupt.region is Region.INTEXC
        assert layout.exception.region is Region.INTEXC
        assert layout.abort.region is Region.ABORT

    def test_no_address_collisions(self, layout):
        addresses = layout.store.used_addresses()
        assert len(addresses) == len(set(addresses))

    def test_patched_routines_marked(self, layout):
        patched = {r.name for r in layout.store.routines if r.patched}
        assert patched == set(PATCHED_ROUTINES) & patched
        assert "exec.calls" in patched
        assert "exec.movl" not in patched  # hot unpatched paths stay clean

    def test_layout_is_deterministic(self, layout):
        other = build_layout()
        assert other.store.used_addresses() == layout.store.used_addresses()
        assert other.decode.slots == layout.decode.slots


class TestCosts:
    def test_every_mode_has_a_cost(self):
        for mode in AddressingMode:
            if mode is AddressingMode.INDEXED:
                continue
            assert mode in SPEC_COSTS
            assert SPEC_COSTS[mode].address_cycles >= 1

    def test_deferred_modes_cost_a_pointer_read(self):
        assert SPEC_COSTS[AddressingMode.BYTE_DISPLACEMENT_DEFERRED].pointer_reads == 1
        assert SPEC_COSTS[AddressingMode.REGISTER_DEFERRED].pointer_reads == 0

    def test_every_opcode_has_an_exec_profile(self):
        for opcode in OPCODES.values():
            profile = exec_profile(opcode)
            assert profile.base_cycles >= 0
            assert profile.per_item_cycles >= 0

    def test_cost_ordering_matches_table9(self):
        """The per-opcode cost model must respect the paper's complexity
        ordering even before any workload runs."""
        from repro.isa.opcodes import opcode_by_mnemonic

        def base(mnemonic):
            return exec_profile(opcode_by_mnemonic(mnemonic)).base_cycles

        assert base("MOVL") <= base("EXTV") <= base("CALLS")
        assert base("DIVL3") > base("MULL3") > base("ADDL3")
        assert base("DIVF2") > base("ADDF2")
        assert base("ADDP4") > base("ADDL2")

    def test_branches_pay_for_redirect_only_when_taken(self):
        from repro.isa.opcodes import opcode_by_mnemonic

        profile = exec_profile(opcode_by_mnemonic("BNEQ"))
        assert profile.taken_extra_cycles >= 1

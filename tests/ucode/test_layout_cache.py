"""The memoized microcode layout: identity, freshness, isolation.

Building the layout allocates every routine in the 16K control store;
machines share one immutable cached instance unless a caller asks for a
private copy with ``build_layout(fresh=True)`` (e.g. to mark routines
patched in an ablation).
"""

import pytest

from repro.ucode.microword import MicroSlot
from repro.ucode.routines import build_layout


class TestLayoutCache:
    def test_repeat_calls_share_one_instance(self):
        assert build_layout() is build_layout()

    def test_fresh_returns_private_instances(self):
        cached = build_layout()
        fresh = build_layout(fresh=True)
        assert fresh is not cached
        assert build_layout(fresh=True) is not fresh

    def test_fresh_layout_is_equivalent(self):
        cached = build_layout()
        fresh = build_layout(fresh=True)
        assert cached.store.used_addresses() == fresh.store.used_addresses()
        assert cached.abort.address(MicroSlot.COMPUTE_A) == fresh.abort.address(
            MicroSlot.COMPUTE_A
        )
        assert set(cached.execute) == set(fresh.execute)

    def test_mutating_a_fresh_layout_does_not_leak_into_the_cache(self):
        # Ablations that flip routine flags must take a private copy;
        # this guards the cached instance against aliasing bugs.
        fresh = build_layout(fresh=True)
        victim = fresh.execute["MOVL"]
        assert victim.patched is False
        victim.patched = True
        assert build_layout().execute["MOVL"].patched is False

    def test_cache_clear_rebuilds(self):
        before = build_layout()
        build_layout.cache_clear()
        after = build_layout()
        assert after is not before
        assert after is build_layout()

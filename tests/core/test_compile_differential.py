"""Differential harness: the compiled replay path vs the interpreter.

The replay compiler (:mod:`repro.core.compile`) promises bit-identical
results to the interpreted microcode walk — same histograms, same event
counters, same hardware stats, same machine state, same snapshots.
This file holds it to that promise:

* every workload profile, run compiled and under ``REPRO_NO_COMPILE=1``,
  must serialize to the same bytes (histogram banks included), and the
  compiled arm must actually have replayed instructions;
* an attached tracer forces the slow path yet changes nothing;
* mid-run snapshots from the two modes carry identical digests (the
  compiler's caches and stats are deliberately outside machine state);
* the engine's run manifest records whether the compiler was active;
* randomized specifier-mode programs (hypothesis) leave both machines
  in exactly the same architectural state, cycle for cycle.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Assembler
from repro.core import compile as replay
from repro.core.engine import RunSpec, execute_spec
from repro.core.experiment import (
    MachineStats,
    prepare_workload,
    result_from_machine,
)
from repro.core.histogram_io import result_to_json
from repro.core.monitor import UPCMonitor
from repro.core.snapshot import capture
from repro.cpu import VAX780
from repro.obs.trace import Tracer
from repro.workloads import PROFILES

INSTRUCTIONS = 700
WARMUP = 200


@pytest.fixture(autouse=True)
def _own_the_gate(monkeypatch):
    # These tests control the env gate themselves; a globally exported
    # REPRO_NO_COMPILE (the CI interpreted tier-1 leg) would otherwise
    # collapse both arms onto the interpreter.
    monkeypatch.delenv(replay.NO_COMPILE_ENV, raising=False)


@contextmanager
def interpreter():
    """Force the interpreted path for machines built inside the block."""
    prior = os.environ.get(replay.NO_COMPILE_ENV)
    os.environ[replay.NO_COMPILE_ENV] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(replay.NO_COMPILE_ENV, None)
        else:
            os.environ[replay.NO_COMPILE_ENV] = prior


@contextmanager
def compiler():
    """Force the compiled path (clear the gate) inside the block.

    Needed where the autouse monkeypatch cannot reach: module-scoped
    fixtures are set up before function-scoped autouse fixtures run.
    """
    prior = os.environ.pop(replay.NO_COMPILE_ENV, None)
    try:
        yield
    finally:
        if prior is not None:
            os.environ[replay.NO_COMPILE_ENV] = prior


def measured_run(profile, tracer=None, instructions=INSTRUCTIONS, warmup=WARMUP):
    """One measured workload run; returns (result, board, machine)."""
    kernel, monitor = prepare_workload(profile, tracer=tracer)
    machine = kernel.machine
    kernel.run(max_instructions=warmup)
    baseline = MachineStats.from_machine(machine)
    kernel.start_measurement()
    kernel.run(max_instructions=instructions)
    kernel.stop_measurement()
    result = result_from_machine(
        machine, monitor, name=profile, stats_baseline=baseline
    )
    return result, monitor.board, machine


@pytest.fixture(scope="module", params=sorted(PROFILES))
def arms(request):
    """Both arms of one profile: (profile, compiled triple, interpreted triple)."""
    profile = request.param
    with compiler():
        compiled = measured_run(profile)
    with interpreter():
        interpreted = measured_run(profile)
    return profile, compiled, interpreted


class TestWorkloadDifferential:
    def test_serialized_results_bit_identical(self, arms):
        _, (c_result, c_board, _), (i_result, i_board, _) = arms
        assert result_to_json(c_result, c_board) == result_to_json(
            i_result, i_board
        )

    def test_events_stats_and_reduction_equal(self, arms):
        _, (c_result, _, _), (i_result, _, _) = arms
        assert c_result.events == i_result.events
        assert c_result.stats == i_result.stats
        assert c_result.instructions == i_result.instructions
        assert c_result.cpi == i_result.cpi

    def test_compiled_arm_replayed_interpreted_arm_did_not(self, arms):
        profile, (_, _, c_machine), (_, _, i_machine) = arms
        assert c_machine.ebox._compile_active, profile
        assert c_machine.ebox.compile_stats.jit_hits > 0, profile
        assert not i_machine.ebox._compile_active, profile
        assert i_machine.ebox.compile_stats.jit_hits == 0, profile


class TestTracerPassivity:
    def test_tracer_forces_slow_path_and_changes_nothing(self):
        c_result, c_board, _ = measured_run("educational")
        tracer = Tracer()
        t_result, t_board, t_machine = measured_run("educational", tracer=tracer)
        assert not t_machine.ebox._compile_active
        assert t_machine.ebox.compile_stats.jit_hits == 0
        assert len(tracer) > 0
        assert result_to_json(c_result, c_board) == result_to_json(
            t_result, t_board
        )

    def test_trace_stream_identical_across_env_gate(self):
        # With a tracer attached both env settings take the slow path;
        # the streams they record must be byte-for-byte the same.
        tracer_a = Tracer()
        measured_run("educational", tracer=tracer_a)
        tracer_b = Tracer()
        with interpreter():
            measured_run("educational", tracer=tracer_b)
        assert tracer_a.events() == tracer_b.events()


class TestSnapshotEquivalence:
    def test_mid_run_snapshots_share_a_digest(self):
        # The compiler's record caches and CompileStats live outside
        # pickled machine state, so a compiled machine and an
        # interpreted machine paused at the same instruction produce
        # the same snapshot bytes.
        kernel_c, _ = prepare_workload("educational")
        kernel_c.run(max_instructions=400)
        snap_c = capture(kernel_c, label="differential")
        with interpreter():
            kernel_i, _ = prepare_workload("educational")
            kernel_i.run(max_instructions=400)
            snap_i = capture(kernel_i, label="differential")
        assert kernel_c.machine.ebox._compile_active
        assert not kernel_i.machine.ebox._compile_active
        assert snap_c.digest == snap_i.digest
        assert snap_c.payload == snap_i.payload


class TestManifestCompileStats:
    SPEC = dict(workload="educational", instructions=300, warmup_instructions=100)

    def test_manifest_records_active_compiler(self):
        run = execute_spec(RunSpec(**self.SPEC))
        info = run.manifest.compile
        assert info is not None
        assert info["active"] == 1
        assert info["routines_specialized"] > 0
        assert info["jit_hits"] + info["jit_misses"] > 0

    def test_manifest_records_disabled_compiler(self):
        with interpreter():
            run = execute_spec(RunSpec(**self.SPEC))
        info = run.manifest.compile
        assert info is not None
        assert info["active"] == 0
        assert info["jit_hits"] == 0


# --------------------------------------------------------------------------
# Randomized specifier-mode programs
# --------------------------------------------------------------------------

ORIGIN = 0x200
SCRATCH = 0x3040  # a separate page from the code; inside the built-in P0 map

# Operand specifiers spanning the addressing modes the replay compiler
# specializes: literals, immediates, registers, autoincrement,
# autodecrement, displacements of each width, and indexing.  (Deferred
# modes that chase a pointer the random ops may clobber are excluded —
# a garbage pointer faults on a bare machine with no VMS handler.)
SOURCES = [
    "#5",
    "#63",
    "I^#305419896",
    "R0",
    "R1",
    "R2",
    "(R6)",
    "(R6)+",
    "-(R6)",
    "B^4(R6)",
    "W^8(R6)",
    "L^12(R6)",
    "(R6)[R3]",
]
DESTS = [
    "R0",
    "R1",
    "R2",
    "R4",
    "(R6)",
    "(R6)+",
    "-(R6)",
    "B^4(R6)",
    "W^8(R6)",
    "(R6)[R3]",
]
TWO_OPERAND = ["MOVL", "ADDL2", "SUBL2", "BISL2", "BICL2", "XORL2", "CMPL"]
ONE_OPERAND = ["TSTL", "INCL", "DECL", "CLRL"]

op_strategy = st.one_of(
    st.tuples(
        st.sampled_from(TWO_OPERAND),
        st.sampled_from(SOURCES),
        st.sampled_from(DESTS),
    ),
    st.tuples(st.sampled_from(ONE_OPERAND), st.sampled_from(DESTS)),
)


def _assemble(ops, repeats):
    asm = Assembler(origin=ORIGIN)
    # Point R6 into the scratch page and give the index register a
    # small fixed value; @B^4(R6) chases a pointer stored at entry.
    asm.instr("MOVL", "I^#%d" % (SCRATCH + 64), "R6")
    asm.instr("MOVL", "#1", "R3")
    for _ in range(repeats):
        for op in ops:
            asm.instr(*op)
    asm.instr("HALT")
    return asm.assemble(), 2 + repeats * len(ops)


def _final_state(machine):
    regs = [machine.ebox.regs.read(i) for i in range(16)]
    memory = [
        machine.read_virtual(SCRATCH + offset, 4)
        for offset in range(-64, 128, 4)
    ]
    return {
        "regs": regs,
        "psl": machine.ebox.psl.pack(),
        "cycles": machine.ebox.cycle_count,
        "memory": memory,
    }


class TestRandomizedSpecifierModes:
    @staticmethod
    def _load(machine, program):
        machine.load_program(program, ORIGIN)
        # Pre-map the pages around SCRATCH so programs that never touch
        # memory still leave a readable (all-zero) region to compare.
        machine.map_range(SCRATCH - 0x440, 0x800)

    @settings(max_examples=10, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=2, max_size=8))
    def test_compiled_and_interpreted_agree(self, ops):
        # Repeat the block so the two-sightings gate opens and later
        # iterations actually replay compiled records.
        program, budget = _assemble(ops, repeats=3)
        compiled = VAX780(monitor=UPCMonitor.build())
        self._load(compiled, program)
        compiled.run(max_instructions=budget)
        with interpreter():
            interpreted = VAX780(monitor=UPCMonitor.build())
            self._load(interpreted, program)
            interpreted.run(max_instructions=budget)
        assert compiled.ebox._compile_active
        assert not interpreted.ebox._compile_active
        assert _final_state(compiled) == _final_state(interpreted)

    @settings(max_examples=5, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=2, max_size=6))
    def test_check_and_validate_verdicts_agree_across_all_modes(self, ops):
        """Randomized specifier programs put the *verdict machinery*
        through the differential: all three compile modes must produce
        bit-identical observables (so ``repro validate``'s cross-mode
        checks hold) and the identical set of passing ``repro check``
        identities."""
        from repro.core.experiment import ExperimentResult
        from repro.obs.invariants import check_result
        from repro.validate import ALL_MODES, RefutationRunner, execute_probe
        from repro.validate.probes import Probe

        def build():
            asm = Assembler(origin=ORIGIN)
            asm.instr("MOVL", "I^#%d" % (SCRATCH + 64), "R6")
            asm.instr("MOVL", "#1", "R3")
            for _ in range(3):
                for op in ops:
                    asm.instr(*op)
            asm.instr("HALT")
            return asm

        probe = Probe(
            name="randomized",
            title="hypothesis-generated specifier program",
            covers="specifier",
            canonical=False,
            build=build,
            expectations=(),
            map_ranges=((SCRATCH - 0x440, 0x800),),
        )

        # The runner's cross-mode checks pin all three arms together.
        report = RefutationRunner(modes=ALL_MODES, trace=False).run_probe(probe)
        assert report.ok, [outcome.to_dict() for outcome in report.failures]

        # And every arm's counter identities return the same verdicts.
        verdicts = {}
        for mode in ALL_MODES:
            run = execute_probe(probe, mode)
            outcomes = check_result(
                ExperimentResult(
                    name=mode,
                    reduction=run.reduction,
                    events=run.events,
                    stats=run.stats,
                ),
                run.counts,
                run.stalled,
                run.layout,
            )
            verdicts[mode] = [(outcome.name, outcome.ok) for outcome in outcomes]
            assert all(ok for _name, ok in verdicts[mode]), (mode, outcomes)
        assert verdicts["interpreted"] == verdicts["compiled"] == verdicts["tier1"]

"""Compile-lifecycle events: the channel captures tier transitions with
the compiled path *enabled*, attaching it never perturbs the machine,
and a forced interpreter fallback is loud (warning + metric)."""

import pytest

from repro.core import compile as replay
from repro.core.experiment import run_workload
from repro.obs.channel import (
    KIND_DEOPT,
    KIND_FALLBACK,
    KIND_RECORD_FORMED,
    KIND_SUPERBLOCK_FORMED,
    KIND_TIER_UP,
    EventChannel,
)
from repro.obs.metrics import MetricsRegistry, registry_from_result
from repro.obs.trace import Tracer

INSTRUCTIONS = 3_000
WARMUP = 500


@pytest.fixture(autouse=True)
def _own_the_gates(monkeypatch):
    monkeypatch.delenv(replay.NO_COMPILE_ENV, raising=False)
    monkeypatch.setenv(replay.TIER_THRESHOLD_ENV, "1")
    replay.clear_record_caches()
    yield
    replay.clear_record_caches()


def channel_run(**kwargs):
    channel = EventChannel()
    metrics = MetricsRegistry()
    result = run_workload(
        "timesharing_light",
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        compile_events=channel,
        metrics=metrics,
        **kwargs,
    )
    compiled = replay.stats_from_snapshot(metrics.snapshot())
    return channel, result, compiled


def reason_tally(compiled, prefix):
    return {
        key.split(".", 1)[1]: value
        for key, value in compiled.items()
        if key.startswith(prefix + ".")
    }


class TestChannelCapture:
    def test_lifecycle_kinds_appear_on_a_hot_run(self):
        channel, _result, _compiled = channel_run()
        kinds = channel.kind_counts()
        assert kinds.get(KIND_RECORD_FORMED, 0) > 0
        assert kinds.get(KIND_SUPERBLOCK_FORMED, 0) > 0
        assert kinds.get(KIND_DEOPT, 0) > 0

    def test_tier_up_events_appear_at_the_default_threshold(self, monkeypatch):
        # Threshold 1 compiles records on first sighting, skipping the
        # promotion step; the default threshold exercises it.
        monkeypatch.delenv(replay.TIER_THRESHOLD_ENV, raising=False)
        replay.clear_record_caches()
        channel, _result, _compiled = channel_run()
        assert channel.kind_counts().get(KIND_TIER_UP, 0) > 0

    def test_deopt_labels_match_the_stats_reason_tally(self):
        channel, _result, compiled = channel_run()
        assert compiled is not None
        assert channel.label_counts(KIND_DEOPT) == reason_tally(compiled, "deopt")
        assert channel.label_counts(KIND_FALLBACK) == reason_tally(
            compiled, "fallback"
        )
        assert set(reason_tally(compiled, "deopt")) <= {
            "interrupt", "cycle_limit", "byte_guard"
        }

    def test_events_adapt_to_trace_tuples(self):
        channel, _result, _compiled = channel_run()
        events = channel.to_trace_events()
        assert len(events) == len(channel)
        phase, track, ts, name, dur, args = events[0]
        assert phase == "I"
        assert track == "JIT"
        assert isinstance(ts, int)

    def test_channel_is_bounded_and_counts_drops(self):
        channel = EventChannel(capacity=4)
        for cycle in range(10):
            channel.emit(cycle, KIND_TIER_UP, "MOVL")
        assert len(channel) == 4
        assert channel.emitted == 10
        assert channel.dropped == 6


class TestPassivity:
    def test_channel_does_not_perturb_the_run(self):
        channel, observed, _compiled = channel_run()
        assert channel.emitted > 0
        bare = run_workload(
            "timesharing_light",
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
        )
        assert observed.reduction.matrix == bare.reduction.matrix
        assert observed.events.instructions == bare.events.instructions
        assert observed.stats == bare.stats

    def test_compiled_path_stays_active_with_channel(self):
        _channel, _result, compiled = channel_run()
        assert compiled is not None and compiled["active"]
        assert compiled["jit_hits"] > 0


class TestTracerFallback:
    def test_tracer_disables_compile_and_is_metered(self):
        metrics = MetricsRegistry()
        run_workload(
            "timesharing_light",
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            tracer=Tracer(capacity=1 << 20),
            metrics=metrics,
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"].get("sim.compile.disabled_by_tracer") == 1
        compiled = replay.stats_from_snapshot(snapshot)
        assert compiled is not None
        assert not compiled.get("active")
        assert compiled.get("disabled_by_tracer") == 1

    def test_fallback_warning_reaches_stderr(self, capsys):
        run_workload(
            "timesharing_light",
            instructions=700,
            warmup_instructions=200,
            tracer=Tracer(capacity=1 << 20),
        )
        err = capsys.readouterr().err
        assert "compiled hot path disabled" in err

    def test_untraced_run_emits_no_fallback_metric(self):
        metrics = MetricsRegistry()
        run_workload(
            "timesharing_light",
            instructions=700,
            warmup_instructions=200,
            metrics=metrics,
        )
        assert (
            "sim.compile.disabled_by_tracer" not in metrics.snapshot()["counters"]
        )

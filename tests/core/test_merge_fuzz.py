"""Property-based fuzz of the merge path the sharded engine leans on.

Every sharded run funnels through two merge operations: sparse shard
deltas rebuilt with :meth:`HistogramBoard.from_sparse` and summed with
:meth:`merge_from`, and :class:`EventCounters` deltas produced by
:meth:`minus` and re-accumulated with :meth:`merge_from`.  These fuzz
randomized bank sizes and board states against a reference model, and
pin the diagnostics: every rejection must name the offending bucket (and
bank) so a failed merge in a 16,000-bucket histogram is debuggable.
"""

from collections import Counter
from copy import deepcopy

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import (
    BANK_COUNT_MAX,
    HistogramBoard,
    MonitorCommandError,
)
from repro.cpu.events import EventCounters

# Small boards keep examples fast; nothing in the merge path depends on
# the bucket count beyond the banks agreeing.
board_sizes = st.integers(min_value=4, max_value=64)


def sparse_banks(size):
    bucket = st.integers(min_value=0, max_value=size - 1)
    count = st.integers(min_value=1, max_value=1 << 40)
    return st.tuples(
        st.dictionaries(bucket, count, max_size=size),
        st.dictionaries(bucket, count, max_size=size),
    )


@st.composite
def board_states(draw):
    size = draw(board_sizes)
    first = draw(sparse_banks(size))
    second = draw(sparse_banks(size))
    return size, first, second


class TestMergeFuzz:
    @settings(max_examples=200, deadline=None)
    @given(board_states())
    def test_merge_is_the_per_bucket_sum(self, state):
        size, (counts_a, stalled_a), (counts_b, stalled_b) = state
        a = HistogramBoard.from_sparse(counts_a, stalled_a, buckets=size)
        b = HistogramBoard.from_sparse(counts_b, stalled_b, buckets=size)
        a.merge_from(b)
        merged_counts, merged_stalled = a.dump_sparse()
        model = Counter(counts_a)
        model.update(counts_b)
        assert merged_counts == dict(model)
        model = Counter(stalled_a)
        model.update(stalled_b)
        assert merged_stalled == dict(model)

    @settings(max_examples=100, deadline=None)
    @given(board_states())
    def test_merge_is_commutative(self, state):
        size, first, second = state
        ab = HistogramBoard.from_sparse(*first, buckets=size)
        ab.merge_from(HistogramBoard.from_sparse(*second, buckets=size))
        ba = HistogramBoard.from_sparse(*second, buckets=size)
        ba.merge_from(HistogramBoard.from_sparse(*first, buckets=size))
        assert ab.dump_sparse() == ba.dump_sparse()

    @settings(max_examples=100, deadline=None)
    @given(board_states())
    def test_from_sparse_dump_sparse_roundtrip(self, state):
        size, (counts, stalled), _ = state
        board = HistogramBoard.from_sparse(counts, stalled, buckets=size)
        assert board.dump_sparse() == (counts, stalled)
        assert board.total_cycles() == sum(counts.values()) + sum(stalled.values())

    @settings(max_examples=50, deadline=None)
    @given(
        size=board_sizes,
        bucket=st.integers(min_value=0, max_value=3),
        stalled_bank=st.booleans(),
        near_max=st.integers(min_value=BANK_COUNT_MAX - 10, max_value=BANK_COUNT_MAX),
        pushover=st.integers(min_value=11, max_value=1 << 20),
    )
    def test_overflow_names_bucket_and_bank(
        self, size, bucket, stalled_bank, near_max, pushover
    ):
        bank_a = {bucket: near_max}
        bank_b = {bucket: pushover}
        empty = {}
        if stalled_bank:
            a = HistogramBoard.from_sparse(empty, bank_a, buckets=size)
            b = HistogramBoard.from_sparse(empty, bank_b, buckets=size)
            bank_name = "stalled"
        else:
            a = HistogramBoard.from_sparse(bank_a, empty, buckets=size)
            b = HistogramBoard.from_sparse(bank_b, empty, buckets=size)
            bank_name = "non-stalled"
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        message = str(excinfo.value)
        assert "merge overflow at bucket {} in the {} bank".format(
            bucket, bank_name
        ) in message
        assert str(near_max) in message and str(pushover) in message

    @settings(max_examples=50, deadline=None)
    @given(
        size=board_sizes,
        offset=st.integers(min_value=0, max_value=1 << 30),
        negative=st.booleans(),
    )
    def test_from_sparse_rejects_unstorable_counts(self, size, offset, negative):
        bad_count = -1 - offset if negative else BANK_COUNT_MAX + 1 + offset
        with pytest.raises(MonitorCommandError) as excinfo:
            HistogramBoard.from_sparse({2: bad_count}, {}, buckets=size)
        message = str(excinfo.value)
        assert "bucket 2" in message and "non-stalled" in message
        with pytest.raises(MonitorCommandError) as excinfo:
            HistogramBoard.from_sparse({}, {1: bad_count}, buckets=size)
        message = str(excinfo.value)
        assert "bucket 1" in message and "stalled" in message

    @settings(max_examples=50, deadline=None)
    @given(size=board_sizes, past_end=st.integers(min_value=0, max_value=1 << 20))
    def test_from_sparse_rejects_out_of_range_buckets(self, size, past_end):
        bad_bucket = size + past_end
        with pytest.raises(MonitorCommandError) as excinfo:
            HistogramBoard.from_sparse({bad_bucket: 1}, {}, buckets=size)
        assert "bucket {} out of range".format(bad_bucket) in str(excinfo.value)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.tuples(board_sizes, board_sizes).filter(lambda p: p[0] != p[1])
    )
    def test_mismatched_sizes_name_both_boards(self, sizes):
        mine, theirs = sizes
        a = HistogramBoard(buckets=mine)
        b = HistogramBoard(buckets=theirs)
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        message = str(excinfo.value)
        assert str(mine) in message and str(theirs) in message

    def test_overflow_leaves_target_bank_untouched(self):
        # _merge_bank builds the sum into a fresh array, so a rejected
        # merge must not leave a half-summed board behind.
        a = HistogramBoard.from_sparse({0: 5, 1: BANK_COUNT_MAX}, {2: 7}, buckets=8)
        b = HistogramBoard.from_sparse({0: 1, 1: 1}, {2: 1}, buckets=8)
        before = a.dump_sparse()
        with pytest.raises(MonitorCommandError):
            a.merge_from(b)
        assert a.dump_sparse() == before


# Strategies for EventCounters: small alphabets keep Counter overlap
# (the interesting case) likely.
_keys = st.sampled_from(["MOVL", "ADDL2", "BEQL", "(R1)", "disp(PC)", "literal"])
_counters = st.dictionaries(_keys, st.integers(min_value=1, max_value=1 << 30), max_size=6)
_scalars = st.integers(min_value=0, max_value=1 << 40)


@st.composite
def event_counters(draw):
    events = EventCounters()
    for name in events.__dataclass_fields__:
        if isinstance(getattr(events, name), Counter):
            setattr(events, name, Counter(draw(_counters)))
        else:
            setattr(events, name, draw(_scalars))
    return events


class TestEventCounterMergeFuzz:
    @settings(max_examples=100, deadline=None)
    @given(baseline=event_counters(), delta=event_counters())
    def test_minus_inverts_merge(self, baseline, delta):
        merged = deepcopy(baseline)
        merged.merge_from(delta)
        assert merged.minus(baseline) == delta

    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(event_counters(), min_size=1, max_size=4))
    def test_merging_shard_deltas_reconstructs_the_total(self, parts):
        total = EventCounters()
        for part in parts:
            total.merge_from(part)
        assert total.instructions == sum(p.instructions for p in parts)
        model = Counter()
        for part in parts:
            model.update(part.opcode_counts)
        assert total.opcode_counts == model

    def test_minus_preserves_first_occurrence_key_order(self):
        # Serialized output is order-sensitive (JSON dicts); the delta
        # must list keys in the full run's first-occurrence order, not
        # sorted or baseline-relative order.
        baseline = EventCounters(opcode_counts=Counter({"MOVL": 2, "BEQL": 1}))
        current = deepcopy(baseline)
        current.opcode_counts["ADDL2"] = 5
        current.opcode_counts["MOVL"] += 3
        delta = current.minus(baseline)
        assert list(delta.opcode_counts) == ["MOVL", "ADDL2"]
        assert delta.opcode_counts == Counter({"MOVL": 3, "ADDL2": 5})

    def test_minus_drops_unchanged_keys(self):
        baseline = EventCounters(opcode_counts=Counter({"MOVL": 2}))
        delta = deepcopy(baseline).minus(baseline)
        assert delta.opcode_counts == Counter()
        assert delta.instructions == 0

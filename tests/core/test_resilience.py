"""Unit tests for the resilience policy and failure-report data model."""

import pytest

from repro.core.resilience import (
    FailureReport,
    ResiliencePolicy,
    RetryPolicy,
    SpecFailure,
    SweepResult,
)
from repro.obs.metrics import MetricsRegistry, resilience_counters


class TestRetryPolicy:
    def test_no_backoff_before_any_failure(self):
        assert RetryPolicy().backoff(0) == 0.0

    def test_exponential_growth(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=60.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_capped_at_backoff_max(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0, backoff_max=2.5)
        assert policy.backoff(5) == 2.5

    def test_default_is_fail_fast(self):
        # One attempt = the engine's historical behaviour.
        assert RetryPolicy().max_attempts == 1


class TestResiliencePolicy:
    def test_from_options_counts_retries_as_extra_attempts(self):
        policy = ResiliencePolicy.from_options(retries=2)
        assert policy.retry.max_attempts == 3

    def test_negative_retries_clamp_to_one_attempt(self):
        assert ResiliencePolicy.from_options(retries=-5).retry.max_attempts == 1

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            ResiliencePolicy(on_error="ignore")

    def test_record_report_feeds_metrics(self):
        registry = resilience_counters(MetricsRegistry())
        policy = ResiliencePolicy(metrics=registry)
        report = FailureReport(
            total=4,
            completed=["a", "b"],
            failures=[
                SpecFailure(name="c", index=2, attempts=3, kind="error", error="boom")
            ],
            retries=5,
            timeouts=1,
            pool_respawns=2,
            degraded=True,
        )
        policy.record_report(report)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.retries"] == 5
        assert snapshot["counters"]["engine.spec_timeouts"] == 1
        assert snapshot["counters"]["engine.pool_respawns"] == 2
        assert snapshot["counters"]["engine.spec_failures"] == 1
        assert snapshot["gauges"]["engine.degraded"] == 1


class TestFailureReport:
    def test_ok_semantics(self):
        assert FailureReport(total=3, completed=["a", "b", "c"]).ok
        assert not FailureReport(
            total=1,
            failures=[
                SpecFailure(name="x", index=0, attempts=1, kind="error", error="e")
            ],
        ).ok
        assert not FailureReport(total=1, interrupted=True).ok

    def test_save_load_roundtrip(self, tmp_path):
        report = FailureReport(
            total=3,
            completed=["a"],
            failures=[
                SpecFailure(
                    name="b",
                    index=1,
                    attempts=2,
                    kind="timeout",
                    error="too slow",
                    worker_traceback="Traceback ...",
                )
            ],
            retries=1,
            timeouts=1,
            interrupted=True,
        )
        path = report.save(str(tmp_path / "report.json"))
        again = FailureReport.load(path)
        assert again == report

    def test_summary_mentions_everything(self):
        report = FailureReport(
            total=5,
            completed=["a", "b", "c"],
            failures=[
                SpecFailure(name="d", index=3, attempts=2, kind="error", error="e")
            ],
            retries=2,
            timeouts=1,
            pool_respawns=1,
            degraded=True,
            interrupted=True,
        )
        text = report.summary()
        for fragment in (
            "3/5 completed",
            "1 failed",
            "2 retries",
            "1 timeouts",
            "1 pool respawns",
            "degraded",
            "interrupted",
        ):
            assert fragment in text


class TestSweepResult:
    def test_results_filters_failed_slots(self):
        sweep = SweepResult(
            runs=["run-a", None, "run-c"],
            report=FailureReport(total=3),
        )
        assert sweep.results == ["run-a", "run-c"]

"""The parallel experiment engine: specs, configs, fan-out, determinism."""

import pickle

import pytest

from repro.core.engine import (
    EngineError,
    EngineRun,
    MachineConfig,
    ProgressEvent,
    RunSpec,
    execute_spec,
    execute_spec_sharded,
    parallel_map,
    run_specs,
    shard_boundaries,
)
from repro.core.histogram_io import result_to_json
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780

SMALL = dict(instructions=600, warmup_instructions=150)


class TestMachineConfig:
    def test_baseline_config_changes_nothing(self):
        machine = VAX780(monitor=UPCMonitor.build())
        cache, tb, wb = machine.memory.cache, machine.memory.tb, machine.memory.write_buffer
        MachineConfig().apply(machine)
        assert machine.memory.cache is cache
        assert machine.memory.tb is tb
        assert machine.memory.write_buffer is wb

    def test_overrides_replace_components(self):
        machine = VAX780(monitor=UPCMonitor.build())
        config = MachineConfig(
            cache_size_bytes=2 * 1024,
            tb_half_entries=16,
            wb_drain_cycles=12,
            decode_overlap=True,
            float_slowdown=3,
        )
        config.apply(machine)
        cache = machine.memory.cache
        assert cache.sets * cache.ways * cache.block_size == 2 * 1024
        assert machine.memory.tb.half_entries == 16
        assert machine.memory.write_buffer.drain_cycles == 12
        assert machine.ebox.decode_overlap is True
        assert machine.ebox.float_slowdown == 3

    def test_describe(self):
        assert MachineConfig().describe() == "baseline"
        assert "cache=2KB" in MachineConfig(cache_size_bytes=2048).describe()
        assert "tb=16+16" in MachineConfig(tb_half_entries=16).describe()

    def test_config_and_spec_pickle(self):
        # Specs cross the process-pool boundary; this is the contract.
        spec = RunSpec(
            workload="scientific", config=MachineConfig(tb_half_entries=32)
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestRunSpec:
    def test_name_defaults_to_workload(self):
        assert RunSpec(workload="scientific").name == "scientific"

    def test_name_reflects_config_and_label(self):
        spec = RunSpec(workload="scientific", config=MachineConfig(tb_half_entries=16))
        assert spec.name == "scientific[tb=16+16]"
        assert RunSpec(workload="scientific", label="mine").name == "mine"


class TestExecuteSpec:
    def test_payload_shape(self):
        run = execute_spec(RunSpec(workload="timesharing_light", **SMALL))
        assert isinstance(run, EngineRun)
        assert run.result.instructions >= SMALL["instructions"]
        assert run.wall_seconds > 0
        counts, stalled = run.histogram
        # The sparse dump carries the same cycle mass the reduction saw.
        assert sum(counts.values()) + sum(stalled.values()) == int(
            run.result.reduction.total_cycles
        )

    def test_payload_carries_manifest_and_metrics(self):
        spec = RunSpec(workload="timesharing_light", **SMALL)
        run = execute_spec(spec)
        manifest = run.manifest
        assert manifest is not None
        assert manifest.spec_name == spec.name
        assert manifest.workload == "timesharing_light"
        assert manifest.wall_seconds > 0
        assert manifest.instructions_measured == run.result.instructions
        assert manifest.cycles_measured == run.result.stats.cycles
        metrics = run.metrics
        assert metrics["histograms"]["phase.measure.seconds"]["count"] == 1
        assert metrics["gauges"]["speed.instructions_per_second"] > 0

    def test_config_changes_the_measurement(self):
        base = execute_spec(RunSpec(workload="timesharing_light", **SMALL))
        tiny_tb = execute_spec(
            RunSpec(
                workload="timesharing_light",
                config=MachineConfig(tb_half_entries=8),
                **SMALL
            )
        )
        assert tiny_tb.result.stats.tb_misses > base.result.stats.tb_misses


class TestRunSpecs:
    def test_sequential_matches_parallel_bit_for_bit(self):
        specs = [
            RunSpec(workload="timesharing_light", **SMALL),
            RunSpec(workload="scientific", **SMALL),
        ]
        sequential = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        for seq, par in zip(sequential, parallel):
            assert seq.histogram == par.histogram
            assert result_to_json(seq.result) == result_to_json(par.result)

    def test_order_is_preserved(self):
        specs = [
            RunSpec(workload=name, **SMALL)
            for name in ("scientific", "timesharing_light")
        ]
        runs = run_specs(specs, jobs=2)
        assert [run.spec.workload for run in runs] == [
            "scientific",
            "timesharing_light",
        ]

    def test_seed_offset_perturbs_the_run(self):
        # seed_offset reseeds the kernel's device-jitter streams, so the
        # run must be long enough for device timers to actually fire.
        long = dict(instructions=2_500, warmup_instructions=500)
        base, shifted = run_specs(
            [
                RunSpec(workload="timesharing_light", **long),
                RunSpec(workload="timesharing_light", seed_offset=17, **long),
            ],
            jobs=1,
        )
        assert base.histogram != shifted.histogram


class TestProgressAndFailures:
    def test_progress_events_sequential(self):
        events = []
        specs = [
            RunSpec(workload="timesharing_light", **SMALL),
            RunSpec(workload="scientific", **SMALL),
        ]
        run_specs(specs, jobs=1, progress=events.append)
        assert [(e.kind, e.name) for e in events if e.kind == "start"] == [
            ("start", "timesharing_light"),
            ("start", "scientific"),
        ]
        done = [e for e in events if e.kind == "done"]
        assert {e.name for e in done} == {"timesharing_light", "scientific"}
        assert all(e.wall_seconds > 0 for e in done)
        assert all(e.total == 2 for e in events)

    def test_progress_events_parallel(self):
        events = []
        specs = [
            RunSpec(workload="timesharing_light", **SMALL),
            RunSpec(workload="scientific", **SMALL),
        ]
        run_specs(specs, jobs=2, progress=events.append)
        kinds = [e.kind for e in events]
        assert kinds.count("start") == 2
        assert kinds.count("done") == 2

    def test_failing_spec_names_itself_sequential(self):
        specs = [
            RunSpec(workload="timesharing_light", **SMALL),
            RunSpec(workload="no_such_workload", label="doomed", **SMALL),
        ]
        with pytest.raises(EngineError) as excinfo:
            run_specs(specs, jobs=1)
        assert excinfo.value.spec_name == "doomed"
        assert "no_such_workload" in excinfo.value.worker_traceback
        assert "doomed" in str(excinfo.value)

    def test_failing_spec_names_itself_parallel(self):
        events = []
        specs = [
            RunSpec(workload="no_such_workload", label="doomed", **SMALL),
            RunSpec(workload="timesharing_light", **SMALL),
        ]
        with pytest.raises(EngineError) as excinfo:
            run_specs(specs, jobs=2, progress=events.append)
        assert excinfo.value.spec_name == "doomed"
        # The worker-side traceback crossed the pickle boundary intact.
        assert "no_such_workload" in excinfo.value.worker_traceback
        assert "Traceback" in excinfo.value.worker_traceback
        errored = [e for e in events if e.kind == "error"]
        assert len(errored) == 1 and errored[0].name == "doomed"

    def test_progress_event_is_frozen(self):
        event = ProgressEvent("start", 0, 1, "x")
        with pytest.raises(Exception):
            event.kind = "done"


def _square(value):
    return value * value


class TestParallelMap:
    def test_sequential_and_parallel_agree(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=1) == [v * v for v in items]
        assert parallel_map(_square, items, jobs=3) == [v * v for v in items]

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]


class TestShardBoundaries:
    def test_one_shard_is_the_whole_span(self):
        assert shard_boundaries(600, 1) == [0, 600]

    def test_even_split(self):
        assert shard_boundaries(600, 4) == [0, 150, 300, 450, 600]

    def test_uneven_split_covers_everything(self):
        bounds = shard_boundaries(10, 3)
        assert bounds == [0, 3, 6, 10]
        assert sum(b - a for a, b in zip(bounds, bounds[1:])) == 10

    def test_aligned_shard_counts_share_boundaries(self):
        # i*N//K means K=2 boundaries are a subset of K=4's whenever
        # 2 divides 4 — the property the snapshot cache reuse rests on.
        assert set(shard_boundaries(600, 2)) <= set(shard_boundaries(600, 4))

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_boundaries(600, 0)


@pytest.fixture(scope="module")
def reference_run():
    """The uninterrupted single-shard reference every sharded variant
    must reproduce byte for byte."""
    return execute_spec(RunSpec(workload="timesharing_light", **SMALL))


def _assert_bit_identical(sharded, reference):
    assert sharded.histogram == reference.histogram
    assert result_to_json(sharded.result) == result_to_json(reference.result)
    assert sharded.result.events == reference.result.events
    assert sharded.result.stats == reference.result.stats


class TestExecuteSpecSharded:
    def test_three_shards_no_cache_bit_identical(self, reference_run):
        spec = RunSpec(workload="timesharing_light", **SMALL)
        sharded = execute_spec_sharded(spec, shards=3)
        _assert_bit_identical(sharded, reference_run)
        assert sharded.shard_count == 3
        assert sharded.shards_from_cache == 0
        assert sharded.manifest.shards == 3
        assert sharded.manifest.shards_from_cache == 0

    def test_single_shard_is_a_passthrough(self, reference_run):
        spec = RunSpec(workload="timesharing_light", **SMALL)
        run = execute_spec_sharded(spec, shards=1)
        _assert_bit_identical(run, reference_run)
        assert run.shard_count == 1

    def test_shards_clamped_to_instruction_budget(self):
        spec = RunSpec(workload="timesharing_light", instructions=3, warmup_instructions=50)
        run = execute_spec_sharded(spec, shards=100)
        assert run.shard_count == 3

    def test_cold_then_warm_cache(self, reference_run, tmp_path):
        from repro.core.runcache import RunCache

        spec = RunSpec(workload="timesharing_light", **SMALL)
        cache = RunCache(str(tmp_path / "cache"))

        cold = execute_spec_sharded(spec, shards=4, cache=cache)
        _assert_bit_identical(cold, reference_run)
        assert cold.shards_from_cache == 0
        assert cache.puts > 0

        warm = execute_spec_sharded(spec, shards=4, cache=cache)
        _assert_bit_identical(warm, reference_run)
        assert warm.shards_from_cache == 4
        assert warm.manifest.shards_from_cache == 4

    def test_different_shard_count_reuses_boundary_snapshots(
        self, reference_run, tmp_path, monkeypatch
    ):
        # K=4 banks snapshots at 0/150/300/450; a later K=2 run of the
        # same spec shares the 0 and 300 boundaries, so both of its
        # shards restore from cache instead of re-simulating from boot —
        # and the merge is still bit-identical.  Structural proof: with
        # every start snapshot cached, the engine must never build a
        # machine from scratch, so prepare_workload is poisoned.
        import repro.core.engine as engine_module
        from repro.core.runcache import RunCache

        spec = RunSpec(workload="timesharing_light", **SMALL)
        cache = RunCache(str(tmp_path / "cache"))
        execute_spec_sharded(spec, shards=4, cache=cache)

        def _must_not_rebuild(*args, **kwargs):
            raise AssertionError(
                "boundary snapshots were cached; rebuilding from boot "
                "means the cache was bypassed"
            )

        monkeypatch.setattr(engine_module, "prepare_workload", _must_not_rebuild)
        halved = execute_spec_sharded(spec, shards=2, cache=cache)
        _assert_bit_identical(halved, reference_run)
        assert halved.shard_count == 2

    def test_sharded_progress_events_name_the_shards(self):
        events = []
        spec = RunSpec(workload="timesharing_light", **SMALL)
        execute_spec_sharded(spec, shards=3, progress=events.append)
        names = [e.name for e in events if e.kind == "start"]
        assert names == [
            "timesharing_light[shard 1/3]",
            "timesharing_light[shard 2/3]",
            "timesharing_light[shard 3/3]",
        ]
        done = [e for e in events if e.kind == "done"]
        assert len(done) == 3

    def test_cached_manifest_still_reflects_this_run(self, tmp_path):
        # Replayed shards must not leak the cold run's wall-clock or
        # identity into the warm manifest.
        from repro.core.runcache import RunCache

        spec = RunSpec(workload="timesharing_light", **SMALL)
        cache = RunCache(str(tmp_path / "cache"))
        cold = execute_spec_sharded(spec, shards=2, cache=cache)
        warm = execute_spec_sharded(spec, shards=2, cache=cache)
        assert warm.manifest.config_hash == cold.manifest.config_hash
        assert warm.manifest.started_at >= cold.manifest.started_at

"""Engine fault-tolerance tests, driven by the injection harness.

Every recovery scenario ends with the same assertion: the recovered
sweep's payloads are bit-identical to an undisturbed run's.  Retries,
pool respawns, timeouts, degradation to in-process execution and the
sharded repair chain are all exercised against deterministically
injected faults from :mod:`repro.testing.faults`.
"""

import os

import pytest

from repro.core.engine import (
    EngineError,
    RunSpec,
    execute_spec_sharded,
    run_specs,
)
from repro.core.resilience import (
    ResiliencePolicy,
    RetryPolicy,
    SweepInterrupted,
    SweepResult,
)
from repro.core.runcache import RunCache
from repro.obs.metrics import MetricsRegistry, resilience_counters
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultRule

SMALL = dict(instructions=600, warmup_instructions=150)

SPECS = [
    RunSpec(workload="timesharing_light", **SMALL),
    RunSpec(workload="scientific", **SMALL),
]


@pytest.fixture(autouse=True)
def disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def golden():
    """The undisturbed reference payloads every recovery is judged by."""
    runs = run_specs(SPECS, jobs=1)
    return [(run.histogram, run.result.stats, run.result.events) for run in runs]


def payloads_of(runs):
    return [(run.histogram, run.result.stats, run.result.events) for run in runs]


def plan_with(tmp_path, *rules, seed=0):
    return FaultPlan(rules=list(rules), seed=seed, state_dir=str(tmp_path / "faults"))


def policy_with(retries=1, **kwargs):
    kwargs.setdefault("metrics", resilience_counters(MetricsRegistry()))
    return ResiliencePolicy(retry=RetryPolicy(max_attempts=retries + 1), **kwargs)


def counter(policy, name):
    return policy.metrics.snapshot()["counters"][name]


class TestRetries:
    def test_sequential_retry_recovers_bit_identical(self, tmp_path, golden):
        # times budgets count per (site, key): scope the rule to one
        # spec so exactly one first attempt is lost.
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="raise", match="scientific", times=1),
        )
        policy = policy_with(retries=1)
        events = []
        with plan.active():
            runs = run_specs(
                SPECS, jobs=1, progress=events.append, policy=policy
            )
        assert payloads_of(runs) == golden
        # exactly one spec lost its first attempt, and the manifest says so
        assert sorted(run.manifest.attempts for run in runs) == [1, 2]
        assert counter(policy, "engine.retries") == 1
        assert [e.kind for e in events].count("retry") == 1
        assert "error" not in [e.kind for e in events]

    def test_parallel_retry_recovers_bit_identical(self, tmp_path, golden):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="raise", match="scientific", times=1),
        )
        policy = policy_with(retries=1)
        with plan.active():
            runs = run_specs(SPECS, jobs=2, policy=policy)
        assert payloads_of(runs) == golden
        by_name = {run.spec.name: run.manifest.attempts for run in runs}
        assert by_name["scientific"] == 2
        assert by_name["timesharing_light"] == 1
        assert counter(policy, "engine.retries") == 1

    def test_retry_budget_exhausts_into_engine_error(self, tmp_path):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="raise", match="scientific", times=-1),
        )
        policy = policy_with(retries=1)
        with plan.active():
            with pytest.raises(EngineError) as excinfo:
                run_specs(SPECS, jobs=2, policy=policy)
        assert excinfo.value.spec_name == "scientific"
        # the worker-side stack survives: file and line of the raising site
        assert 'File "' in excinfo.value.worker_traceback
        assert "faults.py" in excinfo.value.worker_traceback


class TestPoolCrashes:
    def test_crashed_worker_is_respawned_and_requeued(self, tmp_path, golden):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="crash", match="scientific", times=1),
        )
        # the crash charges one attempt to *every* in-flight spec
        policy = policy_with(retries=1)
        with plan.active():
            runs = run_specs(SPECS, jobs=2, policy=policy)
        assert payloads_of(runs) == golden
        assert counter(policy, "engine.pool_respawns") >= 1

    def test_repeated_crashes_degrade_to_in_process(self, tmp_path, golden):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="crash", match="scientific", times=3),
        )
        policy = policy_with(
            retries=5, max_pool_respawns=1, on_error="collect"
        )
        with plan.active():
            sweep = run_specs(SPECS, jobs=2, policy=policy)
        assert isinstance(sweep, SweepResult)
        assert sweep.report.ok
        assert sweep.report.degraded
        assert payloads_of(sweep.runs) == golden
        assert counter(policy, "engine.pool_respawns") == 2


class TestTimeouts:
    def test_stuck_worker_times_out_and_retry_recovers(self, tmp_path, golden):
        plan = plan_with(
            tmp_path,
            FaultRule(
                site="worker",
                action="hang",
                match="scientific",
                times=1,
                seconds=8.0,
            ),
        )
        policy = policy_with(retries=1, spec_timeout=0.8)
        with plan.active():
            runs = run_specs(SPECS, jobs=2, policy=policy)
        assert payloads_of(runs) == golden
        assert counter(policy, "engine.spec_timeouts") >= 1
        assert counter(policy, "engine.pool_respawns") >= 1


class TestCollectMode:
    def test_partial_results_plus_structured_report(self, tmp_path, golden):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="raise", match="scientific", times=-1),
        )
        policy = policy_with(retries=1, on_error="collect")
        with plan.active():
            sweep = run_specs(SPECS, jobs=1, policy=policy)
        assert isinstance(sweep, SweepResult)
        assert sweep.runs[1] is None
        assert payloads_of([sweep.runs[0]]) == golden[:1]
        (failure,) = sweep.report.failures
        assert failure.name == "scientific"
        assert failure.attempts == 2
        assert 'File "' in failure.worker_traceback
        assert sweep.report.completed == ["timesharing_light"]
        assert counter(policy, "engine.spec_failures") == 1


class TestInterrupts:
    def _interrupt_after_first_done(self):
        state = {"done": 0}

        def notify(event):
            if event.kind == "done":
                state["done"] += 1
                if state["done"] == 1:
                    raise KeyboardInterrupt()

        return notify

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_interrupt_persists_resumable_report(self, tmp_path, jobs):
        report_path = str(tmp_path / "interrupted.json")
        policy = policy_with(retries=0, interrupt_report_path=report_path)
        with pytest.raises(KeyboardInterrupt) as excinfo:
            run_specs(
                SPECS,
                jobs=jobs,
                progress=self._interrupt_after_first_done(),
                policy=policy,
            )
        assert isinstance(excinfo.value, SweepInterrupted)
        report = excinfo.value.report
        assert report.interrupted
        assert len(report.completed) >= 1
        assert os.path.exists(report_path)
        from repro.core.resilience import FailureReport

        persisted = FailureReport.load(report_path)
        assert persisted.interrupted
        assert persisted.completed == report.completed


class TestShardedFailureDiagnostics:
    def test_engine_error_carries_shard_status_map(self, tmp_path):
        # Measurement faulted at every site, repair included: the error
        # must say which shards were filled, which failed, and why.
        spec = RunSpec(workload="timesharing_light", **SMALL)
        cache = RunCache(str(tmp_path / "cache"))
        plan = plan_with(
            tmp_path, FaultRule(site="shard.measure", action="raise", times=-1)
        )
        with plan.active():
            with pytest.raises(EngineError) as excinfo:
                execute_spec_sharded(spec, shards=3, jobs=1, cache=cache)
        message = str(excinfo.value)
        assert "per-shard status" in message
        assert "shard 1/3" in message and "shard 3/3" in message
        assert "unfilled" in message
        assert "repair-chain traceback" in message
        assert 'File "' in message and "faults.py" in message

    def test_worker_traceback_and_cached_status_in_error(self, tmp_path):
        from repro.core.engine import _shard_cache_keys, shard_boundaries

        spec = RunSpec(workload="timesharing_light", **SMALL)
        cache = RunCache(str(tmp_path / "cache"))
        execute_spec_sharded(spec, shards=3, jobs=1, cache=cache)
        # evict one finished shard so the warm run must recompute it
        boundaries = shard_boundaries(spec.instructions, 3)
        _, shard_keys, _ = _shard_cache_keys(spec, boundaries)
        os.unlink(cache._object_path(shard_keys[1]))
        plan = plan_with(
            tmp_path,
            FaultRule(site="shard.task", action="raise", times=-1),
            FaultRule(site="shard.measure", action="raise", times=-1),
        )
        with plan.active():
            with pytest.raises(EngineError) as excinfo:
                execute_spec_sharded(
                    spec, shards=3, jobs=2, cache=RunCache(str(tmp_path / "cache"))
                )
        message = str(excinfo.value)
        assert "from-cache" in message
        assert "worker failed" in message
        assert "worker traceback (shard 2/3)" in message
        assert "faults.py" in message

"""Regression tests for EngineError's round-trips.

The historical bug: ``EngineError`` takes constructor extras (spec
name, worker traceback, shard status), but the default exception
pickling contract reconstructs from ``args`` — which holds the
*formatted message*, one string, so unpickling raised ``TypeError``
inside the process-pool plumbing and the original failure was lost.
``__reduce__`` now re-ships the constructor arguments, and the JSON
envelope (:meth:`to_payload` / :meth:`from_payload`) gives the service
API the same guarantee.
"""

import pickle

import pytest

from repro.core.engine import EngineError


def _specimen():
    return EngineError(
        "educational[cache=4KB]",
        "Traceback (most recent call last):\n  boom\n",
        shard_status={0: "computed", 1: "worker failed: boom", 2: "unfilled"},
    )


class TestPickleRoundTrip:
    def test_survives_pickle(self):
        error = _specimen()
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, EngineError)
        assert clone.spec_name == error.spec_name
        assert clone.worker_traceback == error.worker_traceback
        assert clone.shard_status == error.shard_status
        assert str(clone) == str(error)
        assert clone.args == error.args

    def test_survives_pickle_without_shard_status(self):
        clone = pickle.loads(pickle.dumps(EngineError("w", "tb")))
        assert clone.spec_name == "w"
        assert clone.worker_traceback == "tb"
        assert clone.shard_status == {}

    @pytest.mark.parametrize("protocol", range(pickle.HIGHEST_PROTOCOL + 1))
    def test_every_protocol(self, protocol):
        clone = pickle.loads(pickle.dumps(_specimen(), protocol))
        assert clone.shard_status[1] == "worker failed: boom"

    def test_reconstructible_from_args_alone(self):
        # The core of the old bug: type(error)(*error.args) must not
        # blow up — that is exactly what naive pickling does.
        error = _specimen()
        rebuilt = type(error)(*error.__reduce__()[1])
        assert rebuilt.spec_name == error.spec_name


class TestJsonEnvelope:
    def test_payload_round_trip(self):
        error = _specimen()
        payload = error.to_payload()
        # The envelope is pure JSON: string keys everywhere.
        import json

        json.loads(json.dumps(payload))
        clone = EngineError.from_payload(json.loads(json.dumps(payload)))
        assert clone.spec_name == error.spec_name
        assert clone.worker_traceback == error.worker_traceback
        assert clone.shard_status == error.shard_status  # int keys restored
        assert clone.args  # .args never lost

    def test_envelope_type_tag(self):
        assert _specimen().to_payload()["type"] == "EngineError"

    def test_api_envelope_dispatch(self):
        from repro.service import api

        engine_error = api.error_from_envelope(api.error_envelope(_specimen()))
        assert isinstance(engine_error, EngineError)
        assert engine_error.shard_status == {0: "computed", 1: "worker failed: boom", 2: "unfilled"}
        generic = api.error_from_envelope(api.error_envelope(ValueError("nope")))
        assert isinstance(generic, RuntimeError)
        assert "nope" in str(generic)

"""Unit tests for the versioned snapshot wire format and capture/restore.

The end-to-end equivalence claims live in
``tests/integration/test_snapshot_equivalence.py``; here we pin down the
format itself — framing, versioning, digest checking — and the contract
details of :func:`capture`/:func:`restore` (tracer handling, header-only
reads, loud failures on every malformed-blob shape).
"""

import json
import struct
import zlib

import pytest

from repro.core.experiment import prepare_workload
from repro.core.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    MachineSnapshot,
    SnapshotError,
    SnapshotFormatError,
    capture,
    restore,
)


@pytest.fixture(scope="module")
def booted_snapshot():
    kernel, _ = prepare_workload("educational")
    kernel.run(max_instructions=200)
    return capture(kernel, label="unit-test")


class TestWireFormat:
    def test_roundtrip_preserves_everything(self, booted_snapshot):
        blob = booted_snapshot.to_bytes()
        parsed = MachineSnapshot.from_bytes(blob)
        assert parsed.payload == booted_snapshot.payload
        assert parsed.digest == booted_snapshot.digest
        assert parsed.meta == booted_snapshot.meta
        assert parsed.version == SNAPSHOT_VERSION

    def test_blob_starts_with_magic(self, booted_snapshot):
        assert booted_snapshot.to_bytes().startswith(SNAPSHOT_MAGIC)

    def test_save_load_roundtrip(self, booted_snapshot, tmp_path):
        path = str(tmp_path / "machine.snap")
        booted_snapshot.save(path)
        loaded = MachineSnapshot.load(path)
        assert loaded == booted_snapshot

    def test_read_header_never_unpickles(self, booted_snapshot, tmp_path):
        # Corrupt the payload but keep the frame intact: a header read
        # must still succeed because it never touches the pickle.
        broken = MachineSnapshot(
            payload=b"\x00not a pickle",
            digest=booted_snapshot.digest,
            meta=booted_snapshot.meta,
        )
        path = str(tmp_path / "broken.snap")
        broken.save(path)
        header = MachineSnapshot.read_header(path)
        assert header["version"] == SNAPSHOT_VERSION
        assert header["digest"] == booted_snapshot.digest
        assert header["meta"]["label"] == "unit-test"
        assert header["compressed_bytes"] == len(broken.payload)

    def test_meta_is_json_safe(self, booted_snapshot):
        # The header must serialize without repr() fallbacks: meta is
        # the machine-readable face of the snapshot.
        encoded = json.dumps(booted_snapshot.meta, sort_keys=True)
        assert json.loads(encoded) == booted_snapshot.meta
        assert booted_snapshot.meta["cycle_count"] > 0
        assert booted_snapshot.meta["raw_bytes"] > 0


class TestMalformedBlobs:
    def test_truncated_blob(self):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            MachineSnapshot.from_bytes(b"REPRO")

    def test_wrong_magic(self):
        blob = b"NOTASNAP" + struct.pack(">I", 2) + b"{}"
        with pytest.raises(SnapshotFormatError, match="not a machine snapshot"):
            MachineSnapshot.from_bytes(blob)

    def test_implausible_header_length(self):
        blob = SNAPSHOT_MAGIC + struct.pack(">I", 1 << 30) + b"{}"
        with pytest.raises(SnapshotFormatError, match="header length"):
            MachineSnapshot.from_bytes(blob)

    def test_header_not_json(self):
        header = b"not json!!"
        blob = SNAPSHOT_MAGIC + struct.pack(">I", len(header)) + header
        with pytest.raises(SnapshotFormatError, match="not valid JSON"):
            MachineSnapshot.from_bytes(blob)

    def test_unsupported_version(self, booted_snapshot):
        blob = MachineSnapshot(
            payload=booted_snapshot.payload,
            digest=booted_snapshot.digest,
            version=SNAPSHOT_VERSION + 1,
        ).to_bytes()
        with pytest.raises(SnapshotFormatError, match="version {}".format(SNAPSHOT_VERSION + 1)):
            MachineSnapshot.from_bytes(blob)

    def test_unsupported_codec(self, booted_snapshot):
        header = json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "codec": "marshal+lz4",
                "digest": booted_snapshot.digest,
                "meta": {},
            }
        ).encode()
        blob = SNAPSHOT_MAGIC + struct.pack(">I", len(header)) + header
        with pytest.raises(SnapshotFormatError, match="codec"):
            MachineSnapshot.from_bytes(blob)


class TestRestoreIntegrity:
    def test_digest_mismatch_refuses_restore(self, booted_snapshot):
        tampered = MachineSnapshot(
            payload=zlib.compress(b"attacker-controlled bytes"),
            digest=booted_snapshot.digest,
            meta=booted_snapshot.meta,
        )
        with pytest.raises(SnapshotError, match="digest mismatch"):
            restore(tampered)

    def test_garbage_payload_does_not_decompress(self, booted_snapshot):
        garbage = MachineSnapshot(payload=b"\xff\xfe\xfd", digest=booted_snapshot.digest)
        with pytest.raises(SnapshotFormatError, match="does not decompress"):
            restore(garbage)

    def test_restore_reattaches_tracer(self, booted_snapshot):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        kernel = restore(booted_snapshot, tracer=tracer)
        assert kernel.machine.tracer is tracer
        assert kernel.machine.memory.tracer is tracer
        # and the restored machine actually runs
        before = kernel.ebox.cycle_count
        kernel.run(max_instructions=50)
        assert kernel.ebox.cycle_count > before

    def test_restore_without_tracer_detaches(self, booted_snapshot):
        kernel = restore(booted_snapshot)
        assert kernel.machine.tracer is None


class TestCaptureContract:
    def test_capture_reattaches_the_live_tracer(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        kernel, _ = prepare_workload("educational", tracer=tracer)
        kernel.run(max_instructions=100)
        capture(kernel)
        # the original keeps its tracer wired after the dump
        assert kernel.machine.tracer is tracer
        assert kernel.machine.memory.tracer is tracer

    def test_extra_meta_and_state_summary(self, booted_snapshot):
        kernel = restore(booted_snapshot)
        snap = capture(kernel, label="with-extras", extra_meta={"shard": 3})
        assert snap.meta["label"] == "with-extras"
        assert snap.meta["shard"] == 3
        assert snap.meta["cycle_count"] == kernel.ebox.cycle_count
        assert isinstance(snap.meta["processes"], list)

    def test_snapshot_is_compressed(self, booted_snapshot):
        # 8 MB of mostly-zero physical memory must not dominate the blob.
        assert booted_snapshot.compressed_bytes < booted_snapshot.meta["raw_bytes"]
        assert booted_snapshot.compressed_bytes < 4 * 1024 * 1024

"""Tests for result serialization (save a measurement, re-analyse later)."""

import pytest

from repro.core import tables
from repro.core.histogram_io import (
    histogram_from_dict,
    histogram_to_dict,
    result_from_json,
    result_to_json,
)
from repro.core.monitor import HistogramBoard


@pytest.fixture(scope="module")
def small_run():
    """A small measured workload, with its raw board."""
    from repro.core.experiment import run_workload

    # run_workload does not expose the board, so re-run the plumbing here.
    from repro.core.monitor import UPCMonitor
    from repro.core.experiment import MachineStats, result_from_machine
    from repro.cpu import VAX780
    from repro.vms import VMSKernel
    from repro.workloads import generate_program, profile_by_name

    profile = profile_by_name("educational")
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor)
    kernel = VMSKernel(machine)
    program = generate_program(profile, 0)
    process = kernel.create_process("p", program.code, program.code_origin)
    kernel.load_into_process(process, program.data_origin, program.data)
    kernel.boot()
    kernel.run(max_instructions=500)
    baseline = MachineStats.from_machine(machine)
    kernel.start_measurement()
    kernel.run(max_instructions=2_000)
    kernel.stop_measurement()
    result = result_from_machine(machine, monitor, name="io-test", stats_baseline=baseline)
    return result, monitor.board


class TestHistogramRoundTrip:
    def test_board_round_trip(self, small_run):
        _, board = small_run
        payload = histogram_to_dict(board)
        rebuilt = histogram_from_dict(payload)
        assert rebuilt.dump() == board.dump()

    def test_sparse_encoding(self, small_run):
        _, board = small_run
        payload = histogram_to_dict(board)
        counts, _ = board.dump()
        nonzero = sum(1 for c in counts if c)
        assert len(payload["counts"]) == nonzero

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            histogram_from_dict({"version": 99, "buckets": 16, "counts": {}, "stalled": {}})


class TestResultRoundTrip:
    def test_without_raw_histogram(self, small_run):
        result, _ = small_run
        text = result_to_json(result)
        rebuilt = result_from_json(text)
        assert rebuilt.instructions == result.instructions
        assert rebuilt.cpi == pytest.approx(result.cpi)
        assert rebuilt.events.opcode_counts == result.events.opcode_counts
        assert rebuilt.stats.tb_misses == result.stats.tb_misses

    def test_with_raw_histogram_re_reduces(self, small_run):
        result, board = small_run
        text = result_to_json(result, board=board)
        rebuilt = result_from_json(text)
        # Re-reduction from the raw banks reproduces the matrix exactly.
        for row, columns in result.reduction.matrix.items():
            for column, cycles in columns.items():
                assert rebuilt.reduction.matrix[row][column] == pytest.approx(cycles)

    def test_tables_run_against_reloaded_result(self, small_run):
        result, _ = small_run
        rebuilt = result_from_json(result_to_json(result))
        fresh = tables.table1(rebuilt)
        original = tables.table1(result)
        for group in original:
            assert fresh[group] == pytest.approx(original[group])
        assert tables.table8(rebuilt)["total"]["total"] == pytest.approx(result.cpi)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            result_from_json('{"version": 42}')


class TestControlStoreListing:
    def test_listing_covers_every_address(self):
        from repro.ucode.routines import build_layout

        layout = build_layout()
        listing = layout.store.listing()
        lines = listing.splitlines()
        assert len(lines) == 1 + len(layout.store.used_addresses())
        assert "exec.movl" in listing
        assert "memmgmt.tb_miss" in listing
        assert "[patched]" in listing

"""Tests for the CLI and the report-formatting helpers."""

import pytest

from repro.cli import build_parser, main
from repro.core.paper_data import PaperValue
from repro.core.report import (
    format_comparison_row,
    format_table,
    matrix_to_text,
    ratio,
    within_factor,
)


class TestReportHelpers:
    def test_comparison_row_alignment(self):
        row = format_comparison_row("label", PaperValue(1.5), 1.4)
        assert "label" in row and "1.500" in row and "1.400" in row

    def test_provenance_marks(self):
        exact = format_comparison_row("x", PaperValue(1.0, "exact"), 1.0)
        derived = format_comparison_row("x", PaperValue(1.0, "derived"), 1.0)
        reconstructed = format_comparison_row("x", PaperValue(1.0, "reconstructed"), 1.0)
        assert "~" in derived and "?" in reconstructed
        assert "~" not in exact and "?" not in exact

    def test_missing_paper_value(self):
        row = format_comparison_row("x", None, 2.0)
        assert "--" in row

    def test_format_table_has_header_and_rows(self):
        text = format_table("Title", [("a", PaperValue(1.0), 2.0), ("b", None, 3.0)])
        assert text.startswith("Title")
        assert "paper" in text and "measured" in text
        assert text.count("\n") >= 4

    def test_matrix_to_text(self):
        text = matrix_to_text({"r1": {"c1": 1.0, "c2": 2.0}}, ["c1", "c2"], "M")
        assert "r1" in text and "1.000" in text and "2.000" in text

    def test_ratio_and_within_factor(self):
        assert ratio(2.0, PaperValue(1.0)) == 2.0
        assert within_factor(2.0, PaperValue(1.0), 2.0)
        assert not within_factor(2.1, PaperValue(1.0), 2.0)
        assert within_factor(0.5, PaperValue(1.0), 2.0)
        assert not within_factor(0.4, PaperValue(1.0), 2.0)

    def test_within_factor_zero_paper(self):
        assert within_factor(0.0, PaperValue(0.0), 2.0)
        assert not within_factor(0.1, PaperValue(0.0), 2.0)

    def test_assertable_flag(self):
        assert PaperValue(1.0, "exact").assertable
        assert PaperValue(1.0, "derived").assertable
        assert not PaperValue(1.0, "reconstructed").assertable


class TestPaperData:
    def test_table1_sums_to_roughly_100(self):
        from repro.core.paper_data import TABLE1_GROUP_FREQUENCY

        total = sum(v.value for v in TABLE1_GROUP_FREQUENCY.values())
        assert total == pytest.approx(99.93, abs=0.2)

    def test_table8_column_totals_sum_to_cpi(self):
        from repro.core.paper_data import TABLE8_COLUMN_TOTALS, TABLE8_TOTAL_CPI

        total = sum(v.value for v in TABLE8_COLUMN_TOTALS.values())
        assert total == pytest.approx(TABLE8_TOTAL_CPI.value, abs=0.001)

    def test_table2_total_consistent(self):
        from repro.core.paper_data import TABLE2_PC_CHANGING, TABLE2_TOTAL

        class_sum = sum(
            row.percent_of_instructions.value for row in TABLE2_PC_CHANGING.values()
        )
        assert class_sum == pytest.approx(TABLE2_TOTAL.percent_of_instructions.value, abs=0.5)

    def test_table6_decomposition_consistent(self):
        from repro.core.paper_data import TABLE6_SIZE

        estimate = (
            TABLE6_SIZE["opcode_bytes"].value
            + TABLE6_SIZE["specifiers_per_instruction"].value
            * TABLE6_SIZE["specifier_size"].value
            + TABLE6_SIZE["displacements_per_instruction"].value
            * TABLE6_SIZE["displacement_size"].value
        )
        assert estimate == pytest.approx(TABLE6_SIZE["total_bytes"].value, abs=0.1)

    def test_sec42_splits_sum(self):
        from repro.core.paper_data import SEC42_CACHE_TB

        assert SEC42_CACHE_TB["cache_read_misses_per_instruction"].value == pytest.approx(
            SEC42_CACHE_TB["cache_read_misses_istream"].value
            + SEC42_CACHE_TB["cache_read_misses_dstream"].value
        )
        assert SEC42_CACHE_TB["tb_misses_per_instruction"].value == pytest.approx(
            SEC42_CACHE_TB["tb_misses_dstream"].value
            + SEC42_CACHE_TB["tb_misses_istream"].value
        )


class TestCLI:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "timesharing_light" in out and "40 users" in out

    def test_diagram(self, capsys):
        assert main(["diagram"]) == 0
        out = capsys.readouterr().out
        assert "EBOX" in out and "SBI" in out

    def test_run_small_workload(self, capsys):
        assert main(["run", "educational", "--instructions", "1200", "--warmup", "400"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out and "CPI" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

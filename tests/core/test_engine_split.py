"""The engine split: a thin facade over three real layers.

``repro.core.engine`` used to be a 1300-line monolith; it is now a
re-export facade over ``executor`` / ``cache_resolution`` /
``scheduler``.  These tests pin the split's contract: the facade stays
thin, every historical import keeps working, the layering is acyclic,
and the live ``prepare_workload`` patch seam still intercepts fresh
builds triggered anywhere in the layers.
"""

import subprocess
import sys

import repro.core.engine as engine


class TestFacadeShape:
    def test_facade_stays_thin(self):
        # The acceptance bar for the split: engine.py is a facade, not a
        # place where orchestration logic quietly reaccumulates.
        with open(engine.__file__) as handle:
            assert len(handle.readlines()) <= 300

    def test_all_exports_resolve(self):
        for name in engine.__all__:
            assert getattr(engine, name) is not None

    def test_historical_surface(self):
        # Every name the rest of the repo (and its tests) import from
        # the engine, public and private spellings alike.
        for name in (
            "EngineError", "EngineRun", "MachineConfig", "ProgressCallback",
            "ProgressEvent", "RunSpec", "ShardResult", "execute_spec",
            "execute_spec_sharded", "parallel_map", "prepare_workload",
            "run_specs", "shard_boundaries", "Scheduler",
            "_execute_shard_task", "_execute_spec_guarded",
            "_load_cached_snapshot", "_shard_cache_keys", "_store_shard",
            "_store_boundary_snapshot",
        ):
            assert hasattr(engine, name), name

    def test_layers_own_their_pieces(self):
        assert engine.execute_spec.__module__ == "repro.core.executor"
        assert engine.store_shard.__module__ == "repro.core.cache_resolution"
        assert engine.run_specs.__module__ == "repro.core.scheduler"
        assert engine.Scheduler.__module__ == "repro.core.scheduler"


class TestLayering:
    def test_layers_import_without_the_facade(self):
        # The layers must not need the facade: importing any one of them
        # in a fresh interpreter must not pull repro.core.engine in
        # (only the facade depends on the layers, never the reverse).
        for module in (
            "repro.core.executor",
            "repro.core.cache_resolution",
            "repro.core.scheduler",
        ):
            probe = (
                "import sys\n"
                "import {}\n"
                "assert 'repro.core.engine' not in sys.modules, 'cycle'\n"
            ).format(module)
            subprocess.run(
                [sys.executable, "-c", probe], check=True, timeout=120
            )

    def test_prepare_workload_seam_is_live(self, monkeypatch):
        # The sharded chain opener resolves prepare_workload through the
        # facade at call time; patching the facade must intercept it.
        calls = []
        real = engine.prepare_workload

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine, "prepare_workload", spy)
        run = engine.execute_spec_sharded(
            engine.RunSpec(
                workload="educational", instructions=600, warmup_instructions=100
            ),
            shards=2,
        )
        assert calls, "the facade seam was bypassed"
        assert run.result.instructions > 0

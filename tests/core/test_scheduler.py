"""The Scheduler front door: three-way dedupe with honest provenance.

Each unique config-hash digest executes at most once per scheduler —
duplicates within a sweep attach to the batch primary, duplicates
across concurrent client threads attach to the in-flight ticket,
repeats resolve from the bounded result index, and (with
``run_resolution``) whole runs resolve from the content-addressed cache
across scheduler lifetimes.  Deduplicated runs never fabricate wall
time: they carry zero seconds and ``attached_to``/``resumed_from``
provenance, so aggregating manifests never double-counts the one
execution that actually happened.
"""

import copy
import threading

import pytest

import repro.core.scheduler as scheduler_module
from repro.core.engine import RunSpec, Scheduler, execute_spec
from repro.core.runcache import RunCache
from repro.obs.metrics import MetricsRegistry


def _spec(**overrides):
    base = dict(workload="educational", instructions=800, warmup_instructions=200)
    base.update(overrides)
    return RunSpec(**base)


def _counter(metrics, name):
    return metrics.snapshot()["counters"].get(name, 0)


@pytest.fixture
def metrics():
    return MetricsRegistry()


class TestBatchDedupe:
    def test_duplicate_specs_execute_once(self, metrics, monkeypatch):
        executions = []
        real = scheduler_module.execute_spec

        def counting(spec):
            executions.append(spec.name)
            return real(spec)

        monkeypatch.setattr(scheduler_module, "execute_spec", counting)
        scheduler = Scheduler(metrics=metrics)
        runs = scheduler.run_specs([_spec(), _spec(), _spec(seed_offset=1)])
        assert executions == ["educational", "educational"]  # dup collapsed
        assert _counter(metrics, "scheduler.specs.deduped_batch") == 1
        assert _counter(metrics, "scheduler.specs.executed") == 2

    def test_attached_copy_has_honest_provenance(self):
        scheduler = Scheduler()
        runs = scheduler.run_specs([_spec(), _spec()])
        primary, attached = runs
        assert primary.manifest.attached_to is None
        assert primary.wall_seconds > 0.0
        assert attached.manifest.attached_to == primary.manifest.config_hash
        # Wall time is recorded once, at the execution site — an
        # attached run fabricating seconds would double-count it in any
        # aggregation over manifests.
        assert attached.wall_seconds == 0.0
        assert attached.manifest.wall_seconds == 0.0
        # ...but the payload is bit-identical.
        assert attached.histogram == primary.histogram
        assert attached.result.instructions == primary.result.instructions
        # And a private copy: mutating it cannot corrupt the primary.
        assert attached.result is not primary.result

    def test_order_preserved_around_dedupe(self):
        scheduler = Scheduler()
        specs = [_spec(seed_offset=1), _spec(), _spec(seed_offset=1)]
        runs = scheduler.run_specs(specs)
        assert [run.spec.seed_offset for run in runs] == [1, 0, 1]
        assert runs[2].manifest.attached_to == runs[0].manifest.config_hash


class TestResultIndex:
    def test_repeat_sweep_resolves_from_index(self, metrics):
        scheduler = Scheduler(metrics=metrics)
        first = scheduler.run_specs([_spec()])[0]
        second = scheduler.run_specs([_spec()])[0]
        assert _counter(metrics, "scheduler.specs.executed") == 1
        assert _counter(metrics, "scheduler.specs.resolved_index") == 1
        assert second.manifest.attached_to == first.manifest.config_hash
        assert second.wall_seconds == 0.0
        assert second.histogram == first.histogram

    def test_index_is_bounded_lru(self, metrics, monkeypatch):
        golden = execute_spec(_spec(instructions=400, warmup_instructions=100))

        def fake(spec):
            run = copy.deepcopy(golden)
            run.spec = spec
            return run

        monkeypatch.setattr(scheduler_module, "execute_spec", fake)
        scheduler = Scheduler(metrics=metrics, result_index_size=2)
        for offset in (1, 2, 3):
            scheduler.run_specs([_spec(seed_offset=offset)])
        assert scheduler.stats_snapshot()["result_index"] == 2
        # Oldest evicted: offset=1 executes again, offset=3 resolves.
        scheduler.run_specs([_spec(seed_offset=3)])
        scheduler.run_specs([_spec(seed_offset=1)])
        assert _counter(metrics, "scheduler.specs.executed") == 4
        assert _counter(metrics, "scheduler.specs.resolved_index") == 1

    def test_result_for_digest(self):
        scheduler = Scheduler()
        run = scheduler.run_specs([_spec()])[0]
        digest = run.manifest.config_hash
        assert scheduler.result_for(digest) is run
        assert scheduler.result_for("no-such-digest") is None


class TestInflightAttach:
    def test_concurrent_threads_one_execution(self, metrics, monkeypatch):
        golden = execute_spec(_spec(instructions=400, warmup_instructions=100))
        entered = threading.Event()
        release = threading.Event()
        executions = []

        def gated(spec):
            executions.append(spec.name)
            entered.set()
            assert release.wait(30)
            return copy.deepcopy(golden)

        monkeypatch.setattr(scheduler_module, "execute_spec", gated)
        scheduler = Scheduler(metrics=metrics)
        results = {}

        def client(name):
            results[name] = scheduler.run_specs([_spec()])[0]

        owner = threading.Thread(target=client, args=("owner",))
        owner.start()
        assert entered.wait(30)
        waiter = threading.Thread(target=client, args=("waiter",))
        waiter.start()
        # The waiter must attach to the in-flight ticket, not queue a
        # second execution behind the lock.
        deadline = threading.Event()
        for _ in range(200):
            if _counter(metrics, "scheduler.specs.attached_inflight") == 1:
                break
            deadline.wait(0.02)
        assert _counter(metrics, "scheduler.specs.attached_inflight") == 1
        release.set()
        owner.join(30)
        waiter.join(30)
        assert executions == ["educational"]
        assert _counter(metrics, "scheduler.specs.executed") == 1
        # attached_to names the digest of the submitted spec (the fake
        # execution returns a canned run whose manifest is the golden's).
        from repro.obs.provenance import config_hash

        assert results["waiter"].manifest.attached_to == config_hash(_spec())
        assert results["waiter"].wall_seconds == 0.0
        assert results["waiter"].histogram == results["owner"].histogram
        assert scheduler.stats_snapshot()["inflight"] == 0

    def test_owner_failure_releases_waiters_with_error(self, metrics, monkeypatch):
        from repro.core.engine import EngineError

        entered = threading.Event()
        release = threading.Event()

        def failing(spec):
            entered.set()
            assert release.wait(30)
            raise RuntimeError("injected execution failure")

        monkeypatch.setattr(scheduler_module, "execute_spec", failing)
        scheduler = Scheduler(metrics=metrics)
        failures = {}

        def client(name):
            try:
                scheduler.run_specs([_spec()])
            except EngineError as error:
                failures[name] = error

        owner = threading.Thread(target=client, args=("owner",))
        owner.start()
        assert entered.wait(30)
        waiter = threading.Thread(target=client, args=("waiter",))
        waiter.start()
        for _ in range(200):
            if _counter(metrics, "scheduler.specs.attached_inflight") == 1:
                break
            threading.Event().wait(0.02)
        release.set()
        owner.join(30)
        waiter.join(30)
        assert "owner" in failures and "waiter" in failures
        assert "injected execution failure" in failures["waiter"].worker_traceback
        # No ticket left dangling for the next client to deadlock on.
        assert scheduler.stats_snapshot()["inflight"] == 0


class TestRunCacheResolution:
    def test_runs_resolve_across_scheduler_lifetimes(self, tmp_path, metrics):
        cache = RunCache(str(tmp_path / "cache"))
        first = Scheduler(cache=cache, run_resolution=True)
        executed = first.run_specs([_spec()])[0]
        # A fresh scheduler (a service restart) over the same cache:
        revived = Scheduler(cache=cache, run_resolution=True, metrics=metrics)
        resolved = revived.run_specs([_spec()])[0]
        assert _counter(metrics, "scheduler.specs.executed") == 0
        assert _counter(metrics, "scheduler.specs.resolved_cache") == 1
        assert resolved.histogram == executed.histogram
        assert resolved.wall_seconds == 0.0
        assert resolved.manifest.resumed_from is not None
        assert resolved.manifest.wall_seconds == 0.0

    def test_no_run_banking_without_opt_in(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        Scheduler(cache=cache, run_resolution=False).run_specs([_spec()])
        assert not any(
            entry.meta.get("kind") == "run" for entry in cache.entries()
        )


class TestCollectMode:
    def test_attached_failures_reported_per_index(self):
        from repro.core.resilience import ResiliencePolicy

        scheduler = Scheduler()
        policy = ResiliencePolicy(on_error="collect")
        outcome = scheduler.run_specs(
            [_spec(workload="no-such-workload"), _spec(workload="no-such-workload")],
            policy=policy,
        )
        assert outcome.runs == [None, None]
        assert outcome.report.total == 2
        kinds = sorted(f.kind for f in outcome.report.failures)
        assert kinds == ["attached", "error"]
        assert sorted(f.index for f in outcome.report.failures) == [0, 1]

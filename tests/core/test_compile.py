"""Unit tests for the replay compiler (:mod:`repro.core.compile`).

White-box coverage of the pieces the differential harness exercises
only in aggregate: the sighting-gated resolve cache, the retry backoff
for chronically short probes, NeverRecord witnesses, the 16-byte image
cap, the side-effect-free I-stream lookahead, the env/tracer gates,
and the metrics round-trip.
"""

import os

import pytest

from repro.asm import Assembler
from repro.core import compile as replay
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.obs.metrics import MetricsRegistry
from repro.ucode.routines import build_layout


def encode(*instrs):
    """Assemble instructions at a fixed origin; returns raw bytes."""
    asm = Assembler(origin=0x200)
    for mnemonic, *operands in instrs:
        asm.instr(mnemonic, *operands)
    return asm.assemble()


@pytest.fixture(autouse=True)
def _default_tier(monkeypatch):
    # The CI tier leg exports REPRO_COMPILE_TIER_THRESHOLD=1, which
    # also collapses the sighting gates these tests pin down; they
    # assert the default economics, so they own the knob.
    monkeypatch.delenv(replay.TIER_THRESHOLD_ENV, raising=False)


@pytest.fixture
def layout():
    # A fresh layout gets fresh (empty) module-level record caches,
    # keyed by its control store; tests never see each other's records.
    return build_layout(fresh=True)


class TestResolve:
    def test_two_sightings_before_compiling(self, layout):
        image = encode(("MOVL", "#1", "R0"))
        stats = replay.CompileStats()
        assert replay.resolve(layout, bytearray(image), False, stats) is None
        assert stats.records_compiled == 0
        record = replay.resolve(layout, bytearray(image), False, stats)
        assert record is not None and not record.never
        assert record.mnemonic == "MOVL"
        assert bytes(record.raw) == image
        assert stats.records_compiled == 1

    def test_probe_finds_cached_record_under_longer_buffer(self, layout):
        image = encode(("ADDL2", "#5", "R1"))
        replay.resolve(layout, bytearray(image), False)
        record = replay.resolve(layout, bytearray(image), False)
        # A buffer that continues into the next instruction still
        # resolves to the same record via the length probe.
        longer = bytearray(image + encode(("MOVL", "#2", "R3")))
        assert replay.resolve(layout, longer, False) is record

    def test_short_probe_sets_retry_backoff(self, layout):
        image = encode(("MOVL", "I^#305419896", "R0"))  # 7 bytes
        probe = bytearray(image[:3])
        assert replay.resolve(layout, probe, False) is None  # sighting 1
        assert replay.resolve(layout, probe, False) is None  # compile attempt
        _, _, sightings = replay._layout_cache(layout)
        key = bytes(probe[: replay._MAX_IMAGE])
        # The failed attempt (ran out of bytes) pushed the counter far
        # negative so the next executions skip recompiling.
        assert sightings[key] == (
            replay._COMPILE_MIN_SIGHTINGS - 1 - replay._RETRY_BACKOFF
        )
        # The full image is a different key and compiles normally.
        replay.resolve(layout, bytearray(image), False)
        record = replay.resolve(layout, bytearray(image), False)
        assert record is not None and record.mnemonic == "MOVL"

    def test_never_record_for_unknown_opcode(self, layout):
        # Find a first byte with no execute semantics; the compiler
        # must return a NeverRecord witness rather than raising.
        never = None
        for byte in range(256):
            raw = bytes([byte]) + b"\x00" * (replay._MAX_IMAGE - 1)
            try:
                record = replay.compile_record(layout, raw, False)
            except replay._NeedMoreBytes:
                continue
            if record.never:
                never = raw
                break
        assert never is not None, "every opcode byte compiled?"
        stats = replay.CompileStats()
        assert replay.resolve(layout, bytearray(never), False, stats) is None
        witness = replay.resolve(layout, bytearray(never), False, stats)
        assert witness.never
        assert stats.uncompilable == 1
        assert stats.records_compiled == 0


class TestImageCap:
    def test_take_past_cap_is_uncompilable(self):
        cursor = replay._Cursor(b"\x00" * replay._MAX_IMAGE, 15)
        with pytest.raises(replay._Uncompilable):
            cursor.take(2)

    def test_take_past_buffer_needs_more_bytes(self):
        cursor = replay._Cursor(b"\x00" * 6, 4)
        with pytest.raises(replay._NeedMoreBytes):
            cursor.take(4)  # end 8 <= cap, just not buffered yet

    def test_oversized_instruction_never_compiles(self, layout):
        # Three indexed longword-displacement specifiers: 19 bytes.
        image = encode(
            ("ADDL3", "L^8(R1)[R2]", "L^8(R3)[R4]", "L^8(R5)[R6]")
        )
        assert len(image) > replay._MAX_IMAGE
        record = replay.compile_record(
            layout, image[: replay._MAX_IMAGE], False
        )
        assert record.never


class TestGates:
    def test_env_gate_disables_compilation(self, monkeypatch):
        monkeypatch.setenv(replay.NO_COMPILE_ENV, "1")
        assert replay.compile_disabled_by_env()
        machine = VAX780(monitor=UPCMonitor.build())
        assert not machine.ebox._compile_active

    def test_env_gate_off_by_default(self, monkeypatch):
        monkeypatch.delenv(replay.NO_COMPILE_ENV, raising=False)
        assert not replay.compile_disabled_by_env()
        machine = VAX780(monitor=UPCMonitor.build())
        assert machine.ebox._compile_active

    def test_tracer_forces_slow_path(self, monkeypatch):
        from repro.obs.trace import Tracer

        monkeypatch.delenv(replay.NO_COMPILE_ENV, raising=False)
        machine = VAX780(monitor=UPCMonitor.build(), tracer=Tracer())
        assert not machine.ebox._compile_active


class TestLookahead:
    def _machine_after_one_instruction(self):
        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        program = encode(
            ("MOVL", "#1", "R0"),
            ("ADDL2", "#2", "R1"),
            ("ADDL2", "#3", "R2"),
            ("ADDL2", "#4", "R3"),
            ("ADDL2", "#5", "R4"),
            ("HALT",),
        )
        machine.load_program(program, 0x200)
        machine.run(max_instructions=1)
        return machine, program

    def test_peek_image_matches_the_loaded_program(self):
        machine, program = self._machine_after_one_instruction()
        ebox = machine.ebox
        image = replay.peek_image(ebox)
        offset = ebox.ib._decode_va - 0x200
        expected = program[offset : offset + replay._MAX_IMAGE]
        assert image is not None
        assert image[: len(expected)] == expected
        assert image.startswith(bytes(ebox.ib._bytes))

    def test_image_ready_validates_the_tail(self):
        machine, program = self._machine_after_one_instruction()
        ebox = machine.ebox
        ib = ebox.ib
        buf = ib._bytes
        offset = ib._decode_va - 0x200
        true_image = program[offset : offset + len(buf) + 2]
        if len(true_image) <= len(buf):
            pytest.skip("IB already buffered the whole remaining stream")
        assert replay._image_ready(ebox, ib, buf, true_image)
        wrong = true_image[:-1] + bytes([true_image[-1] ^ 0xFF])
        assert not replay._image_ready(ebox, ib, buf, wrong)

    def test_lookahead_has_no_side_effects(self):
        machine, _ = self._machine_after_one_instruction()
        ebox = machine.ebox
        tb = machine.memory.tb
        before = (tb.stats.hits, tb.stats.misses, ebox.cycle_count)
        replay.peek_image(ebox)
        after = (tb.stats.hits, tb.stats.misses, ebox.cycle_count)
        assert before == after


class TestMetricsRoundTrip:
    def test_record_and_rebuild(self):
        stats = replay.CompileStats(
            routines_specialized=7,
            records_compiled=3,
            jit_hits=90,
            jit_misses=10,
            fast_cycles=900,
            slow_cycles=100,
        )
        registry = MetricsRegistry()
        replay.record_metrics(registry, stats, active=True)
        rebuilt = replay.stats_from_snapshot(registry.snapshot())
        assert rebuilt["jit_hits"] == 90
        assert rebuilt["active"] == 1
        assert rebuilt["routines_specialized"] == 7
        assert rebuilt["fast_instruction_fraction"] == 0.9
        assert rebuilt["fast_cycle_fraction"] == 0.9

    def test_merged_counters_recompute_fractions(self):
        registry = MetricsRegistry()
        replay.record_metrics(
            registry,
            replay.CompileStats(jit_hits=50, jit_misses=50),
            active=True,
        )
        other = MetricsRegistry()
        replay.record_metrics(
            other,
            replay.CompileStats(jit_hits=100, jit_misses=0),
            active=True,
        )
        registry.merge_snapshot(other.snapshot())
        rebuilt = replay.stats_from_snapshot(registry.snapshot())
        # 150 hits / 200 executions across both workers.
        assert rebuilt["fast_instruction_fraction"] == 0.75

    def test_foreign_snapshot_returns_none(self):
        assert replay.stats_from_snapshot({"counters": {}, "gauges": {}}) is None

"""Tests for the Clark & Levy-style per-opcode frequency report."""

import pytest

from repro.core.experiment import run_workload
from repro.core.opcode_report import (
    coverage_count,
    frequency_cost_contrast,
    opcode_frequencies,
)


@pytest.fixture(scope="module")
def result():
    return run_workload("timesharing_light", instructions=5_000, warmup_instructions=1_000)


class TestOpcodeFrequencies:
    def test_rows_sorted_and_cumulative(self, result):
        rows = opcode_frequencies(result)
        assert rows, "no opcodes recorded"
        percents = [row.percent for row in rows]
        assert percents == sorted(percents, reverse=True)
        assert rows[-1].cumulative_percent == pytest.approx(100.0, abs=0.01)

    def test_counts_match_events(self, result):
        rows = opcode_frequencies(result)
        total = sum(row.count for row in rows)
        assert total == sum(result.events.opcode_counts.values())

    def test_moves_near_the_top(self, result):
        # Clark & Levy: MOVL is the most common VAX instruction.
        top_ten = {row.mnemonic for row in opcode_frequencies(result)[:10]}
        assert "MOVL" in top_ten

    def test_groups_annotated(self, result):
        for row in opcode_frequencies(result)[:20]:
            assert row.group in (
                "simple", "field", "float", "callret", "system", "character", "decimal",
            )


class TestCoverage:
    def test_few_opcodes_cover_most_executions(self, result):
        # The famous concentration: a modest subset covers 90 percent.
        distinct = len(opcode_frequencies(result))
        covering_90 = coverage_count(result, 90.0)
        assert covering_90 < distinct
        assert covering_90 <= 40

    def test_coverage_monotone(self, result):
        assert coverage_count(result, 50.0) <= coverage_count(result, 90.0)

    def test_full_coverage_is_all(self, result):
        assert coverage_count(result, 100.0) == len(opcode_frequencies(result))


class TestContrastReport:
    def test_report_renders(self, result):
        text = frequency_cost_contrast(result)
        assert "rank" in text and "most expensive" in text
        assert "MOVL" in text or "BNEQ" in text

    def test_empty_result_safe(self):
        from repro.core.experiment import ExperimentResult, MachineStats
        from repro.core.reduction import reduce_histogram
        from repro.cpu.events import EventCounters
        from repro.ucode.routines import build_layout

        empty = ExperimentResult(
            name="empty",
            reduction=reduce_histogram([0] * 16000, [0] * 16000, build_layout()),
            events=EventCounters(),
            stats=MachineStats(),
        )
        assert opcode_frequencies(empty) == []
        assert coverage_count(empty, 90.0) == 0

"""Chained-superblock formation, guards, and mid-block deopt.

The superblock layer (:mod:`repro.core.compile`) links consecutive
compiled-record executions into one generated function replaying a
whole window of instructions per dispatch.  Correctness rests on two
properties these tests pin down:

* **segment atomicity** — every segment re-checks its byte image
  against the live machine before touching anything, so a block that
  retires ``k`` of its ``n`` instructions leaves state byte-identical
  to ``k`` interpreted steps (deopt is a return value, not a rollback);
* **boundary guards** — pending interrupts and the cycle limit are
  checked between segments, so delivery and device timing happen at
  the same instruction boundary as the stepped loop.

Formation economics (sighting thresholds, the tier-threshold override
collapsing them), tracer passivity, and the ``sim.compile.*``
superblock metrics round-trip are covered alongside.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Assembler
from repro.core import compile as replay
from repro.core.experiment import (
    MachineStats,
    prepare_workload,
    result_from_machine,
)
from repro.core.histogram_io import result_to_json
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

ORIGIN = 0x200


@pytest.fixture(autouse=True)
def _own_the_gates(monkeypatch):
    # These tests control both env knobs themselves: the CI interpreted
    # leg exports REPRO_NO_COMPILE, the tier leg exports the threshold.
    # Formation state is layout-wide, so start each test cold.
    monkeypatch.delenv(replay.NO_COMPILE_ENV, raising=False)
    monkeypatch.setenv(replay.TIER_THRESHOLD_ENV, "1")
    replay.clear_record_caches()
    yield
    replay.clear_record_caches()


@contextmanager
def interpreter():
    """Force the interpreted path for machines built inside the block."""
    prior = os.environ.get(replay.NO_COMPILE_ENV)
    os.environ[replay.NO_COMPILE_ENV] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(replay.NO_COMPILE_ENV, None)
        else:
            os.environ[replay.NO_COMPILE_ENV] = prior


def countdown_program(iterations):
    """A hot four-instruction loop ending in a HALT.

    The loop body plus its backward branch is the canonical superblock
    shape.  Five instructions per iteration is deliberately coprime to
    the window cap of eight: windows straddle iteration boundaries, so
    the final iteration's fall-through of ``SOBGTR`` lands mid-window
    and the trace that recorded the taken path must deopt at a byte
    guard.  Returns ``(image, budget)``.
    """
    asm = Assembler(origin=ORIGIN)
    asm.instr("MOVL", "I^#%d" % iterations, "R1")
    asm.instr("CLRL", "R0")
    asm.label("loop")
    asm.instr("ADDL2", "#3", "R0")
    asm.instr("XORL2", "R1", "R0")
    asm.instr("INCL", "R0")
    asm.instr("DECL", "R2")
    asm.instr("SOBGTR", "R1", "loop")
    asm.instr("HALT")
    # Budget overshoots the program: the block dispatcher skips windows
    # longer than the remaining budget, so an exact budget would route
    # the interesting final iterations through the per-record path.
    return asm.assemble(), 2 + 5 * iterations + 50


def machine_state(machine):
    return {
        "regs": [machine.ebox.regs.read(i) for i in range(16)],
        "psl": machine.ebox.psl.pack(),
        "cycles": machine.ebox.cycle_count,
        "halted": machine.ebox.halted,
    }


def run_program(program, budget, max_cycles=None):
    machine = VAX780(monitor=UPCMonitor.build())
    machine.load_program(program, ORIGIN)
    executed = machine.run(max_instructions=budget, max_cycles=max_cycles)
    return machine, executed


def measured_run(profile, tracer=None, instructions=700, warmup=200):
    kernel, monitor = prepare_workload(profile, tracer=tracer)
    machine = kernel.machine
    kernel.run(max_instructions=warmup)
    baseline = MachineStats.from_machine(machine)
    kernel.start_measurement()
    kernel.run(max_instructions=instructions)
    kernel.stop_measurement()
    result = result_from_machine(
        machine, monitor, name=profile, stats_baseline=baseline
    )
    return result, monitor.board, machine


class TestFormation:
    def test_hot_loop_forms_and_dispatches_blocks(self):
        program, budget = countdown_program(40)
        machine, _ = run_program(program, budget)
        stats = machine.ebox.compile_stats
        assert stats.records_compiled > 0
        assert stats.superblocks_formed >= 1
        assert stats.superblock_runs > 0
        assert stats.superblock_instructions > 0
        assert 0 < stats.superblock_mean_length <= replay._SB_MAX_LEN

    def test_window_length_respects_the_cap(self, monkeypatch):
        monkeypatch.setattr(replay, "_SB_MAX_LEN", 3)
        program, budget = countdown_program(40)
        machine, _ = run_program(program, budget)
        ebox = machine.ebox
        assert ebox.compile_stats.superblocks_formed >= 1
        assert all(sb.length <= 3 for sb in ebox._sb_cache.values())

    def test_default_thresholds_skip_short_runs(self, monkeypatch):
        # Without the tier override a window must recur
        # _SB_MIN_SIGHTINGS times; three iterations never get there.
        monkeypatch.delenv(replay.TIER_THRESHOLD_ENV, raising=False)
        program, budget = countdown_program(3)
        machine, _ = run_program(program, budget)
        assert machine.ebox.compile_stats.superblocks_formed == 0

    def test_default_thresholds_promote_hot_windows(self, monkeypatch):
        # Window heads rotate through the loop's five VAs (five-long
        # iterations vs eight-long windows), so one head VA is sighted
        # once per eight iterations — crossing the sighting bar needs
        # 8 * _SB_MIN_SIGHTINGS iterations plus the record warmup.
        monkeypatch.delenv(replay.TIER_THRESHOLD_ENV, raising=False)
        program, budget = countdown_program(8 * replay._SB_MIN_SIGHTINGS + 30)
        machine, _ = run_program(program, budget)
        assert machine.ebox.compile_stats.superblocks_formed >= 1

    def test_tracer_suppresses_blocks_and_changes_nothing(self):
        c_result, c_board, _ = measured_run("educational")
        tracer = Tracer()
        t_result, t_board, t_machine = measured_run("educational", tracer=tracer)
        stats = t_machine.ebox.compile_stats
        assert stats.superblocks_formed == 0
        assert stats.superblock_runs == 0
        assert result_to_json(c_result, c_board) == result_to_json(
            t_result, t_board
        )


class TestGuardsAndDeopt:
    def test_branch_fallthrough_deopts_with_exact_state(self):
        # The last SOBGTR falls through: the trace recorded the taken
        # path, so its byte guard fails there and the block retires a
        # prefix.  Final state must equal the interpreter's, bit for
        # bit, and the deopt must have been counted.
        program, budget = countdown_program(40)
        compiled, c_executed = run_program(program, budget)
        with interpreter():
            interpreted, i_executed = run_program(program, budget)
        stats = compiled.ebox.compile_stats
        assert stats.superblock_runs > 0
        assert stats.superblock_deopts >= 1
        assert c_executed == i_executed
        assert machine_state(compiled) == machine_state(interpreted)

    def test_cycle_limit_stops_at_the_same_boundary(self):
        # A cycle budget that lands mid-window must end the block run
        # at the same instruction boundary as the stepped loop.
        program, budget = countdown_program(60)
        reference, _ = run_program(program, budget)
        limit = reference.ebox.cycle_count // 2
        compiled, c_executed = run_program(program, budget, max_cycles=limit)
        with interpreter():
            interpreted, i_executed = run_program(
                program, budget, max_cycles=limit
            )
        assert compiled.ebox.compile_stats.superblock_runs > 0
        assert c_executed == i_executed
        assert machine_state(compiled) == machine_state(interpreted)

    def test_interrupt_heavy_workload_stays_bit_identical(self):
        # Device interrupts deliver at block boundaries; a profile with
        # live terminal traffic must serialize identically either way.
        c_result, c_board, c_machine = measured_run(
            "timesharing_heavy", instructions=4000, warmup=500
        )
        with interpreter():
            i_result, i_board, _ = measured_run(
                "timesharing_heavy", instructions=4000, warmup=500
            )
        stats = c_machine.ebox.compile_stats
        assert stats.superblock_runs > 0
        assert c_result.events.interrupts_delivered > 0
        assert result_to_json(c_result, c_board) == result_to_json(
            i_result, i_board
        )


# ---------------------------------------------------------------------------
# Randomized block splitting
# ---------------------------------------------------------------------------

SCRATCH = 0x3040

SOURCES = ["#5", "#63", "R0", "R1", "(R6)", "(R6)+", "B^4(R6)", "(R6)[R3]"]
DESTS = ["R0", "R1", "R2", "(R6)", "-(R6)", "W^8(R6)"]
TWO_OPERAND = ["MOVL", "ADDL2", "SUBL2", "BISL2", "XORL2", "CMPL"]
ONE_OPERAND = ["TSTL", "INCL", "DECL", "CLRL"]

op_strategy = st.one_of(
    st.tuples(
        st.sampled_from(TWO_OPERAND),
        st.sampled_from(SOURCES),
        st.sampled_from(DESTS),
    ),
    st.tuples(st.sampled_from(ONE_OPERAND), st.sampled_from(DESTS)),
)


def _assemble_random(ops, repeats):
    asm = Assembler(origin=ORIGIN)
    asm.instr("MOVL", "I^#%d" % (SCRATCH + 64), "R6")
    asm.instr("MOVL", "#1", "R3")
    for _ in range(repeats):
        for op in ops:
            asm.instr(*op)
    asm.instr("HALT")
    return asm.assemble(), 2 + repeats * len(ops)


def _random_state(machine):
    state = machine_state(machine)
    state["memory"] = [
        machine.read_virtual(SCRATCH + offset, 4)
        for offset in range(-64, 128, 4)
    ]
    return state


class TestRandomizedBlockSplitting:
    @settings(max_examples=10, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=2, max_size=8), max_len=st.integers(2, 8))
    def test_any_window_cap_matches_the_interpreter(self, ops, max_len):
        # The window cap decides where traces split into blocks; no
        # split point may be observable.  Formation state is shared per
        # layout, so each example starts cold.
        program, budget = _assemble_random(ops, repeats=4)
        saved = replay._SB_MAX_LEN
        replay._SB_MAX_LEN = max_len
        try:
            replay.clear_record_caches()
            compiled = VAX780(monitor=UPCMonitor.build())
            compiled.load_program(program, ORIGIN)
            compiled.map_range(SCRATCH - 0x440, 0x800)
            compiled.run(max_instructions=budget)
        finally:
            replay._SB_MAX_LEN = saved
        with interpreter():
            interpreted = VAX780(monitor=UPCMonitor.build())
            interpreted.load_program(program, ORIGIN)
            interpreted.map_range(SCRATCH - 0x440, 0x800)
            interpreted.run(max_instructions=budget)
        assert _random_state(compiled) == _random_state(interpreted)


# ---------------------------------------------------------------------------
# Metrics round-trip
# ---------------------------------------------------------------------------


class TestSuperblockMetrics:
    def _stats(self):
        stats = replay.CompileStats()
        stats.jit_hits = 60
        stats.jit_misses = 4
        stats.superblocks_formed = 3
        stats.superblock_runs = 10
        stats.superblock_instructions = 55
        stats.superblock_deopts = 2
        return stats

    def test_mean_length_and_dict(self):
        stats = self._stats()
        assert stats.superblock_mean_length == 5.5
        out = stats.to_dict()
        assert out["superblocks_formed"] == 3
        assert out["superblock_mean_length"] == 5.5

    def test_merge_sums_superblock_counters(self):
        a, b = self._stats(), self._stats()
        a.merge_from(b)
        assert a.superblocks_formed == 6
        assert a.superblock_runs == 20
        assert a.superblock_instructions == 110
        assert a.superblock_deopts == 4
        assert a.superblock_mean_length == 5.5

    def test_registry_snapshot_round_trip(self):
        registry = MetricsRegistry()
        replay.record_metrics(registry, self._stats(), active=True)
        out = replay.stats_from_snapshot(registry.snapshot())
        assert out["superblocks_formed"] == 3
        assert out["superblock_runs"] == 10
        assert out["superblock_instructions"] == 55
        assert out["superblock_deopts"] == 2
        assert out["superblock_mean_length"] == 5.5

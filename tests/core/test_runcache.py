"""Unit tests for the content-addressed run cache.

Key derivation stability, the git-like object layout, atomic writes,
metadata sidecars and the hit/miss accounting the CLI reports.
"""

import json
import os

import pytest

from repro.core.runcache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIRNAME,
    CacheEntry,
    RunCache,
    cache_key,
)


@pytest.fixture
def cache(tmp_path):
    return RunCache(str(tmp_path / "cache"))


class TestCacheKey:
    def test_stable_across_calls(self):
        a = cache_key("shard", config="abc", start=0, end=100)
        b = cache_key("shard", config="abc", start=0, end=100)
        assert a == b
        assert len(a) == 64
        assert all(c in "0123456789abcdef" for c in a)

    def test_field_order_is_irrelevant(self):
        assert cache_key("shard", start=0, config="abc") == cache_key(
            "shard", config="abc", start=0
        )

    def test_every_field_is_load_bearing(self):
        base = cache_key("shard", config="abc", start=0, end=100)
        assert cache_key("snapshot", config="abc", start=0, end=100) != base
        assert cache_key("shard", config="abd", start=0, end=100) != base
        assert cache_key("shard", config="abc", start=1, end=100) != base
        assert cache_key("shard", config="abc", start=0, end=101) != base

    def test_reserved_field_collision_rejected(self):
        # "kind" is already shielded by the positional signature; the
        # remaining reserved names must be rejected explicitly.
        with pytest.raises(ValueError, match="reserved"):
            cache_key("shard", schema=2)
        with pytest.raises(ValueError, match="reserved"):
            cache_key("shard", code_version="0.0.0")


class TestStoreFetch:
    def test_put_get_roundtrip(self, cache):
        key = cache_key("test", payload=1)
        cache.put(key, b"hello shards")
        assert cache.get(key) == b"hello shards"

    def test_get_missing_returns_none(self, cache):
        assert cache.get(cache_key("test", payload="missing")) is None

    def test_hit_miss_put_accounting(self, cache):
        key = cache_key("test", payload=2)
        assert cache.stats() == {"hits": 0, "misses": 0, "puts": 0, "quarantined": 0}
        cache.get(key)
        cache.put(key, b"x")
        cache.get(key)
        assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1, "quarantined": 0}

    def test_has_does_not_touch_stats(self, cache):
        key = cache_key("test", payload=3)
        assert not cache.has(key)
        cache.put(key, b"x")
        assert cache.has(key)
        assert cache.stats() == {"hits": 0, "misses": 0, "puts": 1, "quarantined": 0}

    def test_put_twice_is_idempotent(self, cache):
        # Content addressing: the first write wins and the second is a
        # no-op — the store never tears an existing object.
        key = cache_key("test", payload=4)
        cache.put(key, b"first")
        cache.put(key, b"second")
        assert cache.get(key) == b"first"
        assert cache.puts == 1

    def test_git_like_fanout_layout(self, cache):
        key = cache_key("test", payload=5)
        path = cache.put(key, b"x")
        assert path.endswith(os.path.join("objects", key[:2], key[2:]))
        assert os.path.exists(path)

    def test_invalid_keys_rejected(self, cache):
        for bad in ("", "ab", "UPPERCASE0", "../../etc/passwd", "xyz!"):
            with pytest.raises(ValueError, match="hex digest"):
                cache.has(bad)

    def test_no_leftover_temp_files(self, cache, tmp_path):
        key = cache_key("test", payload=6)
        cache.put(key, b"x" * 10_000, meta={"kind": "test"})
        strays = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.startswith(".tmp-")
        ]
        assert strays == []


class TestMetadata:
    def test_meta_sidecar_roundtrip(self, cache):
        key = cache_key("test", payload=7)
        cache.put(key, b"x", meta={"kind": "shard", "start": 0})
        assert cache.get_meta(key) == {"kind": "shard", "start": 0}

    def test_meta_absent_is_none(self, cache):
        key = cache_key("test", payload=8)
        cache.put(key, b"x")
        assert cache.get_meta(key) is None

    def test_sidecar_lands_before_object(self, cache):
        # entries() must never see an object without its sidecar when
        # one was requested — the meta write happens first.
        key = cache_key("test", payload=9)
        cache.put(key, b"x", meta={"a": 1})
        (entry,) = list(cache.entries())
        assert entry.meta == {"a": 1}


class TestInspection:
    def test_entries_sorted_and_complete(self, cache):
        keys = [cache_key("test", payload=n) for n in range(5)]
        for n, key in enumerate(keys):
            cache.put(key, b"v" * (n + 1), meta={"n": n})
        listed = list(cache.entries())
        assert [e.key for e in listed] == sorted(keys)
        assert all(isinstance(e, CacheEntry) for e in listed)
        assert {e.size_bytes for e in listed} == {1, 2, 3, 4, 5}

    def test_entries_skip_sidecars_and_temps(self, cache):
        key = cache_key("test", payload=10)
        cache.put(key, b"x", meta={"a": 1})
        stray = os.path.join(cache.root, "objects", key[:2], ".tmp-stray")
        with open(stray, "wb") as handle:
            handle.write(b"junk")
        assert [e.key for e in cache.entries()] == [key]

    def test_total_bytes(self, cache):
        cache.put(cache_key("test", payload=11), b"four")
        cache.put(cache_key("test", payload=12), b"sixsix")
        assert cache.total_bytes() == 10

    def test_clear_removes_objects_and_sidecars(self, cache):
        key = cache_key("test", payload=13)
        path = cache.put(key, b"x", meta={"a": 1})
        assert cache.clear() == 1
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".json")
        assert not os.path.exists(path + ".sum")
        assert list(cache.entries()) == []


class TestDefaultResolution:
    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "from-env"))
        cache = RunCache.default(str(tmp_path / "explicit"))
        assert cache.root == str(tmp_path / "explicit")

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "from-env"))
        assert RunCache.default().root == str(tmp_path / "from-env")

    def test_conventional_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        cache = RunCache.default()
        assert cache.root == str(tmp_path / DEFAULT_CACHE_DIRNAME)


class TestConcurrencySafety:
    def test_parallel_puts_of_same_object(self, cache):
        # Simulate the pool-worker race: many writers, one key. Every
        # writer must exit cleanly and the object must be whole.
        from repro.core.engine import parallel_map

        key = cache_key("test", payload="race")
        root = cache.root

        results = parallel_map(
            _racing_put, [(root, key)] * 4, jobs=4
        )
        assert all(results)
        assert cache.get(key) == b"racy payload"

    def test_meta_survives_json_default_repr(self, cache):
        # Non-JSON-native meta values fall back to repr() instead of
        # crashing the put.
        key = cache_key("test", payload=14)
        cache.put(key, b"x", meta={"obj": object()})
        meta = cache.get_meta(key)
        assert "object object" in meta["obj"]


class TestSelfHealing:
    def test_on_disk_bitflip_is_quarantined_and_recomputed(self, cache):
        # Rot the stored bytes behind the cache's back: get() must report
        # a miss (never hand back garbage), move the damage to
        # quarantine, and leave the address vacant for the recompute.
        key = cache_key("test", payload="rot")
        path = cache.put(key, b"precious bytes", meta={"kind": "test"})
        with open(path, "r+b") as handle:
            handle.seek(3)
            byte = handle.read(1)[0]
            handle.seek(3)
            handle.write(bytes([byte ^ 0x40]))
        assert cache.get(key) is None
        assert cache.stats()["quarantined"] == 1
        assert cache.quarantined_objects() == 1
        assert not cache.has(key)
        quarantined = os.path.join(
            cache.root, "objects", RunCache.QUARANTINE_DIRNAME, key
        )
        assert os.path.exists(quarantined)
        assert os.path.exists(quarantined + ".reason")
        cache.put(key, b"precious bytes")
        assert cache.get(key) == b"precious bytes"

    def test_injected_read_corruption_quarantines(self, cache, tmp_path):
        from repro.testing.faults import FaultPlan, FaultRule

        key = cache_key("test", payload="readrot")
        cache.put(key, b"payload bytes")
        plan = FaultPlan(
            rules=[FaultRule(site="cache.get", action="truncate", times=1)],
            state_dir=str(tmp_path / "faults"),
        )
        with plan.active():
            assert cache.get(key) is None
        assert cache.quarantined_objects() == 1

    def test_legacy_object_without_sum_is_accepted(self, cache):
        key = cache_key("test", payload="legacy")
        cache.put(key, b"old bytes")
        os.unlink(cache._object_path(key) + ".sum")
        assert cache.get(key) == b"old bytes"
        assert cache.quarantined_objects() == 0

    def test_entries_and_clear_handle_quarantine(self, cache):
        keep = cache_key("test", payload="keep")
        rot = cache_key("test", payload="togo")
        cache.put(keep, b"keep me")
        cache.put(rot, b"rot me")
        cache.quarantine(rot, reason="test damage")
        assert [entry.key for entry in cache.entries()] == [keep]
        assert cache.quarantined_objects() == 1
        assert cache.clear() == 1
        assert cache.quarantined_objects() == 0


class TestWriteFailureCleanup:
    @staticmethod
    def _strays(root):
        return [
            name
            for _, _, names in os.walk(root)
            for name in names
            if name.startswith(".tmp-")
        ]

    def test_injected_write_failure_leaves_no_temp_files(self, cache):
        from repro.testing.faults import FaultPlan, FaultRule

        key = cache_key("test", payload="diskfull")
        plan = FaultPlan(
            rules=[FaultRule(site="cache.write", action="raise", times=-1)]
        )
        with plan.active():
            with pytest.raises(OSError):
                cache.put(key, b"x" * 4096)
        assert self._strays(cache.root) == []
        assert not cache.has(key)
        cache.put(key, b"x" * 4096)
        assert cache.get(key) == b"x" * 4096

    def test_fdopen_failure_leaves_no_temp_files(self, cache, monkeypatch):
        import repro.core.runcache as runcache_module

        def refuse(fd, mode):
            # Leave the fd open: the finally clause owns closing it.
            raise OSError("simulated fdopen failure")

        monkeypatch.setattr(runcache_module.os, "fdopen", refuse)
        with pytest.raises(OSError):
            cache.put(cache_key("test", payload="nofd"), b"x")
        monkeypatch.undo()
        assert self._strays(cache.root) == []


def _racing_put(args):
    root, key = args
    local = RunCache(root)
    local.put(key, b"racy payload")
    return local.get(key) == b"racy payload"


class TestPersistentStats:
    """The stats ledger: fleet-wide hit/miss truth across processes.

    Per-instance counters are per-process by construction; under the
    worker fleet they silently undercount.  Every engine execution site
    flushes its deltas to ``stats.jsonl``, and ``persistent_totals``
    sums them back — that is what ``repro cache info`` reports.
    """

    def test_flush_appends_delta_once(self, cache):
        key = cache_key("test", payload="ledger")
        cache.get(key)  # miss
        cache.put(key, b"x")
        cache.get(key)  # hit
        delta = cache.flush_stats()
        assert delta == {"hits": 1, "misses": 1, "puts": 1, "quarantined": 0}
        # No new activity: the second flush writes nothing.
        assert cache.flush_stats() == {
            "hits": 0, "misses": 0, "puts": 0, "quarantined": 0
        }
        totals = cache.persistent_totals()
        assert totals["flushes"] == 1
        assert totals["hits"] == 1
        assert totals["misses"] == 1
        assert totals["puts"] == 1

    def test_totals_aggregate_across_instances(self, cache):
        # Two instances over the same root — the stand-in for two
        # processes — each flush; the ledger holds the sum.
        other = RunCache(cache.root)
        key = cache_key("test", payload="fleet")
        cache.put(key, b"x")
        cache.flush_stats()
        other.get(key)  # hit, counted only in `other`
        other.get(cache_key("test", payload="absent"))  # miss
        other.flush_stats()
        assert cache.stats()["hits"] == 0  # per-process undercount...
        totals = cache.persistent_totals()  # ...the ledger has the truth
        assert totals == {
            "hits": 1, "misses": 1, "puts": 1, "quarantined": 0, "flushes": 2
        }

    def test_torn_ledger_line_is_skipped(self, cache):
        cache.put(cache_key("test", payload="torn"), b"x")
        cache.flush_stats()
        with open(cache._stats_path, "a") as handle:
            handle.write('{"puts": 1, "hi')  # torn mid-write
        totals = cache.persistent_totals()
        assert totals["puts"] == 1
        assert totals["flushes"] == 1

    def test_clear_drops_ledger_and_rebaselines(self, cache):
        key = cache_key("test", payload="wipe")
        cache.put(key, b"x")
        cache.flush_stats()
        cache.clear()
        assert cache.persistent_totals()["flushes"] == 0
        # Pre-clear activity must not leak into the fresh ledger.
        assert cache.flush_stats() == {
            "hits": 0, "misses": 0, "puts": 0, "quarantined": 0
        }
        assert cache.persistent_totals()["puts"] == 0

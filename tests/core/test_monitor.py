"""Unit tests for the micro-PC histogram monitor (the paper's apparatus)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.monitor import (
    HISTOGRAM_BUCKETS,
    HistogramBoard,
    MonitorCommandError,
    MonitorInterface,
    UPCMonitor,
)


class TestHistogramBoard:
    def test_16000_buckets(self):
        assert HistogramBoard().buckets == 16_000

    def test_counts_only_while_collecting(self):
        board = HistogramBoard()
        board.strobe(5)
        assert board.read_bucket(5) == (0, 0)
        board.start()
        board.strobe(5)
        board.stop()
        board.strobe(5)
        assert board.read_bucket(5) == (1, 0)

    def test_dual_banks(self):
        board = HistogramBoard()
        board.start()
        board.strobe(7)  # a successful execution
        board.strobe(7, stalled=True, repeat=6)  # six stall cycles
        assert board.read_bucket(7) == (1, 6)

    def test_clear(self):
        board = HistogramBoard()
        board.start()
        board.strobe(3)
        board.stop()
        board.clear()
        assert board.read_bucket(3) == (0, 0)

    def test_clear_while_collecting_rejected(self):
        board = HistogramBoard()
        board.start()
        with pytest.raises(MonitorCommandError):
            board.clear()

    def test_bad_bucket_rejected(self):
        board = HistogramBoard()
        board.start()
        with pytest.raises(MonitorCommandError):
            board.strobe(16_000)

    def test_total_cycles_spans_banks(self):
        board = HistogramBoard()
        board.start()
        board.strobe(1, repeat=3)
        board.strobe(2, stalled=True, repeat=2)
        assert board.total_cycles() == 5

    def test_merge_is_the_composite_sum(self):
        a, b = HistogramBoard(), HistogramBoard()
        a.start(), b.start()
        a.strobe(9, repeat=2)
        b.strobe(9, repeat=3)
        b.strobe(9, stalled=True)
        a.stop(), b.stop()
        a.merge_from(b)
        assert a.read_bucket(9) == (5, 1)

    def test_merge_rejects_mismatched_boards(self):
        a = HistogramBoard(buckets=16)
        b = HistogramBoard(buckets=32)
        with pytest.raises(MonitorCommandError):
            a.merge_from(b)

    def test_merge_while_collecting_rejected(self):
        # The real merge happened on the measurement host after both
        # boards were stopped and dumped; merging a live board is a
        # command error on either side.
        a, b = HistogramBoard(), HistogramBoard()
        a.start()
        with pytest.raises(MonitorCommandError):
            a.merge_from(b)
        a.stop()
        b.start()
        with pytest.raises(MonitorCommandError):
            a.merge_from(b)

    def test_read_bucket_error_names_the_offender(self):
        board = HistogramBoard(buckets=64)
        with pytest.raises(MonitorCommandError) as excinfo:
            board.read_bucket(64)
        message = str(excinfo.value)
        assert "bucket 64" in message
        assert "64 buckets" in message
        assert "0..63" in message
        with pytest.raises(MonitorCommandError) as excinfo:
            board.read_bucket(-1)
        assert "bucket -1" in str(excinfo.value)

    def test_merge_mismatch_error_reports_both_sizes(self):
        a = HistogramBoard(buckets=16)
        b = HistogramBoard(buckets=32)
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        message = str(excinfo.value)
        assert "16" in message and "32" in message

    def test_merge_while_collecting_error_names_the_live_side(self):
        a, b = HistogramBoard(), HistogramBoard()
        a.start()
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        assert "this board" in str(excinfo.value)
        a.stop()
        b.start()
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        assert "the other board" in str(excinfo.value)
        a.start()
        with pytest.raises(MonitorCommandError) as excinfo:
            a.merge_from(b)
        assert "this board and the other board" in str(excinfo.value)

    def test_dump_sparse_matches_dense_dump(self):
        board = HistogramBoard()
        board.start()
        board.strobe(3, repeat=4)
        board.strobe(9_999, stalled=True, repeat=2)
        counts, stalled = board.dump_sparse()
        assert counts == {3: 4}
        assert stalled == {9_999: 2}
        dense_counts, dense_stalled = board.dump()
        assert all(dense_counts[b] == c for b, c in counts.items())
        assert all(dense_stalled[b] == c for b, c in stalled.items())
        assert sum(dense_counts) == sum(counts.values())

    def test_dump_returns_both_banks(self):
        board = HistogramBoard()
        board.start()
        board.strobe(0)
        counts, stalled = board.dump()
        assert counts[0] == 1 and stalled[0] == 0
        assert len(counts) == board.buckets

    @given(st.lists(st.integers(min_value=0, max_value=15_999), max_size=60))
    def test_total_equals_sum_of_strobes(self, addresses):
        board = HistogramBoard()
        board.start()
        for address in addresses:
            board.strobe(address)
        assert board.total_cycles() == len(addresses)


class TestInterfaceBoard:
    def test_identity_mapping_for_used_region(self):
        interface = MonitorInterface(HistogramBoard())
        assert interface.bucket_for(0x0F80) == 0x0F80

    def test_overflow_addresses_fold_to_top_bucket(self):
        interface = MonitorInterface(HistogramBoard())
        assert interface.bucket_for(16_383) == 15_999

    def test_out_of_range_upc_rejected(self):
        interface = MonitorInterface(HistogramBoard())
        with pytest.raises(MonitorCommandError):
            interface.bucket_for(16_384)

    def test_microcycle_counts(self):
        monitor = UPCMonitor.build()
        monitor.start()
        monitor.observe(0x400)
        monitor.observe(0x400, stalled=True, repeat=2)
        assert monitor.board.read_bucket(0x400) == (1, 2)


class TestLayoutFitsBoard:
    def test_every_allocated_address_maps_injectively(self):
        """Every control-store address the layout uses must get its own
        bucket (the fold at the top must never be exercised)."""
        from repro.ucode.routines import build_layout

        layout = build_layout()
        interface = MonitorInterface(HistogramBoard())
        buckets = [interface.bucket_for(a) for a in layout.store.used_addresses()]
        assert len(buckets) == len(set(buckets))
        assert max(buckets) < 15_999

"""Unit tests for histogram reduction (raw counts -> Table 8 matrix)."""

import pytest

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.core.reduction import COLUMNS, ROWS, reduce_histogram
from repro.cpu import VAX780
from repro.ucode.microword import MicroSlot


def run_and_reduce(build):
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor)
    asm = Assembler(origin=0x200)
    build(asm)
    asm.instr("HALT")
    machine.load_program(asm.assemble(), 0x200)
    monitor.start()
    machine.run()
    monitor.stop()
    counts, stalled = monitor.board.dump()
    reduction = reduce_histogram(counts, stalled, machine.layout, events=machine.events)
    return machine, reduction


class TestCycleConservation:
    def test_matrix_total_equals_ebox_cycles(self):
        def body(asm):
            asm.instr("MOVL", "#10", "R1")
            asm.label("loop")
            asm.instr("ADDL2", "#1", "R0")
            asm.instr("SOBGTR", "R1", "loop")

        machine, reduction = run_and_reduce(body)
        assert reduction.total_cycles == machine.ebox.cycle_count

    def test_every_cycle_lands_in_exactly_one_cell(self):
        def body(asm):
            for _ in range(5):
                asm.instr("MOVL", "#1", "R0")

        machine, reduction = run_and_reduce(body)
        cell_sum = sum(sum(cols.values()) for cols in reduction.matrix.values())
        assert cell_sum == reduction.total_cycles

    def test_rows_and_columns_complete(self):
        def body(asm):
            asm.instr("NOP")

        _, reduction = run_and_reduce(body)
        assert set(reduction.matrix) == set(ROWS)
        for columns in reduction.matrix.values():
            assert set(columns) == set(COLUMNS)


class TestInstructionCounting:
    def test_instruction_count_from_decode_dispatch(self):
        def body(asm):
            for _ in range(7):
                asm.instr("NOP")

        machine, reduction = run_and_reduce(body)
        assert reduction.instructions == 8  # 7 NOPs + HALT
        assert reduction.instructions == machine.events.instructions

    def test_cpi(self):
        def body(asm):
            asm.instr("MOVL", "#1", "R0")

        machine, reduction = run_and_reduce(body)
        assert reduction.cpi == pytest.approx(
            machine.ebox.cycle_count / machine.events.instructions
        )


class TestColumnClassification:
    def test_reads_and_stalls_separate(self):
        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("MOVL", "(R1)", "R2")  # cold read: 1 read + stalls
            asm.instr("HALT")
            asm.align(8)
            asm.label("data")
            asm.long(1)

        machine, reduction = run_and_reduce(body)
        spec1 = reduction.matrix["spec1"]
        assert spec1["read"] >= 1
        assert spec1["rstall"] >= 6

    def test_writes_classified_by_specifier_position(self):
        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("CLRL", "(R1)")  # first specifier writes
            asm.instr("MOVL", "#5", "(R1)")  # second specifier writes
            asm.instr("HALT")
            asm.align(4)
            asm.label("data")
            asm.long(0)

        _, reduction = run_and_reduce(body)
        assert reduction.matrix["spec1"]["write"] >= 1
        assert reduction.matrix["spec26"]["write"] >= 1

    def test_decode_row_compute_equals_instructions(self):
        def body(asm):
            for _ in range(4):
                asm.instr("NOP")

        _, reduction = run_and_reduce(body)
        assert reduction.matrix["decode"]["compute"] == reduction.instructions

    def test_exec_rows_by_group(self):
        def body(asm):
            asm.instr("MOVC3", "#8", "src", "dst")
            asm.instr("HALT")
            asm.label("src")
            asm.space(8, fill=0x41)
            asm.label("dst")
            asm.space(8)

        _, reduction = run_and_reduce(body)
        assert reduction.matrix["character"]["compute"] > 0
        assert reduction.matrix["decimal"]["compute"] == 0


class TestRoutineTotals:
    def test_tb_miss_routine_isolated(self):
        def body(asm):
            asm.instr("MOVAL", "far", "R1")
            asm.instr("MOVL", "(R1)", "R2")
            asm.instr("HALT")
            asm.space(600)
            asm.align(4)
            asm.label("far")
            asm.long(9)

        _, reduction = run_and_reduce(body)
        normal, stalled = reduction.routine_total("memmgmt.tb_miss")
        assert normal > 0

    def test_unknown_prefix_is_zero(self):
        def body(asm):
            asm.instr("NOP")

        _, reduction = run_and_reduce(body)
        assert reduction.routine_total("no.such.routine") == (0, 0)

    def test_exec_group_accessor_validates(self):
        def body(asm):
            asm.instr("NOP")

        _, reduction = run_and_reduce(body)
        with pytest.raises(KeyError):
            reduction.exec_cycles_for_group("decode")
        assert "compute" in reduction.exec_cycles_for_group("simple")


class TestPerInstructionView:
    def test_per_instruction_scales(self):
        def body(asm):
            for _ in range(9):
                asm.instr("NOP")

        _, reduction = run_and_reduce(body)
        per = reduction.per_instruction()
        assert per["decode"]["compute"] == pytest.approx(1.0)

    def test_empty_reduction_safe(self):
        from repro.core.reduction import reduce_histogram
        from repro.ucode.routines import build_layout

        layout = build_layout()
        reduction = reduce_histogram([0] * 16_000, [0] * 16_000, layout)
        assert reduction.instructions == 0
        assert reduction.cpi == 0.0
        per = reduction.per_instruction()
        assert per["decode"]["compute"] == 0.0

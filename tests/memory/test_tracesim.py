"""Tests for the trace-driven cache/TB simulators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.tracesim import (
    ReferenceTrace,
    TraceEntry,
    TraceRecorder,
    flush_interval_sweep,
    simulate_cache,
    simulate_tb,
)


def make_trace(addresses, kind="dread", pid=0):
    trace = ReferenceTrace()
    for va in addresses:
        trace.append(kind, va, pid)
    return trace


class TestReferenceTrace:
    def test_append_and_len(self):
        trace = make_trace([0x100, 0x200])
        assert len(trace) == 2
        assert trace.entries[0] == TraceEntry("dread", 0x100, 0)

    def test_switch_points_on_pid_change(self):
        trace = ReferenceTrace()
        trace.append("dread", 0x100, 0)
        trace.append("dread", 0x200, 1)
        trace.append("dread", 0x300, 1)
        trace.append("dread", 0x400, 0)
        assert trace.switch_points == [1, 3]
        assert trace.mean_switch_interval == pytest.approx(4 / 3)

    def test_no_switches(self):
        trace = make_trace([1, 2, 3])
        assert trace.mean_switch_interval == 3.0


class TestCacheSimulator:
    def test_repeat_reference_hits(self):
        trace = make_trace([0x100, 0x100, 0x100])
        result = simulate_cache(trace)
        assert result.read_misses == 1 and result.references == 3

    def test_block_granularity(self):
        trace = make_trace([0x100, 0x104, 0x108])
        result = simulate_cache(trace, block_size=8)
        assert result.read_misses == 2  # 0x100/0x104 share a block

    def test_capacity_eviction(self):
        # Stream far beyond a tiny cache: every reference misses.
        trace = make_trace(range(0, 64 * 1024, 8))
        result = simulate_cache(trace, size_bytes=256, ways=1, block_size=8)
        assert result.read_misses == result.references

    def test_bigger_cache_never_worse(self):
        addresses = [(i * 232) % 16384 for i in range(4000)]
        trace = make_trace(addresses)
        small = simulate_cache(trace, size_bytes=1024)
        large = simulate_cache(trace, size_bytes=16 * 1024)
        assert large.read_misses <= small.read_misses

    def test_write_no_allocate(self):
        trace = ReferenceTrace()
        trace.append("write", 0x100, 0)
        trace.append("dread", 0x100, 0)
        result = simulate_cache(trace, write_allocate=False)
        assert result.write_misses == 1 and result.read_misses == 1

    def test_write_allocate(self):
        trace = ReferenceTrace()
        trace.append("write", 0x100, 0)
        trace.append("dread", 0x100, 0)
        result = simulate_cache(trace, write_allocate=True)
        assert result.read_misses == 0

    def test_pid_tagging_prevents_cross_process_hits(self):
        trace = ReferenceTrace()
        trace.append("dread", 0x100, 0)
        trace.append("dread", 0x100, 1)
        result = simulate_cache(trace)
        assert result.read_misses == 2

    def test_stream_split(self):
        trace = ReferenceTrace()
        trace.append("iread", 0x100, 0)
        trace.append("dread", 0x900, 0)
        result = simulate_cache(trace)
        assert result.i_read_misses == 1 and result.d_read_misses == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            simulate_cache(make_trace([0]), size_bytes=100, ways=3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300))
    def test_misses_never_exceed_references(self, addresses):
        result = simulate_cache(make_trace(addresses))
        assert 0 < result.references == len(addresses)
        assert result.read_misses <= result.references


class TestTBSimulator:
    def test_page_locality(self):
        # Same page: one miss.
        trace = make_trace([0x1000, 0x1004, 0x11FF])
        result = simulate_tb(trace)
        assert result.misses == 1

    def test_flush_on_switch(self):
        trace = ReferenceTrace()
        trace.append("dread", 0x1000, 0)
        trace.append("dread", 0x1000, 1)  # switch: flush, and new pid tag
        trace.append("dread", 0x1000, 1)
        result = simulate_tb(trace, flush_on_switch=True)
        assert result.misses == 2 and result.flushes == 1

    def test_system_half_survives_flushes(self):
        trace = ReferenceTrace()
        trace.append("dread", 0x8000_1000, 0)
        trace.append("dread", 0x1000, 1)  # switch flushes process half
        trace.append("dread", 0x8000_1000, 1)  # system entry still resident
        result = simulate_tb(trace)
        assert result.misses == 2  # system page missed only once

    def test_synthetic_flush_interval(self):
        trace = make_trace([0x1000] * 100)
        frequent = simulate_tb(trace, flush_interval=10)
        rare = simulate_tb(trace, flush_interval=50)
        assert frequent.misses > rare.misses
        assert frequent.flushes > rare.flushes

    def test_flush_interval_sweep_monotone(self):
        # Re-touching a fixed page set: longer intervals can only help.
        addresses = [(i % 20) * 512 for i in range(2000)]
        trace = make_trace(addresses)
        sweep = flush_interval_sweep(trace, intervals=[10, 100, 1000])
        rates = [rate for _, rate in sweep]
        assert rates[0] >= rates[1] >= rates[2]

    def test_smaller_tb_misses_more(self):
        addresses = [(i * 7919) % (1 << 22) for i in range(3000)]
        trace = make_trace(addresses)
        small = simulate_tb(trace, half_entries=8, flush_on_switch=False)
        large = simulate_tb(trace, half_entries=256, flush_on_switch=False)
        assert small.misses >= large.misses


class TestTraceRecorder:
    def test_capture_from_running_kernel(self):
        from repro.asm import Assembler
        from repro.cpu import VAX780
        from repro.vms import VMSKernel

        machine = VAX780()
        kernel = VMSKernel(machine)
        asm = Assembler(origin=0x1000)
        asm.instr("MOVAL", "@#0x4000", "R1")
        asm.label("loop")
        asm.instr("MOVL", "(R1)", "R2")
        asm.instr("MOVL", "R2", "4(R1)")
        asm.instr("BRB", "loop")
        kernel.create_process("p", asm.assemble(), 0x1000)
        kernel.boot()
        recorder = TraceRecorder(kernel)
        recorder.start()
        kernel.run(max_instructions=500)
        trace = recorder.stop()
        kinds = {entry.kind for entry in trace.entries}
        assert {"iread", "dread", "write"} <= kinds
        assert len(trace) > 500  # I-stream alone generates plenty
        # Replay sanity: the captured trace drives both simulators.
        assert simulate_cache(trace).references == len(trace)
        assert simulate_tb(trace).references == len(trace)

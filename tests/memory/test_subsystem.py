"""Unit tests for the wired memory subsystem (TB -> cache -> SBI + WB)."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    MemorySubsystem,
    PageFault,
    PageTable,
    PhysicalMemory,
    TBMiss,
)
from repro.memory.pagetable import PAGE_SIZE
from repro.memory.write_buffer import DEFAULT_DRAIN_CYCLES


def make_subsystem(pages=16):
    """A subsystem with an identity-ish P0 mapping of ``pages`` pages.

    Page tables live at physical 0x10000; P0 page n maps to frame n.
    """
    physical = PhysicalMemory(1024 * 1024)
    subsystem = MemorySubsystem(physical=physical)
    table = PageTable(physical, base_pa=0x10000, length=pages)
    for vpn in range(pages):
        table.map(vpn, pfn=vpn)
    subsystem.set_page_table("p0", table)
    return subsystem


class TestTranslationPath:
    def test_first_read_raises_tb_miss(self):
        subsystem = make_subsystem()
        with pytest.raises(TBMiss):
            subsystem.read(0x100, 4)

    def test_service_then_read(self):
        subsystem = make_subsystem()
        subsystem.physical.write(0x100, 4, 0xCAFEBABE)
        subsystem.service_tb_miss(0x100)
        outcome = subsystem.read(0x100, 4)
        assert outcome.value == 0xCAFEBABE

    def test_pte_fetch_reports_stall_on_cold_cache(self):
        subsystem = make_subsystem()
        fill = subsystem.service_tb_miss(0x100)
        assert fill.pte_cache_miss and fill.pte_read_stall_cycles > 0

    def test_adjacent_ptes_share_cache_block(self):
        # PTEs are 4 bytes; an 8-byte block holds two, so the second
        # page's miss service should hit in the cache.
        subsystem = make_subsystem()
        first = subsystem.service_tb_miss(0 * PAGE_SIZE)
        second = subsystem.service_tb_miss(1 * PAGE_SIZE)
        assert first.pte_cache_miss and not second.pte_cache_miss

    def test_unmapped_page_faults(self):
        subsystem = make_subsystem(pages=2)
        with pytest.raises(PageFault):
            subsystem.service_tb_miss(10 * PAGE_SIZE)

    def test_invalid_pte_faults(self):
        subsystem = make_subsystem(pages=4)
        subsystem.page_tables["p0"].unmap(2)
        with pytest.raises(PageFault):
            subsystem.service_tb_miss(2 * PAGE_SIZE)

    def test_region_without_table_faults(self):
        subsystem = make_subsystem()
        with pytest.raises(PageFault):
            subsystem.service_tb_miss(0x80000000)


class TestReadTiming:
    def test_cold_read_stalls_warm_read_does_not(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        cold = subsystem.read(0x100, 4)
        warm = subsystem.read(0x100, 4)
        assert cold.cache_misses == 1 and cold.stall_cycles > 0
        assert warm.cache_misses == 0 and warm.stall_cycles == 0

    def test_aligned_longword_is_single_ref(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        outcome = subsystem.read(0x100, 4)
        assert outcome.physical_refs == 1 and not outcome.unaligned

    def test_unaligned_longword_is_two_refs(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        outcome = subsystem.read(0x102, 4)
        assert outcome.physical_refs == 2 and outcome.unaligned
        assert subsystem.alignment.unaligned_reads == 1

    def test_quad_read_is_two_refs_but_not_unaligned(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        outcome = subsystem.read(0x100, 8)
        assert outcome.physical_refs == 2 and not outcome.unaligned

    def test_byte_read_value(self):
        subsystem = make_subsystem()
        subsystem.physical.write(0x103, 1, 0xAB)
        subsystem.service_tb_miss(0x100)
        assert subsystem.read(0x103, 1).value == 0xAB

    @given(st.integers(min_value=0, max_value=PAGE_SIZE - 4), st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_read_returns_physical_contents(self, offset, value):
        subsystem = make_subsystem()
        subsystem.physical.write(offset, 4, value)
        subsystem.service_tb_miss(0)
        assert subsystem.read(offset, 4).value == value


class TestWriteTiming:
    def test_back_to_back_writes_stall(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        first = subsystem.write(0x100, 4, 1, now=0)
        second = subsystem.write(0x104, 4, 2, now=1)
        assert first.stall_cycles == 0
        assert second.stall_cycles == DEFAULT_DRAIN_CYCLES - 1

    def test_spaced_writes_do_not_stall(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        subsystem.write(0x100, 4, 1, now=0)
        outcome = subsystem.write(0x104, 4, 2, now=DEFAULT_DRAIN_CYCLES)
        assert outcome.stall_cycles == 0

    def test_write_through_updates_memory(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        subsystem.write(0x100, 4, 0x12345678, now=0)
        assert subsystem.physical.read(0x100, 4) == 0x12345678

    def test_write_miss_does_not_allocate(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        subsystem.write(0x100, 4, 5, now=0)
        # The line was never read, so a subsequent read must miss.
        outcome = subsystem.read(0x100, 4, now=20)
        assert outcome.cache_misses == 1

    def test_write_hit_updates_cache_line(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        subsystem.read(0x100, 4)  # allocate
        outcome = subsystem.write(0x100, 4, 5, now=20)
        assert outcome.cache_hits == 1

    def test_unaligned_write_counted(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x100)
        outcome = subsystem.write(0x102, 4, 5, now=0)
        assert outcome.unaligned and subsystem.alignment.unaligned_writes == 1


class TestIStreamPath:
    def test_istream_tb_miss_sets_flag_not_exception(self):
        subsystem = make_subsystem()
        outcome = subsystem.istream_fetch(0x200)
        assert outcome.tb_miss and not outcome.cache_hit

    def test_istream_fetch_after_fill(self):
        subsystem = make_subsystem()
        subsystem.physical.write(0x200, 4, 0x11223344)
        subsystem.service_tb_miss(0x200)
        outcome = subsystem.istream_fetch(0x200)
        assert not outcome.tb_miss and outcome.value == 0x11223344

    def test_istream_fetch_aligns_down(self):
        subsystem = make_subsystem()
        subsystem.physical.write(0x200, 4, 0xAABBCCDD)
        subsystem.service_tb_miss(0x200)
        outcome = subsystem.istream_fetch(0x203)
        assert outcome.value == 0xAABBCCDD

    def test_istream_miss_counts_in_i_stream_stats(self):
        subsystem = make_subsystem()
        subsystem.service_tb_miss(0x200)
        subsystem.istream_fetch(0x200)
        assert subsystem.cache.stats.i_read_misses == 1

    def test_istream_page_valid(self):
        subsystem = make_subsystem(pages=2)
        assert subsystem.istream_page_valid(0x0)
        assert not subsystem.istream_page_valid(100 * PAGE_SIZE)

"""Unit tests for VAX page tables and address-region helpers."""

import pytest

from repro.memory import PAGE_SIZE, PageTable, PageTableEntry, PhysicalMemory
from repro.memory.pagetable import PAGE_SHIFT, region_of, vpn_of


class TestRegions:
    def test_p0_p1_system(self):
        assert region_of(0x0000_0000) == "p0"
        assert region_of(0x3FFF_FFFF) == "p0"
        assert region_of(0x4000_0000) == "p1"
        assert region_of(0x7FFF_FFFF) == "p1"
        assert region_of(0x8000_0000) == "system"
        assert region_of(0xBFFF_FFFF) == "system"

    def test_vpn_is_region_relative(self):
        assert vpn_of(0x0000_0000) == 0
        assert vpn_of(0x0000_0200) == 1
        assert vpn_of(0x4000_0200) == 1  # P1 counts from its own base
        assert vpn_of(0x8000_0400) == 2

    def test_page_constants(self):
        assert PAGE_SIZE == 512 and (1 << PAGE_SHIFT) == PAGE_SIZE


class TestPageTableEntry:
    def test_pack_unpack_round_trip(self):
        entry = PageTableEntry(pfn=0x1234, valid=True, writable=False)
        assert PageTableEntry.unpack(entry.pack()) == entry

    def test_invalid_entry(self):
        entry = PageTableEntry.unpack(0)
        assert not entry.valid and entry.pfn == 0

    def test_flags_independent(self):
        writable = PageTableEntry(pfn=1, valid=True, writable=True)
        readonly = PageTableEntry(pfn=1, valid=True, writable=False)
        assert writable.pack() != readonly.pack()


class TestPageTable:
    def test_map_and_lookup(self):
        physical = PhysicalMemory(64 * 1024)
        table = PageTable(physical, base_pa=0x1000, length=16)
        table.map(3, pfn=42)
        entry = table.lookup(3)
        assert entry.valid and entry.pfn == 42

    def test_ptes_live_in_physical_memory(self):
        # The property the TB-miss timing depends on: PTEs are fetchable
        # at predictable physical addresses.
        physical = PhysicalMemory(64 * 1024)
        table = PageTable(physical, base_pa=0x1000, length=16)
        table.map(5, pfn=7)
        assert table.pte_address(5) == 0x1000 + 20
        raw = physical.read(0x1000 + 20, 4)
        assert PageTableEntry.unpack(raw).pfn == 7

    def test_unmap(self):
        physical = PhysicalMemory(64 * 1024)
        table = PageTable(physical, base_pa=0x1000, length=16)
        table.map(2, pfn=9)
        table.unmap(2)
        assert not table.lookup(2).valid

    def test_out_of_range_vpn_rejected(self):
        physical = PhysicalMemory(64 * 1024)
        table = PageTable(physical, base_pa=0x1000, length=4)
        with pytest.raises(IndexError):
            table.pte_address(4)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            PageTable(PhysicalMemory(1024), base_pa=0x1002, length=4)

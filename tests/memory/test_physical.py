"""Unit tests for physical memory."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import PhysicalMemory


class TestPhysicalMemory:
    def test_read_back_longword(self):
        mem = PhysicalMemory(1024)
        mem.write(100, 4, 0xDEADBEEF)
        assert mem.read(100, 4) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = PhysicalMemory(16)
        mem.write(0, 4, 0x11223344)
        assert mem.read(0, 1) == 0x44
        assert mem.read(3, 1) == 0x11

    def test_write_masks_value(self):
        mem = PhysicalMemory(16)
        mem.write(0, 1, 0x1FF)
        assert mem.read(0, 1) == 0xFF

    def test_load_and_dump(self):
        mem = PhysicalMemory(64)
        mem.load(8, b"\x01\x02\x03")
        assert mem.dump(8, 3) == b"\x01\x02\x03"

    def test_out_of_bounds_read_raises(self):
        mem = PhysicalMemory(16)
        with pytest.raises(IndexError):
            mem.read(15, 4)

    def test_out_of_bounds_write_raises(self):
        mem = PhysicalMemory(16)
        with pytest.raises(IndexError):
            mem.write(-1, 1, 0)

    def test_oversize_load_raises(self):
        mem = PhysicalMemory(4)
        with pytest.raises(IndexError):
            mem.load(2, b"abc")

    def test_default_size_is_8mb(self):
        assert PhysicalMemory().size == 8 * 1024 * 1024

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)

    @given(
        st.integers(min_value=0, max_value=1020),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_longword_roundtrip_property(self, address, value):
        mem = PhysicalMemory(1024)
        mem.write(address, 4, value)
        assert mem.read(address, 4) == value

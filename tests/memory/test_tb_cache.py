"""Unit tests for the translation buffer and data cache."""

import pytest

from repro.memory import Cache, TranslationBuffer, TBMiss
from repro.memory.pagetable import PAGE_SIZE
from repro.memory.tb import HALF_ENTRIES


SYSTEM_VA = 0x80000000


class TestTranslationBuffer:
    def test_miss_then_fill_then_hit(self):
        tb = TranslationBuffer()
        with pytest.raises(TBMiss):
            tb.translate(0x1000)
        tb.fill(0x1000, pfn=7, writable=True)
        pa = tb.translate(0x1000)
        assert pa == 7 * PAGE_SIZE

    def test_offset_preserved(self):
        tb = TranslationBuffer()
        tb.fill(0x1200, pfn=3, writable=True)
        assert tb.translate(0x1234) == 3 * PAGE_SIZE + 0x34

    def test_miss_carries_stream(self):
        tb = TranslationBuffer()
        with pytest.raises(TBMiss) as excinfo:
            tb.translate(0x2000, stream="i")
        assert excinfo.value.stream == "i"
        assert tb.stats.i_misses == 1 and tb.stats.d_misses == 0

    def test_process_flush_keeps_system_half(self):
        tb = TranslationBuffer()
        tb.fill(0x1000, pfn=1, writable=True)  # process space
        tb.fill(SYSTEM_VA + 0x1000, pfn=2, writable=True)  # system space
        tb.flush_process()
        assert not tb.probe(0x1000)
        assert tb.probe(SYSTEM_VA + 0x1000)
        assert tb.stats.process_flushes == 1

    def test_direct_mapped_conflict(self):
        tb = TranslationBuffer()
        va1 = 0
        va2 = HALF_ENTRIES * PAGE_SIZE  # same index, different tag
        tb.fill(va1, pfn=1, writable=True)
        tb.fill(va2, pfn=2, writable=True)
        assert not tb.probe(va1)  # evicted
        assert tb.probe(va2)

    def test_p0_p1_do_not_alias(self):
        tb = TranslationBuffer()
        p0_va = 0x1000
        p1_va = 0x40001000  # same relative vpn, P1 region
        tb.fill(p0_va, pfn=1, writable=True)
        assert not tb.probe(p1_va)

    def test_invalidate_single(self):
        tb = TranslationBuffer()
        tb.fill(0x1000, pfn=1, writable=True)
        tb.invalidate(0x1000)
        assert not tb.probe(0x1000)

    def test_miss_rate(self):
        tb = TranslationBuffer()
        with pytest.raises(TBMiss):
            tb.translate(0x1000)
        tb.fill(0x1000, pfn=1, writable=True)
        tb.translate(0x1000)
        tb.translate(0x1000)
        assert tb.stats.miss_rate == pytest.approx(1 / 3)

    def test_resident_count(self):
        tb = TranslationBuffer()
        assert tb.resident_count() == 0
        tb.fill(0x1000, pfn=1, writable=True)
        tb.fill(SYSTEM_VA, pfn=2, writable=True)
        assert tb.resident_count() == 2


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache()
        assert cache.read(0x100) is False
        assert cache.read(0x100) is True

    def test_block_granularity(self):
        cache = Cache()
        cache.read(0x100)
        assert cache.read(0x104) is True  # same 8-byte block
        assert cache.read(0x108) is False  # next block

    def test_two_way_associativity(self):
        cache = Cache()
        set_stride = cache.sets * cache.block_size
        cache.read(0x0)
        cache.read(set_stride)  # same set, second way
        assert cache.probe(0x0) and cache.probe(set_stride)
        cache.read(2 * set_stride)  # evicts LRU (0x0)
        assert not cache.probe(0x0)
        assert cache.probe(set_stride)

    def test_lru_respects_recency(self):
        cache = Cache()
        stride = cache.sets * cache.block_size
        cache.read(0x0)
        cache.read(stride)
        cache.read(0x0)  # refresh way holding 0x0
        cache.read(2 * stride)  # should evict `stride` now
        assert cache.probe(0x0)
        assert not cache.probe(stride)

    def test_write_no_allocate(self):
        cache = Cache()
        assert cache.write(0x200) is False
        assert cache.probe(0x200) is False  # miss did not allocate
        cache.read(0x200)
        assert cache.write(0x200) is True

    def test_stream_stats_split(self):
        cache = Cache()
        cache.read(0x100, stream="i")
        cache.read(0x300, stream="d")
        assert cache.stats.i_read_misses == 1
        assert cache.stats.d_read_misses == 1

    def test_geometry_default_is_8kb_2way(self):
        cache = Cache()
        assert cache.sets * cache.ways * cache.block_size == 8 * 1024
        assert cache.ways == 2 and cache.block_size == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=3, block_size=8)

    def test_invalidate_all(self):
        cache = Cache()
        cache.read(0x100)
        cache.invalidate_all()
        assert not cache.probe(0x100)

    def test_blocks_spanned(self):
        cache = Cache()
        assert cache.blocks_spanned(0x100, 4) == 1
        assert cache.blocks_spanned(0x106, 4) == 2

    def test_miss_rate_statistic(self):
        cache = Cache()
        cache.read(0x0)
        cache.read(0x0)
        assert cache.stats.read_miss_rate == pytest.approx(0.5)

"""Unit tests for the write buffer and the SBI queue model."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.sbi import SBI
from repro.memory.write_buffer import WriteBuffer


class TestWriteBuffer:
    def test_idle_buffer_accepts_immediately(self):
        wb = WriteBuffer()
        assert wb.submit(now=0) == 0

    def test_busy_buffer_stalls_remaining_time(self):
        wb = WriteBuffer(drain_cycles=6)
        wb.submit(now=0)
        assert wb.submit(now=2) == 4

    def test_stall_extends_occupancy(self):
        wb = WriteBuffer(drain_cycles=6)
        wb.submit(now=0)
        wb.submit(now=2)  # stalls 4, accepted at 6, drains at 12
        assert wb.busy_cycles_remaining(now=6) == 6

    def test_exact_boundary_no_stall(self):
        wb = WriteBuffer(drain_cycles=6)
        wb.submit(now=0)
        assert wb.submit(now=6) == 0

    def test_stats(self):
        wb = WriteBuffer(drain_cycles=6)
        wb.submit(now=0)
        wb.submit(now=1)
        assert wb.stats.writes == 2
        assert wb.stats.stalled_writes == 1
        assert wb.stats.stall_cycles == 5

    def test_reset(self):
        wb = WriteBuffer()
        wb.submit(now=0)
        wb.reset()
        assert wb.submit(now=1) == 0

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40))
    def test_total_time_conserved(self, gaps):
        """However writes are spaced, each occupies exactly drain_cycles
        of buffer time: final drain completion = arrivals + stalls + drain."""
        wb = WriteBuffer(drain_cycles=6)
        now = 0
        for gap in gaps:
            now += gap
            stall = wb.submit(now)
            now += stall  # the EBOX waits out the stall
        assert wb.busy_cycles_remaining(now) == 6


class TestSBIQueueing:
    def test_legacy_fixed_latency(self):
        sbi = SBI()
        assert sbi.read_block() == 6

    def test_uncontended_read_costs_base_latency(self):
        sbi = SBI()
        assert sbi.read_block(now=100) == 6

    def test_back_to_back_reads_queue(self):
        sbi = SBI()
        assert sbi.read_block(now=0) == 6  # busy until 6
        assert sbi.read_block(now=2) == 10  # waits 4, then 6

    def test_spaced_reads_do_not_queue(self):
        sbi = SBI()
        sbi.read_block(now=0)
        assert sbi.read_block(now=6) == 6

    def test_queueing_counted(self):
        sbi = SBI()
        sbi.read_block(now=0)
        sbi.read_block(now=0)
        assert sbi.stats.queueing_cycles == 6
        assert sbi.stats.read_transactions == 2

    def test_busy_cycles_remaining(self):
        sbi = SBI()
        sbi.read_block(now=0)
        assert sbi.busy_cycles_remaining(3) == 3
        assert sbi.busy_cycles_remaining(10) == 0

    def test_writes_counted_but_not_queued(self):
        sbi = SBI()
        sbi.write_longword()
        assert sbi.stats.write_transactions == 1
        assert sbi.read_block(now=0) == 6  # writes do not hold the queue

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30))
    def test_stalls_at_least_base_latency(self, arrivals):
        sbi = SBI()
        now = 0
        for gap in arrivals:
            now += gap
            stall = sbi.read_block(now=now)
            assert stall >= 6
            now += stall

"""Unit tests for the opcode table and the paper's group taxonomy."""

import pytest

from repro.isa.opcodes import (
    OPCODES,
    BranchClass,
    OpcodeGroup,
    opcode_by_mnemonic,
    opcodes_in_branch_class,
    opcodes_in_group,
)
from repro.isa.specifiers import AccessType, DataType


class TestTableIntegrity:
    def test_no_duplicate_codes(self):
        assert len(OPCODES) == len({op.code for op in OPCODES.values()})

    def test_no_duplicate_mnemonics(self):
        assert len(OPCODES) == len({op.mnemonic for op in OPCODES.values()})

    def test_every_group_is_populated(self):
        for group in OpcodeGroup:
            assert opcodes_in_group(group), "group {} has no opcodes".format(group)

    def test_every_branch_class_is_populated(self):
        for branch_class in BranchClass:
            assert opcodes_in_branch_class(branch_class)

    def test_all_codes_are_single_byte(self):
        assert all(0 <= op.code <= 0xFF for op in OPCODES.values())

    def test_operand_count_never_exceeds_six(self):
        # "zero to six operand specifiers" (paper Section 2.1)
        assert all(len(op.operands) <= 6 for op in OPCODES.values())


class TestWellKnownEncodings:
    """Spot-check real VAX opcode byte values against the architecture manual."""

    @pytest.mark.parametrize(
        "mnemonic,code",
        [
            ("MOVL", 0xD0),
            ("ADDL2", 0xC0),
            ("ADDL3", 0xC1),
            ("BRB", 0x11),
            ("BRW", 0x31),
            ("BEQL", 0x13),
            ("BNEQ", 0x12),
            ("CALLS", 0xFB),
            ("RET", 0x04),
            ("RSB", 0x05),
            ("MOVC3", 0x28),
            ("SOBGTR", 0xF5),
            ("CASEL", 0xCF),
            ("CHMK", 0xBC),
            ("REI", 0x02),
            ("PUSHL", 0xDD),
            ("EXTV", 0xEE),
            ("MULL2", 0xC4),
            ("ADDF2", 0x40),
        ],
    )
    def test_opcode_byte(self, mnemonic, code):
        assert opcode_by_mnemonic(mnemonic).code == code

    def test_lookup_is_case_insensitive(self):
        assert opcode_by_mnemonic("movl") is opcode_by_mnemonic("MOVL")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            opcode_by_mnemonic("FNORD")


class TestGroupTaxonomy:
    """The paper's Table 1 group definitions."""

    def test_moves_and_branches_are_simple(self):
        for mnemonic in ["MOVL", "ADDL2", "BEQL", "BRB", "SOBGTR", "BSBB", "RSB", "JMP", "CASEL"]:
            assert opcode_by_mnemonic(mnemonic).group is OpcodeGroup.SIMPLE

    def test_integer_multiply_divide_counts_as_float(self):
        # Table 1: "Floating point, Integer multiply/divide"
        for mnemonic in ["MULL2", "DIVL3", "EMUL", "EDIV", "ADDF2"]:
            assert opcode_by_mnemonic(mnemonic).group is OpcodeGroup.FLOAT

    def test_bit_branches_are_field_group(self):
        assert opcode_by_mnemonic("BBS").group is OpcodeGroup.FIELD
        assert opcode_by_mnemonic("BBS").branch_class is BranchClass.BIT

    def test_callret_group(self):
        for mnemonic in ["CALLS", "CALLG", "RET", "PUSHR", "POPR"]:
            assert opcode_by_mnemonic(mnemonic).group is OpcodeGroup.CALLRET

    def test_system_group_contains_context_switch(self):
        for mnemonic in ["SVPCTX", "LDPCTX", "CHMK", "REI", "INSQUE", "PROBER"]:
            assert opcode_by_mnemonic(mnemonic).group is OpcodeGroup.SYSTEM


class TestBranchMetadata:
    def test_conditional_branches_use_byte_displacement(self):
        op = opcode_by_mnemonic("BNEQ")
        assert op.uses_branch_displacement
        (spec,) = op.operands
        assert spec.access is AccessType.BRANCH and spec.dtype is DataType.BYTE

    def test_brw_uses_word_displacement(self):
        (spec,) = opcode_by_mnemonic("BRW").operands
        assert spec.dtype is DataType.WORD

    def test_jmp_has_no_branch_displacement(self):
        # JMP determines its target with an ordinary address specifier.
        op = opcode_by_mnemonic("JMP")
        assert op.is_pc_changing and not op.uses_branch_displacement

    def test_ret_is_pc_changing_without_operands(self):
        op = opcode_by_mnemonic("RET")
        assert op.is_pc_changing and not op.operands

    def test_loop_branches(self):
        assert opcode_by_mnemonic("AOBLSS").branch_class is BranchClass.LOOP
        assert opcode_by_mnemonic("ACBL").branch_class is BranchClass.LOOP

    def test_non_branches_have_no_class(self):
        assert opcode_by_mnemonic("MOVL").branch_class is None
        assert not opcode_by_mnemonic("MOVL").is_pc_changing

"""Unit tests for VAX scalar data types and arithmetic flag rules."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.isa.datatypes import (
    ConditionCodes,
    add_with_flags,
    div_with_flags,
    f_floating_decode,
    f_floating_encode,
    from_signed,
    mul_with_flags,
    packed_decimal_decode,
    packed_decimal_encode,
    packed_size,
    sign_extend,
    sub_with_flags,
    to_signed,
    truncate,
)


class TestIntegerHelpers:
    def test_truncate_masks_to_width(self):
        assert truncate(0x1FFFFFFFF, 32) == 0xFFFFFFFF
        assert truncate(0x100, 8) == 0

    def test_sign_extend_byte(self):
        assert sign_extend(0x7F, 8) == 0x7F
        assert sign_extend(0x80, 8) == 0xFFFFFF80
        assert sign_extend(0xFF, 8) == 0xFFFFFFFF

    def test_sign_extend_word(self):
        assert sign_extend(0x8000, 16) == 0xFFFF8000

    def test_to_signed_roundtrip(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert from_signed(-1) == 0xFFFFFFFF

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed(from_signed(value)) == value


class TestAddSubFlags:
    def test_add_sets_carry_on_unsigned_overflow(self):
        result, cc = add_with_flags(0xFFFFFFFF, 1)
        assert result == 0
        assert cc.c and cc.z and not cc.v

    def test_add_sets_overflow_on_signed_overflow(self):
        result, cc = add_with_flags(0x7FFFFFFF, 1)
        assert result == 0x80000000
        assert cc.v and cc.n and not cc.c

    def test_sub_borrow(self):
        result, cc = sub_with_flags(0, 1)
        assert result == 0xFFFFFFFF
        assert cc.c and cc.n

    def test_sub_equal_sets_z(self):
        result, cc = sub_with_flags(42, 42)
        assert result == 0 and cc.z and not cc.c

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_add_matches_python_semantics(self, a, b):
        result, cc = add_with_flags(a, b)
        assert result == (a + b) & 0xFFFFFFFF
        assert cc.z == (result == 0)
        assert cc.n == bool(result & 0x80000000)
        assert cc.c == (a + b > 0xFFFFFFFF)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_sub_then_add_roundtrip(self, a, b):
        diff, _ = sub_with_flags(a, b)
        total, _ = add_with_flags(diff, b)
        assert total == a


class TestMulDiv:
    def test_mul_overflow_flag(self):
        _, cc = mul_with_flags(0x10000, 0x10000)
        assert cc.v

    def test_mul_simple(self):
        result, cc = mul_with_flags(6, 7)
        assert result == 42 and not cc.v

    def test_div_truncates_toward_zero(self):
        result, _ = div_with_flags(from_signed(-7), 2)
        assert to_signed(result) == -3

    def test_div_by_zero_sets_v(self):
        _, cc = div_with_flags(5, 0)
        assert cc.v

    @given(
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
    )
    def test_mul_matches_python(self, a, b):
        # Products of 16-bit values always fit in 32 bits: no overflow.
        result, cc = mul_with_flags(from_signed(a), from_signed(b))
        assert to_signed(result) == a * b
        assert not cc.v


class TestConditionCodes:
    def test_set_nz_negative(self):
        cc = ConditionCodes()
        cc.set_nz(0x80000000)
        assert cc.n and not cc.z and not cc.v

    def test_set_nz_zero(self):
        cc = ConditionCodes()
        cc.set_nz(0)
        assert cc.z and not cc.n


class TestFFloating:
    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 120.0, 3.14159, 1e10, -2.5e-5])
    def test_roundtrip_close(self, value):
        decoded = f_floating_decode(f_floating_encode(value))
        assert math.isclose(decoded, value, rel_tol=1e-6)

    def test_zero(self):
        assert f_floating_encode(0.0) == 0
        assert f_floating_decode(0) == 0.0

    def test_memory_image_is_word_swapped(self):
        # 1.0 in natural layout is 0x40800000; image swaps the halves.
        assert f_floating_encode(1.0) == 0x00004080

    def test_reserved_operand_raises(self):
        # sign=1, exp=0 natural form: natural 0x80000000 -> image 0x00008000
        with pytest.raises(ValueError):
            f_floating_decode(0x00008000)

    @given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False).filter(lambda x: x == 0 or abs(x) > 1e-30))
    def test_roundtrip_property(self, value):
        decoded = f_floating_decode(f_floating_encode(value))
        if value == 0:
            assert decoded == 0
        else:
            assert math.isclose(decoded, value, rel_tol=1e-6)


class TestPackedDecimal:
    @pytest.mark.parametrize("value,digits", [(0, 1), (5, 3), (-123, 5), (99999, 5), (-1, 31)])
    def test_roundtrip(self, value, digits):
        data = packed_decimal_encode(value, digits)
        assert len(data) == packed_size(digits)
        assert packed_decimal_decode(data, digits) == value

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            packed_decimal_encode(1000, 3)

    def test_invalid_digit_raises(self):
        with pytest.raises(ValueError):
            packed_decimal_decode(b"\xff\x0c", 2)

    @given(st.integers(min_value=-(10**15) + 1, max_value=10**15 - 1))
    def test_roundtrip_property(self, value):
        data = packed_decimal_encode(value, 15)
        assert packed_decimal_decode(data, 15) == value

"""Unit tests for specifier metadata, registers, and specifier decoding."""

import pytest

from repro.cpu.operands import IllegalSpecifier, decode_specifier, expand_float_literal
from repro.isa.datatypes import DataType
from repro.isa.registers import Reg, RegisterFile
from repro.isa.specifiers import (
    TABLE4_ROW_FOR_MODE,
    AccessType,
    AddressingMode,
    OperandSpec,
    parse_operand_signature,
)


class TestAddressingModeMetadata:
    def test_pc_modes_flagged(self):
        assert AddressingMode.IMMEDIATE.is_pc_mode
        assert AddressingMode.BYTE_RELATIVE.is_pc_mode
        assert not AddressingMode.REGISTER.is_pc_mode

    def test_base_nibbles(self):
        assert AddressingMode.REGISTER.base_nibble == 0x5
        assert AddressingMode.IMMEDIATE.base_nibble == 0x8
        assert AddressingMode.LONG_RELATIVE.base_nibble == 0xE

    def test_memory_reference_classification(self):
        assert AddressingMode.REGISTER_DEFERRED.references_memory
        assert AddressingMode.ABSOLUTE.references_memory
        assert not AddressingMode.REGISTER.references_memory
        assert not AddressingMode.SHORT_LITERAL.references_memory

    def test_deferred_classification(self):
        assert AddressingMode.BYTE_DISPLACEMENT_DEFERRED.is_deferred
        assert AddressingMode.ABSOLUTE.is_deferred
        assert not AddressingMode.BYTE_DISPLACEMENT.is_deferred

    def test_displacement_sizes(self):
        assert AddressingMode.BYTE_DISPLACEMENT.displacement_size == 1
        assert AddressingMode.WORD_RELATIVE.displacement_size == 2
        assert AddressingMode.LONG_DISPLACEMENT_DEFERRED.displacement_size == 4
        assert AddressingMode.REGISTER.displacement_size == 0

    def test_every_table4_mode_mapped(self):
        for mode in AddressingMode:
            if mode is AddressingMode.INDEXED:
                continue
            assert mode in TABLE4_ROW_FOR_MODE

    def test_relative_modes_count_as_displacement(self):
        # Table 4 folds PC-relative into the displacement row.
        assert TABLE4_ROW_FOR_MODE[AddressingMode.LONG_RELATIVE] == "displacement"


class TestSignatureParsing:
    def test_three_operand_signature(self):
        specs = parse_operand_signature("rl,rl,wl")
        assert len(specs) == 3
        assert specs[0] == OperandSpec(AccessType.READ, DataType.LONG)
        assert specs[2].access is AccessType.WRITE

    def test_empty_signature(self):
        assert parse_operand_signature("") == ()

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError):
            parse_operand_signature("xl")


class TestRegisterFile:
    def test_write_masks_32_bits(self):
        regs = RegisterFile()
        regs.write(3, 0x1_2345_6789)
        assert regs.read(3) == 0x2345_6789

    def test_special_register_properties(self):
        regs = RegisterFile()
        regs.sp = 0x1000
        regs.fp = 0x2000
        regs.ap = 0x3000
        regs.pc = 0x4000
        assert regs.read(Reg.SP) == 0x1000
        assert regs.read(Reg.FP) == 0x2000
        assert regs.read(Reg.AP) == 0x3000
        assert regs.read(Reg.PC) == 0x4000

    def test_snapshot_restore_round_trip(self):
        regs = RegisterFile()
        for index in range(16):
            regs.write(index, index * 11)
        snapshot = regs.snapshot()
        regs.write(5, 999)
        regs.restore(snapshot)
        assert regs.read(5) == 55

    def test_restore_validates_length(self):
        with pytest.raises(ValueError):
            RegisterFile().restore([0] * 15)


class TestSpecifierDecoding:
    @staticmethod
    def _decode(data, dtype=DataType.LONG):
        data = bytes(data)
        position = [0]

        def take(count):
            chunk = data[position[0] : position[0] + count]
            position[0] += count
            return chunk

        return decode_specifier(take, dtype)

    def test_short_literal(self):
        decoded = self._decode([0x2A])
        assert decoded.mode is AddressingMode.SHORT_LITERAL
        assert decoded.extension == 0x2A and decoded.length == 1

    def test_register(self):
        decoded = self._decode([0x53])
        assert decoded.mode is AddressingMode.REGISTER and decoded.register == 3

    def test_immediate_sized_by_dtype(self):
        decoded = self._decode([0x8F, 0x12], dtype=DataType.BYTE)
        assert decoded.mode is AddressingMode.IMMEDIATE
        assert decoded.extension == 0x12 and decoded.length == 2

    def test_immediate_quad(self):
        decoded = self._decode([0x8F] + [0xAA] * 8, dtype=DataType.QUAD)
        assert decoded.length == 9

    def test_displacement_sign_extended(self):
        decoded = self._decode([0xA5, 0xFC])  # B^-4(R5)
        assert decoded.mode is AddressingMode.BYTE_DISPLACEMENT
        assert decoded.extension == 0xFFFFFFFC

    def test_index_prefix(self):
        decoded = self._decode([0x42, 0x65])  # (R5)[R2]
        assert decoded.index_register == 2
        assert decoded.mode is AddressingMode.REGISTER_DEFERRED
        assert decoded.length == 2

    def test_pc_relative(self):
        decoded = self._decode([0xAF, 0x10])
        assert decoded.mode is AddressingMode.BYTE_RELATIVE
        assert decoded.extension == 0x10

    def test_double_index_rejected(self):
        with pytest.raises(IllegalSpecifier):
            self._decode([0x42, 0x43, 0x65])

    def test_literal_after_index_rejected(self):
        with pytest.raises(IllegalSpecifier):
            self._decode([0x42, 0x2A])


class TestFloatLiteralExpansion:
    @pytest.mark.parametrize(
        "bits,value",
        [(0, 0.5), (7, 0.9375), (0b001000, 1.0), (0b111111, 120.0)],
    )
    def test_expansion_table(self, bits, value):
        assert expand_float_literal(bits) == pytest.approx(value)

    def test_range_covers_paper_examples(self):
        values = {expand_float_literal(bits) for bits in range(64)}
        assert min(values) == 0.5 and max(values) == 120.0
        assert len(values) == 64

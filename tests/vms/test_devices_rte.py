"""Tests for device timers, processes, and the Remote Terminal Emulator."""

import pytest

from repro.asm import Assembler
from repro.cpu import VAX780
from repro.core.monitor import UPCMonitor
from repro.vms import DeviceBoard, DeviceTimer, VMSKernel
from repro.vms.process import PCB_BYTES, ProcessState, initialize_pcb
from repro.workloads.rte import CANNED_SCRIPTS, RemoteTerminalEmulator


class TestDeviceTimers:
    def test_fires_on_schedule(self):
        fired = []
        board = DeviceBoard(seed=3)
        board.add("t", ipl=20, period_cycles=100, callback=lambda t: fired.append(t), jitter=0.0)
        board.start(now=0)
        board.poll(now=99)
        assert fired == []
        board.poll(now=100)
        assert len(fired) == 1

    def test_catches_up_after_long_gap(self):
        fired = []
        board = DeviceBoard(seed=3)
        board.add("t", ipl=20, period_cycles=100, callback=lambda t: fired.append(1), jitter=0.0)
        board.start(now=0)
        board.poll(now=1000)
        assert len(fired) == 10

    def test_jitter_spreads_periods(self):
        timers = []
        for seed in range(5):
            board = DeviceBoard(seed=seed)
            timer = board.add("t", ipl=20, period_cycles=1000, callback=lambda t: None, jitter=0.4)
            board.start(now=0)
            timers.append(timer.next_fire)
        assert len(set(timers)) > 1  # different seeds, different phases

    def test_firings_counted(self):
        board = DeviceBoard(seed=1)
        timer = board.add("t", ipl=20, period_cycles=50, callback=lambda t: None, jitter=0.0)
        board.start(now=0)
        board.poll(now=500)
        assert timer.firings == 10


class TestProcessStructures:
    def test_pcb_layout_round_trip(self):
        machine = VAX780()
        pcb = 0x90000
        initialize_pcb(machine, pcb, entry_pc=0x1234, kernel_sp=0x8000_4000, user_sp=0xF000)
        assert machine.physical.read(pcb + 4 * 18, 4) == 0x1234  # PC
        assert machine.physical.read(pcb + 4 * 14, 4) == 0x8000_4000  # KSP
        assert machine.physical.read(pcb + 4 * 17, 4) == 0xF000  # USP
        psl = machine.physical.read(pcb + 4 * 19, 4)
        assert (psl >> 24) & 3 == 3  # user mode

    def test_pcb_kernel_mode_variant(self):
        machine = VAX780()
        initialize_pcb(machine, 0x90000, 0x1000, 0x8000_4000, 0x8000_4000, user_mode=False)
        psl = machine.physical.read(0x90000 + 4 * 19, 4)
        assert (psl >> 24) & 3 == 0

    def test_pcb_size_constant(self):
        assert PCB_BYTES == 80  # 20 longwords


class TestRTE:
    def _kernel_with_processes(self, count=2):
        machine = VAX780(monitor=UPCMonitor.build())
        kernel = VMSKernel(machine)
        asm = Assembler(origin=0x1000)
        asm.label("loop")
        asm.instr("CHMK", "#1")  # block on terminal input
        asm.instr("BRB", "loop")
        image = asm.assemble()
        for index in range(count):
            kernel.create_process("p{}".format(index), image, 0x1000)
        return machine, kernel

    def test_scripts_exist_for_all_environments(self):
        for name in ("educational", "scientific", "commercial", "timesharing"):
            assert len(CANNED_SCRIPTS[name]) > 10

    def test_keystrokes_target_blocked_processes(self):
        machine, kernel = self._kernel_with_processes()
        rte = RemoteTerminalEmulator(kernel, users=4, script_name="educational")
        kernel.processes[0].state = ProcessState.BLOCKED
        pid, char = rte.keystroke(kernel)
        assert pid == kernel.processes[0].pid
        assert 0 <= char <= 0xFF

    def test_keystrokes_follow_script(self):
        machine, kernel = self._kernel_with_processes(count=1)
        rte = RemoteTerminalEmulator(kernel, users=1, script_name="commercial", seed=5)
        script = CANNED_SCRIPTS["commercial"]
        first = rte.keystroke(kernel)
        assert chr(first[1]) in script

    def test_rte_drives_blocking_workload(self):
        machine, kernel = self._kernel_with_processes(count=2)
        RemoteTerminalEmulator(kernel, users=6, script_name="timesharing")
        kernel.boot()
        kernel.start_measurement()
        executed = kernel.run(max_instructions=20_000)
        # Both processes repeatedly block on QIO and are woken by RTE
        # keystrokes; the system keeps making progress throughout.
        assert executed == 20_000
        assert machine.events.opcode_counts["CHMK"] > 4
        assert machine.events.context_switches > 4

    def test_no_users_suppresses_interrupt(self):
        machine, kernel = self._kernel_with_processes()
        rte = RemoteTerminalEmulator(kernel, users=0, script_name="timesharing")
        assert rte.keystroke(kernel) is None

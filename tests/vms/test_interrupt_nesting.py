"""Interrupt priority, chaining, and PSL edge cases."""

import pytest

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.cpu.machine import InterruptRequest
from repro.isa.psl import AccessMode, ProcessorStatus
from repro.vms import VMSKernel


class TestProcessorStatus:
    def test_psl_pack_unpack_round_trip(self):
        psl = ProcessorStatus()
        psl.cc.n = psl.cc.c = True
        psl.ipl = 20
        psl.current_mode = AccessMode.USER
        psl.previous_mode = AccessMode.KERNEL
        psl.interrupt_stack = True
        image = psl.pack()
        other = ProcessorStatus()
        other.unpack(image)
        assert other.cc.n and other.cc.c and not other.cc.z
        assert other.ipl == 20
        assert other.current_mode is AccessMode.USER
        assert other.previous_mode is AccessMode.KERNEL
        assert other.interrupt_stack

    def test_mode_field_positions(self):
        psl = ProcessorStatus()
        psl.current_mode = AccessMode.USER
        assert (psl.pack() >> 24) & 3 == 3

    def test_is_kernel(self):
        psl = ProcessorStatus()
        assert psl.is_kernel
        psl.current_mode = AccessMode.USER
        assert not psl.is_kernel


class TestInterruptController:
    def test_highest_priority_wins(self):
        machine = VAX780()
        machine.interrupts.post(InterruptRequest(ipl=20, vector_va=0x100))
        machine.interrupts.post(InterruptRequest(ipl=24, vector_va=0x200))
        pending = machine.pending_interrupt(0)
        assert pending == (24, 0x200)

    def test_ipl_masks_lower_requests(self):
        machine = VAX780()
        machine.interrupts.post(InterruptRequest(ipl=20, vector_va=0x100))
        assert machine.pending_interrupt(20) is None
        assert machine.pending_interrupt(19) == (20, 0x100)

    def test_acknowledge_removes_request(self):
        machine = VAX780()
        machine.interrupts.post(InterruptRequest(ipl=20, vector_va=0x100))
        machine.pending_interrupt(0)
        machine.acknowledge_interrupt()
        assert machine.interrupts.pending_count == 0


class TestInterruptNesting:
    def _boot(self, clock=2_500, terminal=3_300):
        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        kernel = VMSKernel(
            machine, clock_period_cycles=clock, terminal_period_cycles=terminal
        )
        asm = Assembler(origin=0x1000)
        asm.instr("CLRL", "R0")
        asm.label("loop")
        asm.instr("INCL", "R0")
        asm.instr("BRB", "loop")
        kernel.create_process("p", asm.assemble(), 0x1000)
        kernel.boot()
        return machine, kernel

    def test_ipl_raised_during_service_restored_after(self):
        machine, kernel = self._boot()
        kernel.start_measurement()
        kernel.run(max_instructions=12_000)
        # Back in user code between interrupts, IPL must be 0 again.
        assert machine.ebox.psl.ipl == 0 or machine.ebox.psl.ipl in (3, 20, 21, 24)
        assert machine.events.interrupts_delivered > 3
        # Every delivered interrupt was matched by an REI.
        reis = machine.events.opcode_counts["REI"] + kernel.null_events.opcode_counts["REI"]
        delivered = (
            machine.events.interrupts_delivered
            + kernel.null_events.interrupts_delivered
        )
        assert reis >= delivered

    def test_software_interrupt_waits_for_ipl_drop(self):
        """A SIRR posted during a high-IPL ISR is only delivered after
        the REI drops IPL — the chaining behaviour Section 3.4 notes."""
        machine, kernel = self._boot()
        kernel.start_measurement()
        kernel.run(max_instructions=20_000)
        events = machine.events
        # Quantum-expiry clock ticks post SIRRs; the rescheduler ran.
        assert events.software_interrupt_requests > 0
        # And the machine never took a software interrupt while above its
        # level: indirectly checked by the run completing healthily.
        assert not machine.ebox.halted

    def test_user_mode_resumed_after_interrupts(self):
        machine, kernel = self._boot()
        kernel.start_measurement()
        kernel.run(max_instructions=15_000)
        # The instruction budget ends mid-user-code almost surely.
        assert machine.ebox.psl.current_mode in (AccessMode.USER, AccessMode.KERNEL)
        assert machine.ebox.regs.read(0) > 1_000  # user loop made progress


class TestModeStackSwitching:
    def test_chmk_switches_to_kernel_stack_and_back(self, harness=None):
        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        kernel = VMSKernel(machine)
        asm = Assembler(origin=0x1000)
        asm.instr("MOVL", "SP", "R6")  # user SP before
        asm.instr("CHMK", "#2")
        asm.instr("MOVL", "SP", "R7")  # user SP after
        asm.label("stop")
        asm.instr("BRB", "stop")
        kernel.create_process("p", asm.assemble(), 0x1000)
        kernel.boot()
        kernel.run(max_instructions=200)
        ebox = machine.ebox
        assert ebox.regs.read(6) == ebox.regs.read(7)  # user stack untouched
        assert ebox.regs.read(6) != 0
        # Kernel stack pointer lives in system space, distinct from user's.
        assert ebox.mode_sps[0] >= 0x8000_0000

"""Integration tests for the miniature VMS kernel."""

import pytest

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.vms import VMSKernel
from repro.vms.process import ProcessState


def counting_program(increment=1):
    """An infinite loop that accumulates into R0."""
    asm = Assembler(origin=0x1000)
    asm.instr("MOVL", "#0", "R0")
    asm.label("loop")
    asm.instr("ADDL2", "#{}".format(increment), "R0")
    asm.instr("BRB", "loop")
    return asm.assemble()


def syscall_program(code=2):
    """A loop that makes a CHMK system service call each iteration."""
    asm = Assembler(origin=0x1000)
    asm.label("loop")
    asm.instr("MOVL", "#1", "R2")
    asm.instr("CHMK", "#{}".format(code))
    asm.instr("BRB", "loop")
    return asm.assemble()


def booted_kernel(programs, **kernel_args):
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor)
    kernel = VMSKernel(machine, **kernel_args)
    for index, image in enumerate(programs):
        kernel.create_process("p{}".format(index), image, 0x1000)
    kernel.boot()
    return machine, kernel


class TestBootAndRun:
    def test_single_process_runs_in_user_mode(self):
        machine, kernel = booted_kernel([counting_program()])
        kernel.run(max_instructions=500)
        assert kernel.current is not None and kernel.current.name == "p0"
        # Event counters always run; the *monitor* is what never started.
        assert machine.monitor.board.total_cycles() == 0
        assert machine.events.instructions > 0

    def test_measurement_gating(self):
        machine, kernel = booted_kernel([counting_program()])
        kernel.run(max_instructions=200)
        kernel.start_measurement()
        kernel.run(max_instructions=500)
        kernel.stop_measurement()
        assert machine.events.instructions > 0
        assert machine.monitor.board.total_cycles() > 0

    def test_two_processes_share_the_cpu(self):
        machine, kernel = booted_kernel(
            [counting_program(1), counting_program(1)],
            quantum_ticks=1,
            clock_period_cycles=4_000,
        )
        kernel.start_measurement()
        kernel.run(max_instructions=30_000)
        assert machine.events.context_switches >= 2


class TestInterrupts:
    def test_clock_interrupts_delivered(self):
        machine, kernel = booted_kernel([counting_program()], clock_period_cycles=3_000)
        kernel.start_measurement()
        kernel.run(max_instructions=10_000)
        assert machine.events.interrupts_delivered > 0
        assert kernel.ticks > 0

    def test_terminal_isr_stores_characters(self):
        machine, kernel = booted_kernel(
            [counting_program()], terminal_period_cycles=2_000
        )
        kernel.start_measurement()
        kernel.run(max_instructions=15_000)
        index = kernel._read_kernel_longword(kernel.tt_ring_idx_va)
        assert index > 0  # ISR ran and advanced the ring

    def test_interrupts_preserve_user_registers(self):
        machine, kernel = booted_kernel(
            [counting_program(3)], clock_period_cycles=2_000
        )
        kernel.start_measurement()
        kernel.run(max_instructions=9_001)
        # R0 accumulates threes in user code only; ISRs (which also
        # execute ADDL2s of their own, in process context, as on real
        # VMS) must save and restore every register they touch, so R0
        # stays an exact multiple of three.
        assert machine.events.interrupts_delivered > 0
        value = machine.ebox.regs.read(0)
        assert value > 0 and value % 3 == 0


class TestSystemServices:
    def test_gettim_service_round_trip(self):
        machine, kernel = booted_kernel([syscall_program(code=2)])
        kernel.start_measurement()
        kernel.run(max_instructions=2_000)
        assert machine.events.opcode_counts["CHMK"] > 0
        assert machine.events.opcode_counts["REI"] > 0

    def test_qio_blocks_until_terminal_input(self):
        machine, kernel = booted_kernel(
            [syscall_program(code=1)], terminal_period_cycles=3_000
        )
        kernel.start_measurement()
        kernel.run(max_instructions=20_000)
        # The process blocked at least once and was woken again.
        assert machine.events.opcode_counts["CHMK"] >= 2
        assert machine.events.context_switches >= 2

    def test_null_process_runs_while_everyone_blocked(self):
        machine, kernel = booted_kernel(
            [syscall_program(code=1)], terminal_period_cycles=30_000
        )
        kernel.start_measurement()
        kernel.run(max_instructions=10_000)
        # Null cycles exist but land in the separate null-event counters.
        assert kernel.null_events.instructions > 0
        assert kernel.null_events.opcode_counts["BRB"] > 0


class TestContextSwitching:
    def test_svpctx_ldpctx_round_trip_preserves_state(self):
        machine, kernel = booted_kernel(
            [counting_program(1), counting_program(1)],
            quantum_ticks=1,
            clock_period_cycles=3_000,
        )
        kernel.start_measurement()
        kernel.run(max_instructions=40_000)
        events = machine.events
        assert events.context_switches >= 4
        # Both processes keep making progress: their private R0 counters
        # are coherent (checked indirectly: the machine never faulted and
        # instruction flow continued).
        assert events.instructions > 30_000

    def test_tb_flushed_on_context_switch(self):
        machine, kernel = booted_kernel(
            [counting_program(), counting_program()],
            quantum_ticks=1,
            clock_period_cycles=3_000,
        )
        kernel.start_measurement()
        kernel.run(max_instructions=30_000)
        assert machine.memory.tb.stats.process_flushes >= machine.events.context_switches

    def test_address_spaces_are_private(self):
        # Both processes run the same VA layout with different code; no
        # cross-talk means separate page tables work.
        machine, kernel = booted_kernel(
            [counting_program(1), counting_program(5)],
            quantum_ticks=1,
            clock_period_cycles=3_000,
        )
        kernel.start_measurement()
        kernel.run(max_instructions=20_000)
        table_a = kernel.processes[0].page_table
        table_b = kernel.processes[1].page_table
        assert table_a.base_pa != table_b.base_pa
        # Code page 8 (VA 0x1000) maps to different frames.
        assert table_a.lookup(8).pfn != table_b.lookup(8).pfn


class TestHeadways:
    def test_interrupt_and_switch_headways_are_finite(self):
        machine, kernel = booted_kernel(
            [counting_program(), counting_program(), counting_program()],
            clock_period_cycles=5_000,
            terminal_period_cycles=4_000,
            quantum_ticks=2,
        )
        kernel.start_measurement()
        kernel.run(max_instructions=40_000)
        events = machine.events
        assert events.interrupts_delivered > 10
        assert events.context_switches > 2
        headway = events.instructions / events.interrupts_delivered
        assert 50 < headway < 5_000

"""Execute-phase semantics: FIELD, FLOAT, CALL/RET, SYSTEM, CHARACTER,
DECIMAL groups."""

import pytest

from repro.isa.datatypes import f_floating_decode, f_floating_encode


class TestFieldGroup:
    def test_extzv_register_field(self, harness):
        harness.asm.instr("MOVL", "#0xABCD", "R1")
        harness.asm.instr("EXTZV", "#4", "#8", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 0xBC

    def test_extv_sign_extends(self, harness):
        harness.asm.instr("MOVL", "#0xF0", "R1")
        harness.asm.instr("EXTV", "#4", "#4", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 0xFFFFFFFF

    def test_insv_register(self, harness):
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("MOVL", "#0x5", "R0")
        harness.asm.instr("INSV", "R0", "#8", "#4", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 0x500

    def test_field_in_memory(self, harness):
        harness.asm.instr("MOVAL", "datum", "R1")
        harness.asm.instr("EXTZV", "#8", "#16", "(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("datum")
        harness.asm.long(0xAABBCCDD)
        harness.run()
        assert harness.reg(2) == 0xBBCC

    def test_ffs_finds_lowest_set_bit(self, harness):
        harness.asm.instr("MOVL", "#0x10", "R1")
        harness.asm.instr("FFS", "#0", "#31", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 4 and not harness.cc.z

    def test_ffs_not_found_sets_z(self, harness):
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("FFS", "#0", "#31", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.cc.z and harness.reg(2) == 31

    def test_bbs_taken(self, harness):
        harness.asm.instr("MOVL", "#4", "R1")
        harness.asm.instr("BBS", "#2", "R1", "set")
        harness.asm.instr("MOVL", "#0", "R2")
        harness.asm.instr("HALT")
        harness.asm.label("set")
        harness.asm.instr("MOVL", "#1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 1

    def test_bbss_sets_bit_after_test(self, harness):
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("BBSS", "#3", "R1", "was_set")
        harness.asm.instr("HALT")
        harness.asm.label("was_set")
        harness.asm.instr("MOVL", "#99", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 8  # bit set as a side effect
        assert harness.reg(2) == 0  # branch not taken (bit was clear)

    def test_cmpzv(self, harness):
        harness.asm.instr("MOVL", "#0x340", "R1")
        harness.asm.instr("CMPZV", "#4", "#8", "R1", "#0x34")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.cc.z


class TestFloatGroup:
    def test_addf3(self, harness):
        harness.asm.instr("MOVF", "I^#2", "R1")
        harness.asm.instr("ADDF3", "I^#3", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert f_floating_decode(harness.reg(2)) == pytest.approx(5.0)

    def test_subf2(self, harness):
        harness.asm.instr("MOVF", "I^#10", "R1")
        harness.asm.instr("SUBF2", "I^#4", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert f_floating_decode(harness.reg(1)) == pytest.approx(6.0)

    def test_mulf_divf(self, harness):
        harness.asm.instr("MOVF", "I^#6", "R1")
        harness.asm.instr("MULF2", "I^#7", "R1")
        harness.asm.instr("DIVF3", "I^#2", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert f_floating_decode(harness.reg(1)) == pytest.approx(42.0)
        assert f_floating_decode(harness.reg(2)) == pytest.approx(21.0)

    def test_float_short_literal_expansion(self, harness):
        # Short literal 0 in float context means 0.5.
        harness.asm.instr("MOVF", "S^#0", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert f_floating_decode(harness.reg(1)) == pytest.approx(0.5)

    def test_cmpf(self, harness):
        harness.asm.instr("MOVF", "I^#3", "R1")
        harness.asm.instr("CMPF", "R1", "I^#3")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.cc.z

    def test_cvtlf_and_back(self, harness):
        harness.asm.instr("MOVL", "#123", "R0")
        harness.asm.instr("CVTLF", "R0", "R1")
        harness.asm.instr("CVTFL", "R1", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 123

    def test_tstf_negative(self, harness):
        harness.asm.instr("MNEGF", "I^#1", "R1")
        harness.asm.instr("TSTF", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.cc.n


class TestCallRet:
    def _build_call_program(self, harness, mask):
        harness.asm.instr("MOVL", "#111", "R2")
        harness.asm.instr("MOVL", "#222", "R3")
        harness.asm.instr("PUSHL", "#41")
        harness.asm.instr("CALLS", "#1", "proc")
        harness.asm.instr("HALT")
        harness.asm.label("proc")
        harness.asm.word(mask)  # entry mask
        harness.asm.instr("MOVL", "#999", "R2")  # clobber a saved register
        harness.asm.instr("MOVL", "4(AP)", "R0")  # first argument
        harness.asm.instr("ADDL2", "#1", "R0")
        harness.asm.instr("RET")

    def test_calls_ret_restores_saved_registers(self, harness):
        self._build_call_program(harness, mask=0b0000_0000_0000_0100)  # save R2
        harness.run()
        assert harness.reg(0) == 42  # argument seen and incremented
        assert harness.reg(2) == 111  # restored by RET

    def test_calls_ret_cleans_stack(self, harness):
        harness.asm.instr("MOVL", "SP", "R6")
        harness.asm.instr("PUSHL", "#41")
        harness.asm.instr("CALLS", "#1", "proc")
        harness.asm.instr("MOVL", "SP", "R7")
        harness.asm.instr("HALT")
        harness.asm.label("proc")
        harness.asm.word(0)
        harness.asm.instr("RET")
        harness.run()
        assert harness.reg(6) == harness.reg(7)  # arguments popped by RET

    def test_unsaved_register_not_restored(self, harness):
        self._build_call_program(harness, mask=0)  # save nothing
        harness.run()
        assert harness.reg(2) == 999  # clobber survives

    def test_nested_calls(self, harness):
        harness.asm.instr("CALLS", "#0", "outer")
        harness.asm.instr("HALT")
        harness.asm.label("outer")
        harness.asm.word(0)
        harness.asm.instr("CALLS", "#0", "inner")
        harness.asm.instr("ADDL2", "#1", "R0")
        harness.asm.instr("RET")
        harness.asm.label("inner")
        harness.asm.word(0)
        harness.asm.instr("MOVL", "#10", "R0")
        harness.asm.instr("RET")
        harness.run()
        assert harness.reg(0) == 11

    def test_callg_argument_list(self, harness):
        harness.asm.instr("CALLG", "args", "proc")
        harness.asm.instr("HALT")
        harness.asm.label("proc")
        harness.asm.word(0)
        harness.asm.instr("MOVL", "4(AP)", "R0")
        harness.asm.instr("RET")
        harness.asm.align(4)
        harness.asm.label("args")
        harness.asm.long(1, 77)  # count, arg1
        harness.run()
        assert harness.reg(0) == 77

    def test_pushr_popr(self, harness):
        harness.asm.instr("MOVL", "#1", "R1")
        harness.asm.instr("MOVL", "#2", "R2")
        harness.asm.instr("PUSHR", "#0x06")  # R1, R2
        harness.asm.instr("CLRL", "R1")
        harness.asm.instr("CLRL", "R2")
        harness.asm.instr("POPR", "#0x06")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 1 and harness.reg(2) == 2


class TestSystemGroup:
    def test_insque_remque_roundtrip(self, harness):
        harness.asm.instr("MOVAL", "header", "R1")
        # Make the header self-referential (empty queue).
        harness.asm.instr("MOVL", "R1", "(R1)")
        harness.asm.instr("MOVAL", "header", "R2")
        harness.asm.instr("MOVL", "R2", "4(R1)")
        harness.asm.instr("INSQUE", "entry", "(R1)")
        harness.asm.instr("REMQUE", "entry", "R5")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("header")
        harness.asm.long(0, 0)
        harness.asm.label("entry")
        harness.asm.long(0, 0)
        harness.run()
        assert harness.reg(5) == harness.asm.symbols["entry"]
        # Queue empty again: header points to itself.
        header = harness.asm.symbols["header"]
        assert harness.mem(header) == header

    def test_mtpr_mfpr_roundtrip(self, harness):
        harness.asm.instr("MTPR", "#0x1234", "#16")  # PCBB
        harness.asm.instr("MFPR", "#16", "R0")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) == 0x1234

    def test_mtpr_tbia_flushes(self, harness):
        harness.asm.instr("MTPR", "#0", "#57")
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("HALT")
        harness.run()
        # The flush wipes even the current code page's entry; execution
        # still completes because the next miss refills it.
        assert harness.reg(0) == 1

    def test_prober_on_mapped_page(self, harness):
        harness.asm.instr("PROBER", "#0", "#4", "probe_target")
        harness.asm.instr("HALT")
        harness.asm.label("probe_target")
        harness.asm.long(0)
        harness.run()
        assert not harness.cc.z  # accessible -> Z clear

    def test_bispsw_bicpsw(self, harness):
        harness.asm.instr("BISPSW", "#0x8")  # set N
        harness.asm.instr("HALT")
        harness.run()
        assert harness.cc.n


class TestCharacterGroup:
    def test_movc3_copies(self, harness):
        harness.asm.instr("MOVC3", "#11", "src", "dst")
        harness.asm.instr("HALT")
        harness.asm.label("src")
        harness.asm.ascii("hello world")
        harness.asm.label("dst")
        harness.asm.space(11)
        harness.run()
        dst = harness.asm.symbols["dst"]
        copied = bytes(harness.mem(dst + i, 1) for i in range(11))
        assert copied == b"hello world"
        assert harness.reg(0) == 0 and harness.cc.z

    def test_movc5_fills(self, harness):
        harness.asm.instr("MOVC5", "#2", "src", "#0x20", "#5", "dst")
        harness.asm.instr("HALT")
        harness.asm.label("src")
        harness.asm.ascii("ab")
        harness.asm.label("dst")
        harness.asm.space(5, fill=0xFF)
        harness.run()
        dst = harness.asm.symbols["dst"]
        copied = bytes(harness.mem(dst + i, 1) for i in range(5))
        assert copied == b"ab   "

    def test_cmpc3_equal(self, harness):
        harness.asm.instr("CMPC3", "#5", "one", "two")
        harness.asm.instr("HALT")
        harness.asm.label("one")
        harness.asm.ascii("apple")
        harness.asm.label("two")
        harness.asm.ascii("apple")
        harness.run()
        assert harness.cc.z

    def test_cmpc3_orders(self, harness):
        harness.asm.instr("CMPC3", "#5", "one", "two")
        harness.asm.instr("HALT")
        harness.asm.label("one")
        harness.asm.ascii("appla")
        harness.asm.label("two")
        harness.asm.ascii("apple")
        harness.run()
        assert not harness.cc.z and harness.cc.n  # 'a' < 'e'

    def test_locc_finds_character(self, harness):
        harness.asm.instr("LOCC", "#0x6C", "#11", "text")  # 'l'
        harness.asm.instr("HALT")
        harness.asm.label("text")
        harness.asm.ascii("hello world")
        harness.run()
        text = harness.asm.symbols["text"]
        assert harness.reg(1) == text + 2  # first 'l'
        assert not harness.cc.z

    def test_locc_not_found(self, harness):
        harness.asm.instr("LOCC", "#0x7A", "#5", "text")  # 'z'
        harness.asm.instr("HALT")
        harness.asm.label("text")
        harness.asm.ascii("hello")
        harness.run()
        assert harness.cc.z and harness.reg(0) == 0

    def test_skpc_skips_leading(self, harness):
        harness.asm.instr("SKPC", "#0x20", "#6", "text")  # skip spaces
        harness.asm.instr("HALT")
        harness.asm.label("text")
        harness.asm.ascii("   abc")
        harness.run()
        assert harness.reg(1) == harness.asm.symbols["text"] + 3


class TestDecimalGroup:
    def test_cvtlp_movp_cvtpl_roundtrip(self, harness):
        harness.asm.instr("CVTLP", "#1234", "#5", "packed1")
        harness.asm.instr("MOVP", "#5", "packed1", "packed2")
        harness.asm.instr("CVTPL", "#5", "packed2", "R0")
        harness.asm.instr("HALT")
        harness.asm.label("packed1")
        harness.asm.space(3)
        harness.asm.label("packed2")
        harness.asm.space(3)
        harness.run()
        assert harness.reg(0) == 1234

    def test_addp4(self, harness):
        harness.asm.instr("CVTLP", "#1100", "#5", "a")
        harness.asm.instr("CVTLP", "#134", "#5", "b")
        harness.asm.instr("ADDP4", "#5", "a", "#5", "b")
        harness.asm.instr("CVTPL", "#5", "b", "R0")
        harness.asm.instr("HALT")
        harness.asm.label("a")
        harness.asm.space(3)
        harness.asm.label("b")
        harness.asm.space(3)
        harness.run()
        assert harness.reg(0) == 1234

    def test_subp4_negative_result(self, harness):
        harness.asm.instr("CVTLP", "#50", "#3", "a")
        harness.asm.instr("CVTLP", "#20", "#3", "b")
        harness.asm.instr("SUBP4", "#3", "a", "#3", "b")
        harness.asm.instr("CVTPL", "#3", "b", "R0")
        harness.asm.instr("HALT")
        harness.asm.label("a")
        harness.asm.space(2)
        harness.asm.label("b")
        harness.asm.space(2)
        harness.run()
        assert harness.reg(0) == 0xFFFFFFE2  # -30
        assert harness.cc.n

    def test_cmpp3(self, harness):
        harness.asm.instr("CVTLP", "#77", "#3", "a")
        harness.asm.instr("CVTLP", "#77", "#3", "b")
        harness.asm.instr("CMPP3", "#3", "a", "b")
        harness.asm.instr("HALT")
        harness.asm.label("a")
        harness.asm.space(2)
        harness.asm.label("b")
        harness.asm.space(2)
        harness.run()
        assert harness.cc.z

    def test_ashp_scales_by_ten(self, harness):
        harness.asm.instr("CVTLP", "#12", "#5", "a")
        harness.asm.instr("ASHP", "#1", "#5", "a", "#0", "#5", "b")
        harness.asm.instr("CVTPL", "#5", "b", "R0")
        harness.asm.instr("HALT")
        harness.asm.label("a")
        harness.asm.space(3)
        harness.asm.label("b")
        harness.asm.space(3)
        harness.run()
        assert harness.reg(0) == 120

"""Cycle-accounting behaviour: stalls, TB-miss service, monitor fidelity.

These tests pin down the properties the paper's measurement technique
depends on: every EBOX cycle lands in exactly one histogram bucket, stall
cycles accumulate in the stalled bank at the right microinstruction, and
the IB's references stay invisible to the monitor.
"""

import pytest

from repro.ucode.control_store import Region
from repro.ucode.microword import MicroSlot
from repro.ucode.costs import TB_MISS_COMPUTE_CYCLES


def build_and_run(harness, body):
    body(harness.asm)
    harness.asm.instr("HALT")
    harness.run()
    return harness


def region_cycles(harness, region):
    """Total (normal, stalled) cycles counted in one control-store region."""
    counts, stalled = harness.monitor.board.dump()
    normal = sum(counts[a] for a in range(region.base, region.end))
    stall = sum(stalled[a] for a in range(region.base, region.end))
    return normal, stall


class TestMonitorFidelity:
    def test_every_cycle_is_counted_exactly_once(self, harness):
        def body(asm):
            asm.instr("MOVL", "#5", "R1")
            asm.label("loop")
            asm.instr("ADDL2", "#1", "R0")
            asm.instr("SOBGTR", "R1", "loop")

        build_and_run(harness, body)
        assert harness.monitor.board.total_cycles() == harness.ebox.cycle_count

    def test_monitor_counts_nothing_before_start(self):
        from tests.cpu.conftest import MachineHarness

        harness = MachineHarness()
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("HALT")
        harness.machine.load_program(harness.asm.assemble(), 0x200)
        harness.machine.run()  # monitor never started
        assert harness.monitor.board.total_cycles() == 0

    def test_monitor_is_passive(self):
        """Identical programs run identically with and without the monitor."""
        from repro.asm import Assembler
        from repro.core.monitor import UPCMonitor
        from repro.cpu import VAX780

        def run(monitor):
            machine = VAX780(monitor=monitor)
            asm = Assembler(origin=0x200)
            asm.instr("MOVL", "#100", "R1")
            asm.label("loop")
            asm.instr("ADDL2", "R1", "R0")
            asm.instr("SOBGTR", "R1", "loop")
            asm.instr("HALT")
            machine.load_program(asm.assemble(), 0x200)
            if monitor:
                monitor.start()
            machine.run()
            return machine.ebox.cycle_count, machine.ebox.regs.read(0)

        monitored = run(UPCMonitor.build())
        bare = run(None)
        assert monitored == bare

    def test_decode_region_counts_one_per_instruction(self, harness):
        def body(asm):
            for _ in range(10):
                asm.instr("NOP")

        build_and_run(harness, body)
        counts, _ = harness.monitor.board.dump()
        decode_dispatch = harness.machine.layout.decode.address(MicroSlot.COMPUTE_A)
        # 10 NOPs + HALT, one decode dispatch each.
        assert counts[decode_dispatch] == 11


class TestReadStalls:
    def test_cold_reads_stall_warm_reads_do_not(self, harness):
        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("MOVL", "(R1)", "R2")  # cold: read stall
            asm.instr("MOVL", "(R1)", "R3")  # warm: no stall
            asm.instr("HALT")
            asm.align(8)
            asm.label("data")
            asm.long(7)

        body(harness.asm)
        harness.run()
        spec_normal, spec_stall = region_cycles(harness, Region.SPEC1)
        assert spec_stall > 0  # the cold read
        assert harness.reg(2) == 7 and harness.reg(3) == 7

    def test_stalled_cycles_in_stalled_bank_at_read_address(self, harness):
        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("MOVL", "(R1)", "R2")
            asm.instr("HALT")
            asm.align(8)
            asm.label("data")
            asm.long(7)

        body(harness.asm)
        harness.run()
        counts, stalled = harness.monitor.board.dump()
        from repro.isa.specifiers import AddressingMode

        routine = harness.machine.layout.spec1[AddressingMode.REGISTER_DEFERRED]
        read_addr = routine.address(MicroSlot.READ)
        assert counts[read_addr] == 1  # one successful read
        assert stalled[read_addr] == 6  # one cold miss at SBI latency


class TestWriteStalls:
    def test_back_to_back_stack_writes_stall(self, harness):
        def body(asm):
            for _ in range(6):
                asm.instr("PUSHL", "#1")

        build_and_run(harness, body)
        # PUSHL writes land close together; at least one must stall.
        assert harness.machine.memory.write_buffer.stats.stall_cycles > 0

    def test_spaced_writes_do_not_stall(self, harness):
        def body(asm):
            asm.instr("PUSHL", "#1")
            for _ in range(3):
                asm.instr("MULL3", "#3", "#3", "R1")  # long compute gap
            asm.instr("PUSHL", "#2")

        build_and_run(harness, body)
        assert harness.machine.memory.write_buffer.stats.stall_cycles == 0


class TestIBStalls:
    def test_branch_target_miss_causes_ib_stall(self, harness):
        def body(asm):
            asm.instr("BRW", "far")
            asm.space(600)  # push the target onto distant cold lines
            asm.label("far")
            asm.instr("MOVL", "#1", "R0")

        build_and_run(harness, body)
        counts, _ = harness.monitor.board.dump()
        decode_wait = harness.machine.layout.decode.address(MicroSlot.IB_WAIT)
        assert counts[decode_wait] > 0
        assert harness.reg(0) == 1

    def test_straightline_code_rarely_stalls(self, harness):
        def body(asm):
            asm.instr("NOP")  # warm the first line
            for _ in range(50):
                asm.instr("ADDL2", "#1", "R0")

        build_and_run(harness, body)
        # With no taken branches the IB stays ahead of decode almost
        # always; only cold I-stream cache misses can stall it.
        counts, _ = harness.monitor.board.dump()
        decode_wait = harness.machine.layout.decode.address(MicroSlot.IB_WAIT)
        assert counts[decode_wait] < harness.machine.events.instructions / 2

    def test_taken_branches_cause_decode_stalls(self, harness):
        def body(asm):
            asm.instr("MOVL", "#200", "R1")
            asm.label("loop")
            asm.instr("SOBGTR", "R1", "loop")

        build_and_run(harness, body)
        # Every taken branch flushes the IB; the next decode must wait at
        # least one cycle for the refill (the paper traces most IB stall
        # to branch targets).
        counts, _ = harness.monitor.board.dump()
        decode_wait = harness.machine.layout.decode.address(MicroSlot.IB_WAIT)
        assert counts[decode_wait] >= 150


class TestTBMissService:
    def test_tb_miss_runs_service_routine_and_abort(self, harness):
        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("MOVL", "(R1)", "R2")
            asm.instr("HALT")
            asm.space(600)  # push data onto another page
            asm.label("data")
            asm.long(5)

        body(harness.asm)
        harness.run()
        memmgmt_normal, memmgmt_stall = region_cycles(harness, Region.MEMMGMT)
        abort_normal, _ = region_cycles(harness, Region.ABORT)
        assert memmgmt_normal > 0
        assert abort_normal >= 1  # one abort cycle per microtrap
        assert harness.reg(2) == 5

    def test_tb_miss_cost_near_paper_figure(self, harness):
        """A single fresh D-stream TB miss should cost ~18-22 cycles of
        memory-management work (the paper's 21.6 average includes PTE
        read stalls)."""

        def body(asm):
            asm.instr("MOVAL", "data", "R1")
            asm.instr("MOVL", "(R1)", "R2")
            asm.instr("HALT")
            asm.space(600)
            asm.align(4)  # keep the datum aligned: no alignment detour
            asm.label("data")
            asm.long(5)

        body(harness.asm)
        # Pre-run once to know how many misses occur, then check the
        # per-miss cost bracket.
        harness.run()
        memmgmt_normal, memmgmt_stall = region_cycles(harness, Region.MEMMGMT)
        misses = harness.machine.memory.tb.stats.misses
        per_miss = (memmgmt_normal + memmgmt_stall) / misses
        assert TB_MISS_COMPUTE_CYCLES <= per_miss <= TB_MISS_COMPUTE_CYCLES + 8

    def test_istream_tb_miss_serviced_when_bytes_needed(self, harness):
        def body(asm):
            asm.instr("BRW", "far")
            asm.space(1200)  # cross at least two page boundaries
            asm.label("far")
            asm.instr("MOVL", "#3", "R0")

        build_and_run(harness, body)
        assert harness.machine.memory.tb.stats.i_misses > 0
        assert harness.reg(0) == 3


class TestIStreamInvisibility:
    def test_ib_references_not_in_histogram(self, harness):
        """IB cache references happen, but no histogram bucket moves for
        them: total histogram cycles == EBOX cycles regardless."""

        def body(asm):
            asm.instr("MOVL", "#50", "R1")
            asm.label("loop")
            asm.instr("SOBGTR", "R1", "loop")

        build_and_run(harness, body)
        assert harness.ebox.ib.stats.references > 0
        assert harness.monitor.board.total_cycles() == harness.ebox.cycle_count

    def test_ib_delivers_about_right_bytes(self, harness):
        def body(asm):
            asm.instr("MOVL", "#100", "R1")
            asm.label("loop")
            asm.instr("ADDL2", "#1", "R0")
            asm.instr("SOBGTR", "R1", "loop")

        build_and_run(harness, body)
        stats = harness.ebox.ib.stats
        # Bytes per reference must be between 1 and 4 by construction.
        assert 1.0 <= stats.bytes_per_reference <= 4.0


class TestCyclesPerInstruction:
    def test_simple_loop_cpi_is_single_digit(self, harness):
        def body(asm):
            asm.instr("MOVL", "#1000", "R1")
            asm.label("loop")
            asm.instr("ADDL2", "#1", "R0")
            asm.instr("SOBGTR", "R1", "loop")

        build_and_run(harness, body)
        cpi = harness.ebox.cycle_count / harness.machine.events.instructions
        assert 3.0 < cpi < 12.0

    def test_character_instruction_is_two_orders_costlier(self, harness):
        """Table 9: the average character instruction costs ~100x the
        average simple instruction."""

        def body(asm):
            asm.instr("MOVC3", "#40", "src", "dst")
            asm.instr("HALT")
            asm.label("src")
            asm.space(40, fill=0x41)
            asm.label("dst")
            asm.space(40)

        body(harness.asm)
        harness.run()
        from repro.ucode.control_store import Region as R

        char_normal, char_stall = region_cycles(harness, R.EXEC_CHARACTER)
        assert char_normal + char_stall > 50

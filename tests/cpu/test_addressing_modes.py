"""End-to-end execution tests for every addressing mode.

Each test runs real code through the full machine and checks both the
architectural result and, where interesting, the specifier-microcode
accounting (which Table 4 is reduced from).
"""

import pytest

from repro.isa.specifiers import AddressingMode


class TestLiteralAndRegister:
    def test_short_literal(self, harness):
        harness.asm.instr("MOVL", "S^#63", "R0")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) == 63

    def test_immediate_long(self, harness):
        harness.asm.instr("MOVL", "I^#1000000", "R0")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) == 1000000

    def test_immediate_byte_sized(self, harness):
        harness.asm.instr("MOVB", "I^#200", "R0")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) & 0xFF == 200

    def test_register(self, harness):
        harness.asm.instr("MOVL", "#7", "R3")
        harness.asm.instr("MOVL", "R3", "R4")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(4) == 7


class TestDeferredModes:
    def test_register_deferred(self, harness):
        harness.asm.instr("MOVAL", "cell", "R1")
        harness.asm.instr("MOVL", "(R1)", "R0")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("cell")
        harness.asm.long(0x1234)
        harness.run()
        assert harness.reg(0) == 0x1234

    def test_autoincrement_advances_by_size(self, harness):
        harness.asm.instr("MOVAL", "data", "R1")
        harness.asm.instr("MOVL", "(R1)+", "R2")
        harness.asm.instr("MOVW", "(R1)+", "R3")
        harness.asm.instr("MOVB", "(R1)+", "R4")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("data")
        harness.asm.long(0x11111111)
        harness.asm.word(0x2222)
        harness.asm.byte(0x33)
        harness.run()
        assert harness.reg(2) == 0x11111111
        assert harness.reg(3) & 0xFFFF == 0x2222
        assert harness.reg(4) & 0xFF == 0x33
        assert harness.reg(1) == harness.asm.symbols["data"] + 7

    def test_autodecrement_predecrements(self, harness):
        harness.asm.instr("MOVAL", "end", "R1")
        harness.asm.instr("MOVL", "-(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("data")
        harness.asm.long(0xAAAA)
        harness.asm.label("end")
        harness.run()
        assert harness.reg(2) == 0xAAAA
        assert harness.reg(1) == harness.asm.symbols["data"]

    def test_autoincrement_deferred(self, harness):
        harness.asm.instr("MOVAL", "pointers", "R1")
        harness.asm.instr("MOVL", "@(R1)+", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("pointers")
        harness.asm.long_ref("target")
        harness.asm.label("target")
        harness.asm.long(0x5555)
        harness.run()
        assert harness.reg(2) == 0x5555
        assert harness.reg(1) == harness.asm.symbols["pointers"] + 4

    def test_displacement_deferred(self, harness):
        harness.asm.instr("MOVAL", "base", "R1")
        harness.asm.instr("MOVL", "@4(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("base")
        harness.asm.long(0)
        harness.asm.long_ref("target")
        harness.asm.label("target")
        harness.asm.long(0x7777)
        harness.run()
        assert harness.reg(2) == 0x7777


class TestDisplacementWidths:
    @pytest.mark.parametrize("prefix,offset", [("B^", 8), ("W^", 8), ("L^", 8)])
    def test_forced_widths_agree(self, harness, prefix, offset):
        harness.asm.instr("MOVAL", "base", "R1")
        harness.asm.instr("MOVL", "{}{}(R1)".format(prefix, offset), "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("base")
        harness.asm.long(0, 0)
        harness.asm.label("cell")
        harness.asm.long(0x42)
        harness.run()
        assert harness.reg(2) == 0x42

    def test_negative_displacement(self, harness):
        harness.asm.instr("MOVAL", "after", "R1")
        harness.asm.instr("MOVL", "-4(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("cell")
        harness.asm.long(99)
        harness.asm.label("after")
        harness.run()
        assert harness.reg(2) == 99


class TestPCModes:
    def test_pc_relative_read(self, harness):
        harness.asm.instr("MOVL", "value", "R0")  # assembler emits EF mode
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("value")
        harness.asm.long(0xBEEF)
        harness.run()
        assert harness.reg(0) == 0xBEEF

    def test_absolute(self, harness):
        harness.asm.instr("MOVL", "#0xCAFE", "@#0x3000")
        harness.asm.instr("MOVL", "@#0x3000", "R2")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(2) == 0xCAFE


class TestIndexedModes:
    def test_indexed_scales_by_datatype(self, harness):
        harness.asm.instr("MOVAL", "table", "R1")
        harness.asm.instr("MOVL", "#2", "R2")
        harness.asm.instr("MOVL", "(R1)[R2]", "R3")  # longword: index * 4
        harness.asm.instr("MOVW", "(R1)[R2]", "R4")  # word: index * 2
        harness.asm.instr("MOVB", "(R1)[R2]", "R5")  # byte: index * 1
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("table")
        harness.asm.long(0x10101010, 0x20202020, 0x30303030)
        harness.run()
        assert harness.reg(3) == 0x30303030  # table + 2*4
        assert harness.reg(4) & 0xFFFF == 0x2020  # table + 2*2 = bytes 4..5
        assert harness.reg(5) & 0xFF == 0x10  # table + 2*1 = byte 2

    def test_indexed_displacement(self, harness):
        harness.asm.instr("MOVAL", "table", "R1")
        harness.asm.instr("MOVL", "#1", "R2")
        harness.asm.instr("MOVL", "4(R1)[R2]", "R3")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("table")
        harness.asm.long(1, 2, 3)
        harness.run()
        assert harness.reg(3) == 3

    def test_indexed_write(self, harness):
        harness.asm.instr("MOVAL", "table", "R1")
        harness.asm.instr("MOVL", "#1", "R2")
        harness.asm.instr("MOVL", "#0x77", "(R1)[R2]")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("table")
        harness.asm.long(0, 0)
        harness.run()
        assert harness.mem(harness.asm.symbols["table"] + 4) == 0x77

    def test_indexed_first_specifier_charges_spec26(self, harness):
        """The paper's microcode-sharing quirk: indexed base calculation
        reports under SPEC2-6, even for first specifiers."""
        harness.asm.instr("MOVAL", "table", "R1")
        harness.asm.instr("CLRL", "R2")
        harness.asm.instr("TSTL", "(R1)[R2]")  # indexed FIRST specifier
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("table")
        harness.asm.long(5)
        harness.run()
        counts, _ = harness.monitor.board.dump()
        index_routine = harness.machine.layout.index_shared
        from repro.ucode.microword import MicroSlot

        assert counts[index_routine.address(MicroSlot.COMPUTE_A)] >= 1
        # ... while the event counters still record it architecturally as
        # a first specifier (Table 4's "Percent Indexed" SPEC1 column).
        assert harness.machine.events.indexed_specifiers["spec1"] == 1


class TestSideEffectAccounting:
    def test_table4_rows_recorded(self, harness):
        harness.asm.instr("MOVL", "#5", "R0")  # literal + register
        harness.asm.instr("MOVL", "(R0)", "R1")  # register deferred
        harness.asm.instr("HALT")
        harness.run()
        events = harness.machine.events
        assert events.specifier_counts[("spec1", "short_literal")] == 1
        assert events.specifier_counts[("spec26", "register")] >= 1
        assert events.specifier_counts[("spec1", "register_deferred")] == 1

    def test_specifier_bytes_counted(self, harness):
        harness.asm.instr("MOVL", "I^#100000", "R0")  # 5-byte + 1-byte specs
        harness.asm.instr("HALT")
        harness.run()
        assert harness.machine.events.specifier_bytes >= 6

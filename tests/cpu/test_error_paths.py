"""Error-path behaviour: illegal instructions, fault exhaustion, halts."""

import pytest

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.cpu.ebox import HaltExecution, IllegalInstruction


class TestIllegalInstruction:
    def test_undecodable_opcode_raises(self):
        machine = VAX780()
        machine.load_program(b"\xff", origin=0x200)
        with pytest.raises(IllegalInstruction):
            machine.run()

    def test_error_names_the_address(self):
        machine = VAX780()
        machine.load_program(b"\x01\xfe", origin=0x200)  # NOP then illegal
        with pytest.raises(IllegalInstruction) as excinfo:
            machine.run()
        assert "0x00000201" in str(excinfo.value)


class TestHalt:
    def test_halt_stops_and_step_returns_false(self):
        machine = VAX780()
        asm = Assembler(origin=0x200)
        asm.instr("HALT")
        machine.load_program(asm.assemble(), 0x200)
        # run() counts completed instructions; the halting one ends the
        # run without counting, like the real processor stopping.
        assert machine.run() == 0
        assert machine.ebox.halted
        assert machine.ebox.step() is False

    def test_instruction_budget_stops_cleanly(self):
        machine = VAX780()
        asm = Assembler(origin=0x200)
        asm.label("loop")
        asm.instr("BRB", "loop")
        machine.load_program(asm.assemble(), 0x200)
        assert machine.run(max_instructions=100) == 100
        assert not machine.ebox.halted

    def test_cycle_budget_stops(self):
        machine = VAX780()
        asm = Assembler(origin=0x200)
        asm.label("loop")
        asm.instr("BRB", "loop")
        machine.load_program(asm.assemble(), 0x200)
        machine.run(max_cycles=500)
        assert machine.ebox.cycle_count >= 500
        assert machine.ebox.cycle_count < 600


class TestUnrecoverableFaults:
    def test_unmappable_reference_halts(self):
        machine = VAX780()
        machine.pager = lambda va, write: False  # pager refuses everything new
        asm = Assembler(origin=0x200)
        asm.instr("MOVL", "@#0x00300000", "R0")  # unmapped, pager says no
        machine.load_program(asm.assemble(), 0x200)
        with pytest.raises(HaltExecution):
            machine.run()

    def test_frame_exhaustion_is_memoryerror(self):
        machine = VAX780(memory_bytes=4 * 1024 * 1024)
        # Drain the allocator.
        while machine.frames.frames_remaining:
            machine.frames.allocate()
        with pytest.raises(MemoryError):
            machine.frames.allocate()

    def test_default_pager_demand_zeroes(self):
        machine = VAX780()
        asm = Assembler(origin=0x200)
        asm.instr("MOVL", "@#0x00300000", "R0")  # beyond loaded pages
        asm.instr("HALT")
        machine.load_program(asm.assemble(), 0x200)
        machine.run()
        assert machine.ebox.regs.read(0) == 0  # fresh zero frame
        assert machine.events.page_faults >= 1


class TestDivideByZeroPath:
    def test_divl_by_zero_counts_exception(self):
        machine = VAX780()
        asm = Assembler(origin=0x200)
        asm.instr("CLRL", "R1")
        asm.instr("DIVL3", "R1", "#42", "R2")
        asm.instr("HALT")
        machine.load_program(asm.assemble(), 0x200)
        machine.run()
        assert machine.events.arithmetic_exceptions >= 1
        assert machine.ebox.psl.cc.v

"""Tests for the extended opcode set: POLYF, EMODF, ACBF, MOVTC,
MATCHC, CRC — plus a handler-coverage sweep."""

import pytest

from repro.isa.datatypes import f_floating_decode, f_floating_encode
from repro.isa.opcodes import OPCODES


class TestHandlerCoverage:
    def test_every_opcode_has_semantics(self):
        from repro.cpu.semantics import HANDLERS

        missing = [op.mnemonic for op in OPCODES.values() if op.mnemonic not in HANDLERS]
        assert missing == []

    def test_every_opcode_has_an_exec_profile_and_routine(self):
        from repro.ucode.costs import exec_profile
        from repro.ucode.routines import build_layout

        layout = build_layout()
        for opcode in OPCODES.values():
            assert exec_profile(opcode).base_cycles >= 0
            assert opcode.mnemonic in layout.execute


class TestPolyf:
    def test_evaluates_horner(self, harness):
        # p(x) = 2x^2 + 3x + 4 at x = 2 -> 18.
        # Table layout: highest-order coefficient first.
        harness.asm.instr("POLYF", "I^#2", "#2", "coeffs")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("coeffs")
        for value in (2.0, 3.0, 4.0):
            harness.asm.long(f_floating_encode(value))
        harness.run()
        assert f_floating_decode(harness.reg(0)) == pytest.approx(18.0)
        assert harness.reg(3) == harness.asm.symbols["coeffs"] + 12

    def test_degree_zero_is_constant(self, harness):
        harness.asm.instr("POLYF", "I^#9", "#0", "coeffs")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("coeffs")
        harness.asm.long(f_floating_encode(7.0))
        harness.run()
        assert f_floating_decode(harness.reg(0)) == pytest.approx(7.0)


class TestEmodf:
    def test_splits_integer_and_fraction(self, harness):
        # 2.5 * 3 = 7.5 -> integer 7, fraction 0.5
        harness.asm.instr("MOVF", "I^#3", "R1")
        harness.asm.instr("EMODF", "f2_5", "#0", "R1", "R2", "R3")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("f2_5")
        harness.asm.long(f_floating_encode(2.5))
        harness.run()
        assert harness.reg(2) == 7
        assert f_floating_decode(harness.reg(3)) == pytest.approx(0.5)


class TestAcbf:
    def test_float_loop(self, harness):
        harness.asm.instr("MOVF", "I^#0", "R1")
        harness.asm.instr("CLRL", "R0")
        harness.asm.label("loop")
        harness.asm.instr("INCL", "R0")
        harness.asm.instr("ACBF", "I^#3", "I^#1", "R1", "loop")
        harness.asm.instr("HALT")
        harness.run()
        # R1 walks 1.0, 2.0, 3.0 (taken while <= 3), then 4.0 (not taken).
        assert harness.reg(0) == 4
        assert f_floating_decode(harness.reg(1)) == pytest.approx(4.0)


class TestMovtc:
    def test_translates_through_table(self, harness):
        # Table maps lower-case to upper-case (offset -32 in the range).
        harness.asm.instr("MOVTC", "#5", "src", "#0x2A", "table", "#7", "dst")
        harness.asm.instr("HALT")
        harness.asm.label("src")
        harness.asm.ascii("hello")
        harness.asm.label("dst")
        harness.asm.space(7, fill=0)
        harness.asm.label("table")
        table = bytearray(range(256))
        for code in range(ord("a"), ord("z") + 1):
            table[code] = code - 32
        harness.asm.byte(*table)
        harness.run()
        dst = harness.asm.symbols["dst"]
        copied = bytes(harness.mem(dst + i, 1) for i in range(7))
        assert copied == b"HELLO**"  # translated + fill 0x2A


class TestMatchc:
    def test_finds_substring(self, harness):
        harness.asm.instr("MATCHC", "#3", "needle", "#11", "haystack")
        harness.asm.instr("HALT")
        harness.asm.label("needle")
        harness.asm.ascii("wor")
        harness.asm.label("haystack")
        harness.asm.ascii("hello world")
        harness.run()
        assert harness.cc.z  # found
        assert harness.reg(0) == 0
        # R3 points one past the match.
        haystack = harness.asm.symbols["haystack"]
        assert harness.reg(3) == haystack + 6 + 3

    def test_missing_substring(self, harness):
        harness.asm.instr("MATCHC", "#3", "needle", "#5", "haystack")
        harness.asm.instr("HALT")
        harness.asm.label("needle")
        harness.asm.ascii("xyz")
        harness.asm.label("haystack")
        harness.asm.ascii("hello")
        harness.run()
        assert not harness.cc.z
        assert harness.reg(0) == 3


class TestCrc:
    def test_crc_deterministic_and_data_dependent(self, harness):
        def run_crc(data):
            from tests.cpu.conftest import MachineHarness

            h = MachineHarness()
            h.asm.instr("CRC", "table", "#0", "#{}".format(len(data)), "stream")
            h.asm.instr("HALT")
            h.asm.align(4)
            h.asm.label("table")
            # CRC-32 nibble table (polynomial 0xEDB88320).
            for index in range(16):
                crc = index
                for _ in range(4):
                    crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
                h.asm.long(crc)
            h.asm.label("stream")
            h.asm.byte(*data)
            h.run()
            return h.reg(0)

        first = run_crc(b"hello")
        again = run_crc(b"hello")
        other = run_crc(b"hellp")
        assert first == again
        assert first != other

"""Shared fixtures: assemble-and-run helpers for CPU tests."""

import pytest

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780

ORIGIN = 0x200


class MachineHarness:
    """Assemble a program, run it on a monitored machine, inspect state."""

    def __init__(self):
        self.monitor = UPCMonitor.build()
        self.machine = VAX780(monitor=self.monitor)
        self.asm = Assembler(origin=ORIGIN)

    def run(self, max_instructions=100_000):
        image = self.asm.assemble()
        self.machine.load_program(image, ORIGIN)
        self.monitor.start()
        executed = self.machine.run(max_instructions=max_instructions)
        self.monitor.stop()
        return executed

    # Conveniences -----------------------------------------------------

    @property
    def ebox(self):
        return self.machine.ebox

    @property
    def regs(self):
        return self.machine.ebox.regs

    @property
    def cc(self):
        return self.machine.ebox.psl.cc

    def reg(self, index):
        return self.machine.ebox.regs.read(index)

    def mem(self, va, size=4):
        return self.machine.read_virtual(va, size)


@pytest.fixture
def harness():
    return MachineHarness()

"""Property-based tests over the full machine.

Hypothesis generates programs and data; the properties pin the invariants
the measurement method rests on: cycle conservation between the EBOX and
the monitor, instruction-count agreement between channels, architectural
correctness of arithmetic under random operands, and the determinism the
experiments rely on.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.core.reduction import reduce_histogram
from repro.cpu import VAX780

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def run_program(build):
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor)
    asm = Assembler(origin=0x200)
    build(asm)
    asm.instr("HALT")
    machine.load_program(asm.assemble(), 0x200)
    monitor.start()
    machine.run(max_instructions=50_000)
    monitor.stop()
    return machine, monitor


class TestCycleConservation:
    @_SETTINGS
    @given(
        values=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=20)
    )
    def test_monitor_counts_every_cycle(self, values):
        def build(asm):
            for value in values:
                asm.instr("MOVL", "#{}".format(value), "R0")
                asm.instr("ADDL2", "#1", "R1")

        machine, monitor = run_program(build)
        assert monitor.board.total_cycles() == machine.ebox.cycle_count

    @_SETTINGS
    @given(loops=st.integers(min_value=1, max_value=40))
    def test_channels_agree_on_instruction_count(self, loops):
        def build(asm):
            asm.instr("MOVL", "#{}".format(loops), "R1")
            asm.label("top")
            asm.instr("SOBGTR", "R1", "top")

        machine, monitor = run_program(build)
        counts, stalled = monitor.board.dump()
        reduction = reduce_histogram(counts, stalled, machine.layout)
        assert reduction.instructions == machine.events.instructions


class TestArithmeticProperties:
    @_SETTINGS
    @given(
        a=st.integers(min_value=0, max_value=0xFFFFFFFF),
        b=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_addl3_matches_python(self, a, b):
        def build(asm):
            asm.instr("MOVL", "I^#{}".format(a), "R1")
            asm.instr("MOVL", "I^#{}".format(b), "R2")
            asm.instr("ADDL3", "R1", "R2", "R3")

        machine, _ = run_program(build)
        assert machine.ebox.regs.read(3) == (a + b) & 0xFFFFFFFF

    @_SETTINGS
    @given(
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
        shift=st.integers(min_value=0, max_value=31),
    )
    def test_rotl_is_a_rotation(self, value, shift):
        def build(asm):
            asm.instr("MOVL", "I^#{}".format(value), "R1")
            asm.instr("ROTL", "#{}".format(shift), "R1", "R2")

        machine, _ = run_program(build)
        expected = ((value << shift) | (value >> (32 - shift))) & 0xFFFFFFFF if shift else value
        assert machine.ebox.regs.read(2) == expected

    @_SETTINGS
    @given(
        dividend=st.integers(min_value=-(2**20), max_value=2**20),
        divisor=st.integers(min_value=1, max_value=63),
    )
    def test_divl_truncates_toward_zero(self, dividend, divisor):
        def build(asm):
            asm.instr("MOVL", "I^#{}".format(dividend & 0xFFFFFFFF), "R1")
            asm.instr("DIVL3", "#{}".format(divisor), "R1", "R2")

        machine, _ = run_program(build)
        result = machine.ebox.regs.read(2)
        if result & 0x80000000:
            result -= 1 << 32
        assert result == int(dividend / divisor)

    @_SETTINGS
    @given(data=st.binary(min_size=1, max_size=40))
    def test_movc3_copies_arbitrary_bytes(self, data):
        def build(asm):
            asm.instr("MOVC3", "#{}".format(len(data)), "src", "dst")
            asm.instr("HALT")
            asm.label("src")
            asm.byte(*data)
            asm.label("dst")
            asm.space(len(data))

        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        asm = Assembler(origin=0x200)
        build(asm)
        machine.load_program(asm.assemble(), 0x200)
        machine.run(max_instructions=10_000)
        dst = asm.symbols["dst"]
        copied = bytes(machine.read_virtual(dst + i, 1) for i in range(len(data)))
        assert copied == data


class TestDeterminism:
    def test_identical_runs_produce_identical_histograms(self):
        def run_once():
            from repro.core.experiment import run_workload

            return run_workload("educational", instructions=1_200, warmup_instructions=300)

        first = run_once()
        second = run_once()
        assert first.reduction.matrix == second.reduction.matrix
        assert first.events.opcode_counts == second.events.opcode_counts
        assert first.stats.cycles == second.stats.cycles

    def test_different_seeds_differ(self):
        from repro.core.experiment import run_workload

        a = run_workload("educational", instructions=1_200, warmup_instructions=300)
        b = run_workload(
            "educational", instructions=1_200, warmup_instructions=300, seed_offset=17
        )
        # Device jitter differs with seed; cycle counts should diverge.
        assert a.stats.cycles != b.stats.cycles


class TestStackDiscipline:
    @_SETTINGS
    @given(depth=st.integers(min_value=1, max_value=12))
    def test_nested_bsb_rsb_balances(self, depth):
        def build(asm):
            asm.instr("MOVL", "SP", "R6")
            asm.instr("BSBW", "level0")
            asm.instr("MOVL", "SP", "R7")
            asm.instr("HALT")
            for level in range(depth):
                asm.label("level{}".format(level))
                if level + 1 < depth:
                    asm.instr("BSBW", "level{}".format(level + 1))
                asm.instr("RSB")

        machine, _ = run_program(build)
        assert machine.ebox.regs.read(6) == machine.ebox.regs.read(7)

"""Execute-phase semantics: SIMPLE group (moves, ALU, branches)."""

import pytest


def run_program(harness, *instructions, data=None):
    for mnemonic, *operands in instructions:
        harness.asm.instr(mnemonic, *operands)
    harness.asm.instr("HALT")
    if data:
        data(harness.asm)
    harness.run()
    return harness


class TestMoves:
    def test_movl_immediate(self, harness):
        run_program(harness, ("MOVL", "#0x1234", "R0"))
        assert harness.reg(0) == 0x1234

    def test_movl_register_to_register(self, harness):
        run_program(harness, ("MOVL", "#7", "R1"), ("MOVL", "R1", "R2"))
        assert harness.reg(2) == 7

    def test_movb_merges_low_byte(self, harness):
        run_program(
            harness,
            ("MOVL", "#0x11223344", "R0"),
            ("MOVB", "#0x55", "R0"),
        )
        assert harness.reg(0) == 0x11223355

    def test_movl_to_memory_and_back(self, harness):
        harness.asm.instr("MOVAL", "buffer", "R1")
        harness.asm.instr("MOVL", "#42", "(R1)")
        harness.asm.instr("MOVL", "(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.label("buffer")
        harness.asm.long(0)
        harness.run()
        assert harness.reg(2) == 42

    def test_movq_moves_two_registers(self, harness):
        harness.asm.instr("MOVAL", "data", "R1")
        harness.asm.instr("MOVQ", "(R1)", "R2")
        harness.asm.instr("HALT")
        harness.asm.align(4)
        harness.asm.label("data")
        harness.asm.long(0x11111111, 0x22222222)
        harness.run()
        assert harness.reg(2) == 0x11111111
        assert harness.reg(3) == 0x22222222

    def test_movzbl_zero_extends(self, harness):
        run_program(harness, ("MOVL", "#-1", "R0"), ("MOVZBL", "#0xFF", "R0"))
        assert harness.reg(0) == 0xFF

    def test_clrl(self, harness):
        run_program(harness, ("MOVL", "#5", "R3"), ("CLRL", "R3"))
        assert harness.reg(3) == 0 and harness.cc.z

    def test_mcoml(self, harness):
        run_program(harness, ("MCOML", "#0", "R0"))
        assert harness.reg(0) == 0xFFFFFFFF and harness.cc.n

    def test_mnegl(self, harness):
        run_program(harness, ("MNEGL", "#5", "R0"))
        assert harness.reg(0) == 0xFFFFFFFB

    def test_moval_gets_address(self, harness):
        harness.asm.instr("MOVAL", "spot", "R0")
        harness.asm.instr("HALT")
        harness.asm.label("spot")
        harness.asm.long(0)
        harness.run()
        assert harness.reg(0) == harness.asm.symbols["spot"]

    def test_pushl_decrements_sp(self, harness):
        run_program(harness, ("MOVL", "SP", "R6"), ("PUSHL", "#9"))
        assert harness.regs.sp == (harness.reg(6) - 4) & 0xFFFFFFFF
        assert harness.mem(harness.regs.sp) == 9


class TestALU:
    def test_addl2(self, harness):
        run_program(harness, ("MOVL", "#10", "R0"), ("ADDL2", "#5", "R0"))
        assert harness.reg(0) == 15

    def test_addl3(self, harness):
        run_program(
            harness,
            ("MOVL", "#3", "R1"),
            ("MOVL", "#4", "R2"),
            ("ADDL3", "R1", "R2", "R3"),
        )
        assert harness.reg(3) == 7

    def test_subl2_subtracts_from_destination(self, harness):
        run_program(harness, ("MOVL", "#10", "R0"), ("SUBL2", "#3", "R0"))
        assert harness.reg(0) == 7

    def test_subl3_order(self, harness):
        # SUBL3 min, sub, dst: dst = sub - min
        run_program(
            harness,
            ("MOVL", "#3", "R1"),
            ("MOVL", "#10", "R2"),
            ("SUBL3", "R1", "R2", "R3"),
        )
        assert harness.reg(3) == 7

    def test_incl_decl(self, harness):
        run_program(harness, ("MOVL", "#5", "R0"), ("INCL", "R0"), ("DECL", "R0"), ("DECL", "R0"))
        assert harness.reg(0) == 4

    def test_add_overflow_sets_v(self, harness):
        run_program(harness, ("MOVL", "#0x7FFFFFFF", "R0"), ("ADDL2", "#1", "R0"))
        assert harness.cc.v and harness.reg(0) == 0x80000000

    def test_cmpl_sets_codes_without_store(self, harness):
        run_program(harness, ("MOVL", "#5", "R0"), ("CMPL", "R0", "#5"))
        assert harness.cc.z and harness.reg(0) == 5

    def test_tstl(self, harness):
        run_program(harness, ("MOVL", "#-1", "R0"), ("TSTL", "R0"))
        assert harness.cc.n and not harness.cc.z

    def test_bicl2_clears_mask_bits(self, harness):
        run_program(harness, ("MOVL", "#0xFF", "R0"), ("BICL2", "#0x0F", "R0"))
        assert harness.reg(0) == 0xF0

    def test_bisl2_sets_mask_bits(self, harness):
        run_program(harness, ("MOVL", "#0xF0", "R0"), ("BISL2", "#0x0F", "R0"))
        assert harness.reg(0) == 0xFF

    def test_xorl2(self, harness):
        run_program(harness, ("MOVL", "#0xFF", "R0"), ("XORL2", "#0x0F", "R0"))
        assert harness.reg(0) == 0xF0

    def test_ashl_left_and_right(self, harness):
        run_program(
            harness,
            ("MOVL", "#1", "R1"),
            ("ASHL", "#4", "R1", "R2"),
            ("ASHL", "#-2", "R2", "R3"),
        )
        assert harness.reg(2) == 16 and harness.reg(3) == 4

    def test_rotl(self, harness):
        run_program(harness, ("MOVL", "#0x80000000", "R1"), ("ROTL", "#1", "R1", "R2"))
        assert harness.reg(2) == 1

    def test_cvtlb_truncates(self, harness):
        run_program(harness, ("MOVL", "#0x1FF", "R0"), ("CVTLB", "R0", "R1"))
        assert harness.reg(1) & 0xFF == 0xFF
        assert harness.cc.v  # 511 does not fit a signed byte

    def test_cvtbl_sign_extends(self, harness):
        run_program(harness, ("MOVB", "#0xFF", "R0"), ("CVTBL", "R0", "R1"))
        assert harness.reg(1) == 0xFFFFFFFF

    def test_adwc_uses_carry(self, harness):
        run_program(
            harness,
            ("MOVL", "#-1", "R0"),
            ("ADDL2", "#1", "R0"),  # sets C
            ("MOVL", "#5", "R1"),
            ("ADWC", "#0", "R1"),
        )
        assert harness.reg(1) == 6

    def test_mull3(self, harness):
        run_program(harness, ("MOVL", "#6", "R1"), ("MULL3", "#7", "R1", "R2"))
        assert harness.reg(2) == 42

    def test_divl3(self, harness):
        run_program(harness, ("MOVL", "#6", "R1"), ("DIVL3", "R1", "#42", "R2"))
        # DIVL3 divisor, dividend, quotient
        assert harness.reg(2) == 7

    def test_emul(self, harness):
        run_program(
            harness,
            ("MOVL", "#0x10000", "R1"),
            ("MOVL", "#0x10000", "R2"),
            ("MOVL", "#0", "R3"),
            ("EMUL", "R1", "R2", "R3", "R4"),
        )
        assert harness.reg(4) == 0  # low longword of 2^32
        assert harness.reg(5) == 1  # high longword


class TestBranches:
    def test_taken_forward_branch_skips(self, harness):
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("TSTL", "R0")
        harness.asm.instr("BNEQ", "skip")
        harness.asm.instr("MOVL", "#99", "R1")
        harness.asm.label("skip")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 0

    def test_not_taken_branch_falls_through(self, harness):
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("TSTL", "R0")
        harness.asm.instr("BEQL", "skip")
        harness.asm.instr("MOVL", "#99", "R1")
        harness.asm.label("skip")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 99

    def test_sobgtr_loop_count(self, harness):
        harness.asm.instr("MOVL", "#10", "R1")
        harness.asm.instr("MOVL", "#0", "R0")
        harness.asm.label("loop")
        harness.asm.instr("ADDL2", "#1", "R0")
        harness.asm.instr("SOBGTR", "R1", "loop")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) == 10

    def test_aoblss(self, harness):
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("MOVL", "#0", "R0")
        harness.asm.label("loop")
        harness.asm.instr("ADDL2", "#2", "R0")
        harness.asm.instr("AOBLSS", "#5", "R1", "loop")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 5 and harness.reg(0) == 10

    def test_acbl_stride(self, harness):
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("MOVL", "#0", "R0")
        harness.asm.label("loop")
        harness.asm.instr("INCL", "R0")
        harness.asm.instr("ACBL", "#10", "#3", "R1", "loop")
        harness.asm.instr("HALT")
        harness.run()
        # R1 walks 3, 6, 9, 12 -> loop body runs 4 times
        assert harness.reg(0) == 4 and harness.reg(1) == 12

    def test_blbs(self, harness):
        harness.asm.instr("MOVL", "#3", "R0")
        harness.asm.instr("BLBS", "R0", "odd")
        harness.asm.instr("MOVL", "#0", "R1")
        harness.asm.instr("HALT")
        harness.asm.label("odd")
        harness.asm.instr("MOVL", "#1", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 1

    def test_bsb_rsb_roundtrip(self, harness):
        harness.asm.instr("BSBW", "sub")
        harness.asm.instr("MOVL", "#2", "R1")
        harness.asm.instr("HALT")
        harness.asm.label("sub")
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("RSB")
        harness.run()
        assert harness.reg(0) == 1 and harness.reg(1) == 2

    def test_jsb_with_specifier_target(self, harness):
        harness.asm.instr("MOVAL", "sub", "R5")
        harness.asm.instr("JSB", "(R5)")
        harness.asm.instr("HALT")
        harness.asm.label("sub")
        harness.asm.instr("MOVL", "#7", "R0")
        harness.asm.instr("RSB")
        harness.run()
        assert harness.reg(0) == 7

    def test_jmp(self, harness):
        harness.asm.instr("JMP", "target")
        harness.asm.instr("MOVL", "#99", "R0")
        harness.asm.label("target")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(0) == 0

    def test_casel_dispatch(self, harness):
        harness.asm.instr("MOVL", "#1", "R0")
        harness.asm.instr("CASEL", "R0", "#0", "#2")
        harness.asm.label("table")
        harness.asm.word_ref("case0", "table")
        harness.asm.word_ref("case1", "table")
        harness.asm.word_ref("case2", "table")
        harness.asm.label("case0")
        harness.asm.instr("MOVL", "#100", "R1")
        harness.asm.instr("HALT")
        harness.asm.label("case1")
        harness.asm.instr("MOVL", "#101", "R1")
        harness.asm.instr("HALT")
        harness.asm.label("case2")
        harness.asm.instr("MOVL", "#102", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 101

    def test_casel_out_of_range_falls_past_table(self, harness):
        harness.asm.instr("MOVL", "#9", "R0")
        harness.asm.instr("CASEL", "R0", "#0", "#1")
        harness.asm.label("table")
        harness.asm.word_ref("case0", "table")
        harness.asm.word_ref("case0", "table")
        harness.asm.instr("MOVL", "#55", "R1")  # fall-through lands here
        harness.asm.instr("HALT")
        harness.asm.label("case0")
        harness.asm.instr("MOVL", "#100", "R1")
        harness.asm.instr("HALT")
        harness.run()
        assert harness.reg(1) == 55

    def test_branch_events_recorded(self, harness):
        harness.asm.instr("MOVL", "#2", "R1")
        harness.asm.label("loop")
        harness.asm.instr("SOBGTR", "R1", "loop")
        harness.asm.instr("HALT")
        harness.run()
        events = harness.machine.events
        assert events.branch_executed["loop"] == 2
        assert events.branch_taken["loop"] == 1

"""The structured logger: levels, env resolution, output format."""

import io

import pytest

from repro.obs import log as obs_log
from repro.obs.log import DEBUG, ERROR, INFO, WARN, Logger, level_from_env, set_level


@pytest.fixture(autouse=True)
def _reset_level():
    yield
    set_level(None)


def test_level_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    assert level_from_env() == INFO
    monkeypatch.setenv("REPRO_LOG", "debug")
    assert level_from_env() == DEBUG
    monkeypatch.setenv("REPRO_LOG", "WARNING")
    assert level_from_env() == WARN
    monkeypatch.setenv("REPRO_LOG", "nonsense")
    assert level_from_env() == INFO


def test_set_level_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_LOG", "error")
    set_level(DEBUG)
    assert obs_log.current_level() == DEBUG
    set_level(None)
    assert obs_log.current_level() == ERROR


def test_set_level_rejects_unknown():
    with pytest.raises(ValueError):
        set_level(17)


def test_messages_below_threshold_are_dropped():
    stream = io.StringIO()
    logger = Logger("test", stream=stream)
    set_level(WARN)
    logger.info("quiet")
    logger.warn("loud")
    output = stream.getvalue()
    assert "quiet" not in output
    assert "loud" in output


def test_line_format_is_structured():
    stream = io.StringIO()
    logger = Logger("repro.engine", stream=stream)
    set_level(INFO)
    logger.info("spec done", seconds=1.23456, name="educational")
    line = stream.getvalue().strip()
    assert "INFO repro.engine: spec done" in line
    # Fields render sorted, floats truncated to 3 places.
    assert line.endswith("name=educational seconds=1.235")


def test_emit_goes_to_stdout(capsys):
    obs_log.emit("table row")
    captured = capsys.readouterr()
    assert captured.out == "table row\n"
    assert captured.err == ""


def test_logger_diagnostics_go_to_stderr(capsys):
    set_level(INFO)
    obs_log.get_logger("repro.test").info("status")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "status" in captured.err

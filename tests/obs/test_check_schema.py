"""The ``repro.check/v1`` JSON schema is a contract: downstream
consumers (the CI validation leg, dashboards) key on its field names
and nesting.  The golden file pins the *shape* — key sets and leaf
types — so counter-value drift never churns it but a renamed or
dropped field fails loudly.  Regenerate deliberately with:

    PYTHONPATH=src python tests/obs/test_check_schema.py
"""

import json
import os

from repro.obs.invariants import SCHEMA_VERSION, schema_envelope

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "check_schema.json")

INSTRUCTIONS = 2_000
WARMUP = 500


def shape(value):
    """Collapse a JSON value to its structural skeleton."""
    if isinstance(value, dict):
        return {key: shape(val) for key, val in sorted(value.items())}
    if isinstance(value, list):
        return [shape(value[0])] if value else []
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "null"


def check_envelope():
    from repro.obs.invariants import run_checked_workload

    report, _result = run_checked_workload(
        "timesharing_light",
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
    )
    assert report.ok
    return schema_envelope("check", [report.payload()])


def test_check_envelope_matches_the_golden_shape():
    with open(GOLDEN) as handle:
        golden = json.load(handle)
    assert shape(check_envelope()) == golden


def test_validate_envelope_reuses_the_same_schema():
    """``repro validate --json`` emits the identical envelope; its
    checks carry the same required keys (plus ``mode``)."""
    from repro.validate import RefutationRunner, build_probes

    with open(GOLDEN) as handle:
        golden = json.load(handle)
    golden_check_keys = set(golden["reports"][0]["checks"][0])

    report = RefutationRunner(modes=("compiled",), trace=False).run_probe(
        build_probes()["reg_mov_chain"]
    )
    envelope = schema_envelope("validate", [report.to_dict()])
    assert envelope["schema"] == SCHEMA_VERSION
    assert set(envelope) == set(golden)
    assert set(envelope["summary"]) == set(golden["summary"])
    check_keys = set(envelope["reports"][0]["checks"][0])
    # Same contract minus the identity-only field, plus the mode tag.
    assert check_keys - {"mode"} == golden_check_keys - {"description"}


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
    with open(GOLDEN, "w") as handle:
        json.dump(shape(check_envelope()), handle, indent=2)
        handle.write("\n")
    print("wrote", GOLDEN)

"""Run manifests and config hashing."""

from repro.core.engine import MachineConfig, RunSpec
from repro.obs.provenance import RunManifest, code_version, config_hash


def test_config_hash_is_stable():
    spec = RunSpec(workload="educational", instructions=5_000)
    assert config_hash(spec) == config_hash(
        RunSpec(workload="educational", instructions=5_000)
    )


def test_config_hash_tracks_every_determining_field():
    base = RunSpec(workload="educational")
    variants = [
        RunSpec(workload="scientific"),
        RunSpec(workload="educational", instructions=base.instructions + 1),
        RunSpec(workload="educational", warmup_instructions=1),
        RunSpec(workload="educational", seed_offset=7),
        RunSpec(workload="educational", process_count=2),
        RunSpec(workload="educational", config=MachineConfig(cache_size_bytes=4096)),
    ]
    hashes = {config_hash(base)} | {config_hash(v) for v in variants}
    assert len(hashes) == len(variants) + 1


def test_label_does_not_change_the_hash():
    # The label names the run; it cannot change the measurement.
    assert config_hash(RunSpec(workload="educational")) == config_hash(
        RunSpec(workload="educational", label="renamed")
    )


def test_manifest_for_spec_round_trips_to_dict():
    spec = RunSpec(workload="educational", seed_offset=3, label="edu")
    manifest = RunManifest.for_spec(spec, profile_seed=303, started_at=123.0)
    payload = manifest.to_dict()
    assert payload["spec_name"] == "edu"
    assert payload["workload"] == "educational"
    assert payload["profile_seed"] == 303
    assert payload["seed_offset"] == 3
    assert payload["config_hash"] == config_hash(spec)
    assert payload["code_version"] == code_version()
    assert payload["started_at"] == 123.0
    assert payload["python_version"]


def test_manifest_pickles():
    import pickle

    manifest = RunManifest.for_spec(
        RunSpec(workload="educational"), profile_seed=303
    )
    clone = pickle.loads(pickle.dumps(manifest))
    assert clone == manifest

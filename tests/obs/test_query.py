"""The trace query engine: v2 store round-trips, segment pruning,
v1 backward compatibility, the query grammar, and aggregates."""

import pytest

from repro.obs.query import (
    QueryError,
    TraceQuery,
    TraceStore,
    open_store,
    parse_query,
    write_store,
)
from repro.obs.trace import Tracer, write_binary


def synthetic_tracer(spans=64):
    """A deterministic capture touching every phase and several tracks."""
    tracer = Tracer()
    for index in range(spans):
        cycle = index * 10
        tracer.begin("EBOX", cycle, "MOVL" if index % 2 else "ADDL2")
        tracer.complete(
            "UCODE", cycle + 1, "exec", 3, {"routine": "exec.movl"}
        )
        if index % 4 == 0:
            tracer.complete("MEM", cycle + 2, "read stall", 6)
        if index % 8 == 0:
            tracer.instant("VMS", cycle + 3, "page fault", {"mode": "read"})
        tracer.end("EBOX", cycle + 9)
    return tracer


# ---------------------------------------------------------------------------
# v2 store round-trip
# ---------------------------------------------------------------------------


def test_store_round_trip_preserves_every_record(tmp_path):
    tracer = synthetic_tracer()
    path = tmp_path / "t.vaxtrace"
    footer = write_store(tracer, str(path), meta={"workload": "synthetic"})
    assert footer["version"] == 2
    assert footer["record_count"] == len(tracer)
    assert footer["meta"]["workload"] == "synthetic"

    store = open_store(str(path))
    live = TraceQuery(tracer)
    stored = TraceQuery(store)
    assert stored.count() == live.count()
    assert stored.where(track="MEM").sum("cycles") == live.where(
        track="MEM"
    ).sum("cycles")
    assert stored.where(track="EBOX", phase="E").count() == live.where(
        track="EBOX", phase="E"
    ).count()
    assert stored.group_by("name") == live.group_by("name")


def test_store_preserves_aux_columns(tmp_path):
    tracer = synthetic_tracer()
    path = tmp_path / "t.vaxtrace"
    write_store(tracer, str(path))
    store = open_store(str(path))
    live = TraceQuery(tracer).where(routine="exec.movl").count()
    assert live > 0
    assert TraceQuery(store).where(routine="exec.movl").count() == live


def test_segment_pruning_skips_nonmatching_segments(tmp_path):
    tracer = synthetic_tracer(spans=256)
    path = tmp_path / "t.vaxtrace"
    footer = write_store(tracer, str(path), segment_records=64)
    assert len(footer["segments"]) > 2

    store = open_store(str(path))
    # A tight cycle window only needs the segments overlapping it.
    narrow = TraceQuery(store).where(ts_min=0, ts_max=50).count()
    assert narrow > 0
    assert store.segments_scanned < len(footer["segments"])


def test_segment_pruning_by_track(tmp_path):
    # VMS events are rare; with tiny segments most hold none and the
    # footer's per-segment track sets let the store skip them.
    tracer = synthetic_tracer(spans=256)
    path = tmp_path / "t.vaxtrace"
    footer = write_store(tracer, str(path), segment_records=16)
    store = open_store(str(path))
    count = TraceQuery(store).where(track="VMS").count()
    assert count == 256 // 8
    assert store.segments_scanned < len(footer["segments"])


def test_store_records_drop_count(tmp_path):
    tracer = Tracer(capacity=8)
    for cycle in range(20):
        tracer.instant("EBOX", cycle, "tick")
    path = tmp_path / "t.vaxtrace"
    footer = write_store(tracer, str(path))
    assert footer["dropped"] == 12
    assert open_store(str(path)).footer["dropped"] == 12


def test_extra_events_merge_by_timestamp(tmp_path):
    tracer = synthetic_tracer(spans=8)
    extra = [("I", "JIT", 15, "tier up", 0, {"reason": "MOVL"})]
    path = tmp_path / "t.vaxtrace"
    write_store(tracer, str(path), extra_events=extra)
    store = open_store(str(path))
    assert TraceQuery(store).where(track="JIT").count() == 1
    timestamps = [record.ts for record in store.iter_records()]
    assert timestamps == sorted(timestamps)


# ---------------------------------------------------------------------------
# v1 backward compatibility
# ---------------------------------------------------------------------------


def test_v1_binary_opens_through_the_same_front_door(tmp_path):
    tracer = synthetic_tracer()
    path = tmp_path / "t.bin"
    write_binary(tracer, str(path))
    store = open_store(str(path))
    live = TraceQuery(tracer)
    stored = TraceQuery(store)
    assert stored.count() == live.count()
    assert stored.where(track="MEM").sum("cycles") == live.where(
        track="MEM"
    ).sum("cycles")
    # v1 dropped args, so aux filters match nothing — but must not error.
    assert stored.where(routine="exec.movl").count() == 0


def test_open_store_rejects_garbage(tmp_path):
    path = tmp_path / "junk"
    path.write_bytes(b"not a trace at all, sorry")
    with pytest.raises(QueryError):
        open_store(str(path))


# ---------------------------------------------------------------------------
# the query API
# ---------------------------------------------------------------------------


def test_where_is_immutable_and_chains():
    tracer = synthetic_tracer()
    base = TraceQuery(tracer)
    mem = base.where(track="MEM")
    assert base.count() != mem.count()
    assert mem.where(phase="X").count() == mem.count()


def test_opcode_filter_targets_ebox_mnemonics():
    tracer = synthetic_tracer()
    query = TraceQuery(tracer).where(opcode="movl")
    assert query.count() == TraceQuery(tracer).where(
        track="EBOX", name="MOVL"
    ).count()


def test_histogram_reports_percentiles():
    tracer = synthetic_tracer()
    stats = TraceQuery(tracer).where(track="MEM").histogram()
    assert stats["count"] > 0
    assert stats["min"] <= stats["p50"] <= stats["p90"] <= stats["p99"] <= stats["max"]
    assert stats["sum"] == TraceQuery(tracer).where(track="MEM").sum("cycles")


def test_group_by_track_partitions_the_count():
    tracer = synthetic_tracer()
    groups = TraceQuery(tracer).group_by("track", agg="count")
    assert sum(groups.values()) == TraceQuery(tracer).count()


def test_unknown_group_key_raises():
    with pytest.raises(QueryError):
        TraceQuery(synthetic_tracer()).group_by("flavor")


def test_mean_of_empty_selection_is_zero():
    assert TraceQuery(synthetic_tracer()).where(track="JIT").mean() == 0.0


# ---------------------------------------------------------------------------
# the query grammar
# ---------------------------------------------------------------------------


def test_parse_sum_cycles_with_filters():
    tracer = synthetic_tracer()
    plan = parse_query("stall cycles where track=MEM")
    assert plan.run(tracer) == TraceQuery(tracer).where(
        track="MEM", name_contains="stall"
    ).sum("cycles")


def test_parse_count_events_with_two_filters():
    tracer = synthetic_tracer()
    plan = parse_query("count events where track=VMS and name=page fault")
    assert plan.run(tracer) == TraceQuery(tracer).where(
        track="VMS", name="page fault"
    ).count()


def test_parse_group_by():
    tracer = synthetic_tracer()
    plan = parse_query("sum cycles group by track")
    assert plan.run(tracer) == TraceQuery(tracer).group_by(
        "track", agg="sum", field="cycles"
    )


def test_parse_rejects_unknown_where_key():
    with pytest.raises(QueryError):
        parse_query("sum cycles where flavor=vanilla")


def test_parse_rejects_unknown_measure():
    with pytest.raises(QueryError):
        parse_query("sum bananas where track=MEM")


def test_parse_rejects_empty_query():
    with pytest.raises(QueryError):
        parse_query("   ")


# ---------------------------------------------------------------------------
# the CLI face (repro trace --format store / repro query)
# ---------------------------------------------------------------------------


def test_cli_store_then_query_round_trip(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "trace", "educational", "--instructions", "1200", "--warmup", "400",
        "--format", "store", "--output", "cap",
    ]) == 0
    assert (tmp_path / "cap.vaxtrace").exists()
    capsys.readouterr()

    assert main([
        "query", "stall cycles where track=MEM", "--trace", "cap.vaxtrace",
    ]) == 0
    out = capsys.readouterr().out
    assert "stall cycles where track=MEM" in out

    assert main([
        "query", "sum cycles group by track", "--trace", "cap.vaxtrace",
        "--json",
    ]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["result"]


def test_cli_query_rejects_bad_expression(tmp_path, capsys):
    from repro.cli import main

    assert main(["query", "sum bananas where track=MEM", "--trace", "x"]) == 2


def test_cli_query_needs_a_source():
    from repro.cli import main

    assert main(["query", "count events"]) == 2

"""The tracer itself: ring bound, exports, validation, round-trips."""

import io
import json

import pytest

from repro.obs.trace import (
    TRACKS,
    Tracer,
    read_binary,
    tracing_enabled,
    validate_chrome,
    write_binary,
)


def test_tracing_enabled_is_the_none_test():
    assert not tracing_enabled(None)
    assert tracing_enabled(Tracer())


def test_events_retained_in_order():
    tracer = Tracer()
    tracer.begin("EBOX", 0, "MOVL")
    tracer.instant("MEM", 3, "cache read miss", {"va": 0x200})
    tracer.complete("MEM", 3, "read stall", 6)
    tracer.end("EBOX", 9)
    phases = [event[0] for event in tracer.events()]
    assert phases == ["B", "I", "X", "E"]
    assert len(tracer) == 4
    assert tracer.emitted == 4
    assert tracer.dropped == 0


def test_ring_is_bounded_and_counts_drops():
    tracer = Tracer(capacity=8)
    for cycle in range(20):
        tracer.instant("EBOX", cycle, "tick")
    assert len(tracer) == 8
    assert tracer.emitted == 20
    assert tracer.dropped == 12
    # The ring keeps the most recent events.
    assert [event[2] for event in tracer.events()] == list(range(12, 20))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_clear_resets_everything():
    tracer = Tracer()
    tracer.begin("UCODE", 0, "routine")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.emitted == 0
    # A fresh end after clear has no open span to close.
    tracer.end("UCODE", 5)
    payload = tracer.to_chrome()
    assert validate_chrome(payload) == []


def test_chrome_export_validates_and_scales_timestamps():
    tracer = Tracer()
    tracer.begin("EBOX", 0, "MOVL", {"va": 0x100})
    tracer.begin("UCODE", 2, "spec1")
    tracer.end("UCODE", 5)
    tracer.complete("MEM", 5, "read stall", 6)
    tracer.end("EBOX", 11)
    payload = tracer.to_chrome()
    assert validate_chrome(payload) == []
    events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
    # 200ns microcycle: cycle 2 -> 0.4 microseconds.
    ucode_begin = next(e for e in events if e["ph"] == "B" and e["name"] == "spec1")
    assert ucode_begin["ts"] == pytest.approx(0.4)
    assert ucode_begin["args"]["cycle"] == 2
    stall = next(e for e in events if e["ph"] == "X")
    assert stall["dur"] == pytest.approx(1.2)
    assert stall["args"]["cycles"] == 6


def test_chrome_export_has_one_named_thread_per_track():
    payload = Tracer().to_chrome()
    names = {
        event["args"]["name"]
        for event in payload["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert names == set(TRACKS)


def test_chrome_export_drops_orphan_ends_after_overflow():
    tracer = Tracer(capacity=4)
    tracer.begin("EBOX", 0, "MOVL")
    for cycle in range(1, 6):
        tracer.instant("MEM", cycle, "tick")  # pushes the B out of the ring
    tracer.end("EBOX", 6)
    payload = tracer.to_chrome()
    assert validate_chrome(payload) == []
    assert not any(
        e["ph"] == "E" for e in payload["traceEvents"] if e["ph"] != "M"
    )


def test_chrome_export_closes_spans_left_open():
    tracer = Tracer()
    tracer.begin("EBOX", 0, "MOVL")
    tracer.begin("UCODE", 1, "exec")  # capture stops mid-instruction
    payload = tracer.to_chrome()
    assert validate_chrome(payload) == []
    synthetic = [
        e for e in payload["traceEvents"] if e["ph"] == "E" and e["name"] == ""
    ]
    assert len(synthetic) == 2


def test_chrome_json_round_trips_through_serialization():
    tracer = Tracer()
    tracer.begin("EBOX", 0, "MOVL")
    tracer.end("EBOX", 4)
    buffer = io.StringIO()
    tracer.write_chrome(buffer)
    payload = json.loads(buffer.getvalue())
    assert validate_chrome(payload) == []
    assert payload["otherData"]["microcycle_ns"] == 200


def test_binary_round_trip():
    tracer = Tracer()
    tracer.begin("EBOX", 0, "MOVL", {"va": 1})
    tracer.instant("IFETCH", 2, "redirect")
    tracer.complete("MEM", 3, "read stall", 6)
    tracer.end("EBOX", 9)
    buffer = io.BytesIO()
    write_binary(tracer, buffer)
    buffer.seek(0)
    events = read_binary(buffer)
    # args are dropped by the bulk format; everything else survives.
    expected = [
        (phase, track, ts, name, dur, None)
        for phase, track, ts, name, dur, _args in tracer.events()
    ]
    assert events == expected


def test_binary_round_trip_via_files(tmp_path):
    tracer = Tracer()
    for cycle in range(100):
        tracer.instant("VMS", cycle, "tick", {"n": cycle})
    path = tmp_path / "dump.bin"
    write_binary(tracer, str(path))
    events = read_binary(str(path))
    assert len(events) == 100
    assert events[0][:4] == ("I", "VMS", 0, "tick")


def test_binary_rejects_wrong_magic(tmp_path):
    path = tmp_path / "bogus.bin"
    path.write_bytes(b"NOTATRACE")
    with pytest.raises(ValueError):
        read_binary(str(path))


def test_validator_flags_regressing_timestamps():
    payload = {
        "traceEvents": [
            {"name": "a", "ph": "I", "pid": 1, "tid": 1, "ts": 5.0, "args": {}},
            {"name": "b", "ph": "I", "pid": 1, "tid": 1, "ts": 4.0, "args": {}},
        ]
    }
    problems = validate_chrome(payload)
    assert any("regresses" in problem for problem in problems)


def test_validator_flags_unpaired_spans():
    payload = {
        "traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0, "args": {}},
        ]
    }
    assert any("unclosed" in p for p in validate_chrome(payload))
    payload = {
        "traceEvents": [
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 0.0, "args": {}},
        ]
    }
    assert any("without open B" in p for p in validate_chrome(payload))

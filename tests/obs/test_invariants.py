"""The invariant checker: identities hold on honest runs, a seeded
miscount fault trips exactly the right identity with the right blame."""

import pytest

from repro.obs.invariants import (
    CheckReport,
    IdentityOutcome,
    check_trace,
    run_checked_workload,
)
from repro.testing.faults import FaultPlan, FaultRule

INSTRUCTIONS = 3_000
WARMUP = 500


def test_outcome_equality_and_subsystem():
    ok = IdentityOutcome("cycles.classified", "d", lhs=5, rhs=5)
    bad = IdentityOutcome("cycles.classified", "d", lhs=5, rhs=6)
    assert ok.ok and not bad.ok
    assert bad.subsystem == "monitor"
    assert bad.to_dict()["ok"] is False


def test_report_rolls_up_failures():
    report = CheckReport(name="x")
    report.outcomes.append(IdentityOutcome("a", "d", 1, 1))
    assert report.ok
    report.outcomes.append(IdentityOutcome("b", "d", 1, 2))
    assert not report.ok
    assert [outcome.name for outcome in report.failures] == ["b"]


@pytest.mark.parametrize("workload", ["timesharing_light", "scientific"])
def test_identities_hold_on_honest_runs(workload):
    report, result = run_checked_workload(
        workload, instructions=INSTRUCTIONS, warmup_instructions=WARMUP
    )
    assert report.ok, [outcome.to_dict() for outcome in report.failures]
    assert result.instructions > 0
    names = {outcome.name for outcome in report.outcomes}
    assert "cycles.classified" in names
    assert "memory.read_miss_split" in names


def test_trace_identities_hold_and_match_counters():
    report, _result = run_checked_workload(
        "timesharing_light",
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        trace=True,
    )
    assert report.ok, [outcome.to_dict() for outcome in report.failures]
    assert not report.skipped
    names = {outcome.name for outcome in report.outcomes}
    assert {"trace.instructions", "trace.page_faults", "trace.interrupts"} <= names


def test_miscount_fault_trips_the_cycle_identity(tmp_path):
    plan = FaultPlan(
        rules=[FaultRule(site="monitor.dump", action="miscount", times=1)],
        seed=7,
        state_dir=str(tmp_path),
    )
    with plan.active():
        report, _result = run_checked_workload(
            "timesharing_light",
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
        )
    assert not report.ok
    failed = {outcome.name for outcome in report.failures}
    assert failed == {"cycles.classified"}
    (outcome,) = report.failures
    assert outcome.subsystem == "monitor"
    # Localization names the decode dispatch, the busiest compute-slot
    # bucket, where the phantom stalled cycles landed.
    assert "decode.dispatch" in outcome.detail
    assert "COMPUTE_A" in outcome.detail
    # The phantom count is deterministic in the plan seed.
    assert outcome.rhs - outcome.lhs == 1007


def test_fault_is_readout_only_not_live_banks(tmp_path):
    """The same run re-reduced from a clean dump must agree with an
    undisturbed run: the miscount damages the readout copy only."""
    plan = FaultPlan(
        rules=[FaultRule(site="monitor.dump", action="miscount", times=1)],
        seed=7,
        state_dir=str(tmp_path),
    )
    with plan.active():
        _report, faulted = run_checked_workload(
            "timesharing_light",
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
        )
    clean_report, clean = run_checked_workload(
        "timesharing_light", instructions=INSTRUCTIONS, warmup_instructions=WARMUP
    )
    assert clean_report.ok
    # Non-histogram instruments are untouched by the readout fault.
    assert faulted.events.instructions == clean.events.instructions
    assert faulted.stats == clean.stats


def test_trace_identities_skip_when_ring_dropped():
    outcomes, skipped = check_trace([], whole_run_events=None, dropped=3)
    assert outcomes == []
    assert set(skipped) == {
        "trace.instructions",
        "trace.page_faults",
        "trace.interrupts",
    }
    assert all("dropped 3" in reason for reason in skipped.values())


def test_checked_workload_skips_loudly_on_an_overflowed_ring():
    """An undersized ring must surface in ``report.skipped`` — silently
    omitting the trace identities would read as checked-and-passed."""
    report, _result = run_checked_workload(
        "timesharing_light",
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        trace=True,
        tracer_capacity=64,
    )
    assert set(report.skipped) == {
        "trace.instructions",
        "trace.page_faults",
        "trace.interrupts",
    }
    assert all("dropped" in reason for reason in report.skipped.values())
    # the counter identities still ran and still hold
    assert report.ok
    assert any(
        outcome.name == "cycles.classified" for outcome in report.outcomes
    )


def test_checked_workload_without_tracer_has_no_trace_checks():
    """trace=False is the tracer-absent path: no trace identities run
    and nothing is reported skipped — absence is stated, not implied."""
    report, _result = run_checked_workload(
        "timesharing_light",
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        trace=False,
    )
    assert report.skipped == {}
    assert not any(
        outcome.name.startswith("trace.") for outcome in report.outcomes
    )


def test_localization_is_silent_when_every_cycle_classifies():
    from repro.core.experiment import prepare_workload
    from repro.obs.invariants import localize_unclassified

    # Raw banks from an honest run: nothing to localize.
    kernel, monitor = prepare_workload("timesharing_light")
    kernel.run(max_instructions=500)
    counts, stalled = monitor.board.dump()
    assert localize_unclassified(counts, stalled, kernel.machine.layout) == ""


class TestCLI:
    def test_check_passes_on_an_honest_workload(self, capsys):
        from repro.cli import main

        assert main([
            "check", "timesharing_light",
            "--instructions", str(INSTRUCTIONS), "--warmup", str(WARMUP),
        ]) == 0
        out = capsys.readouterr().out
        assert "all hold" in out
        assert "cycles.classified" in out

    def test_check_exits_1_and_localizes_under_fault(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(
            rules=[FaultRule(site="monitor.dump", action="miscount", times=1)],
            seed=7,
            state_dir=str(tmp_path),
        )
        with plan.active():
            code = main([
                "check", "timesharing_light",
                "--instructions", str(INSTRUCTIONS), "--warmup", str(WARMUP),
            ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL cycles.classified" in out
        assert "subsystem: monitor" in out
        assert "decode.dispatch" in out

    def test_check_json_emits_the_stable_envelope(self, capsys):
        import json

        from repro.cli import main
        from repro.obs.invariants import SCHEMA_VERSION

        assert main([
            "check", "timesharing_light", "--json",
            "--instructions", str(INSTRUCTIONS), "--warmup", str(WARMUP),
        ]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["command"] == "check"
        assert envelope["ok"] is True
        assert envelope["summary"]["failures"] == 0
        (report,) = envelope["reports"]
        assert report["ok"] is True
        assert {
            check["name"] for check in report["checks"]
        } >= {"cycles.classified", "instructions.opcodes"}

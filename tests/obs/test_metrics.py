"""The typed metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, MetricTypeError, registry_from_result


def test_counter_accumulates_and_refuses_to_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("events.widgets")
    counter.inc()
    counter.inc(4)
    assert registry.counter("events.widgets").snapshot() == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_holds_the_latest_value():
    registry = MetricsRegistry()
    registry.gauge("sim.cpi").set(10.5)
    registry.gauge("sim.cpi").set(9.25)
    assert registry.gauge("sim.cpi").snapshot() == 9.25


def test_histogram_tracks_moments():
    registry = MetricsRegistry()
    histogram = registry.histogram("phase.seconds")
    for value in (2.0, 4.0, 6.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == 12.0
    assert snap["min"] == 2.0
    assert snap["max"] == 6.0
    assert snap["mean"] == pytest.approx(4.0)


def test_type_clash_raises():
    registry = MetricsRegistry()
    registry.counter("name")
    with pytest.raises(MetricTypeError):
        registry.gauge("name")


def test_timer_observes_elapsed_seconds():
    registry = MetricsRegistry()
    with registry.timer("phase.test.seconds"):
        pass
    snap = registry.histogram("phase.test.seconds").snapshot()
    assert snap["count"] == 1
    assert snap["sum"] >= 0


def test_snapshot_groups_by_kind_and_sorts_names():
    registry = MetricsRegistry()
    registry.gauge("b").set(1)
    registry.counter("a").inc(2)
    registry.histogram("c").observe(3)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 2}
    assert snap["gauges"] == {"b": 1}
    assert list(snap["histograms"]) == ["c"]


def test_merge_snapshot_folds_worker_results():
    worker = MetricsRegistry()
    worker.counter("sim.instructions").inc(100)
    worker.gauge("sim.cpi").set(10.0)
    worker.histogram("phase.measure.seconds").observe(1.5)

    coordinator = MetricsRegistry()
    coordinator.counter("sim.instructions").inc(50)
    coordinator.histogram("phase.measure.seconds").observe(0.5)
    coordinator.merge_snapshot(worker.snapshot())

    assert coordinator.counter("sim.instructions").snapshot() == 150
    assert coordinator.gauge("sim.cpi").snapshot() == 10.0
    merged = coordinator.histogram("phase.measure.seconds").snapshot()
    assert merged["count"] == 2
    assert merged["min"] == 0.5
    assert merged["max"] == 1.5


def test_registry_from_result_exposes_the_reporting_surface():
    from repro.core.experiment import run_workload

    result = run_workload("educational", instructions=400, warmup_instructions=100)
    registry = registry_from_result(result)
    snap = registry.snapshot()
    assert snap["counters"]["sim.instructions"] == result.instructions
    assert snap["gauges"]["sim.cpi"] == pytest.approx(result.cpi)
    assert snap["counters"]["machine.tb_misses"] == result.stats.tb_misses
    # Every paper column shows up as a cycles counter.
    assert "sim.cycles.compute" in snap["counters"]

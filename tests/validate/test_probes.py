"""The probe registry and the analytic cost model behind it.

These tests pin the *construction* side of refutation: expectations are
well-formed, the registry covers every subsystem the issue names, and
the CostModel walker charges exactly what the microcode model
prescribes for straight-line code.
"""

import pytest

from repro.validate.probes import (
    CostModel,
    Expectation,
    ProbeError,
    build_probes,
    canonical_names,
)


class TestExpectation:
    def test_exact_check(self):
        exp = Expectation("instructions", exact=64)
        assert exp.is_exact
        assert exp.check(64)
        assert not exp.check(65)
        assert exp.describe() == "== 64"

    def test_interval_check_needs_reason(self):
        with pytest.raises(ProbeError, match="reason"):
            Expectation("stats.read_stall_cycles", lo=6, hi=18)

    def test_interval_check(self):
        exp = Expectation(
            "stats.read_stall_cycles", lo=6, hi=18, reason="SBI queueing"
        )
        assert not exp.is_exact
        assert exp.check(6) and exp.check(18)
        assert not exp.check(5) and not exp.check(19)
        assert "SBI queueing" in exp.describe()

    def test_exact_and_interval_are_exclusive(self):
        with pytest.raises(ProbeError, match="exactly one"):
            Expectation("instructions", exact=1, lo=0, hi=2, reason="no")
        with pytest.raises(ProbeError, match="exactly one"):
            Expectation("instructions")

    def test_half_open_interval_rejected(self):
        with pytest.raises(ProbeError):
            Expectation("cycles", lo=5, reason="half-open")


class TestRegistry:
    def test_at_least_twelve_probes(self):
        probes = build_probes()
        assert len(probes) >= 12
        assert all(name == probe.name for name, probe in probes.items())

    def test_five_canonical_probes(self):
        probes = build_probes()
        canonical = canonical_names()
        assert len(canonical) == 5
        assert all(probes[name].canonical for name in canonical)
        assert set(canonical) <= set(probes)

    def test_coverage_spans_the_required_subsystems(self):
        covers = {probe.covers for probe in build_probes().values()}
        assert {"decode", "specifier", "tb", "cache", "interrupt"} <= covers

    def test_every_probe_builds_and_states_ground_truth(self):
        for probe in build_probes().values():
            asm = probe.build()
            image = asm.assemble()
            assert len(image) > 0
            assert asm.listing, "listing drives the analytic model"
            assert probe.expectations
            assert any(exp.is_exact for exp in probe.expectations), probe.name

    def test_intervals_always_state_their_slack(self):
        for probe in build_probes().values():
            for exp in probe.expectations:
                if not exp.is_exact:
                    assert exp.reason, (probe.name, exp.metric)


class TestCostModel:
    def test_register_move_merges_its_execute_cycle(self):
        model = CostModel()
        model.add_instruction("MOVL", ("R1", "R2"))
        assert model.instructions == 1
        assert model.compute["decode.dispatch"] == 1
        assert model.compute["spec1.register"] == 1
        assert model.compute["spec26.register"] == 1
        # base 1 execute cycle merged away by the literal/register rule
        assert "exec.movl" not in model.compute

    def test_write_only_destination_does_not_merge(self):
        model = CostModel()
        model.add_instruction("CLRL", ("R5",))
        assert model.compute["exec.clrl"] == 1  # no source operand seen

    def test_memory_source_charges_the_data_read(self):
        model = CostModel()
        model.add_instruction("MOVL", ("(R6)", "R2"))
        assert model.reads["spec1.register_deferred"] == 1
        assert model.data_reads() == 1
        assert model.data_writes() == 0

    def test_deferred_pointer_read_is_charged(self):
        model = CostModel()
        model.add_instruction("MOVL", ("@B^4(R6)", "R2"))
        # pointer read + data read at the same routine
        assert model.reads["spec1.byte_displacement_deferred"] == 2

    def test_indexed_operand_charges_the_shared_index_microcode(self):
        from repro.ucode.costs import INDEX_EXTRA_CYCLES

        model = CostModel()
        model.add_instruction("MOVL", ("(R6)[R3]", "R2"))
        assert model.compute["spec26.index_shared"] == INDEX_EXTRA_CYCLES
        assert model.indexed_counts == {"spec1": 1}

    def test_branch_operands_are_refused(self):
        model = CostModel()
        with pytest.raises(ProbeError, match="straight-line"):
            model.add_instruction("BRB", ("loop",))

    def test_bank_and_routine_totals(self):
        model = CostModel()
        model.add_instruction("MOVL", ("(R6)", "R2"))
        assert model.bank_compute("spec1") == model.compute["spec1.register_deferred"]
        assert model.routine_total("spec1.register_deferred") == (
            model.compute["spec1.register_deferred"] + 1
        )

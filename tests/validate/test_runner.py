"""The refutation runner end to end: every probe's ground truth holds
on the honest machine in every compile mode, a seeded cycle-model skew
is refuted with the right micro-routine blamed, and the CLI exits
non-zero on refutation.
"""

import pytest

from repro.testing.faults import FaultPlan, FaultRule, uninstall
from repro.validate import (
    ALL_MODES,
    RefutationRunner,
    ValidationError,
    build_probes,
    canonical_names,
    execute_probe,
    resolve_metric,
)

PROBES = build_probes()


@pytest.fixture(autouse=True)
def disarmed():
    uninstall()
    yield
    uninstall()


def skew_plan(tmp_path, routine, seed=3):
    return FaultPlan(
        rules=[
            FaultRule(site="costs.skew", action="skew", match=routine, times=-1)
        ],
        seed=seed,
        state_dir=str(tmp_path / "faults"),
    )


class TestResolveMetric:
    def test_unknown_metric_is_loud(self):
        run = execute_probe(PROBES["reg_mov_chain"], "compiled")
        with pytest.raises(ValidationError, match="unknown expectation metric"):
            resolve_metric("nonsense.path", run.reduction, run.events, run.stats)

    def test_routine_metric_reads_both_slots(self):
        run = execute_probe(PROBES["reg_mov_chain"], "compiled")
        cycles = run.metric("routine.decode.dispatch.cycles")
        stalled = run.metric("routine.decode.dispatch.stalled")
        assert cycles > 0 and stalled >= 0


class TestRunnerPlumbing:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="unknown mode"):
            RefutationRunner(modes=("jit",))

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValidationError, match="unknown probe"):
            RefutationRunner(modes=("compiled",), trace=False).run(["nope"])

    def test_crossmode_checks_pin_every_other_arm(self):
        report = RefutationRunner(trace=False).run_probe(PROBES["reg_mov_chain"])
        names = {outcome.name for outcome in report.outcomes}
        assert {"crossmode.compiled", "crossmode.tier1"} <= names
        assert report.ok

    def test_tiny_trace_ring_skips_loudly(self):
        runner = RefutationRunner(
            modes=("interpreted",), trace=True, tracer_capacity=8
        )
        report = runner.run_probe(PROBES["reg_mov_chain"])
        assert "trace.instruction_spans" in report.skipped
        assert "dropped" in report.skipped["trace.instruction_spans"]
        # dropped trace must not fail the probe — it is skipped, loudly
        assert report.ok


class TestModelHolds:
    """The acceptance gate: every probe, every mode, traced arm included."""

    @pytest.mark.parametrize("name", sorted(PROBES))
    def test_probe_holds_in_all_modes(self, name):
        report = RefutationRunner(modes=ALL_MODES, trace=True).run_probe(
            PROBES[name]
        )
        assert report.ok, [outcome.to_dict() for outcome in report.failures]
        assert not report.skipped

    def test_canonical_set_is_runnable_by_name(self):
        reports = RefutationRunner(modes=("compiled",), trace=False).run(
            canonical_names()
        )
        assert len(reports) == 5
        assert all(report.ok for report in reports)


class TestRefutation:
    def test_skewed_specifier_charge_is_refuted_with_blame(self, tmp_path):
        with skew_plan(tmp_path, "spec1.register").active():
            report = RefutationRunner(modes=("compiled",), trace=False).run_probe(
                PROBES["reg_mov_chain"]
            )
        assert not report.ok
        failed = {outcome.name: outcome for outcome in report.failures}
        assert "matrix.spec1.compute" in failed
        # the bank-level check localizes to the bank, the per-routine
        # check to the exact micro-routine that was skewed
        assert failed["matrix.spec1.compute"].blame == "spec1"
        assert failed["routine.spec1.register.cycles"].blame == "spec1.register"
        # 64 moves, 1 + seed % 4 = 4 phantom cycles per register source
        outcome = failed["matrix.spec1.compute"]
        assert outcome.actual == 64 + 64 * 4

    def test_skewed_execute_charge_blames_the_exec_routine(self, tmp_path):
        with skew_plan(tmp_path, "exec.clrl").active():
            report = RefutationRunner(modes=("compiled",), trace=False).run_probe(
                PROBES["merge_elision"]
            )
        assert not report.ok
        blames = {outcome.blame for outcome in report.failures}
        assert "exec.clrl" in blames

    def test_skew_fools_the_identity_checker_but_not_validate(self, tmp_path):
        """The asymmetry the issue asks for: a wrong charge honestly
        counted passes every counter identity — only the analytic
        ground truth refutes it."""
        from repro.core.experiment import ExperimentResult
        from repro.obs.invariants import check_result

        with skew_plan(tmp_path, "spec1.register").active():
            run = execute_probe(PROBES["reg_mov_chain"], "compiled")
        outcomes = check_result(
            ExperimentResult(
                name="skewed",
                reduction=run.reduction,
                events=run.events,
                stats=run.stats,
            ),
            run.counts,
            run.stalled,
            run.layout,
        )
        assert outcomes
        assert all(outcome.ok for outcome in outcomes), [
            outcome.to_dict() for outcome in outcomes if not outcome.ok
        ]


class TestCLI:
    def test_validate_passes_on_the_honest_machine(self, capsys):
        from repro.cli import main

        code = main(["validate", "--probe", "reg_mov_chain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "model holds" in out

    def test_validate_exits_1_and_blames_under_skew(self, tmp_path, capsys):
        from repro.cli import main

        with skew_plan(tmp_path, "spec1.register").active():
            code = main([
                "validate", "--probe", "reg_mov_chain",
                "--mode", "compiled", "--no-trace",
            ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REFUTED" in out
        assert "blame: spec1.register" in out

    def test_validate_json_envelope_under_skew(self, tmp_path, capsys):
        import json

        from repro.cli import main

        with skew_plan(tmp_path, "exec.clrl").active():
            code = main([
                "validate", "--probe", "merge_elision",
                "--mode", "compiled", "--no-trace", "--json",
            ])
        assert code == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == "repro.check/v1"
        assert envelope["command"] == "validate"
        assert envelope["ok"] is False
        assert envelope["summary"]["failures"] > 0

    def test_unknown_probe_exits_2(self, capsys):
        from repro.cli import main

        assert main(["validate", "--probe", "nope"]) == 2
        assert "unknown probe" in capsys.readouterr().out

    def test_list_names_the_registry(self, capsys):
        from repro.cli import main

        assert main(["validate", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PROBES:
            assert name in out
        assert "canonical" in out

"""Satellite differential: concurrent clients, at-most-once execution.

Two clients submit the same sweep to one service while the first
submission is provably mid-execution.  The dedupe contract under test:

* the engine executes the spec exactly once — counted not by trusting
  the scheduler's own metrics but by an independent ledger: a
  ``shard.measure`` fault rule whose occurrence budget leaves one
  ``O_CREAT | O_EXCL`` marker file per measured span, in every process
  that measures anything;
* the second client attaches to the in-flight ticket
  (``scheduler.specs.attached_inflight == 1``), and its job record says
  so honestly — ``attached_to`` provenance, zero wall seconds;
* both clients fetch results bit-identical to an undisturbed sequential
  execution of the same spec (the golden), so deduplication is
  unobservable in the payload.
"""

import json
import os
import threading

import pytest

from repro.core.engine import RunSpec, execute_spec_sharded
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import config_hash
from repro.service import api
from repro.service.client import ServiceClient
from repro.service.server import ExperimentService
from repro.testing.faults import FaultPlan, FaultRule

SPEC = dict(workload="educational", instructions=900, warmup_instructions=200)
SHARDS = 2


def _span_ledger(state_dir):
    """A plan whose only effect is one marker file per measured span."""
    return FaultPlan(
        rules=[
            FaultRule(
                site="shard.measure", action="hang", seconds=0.0, times=100_000
            )
        ],
        state_dir=str(state_dir),
    )


def _markers(state_dir):
    return len(os.listdir(str(state_dir)))


def _result_bytes(run):
    return json.dumps(api.result_to_payload(run.result), sort_keys=True)


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def service(metrics):
    svc = ExperimentService(
        shards=SHARDS, concurrency=2, metrics=metrics
    ).start_in_thread()
    yield svc
    svc.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient("http://127.0.0.1:{}".format(service.port))


def test_concurrent_duplicate_sweeps_execute_once(
    tmp_path, service, client, metrics
):
    # Golden: an undisturbed sequential execution, and the span count
    # one execution is *supposed* to produce, measured the same way.
    golden_dir = tmp_path / "golden-spans"
    with _span_ledger(golden_dir).active():
        golden = execute_spec_sharded(RunSpec(**SPEC), shards=SHARDS)
    spans_per_execution = _markers(golden_dir)
    assert spans_per_execution > 0

    # Gate the service's one execution path so client A is provably
    # mid-execution (ticket registered, batch started) when B submits.
    entered = threading.Event()
    release = threading.Event()
    real = service.scheduler._execute_batch

    def gated(specs, notify, policy):
        entered.set()
        assert release.wait(60), "test never released the gated batch"
        return real(specs, notify, policy)

    service.scheduler._execute_batch = gated

    service_dir = tmp_path / "service-spans"
    plan = _span_ledger(service_dir).install()
    try:
        job_a = client.submit_sweep([RunSpec(**SPEC)])
        assert entered.wait(60), "client A's sweep never started executing"
        job_b = client.submit_sweep([RunSpec(**SPEC)])

        # B must land on the in-flight ticket before A finishes — the
        # counter moves while the gate is still closed, which is the
        # whole point: attaching never waits for the execution lock.
        for _ in range(500):
            counters = client.stats()["metrics"]["counters"]
            if counters.get("scheduler.specs.attached_inflight", 0) == 1:
                break
            threading.Event().wait(0.02)
        assert (
            client.stats()["metrics"]["counters"][
                "scheduler.specs.attached_inflight"
            ]
            == 1
        )
        release.set()

        record_a = client.wait(job_a["job"], timeout=120)
        record_b = client.wait(job_b["job"], timeout=120)
    finally:
        release.set()
        plan.rules = []
        from repro.testing import faults

        faults.uninstall()
        service.scheduler._execute_batch = real

    # At-most-once, by independent ledger: the service produced exactly
    # one execution's worth of measured spans for two client sweeps.
    assert _markers(service_dir) == spans_per_execution

    # Honest provenance on the attached client's job record.
    digest = config_hash(RunSpec(**SPEC))
    summary_a, summary_b = record_a["runs"][0], record_b["runs"][0]
    assert summary_a["digest"] == summary_b["digest"] == digest
    assert summary_a["attached_to"] is None
    assert summary_a["wall_seconds"] > 0.0
    assert summary_b["attached_to"] == digest
    assert summary_b["wall_seconds"] == 0.0

    # Both clients' fetched payloads are bit-identical to the golden.
    fetched = client.result(digest)
    assert fetched.histogram == golden.histogram
    assert _result_bytes(fetched) == _result_bytes(golden)

    counters = client.stats()["metrics"]["counters"]
    assert counters["scheduler.specs.executed"] == 1
    assert counters["service.jobs.completed"] == 2


def test_overlapping_sweeps_share_the_common_spec(service, client, metrics):
    # Overlap without gating: A and B race freely; whichever order the
    # workers run in, the shared spec executes once (in-flight attach or
    # result-index resolve — both are dedupe) and each unique spec once.
    sweep_a = [RunSpec(**SPEC), RunSpec(seed_offset=1, **SPEC)]
    sweep_b = [RunSpec(seed_offset=1, **SPEC), RunSpec(seed_offset=2, **SPEC)]
    job_a = client.submit_sweep(sweep_a)
    job_b = client.submit_sweep(sweep_b)
    record_a = client.wait(job_a["job"], timeout=120)
    record_b = client.wait(job_b["job"], timeout=120)
    assert record_a["state"] == record_b["state"] == "done"

    counters = client.stats()["metrics"]["counters"]
    assert counters["scheduler.specs.executed"] == 3  # unique digests only
    deduped = counters.get("scheduler.specs.attached_inflight", 0) + counters.get(
        "scheduler.specs.resolved_index", 0
    )
    assert deduped == 1

    # The shared spec: both clients hold the same digest, and exactly
    # one of the two run summaries carries execution wall time.
    shared = config_hash(RunSpec(seed_offset=1, **SPEC))
    summaries = [
        run
        for record in (record_a, record_b)
        for run in record["runs"]
        if run["digest"] == shared
    ]
    assert len(summaries) == 2
    executed = [s for s in summaries if s["attached_to"] is None]
    attached = [s for s in summaries if s["attached_to"] == shared]
    assert len(executed) == 1 and len(attached) == 1
    assert attached[0]["wall_seconds"] == 0.0

    # Payload equality across clients for the shared digest.
    run = client.result(shared)
    assert run.spec.seed_offset == 1
    assert run.result.instructions > 0

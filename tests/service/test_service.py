"""The experiment service: HTTP/JSON round-trips over one scheduler.

An in-process :class:`~repro.service.server.ExperimentService` on an
ephemeral port, driven through the real :class:`ServiceClient` — the
same stack ``repro serve`` / ``repro submit`` use, minus the argparse.
"""

import json

import pytest

from repro.core.engine import EngineError, MachineConfig, RunSpec, execute_spec
from repro.service import api
from repro.service.client import ClientError, ServiceClient
from repro.service.server import ExperimentService

SPEC = dict(workload="educational", instructions=900, warmup_instructions=200)


@pytest.fixture(scope="module")
def service():
    svc = ExperimentService(concurrency=2).start_in_thread()
    yield svc
    svc.shutdown()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient("http://127.0.0.1:{}".format(service.port))


@pytest.fixture(scope="module")
def golden():
    return execute_spec(RunSpec(**SPEC))


class TestWireFormat:
    def test_spec_round_trip(self):
        spec = RunSpec(
            workload="educational",
            instructions=1000,
            warmup_instructions=100,
            seed_offset=3,
            config=MachineConfig(cache_size_bytes=4096, decode_overlap=True),
            label="ablated",
        )
        clone = api.spec_from_payload(
            json.loads(json.dumps(api.spec_to_payload(spec)))
        )
        assert clone == spec

    def test_configure_callable_is_refused(self):
        spec = RunSpec(workload="educational", configure=lambda machine: None)
        with pytest.raises(api.ApiError, match="configure"):
            api.spec_to_payload(spec)

    def test_unknown_spec_fields_are_refused(self):
        with pytest.raises(api.ApiError, match="unknown"):
            api.spec_from_payload({"workload": "educational", "bogus": 1})

    def test_run_round_trip_is_lossless(self, golden):
        payload = json.loads(json.dumps(api.run_to_payload(golden)))
        clone = api.run_from_payload(payload)
        # The decoded run re-encodes to the identical JSON document —
        # the byte-identity the concurrent-client differential rests on.
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            api.run_to_payload(clone), sort_keys=True
        )
        assert clone.histogram == golden.histogram
        assert clone.result.instructions == golden.result.instructions
        assert clone.result.cpi == golden.result.cpi
        assert clone.result.events.opcode_counts == golden.result.events.opcode_counts
        assert clone.result.events.specifier_counts == (
            golden.result.events.specifier_counts  # tuple keys survived
        )
        assert clone.manifest.config_hash == golden.manifest.config_hash
        # reduce_histogram links the events into the reduction; the
        # decoded object graph keeps that identity.
        assert clone.result.reduction.events is clone.result.events


class TestRoutes:
    def test_healthz(self, client):
        assert client.healthz() == {"ok": True}

    def test_submit_wait_fetch(self, client, golden):
        accepted = client.submit_sweep([RunSpec(**SPEC)])
        assert accepted["job"].startswith("j-")
        record = client.wait(accepted["job"])
        assert record["state"] == "done"
        assert len(record["runs"]) == 1
        summary = record["runs"][0]
        assert summary["digest"] == accepted["digests"][0]
        assert summary["instructions"] == golden.result.instructions
        run = client.result(summary["digest"])
        assert run.histogram == golden.histogram
        assert json.dumps(api.result_to_payload(run.result), sort_keys=True) == (
            json.dumps(api.result_to_payload(golden.result), sort_keys=True)
        )

    def test_duplicate_sweep_attaches_not_reexecutes(self, client):
        first = client.wait(client.submit_sweep([RunSpec(**SPEC)])["job"])
        again = client.wait(client.submit_sweep([RunSpec(**SPEC)])["job"])
        summary = again["runs"][0]
        assert summary["attached_to"] == first["runs"][0]["digest"]
        assert summary["wall_seconds"] == 0.0
        stats = client.stats()
        counters = stats["metrics"]["counters"]
        assert counters["scheduler.specs.executed"] == 1
        assert counters["scheduler.specs.resolved_index"] >= 1

    def test_job_listing_and_stats_shape(self, client):
        jobs = client.jobs()
        assert jobs and all(job["job"].startswith("j-") for job in jobs)
        stats = client.stats()
        assert set(stats) >= {"inflight", "result_index", "jobs", "metrics"}

    def test_unknown_job_404(self, client):
        with pytest.raises(ClientError) as caught:
            client.job("j-999999")
        assert caught.value.status == 404

    def test_unknown_digest_404(self, client):
        with pytest.raises(ClientError) as caught:
            client.result_payload("f" * 64)
        assert caught.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(ClientError) as caught:
            client.request("GET", "/nope")
        assert caught.value.status == 404

    def test_malformed_body_400(self, client):
        with pytest.raises(ClientError) as caught:
            client.request("POST", "/sweeps", {"specs": []})
        assert caught.value.status == 400
        with pytest.raises(ClientError) as caught:
            client.request("POST", "/sweeps", {"specs": [{"bogus": 1}]})
        assert caught.value.status == 400

    def test_get_on_sweeps_405(self, client):
        with pytest.raises(ClientError) as caught:
            client.request("GET", "/sweeps")
        assert caught.value.status == 405


class TestErrorEnvelope:
    def test_failed_job_reconstructs_engine_error(self, client):
        accepted = client.submit_sweep(
            [RunSpec(workload="no-such-workload", instructions=100)]
        )
        record = client.wait(accepted["job"])
        assert record["state"] == "failed"
        envelope = record["error"]
        assert envelope["type"] == "EngineError"
        error = api.error_from_envelope(envelope)
        assert isinstance(error, EngineError)
        assert error.spec_name == "no-such-workload"
        assert error.worker_traceback  # the server-side traceback survives
        # The job counter tells the failure story too.
        assert client.stats()["metrics"]["counters"]["service.jobs.failed"] >= 1

    def test_collect_mode_reports_instead_of_failing(self, client):
        accepted = client.submit_sweep(
            [
                RunSpec(workload="no-such-workload", instructions=100),
                RunSpec(**SPEC),
            ],
            on_error="collect",
        )
        record = client.wait(accepted["job"])
        assert record["state"] == "done"
        assert record["report"]["total"] == 2
        assert [f["name"] for f in record["report"]["failures"]] == [
            "no-such-workload"
        ]
        assert [run["name"] for run in record["runs"]] == ["educational"]

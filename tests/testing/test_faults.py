"""Unit tests for the deterministic fault-injection harness.

The harness underwrites every recovery test in the suite, so its own
guarantees — determinism, process-safe occurrence budgets, no-op when
disarmed — get direct coverage here.
"""

import os

import pytest

from repro.testing.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFault,
    active_plan,
    corrupt_bytes,
    corrupt_file,
    fire,
    uninstall,
)


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


def plan_with(tmp_path, *rules, seed=0):
    return FaultPlan(rules=list(rules), seed=seed, state_dir=str(tmp_path / "faults"))


class TestPlanPlumbing:
    def test_json_roundtrip(self, tmp_path):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="crash", match="scientific", times=2),
            FaultRule(site="cache.get", action="bitflip", probability=0.5),
            seed=7,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            FaultRule(site="worker", action="explode")

    def test_finite_times_needs_state_dir(self):
        plan = FaultPlan(rules=[FaultRule(site="worker", action="raise", times=1)])
        with pytest.raises(FaultPlanError, match="state_dir"):
            plan.install()

    def test_install_and_uninstall(self, tmp_path):
        plan = plan_with(tmp_path, FaultRule(site="worker", action="raise", times=-1))
        assert active_plan() is None
        with plan.active():
            assert FAULTS_ENV in os.environ
            assert active_plan().rules == plan.rules
            assert plan.coordinator_pid == os.getpid()
        assert active_plan() is None

    def test_malformed_env_is_loud(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            fire("worker", key="x")


class TestFire:
    def test_disarmed_is_noop(self):
        fire("worker", key="anything")  # must not raise

    def test_times_budget_is_exact(self, tmp_path):
        plan = plan_with(tmp_path, FaultRule(site="worker", action="raise", times=2))
        with plan.active():
            with pytest.raises(InjectedFault):
                fire("worker", key="spec")
            with pytest.raises(InjectedFault):
                fire("worker", key="spec")
            fire("worker", key="spec")  # budget spent: silent

    def test_match_filters_by_key_substring(self, tmp_path):
        plan = plan_with(
            tmp_path,
            FaultRule(site="worker", action="raise", match="scientific", times=-1),
        )
        with plan.active():
            fire("worker", key="educational")
            with pytest.raises(InjectedFault):
                fire("worker", key="scientific")

    def test_site_must_match(self, tmp_path):
        plan = plan_with(tmp_path, FaultRule(site="worker", action="raise", times=-1))
        with plan.active():
            fire("cache.get", key="anything")

    def test_custom_raiser(self, tmp_path):
        plan = plan_with(tmp_path, FaultRule(site="snap", action="raise", times=-1))
        with plan.active():
            with pytest.raises(ValueError, match="injected fault"):
                fire("snap", key="k", raiser=ValueError)

    def test_crash_in_coordinator_degrades_to_raise(self, tmp_path):
        # A crash rule firing in the coordinating process would kill the
        # test harness itself; it must degrade to an exception.
        plan = plan_with(tmp_path, FaultRule(site="worker", action="crash", times=-1))
        with plan.active():
            assert plan.coordinator_pid == os.getpid()
            with pytest.raises(InjectedFault):
                fire("worker", key="spec")

    def test_probability_gate_is_deterministic(self, tmp_path):
        rule = FaultRule(site="worker", action="raise", times=-1, probability=0.5)
        outcomes = {}
        for round_number in range(2):
            plan = plan_with(tmp_path, rule, seed=42)
            fired = set()
            with plan.active():
                for n in range(32):
                    key = "spec-{}".format(n)
                    try:
                        fire("worker", key=key)
                    except InjectedFault:
                        fired.add(key)
            outcomes[round_number] = fired
        assert outcomes[0] == outcomes[1]
        # p=0.5 over 32 keys: statistically certain to be a strict subset
        assert 0 < len(outcomes[0]) < 32

    def test_different_seed_picks_different_victims(self, tmp_path):
        rule = FaultRule(site="worker", action="raise", times=-1, probability=0.5)
        by_seed = {}
        for seed in (1, 2):
            fired = set()
            with plan_with(tmp_path, rule, seed=seed).active():
                for n in range(64):
                    try:
                        fire("worker", key="spec-{}".format(n))
                    except InjectedFault:
                        fired.add(n)
            by_seed[seed] = fired
        assert by_seed[1] != by_seed[2]


class TestCorruption:
    def test_truncate_halves(self, tmp_path):
        plan = plan_with(
            tmp_path, FaultRule(site="cache.get", action="truncate", times=-1)
        )
        with plan.active():
            assert corrupt_bytes("cache.get", "k", b"12345678") == b"1234"

    def test_bitflip_flips_one_middle_bit(self, tmp_path):
        plan = plan_with(
            tmp_path, FaultRule(site="cache.get", action="bitflip", times=-1)
        )
        data = bytes(range(16))
        with plan.active():
            damaged = corrupt_bytes("cache.get", "k", data)
        assert len(damaged) == len(data)
        assert damaged != data
        diff = [i for i in range(len(data)) if damaged[i] != data[i]]
        assert diff == [len(data) // 2]

    def test_disarmed_is_identity(self):
        assert corrupt_bytes("cache.get", "k", b"payload") == b"payload"

    def test_corrupt_file_in_place(self, tmp_path):
        target = tmp_path / "object"
        target.write_bytes(b"stored bytes!")
        plan = plan_with(
            tmp_path, FaultRule(site="cache.stored", action="bitflip", times=1)
        )
        with plan.active():
            assert corrupt_file("cache.stored", "k", str(target))
            # budget spent: second call leaves the file alone
            assert not corrupt_file("cache.stored", "k", str(target))
        assert target.read_bytes() != b"stored bytes!"
        assert len(target.read_bytes()) == len(b"stored bytes!")


class TestCostSkew:
    """The cycle-model perturbation: honest counting of a wrong charge."""

    def test_disarmed_returns_none(self):
        from repro.testing.faults import cost_skew

        assert cost_skew() is None

    def test_armed_names_victim_and_seed_sized_skew(self, tmp_path):
        from repro.testing.faults import cost_skew

        plan = plan_with(
            tmp_path,
            FaultRule(
                site="costs.skew", action="skew", match="spec1.register", times=-1
            ),
            seed=3,
        )
        with plan.active():
            assert cost_skew() == ("spec1.register", 1 + 3 % 4)

    def test_skew_must_name_a_victim_routine(self, tmp_path):
        from repro.testing.faults import cost_skew

        plan = plan_with(
            tmp_path, FaultRule(site="costs.skew", action="skew", times=-1)
        )
        with plan.active():
            with pytest.raises(FaultPlanError, match="victim micro-routine"):
                cost_skew()

    def test_times_budget_counts_machine_bindings(self, tmp_path):
        from repro.testing.faults import cost_skew

        plan = plan_with(
            tmp_path,
            FaultRule(
                site="costs.skew", action="skew", match="exec.clrl", times=1
            ),
        )
        with plan.active():
            assert cost_skew() == ("exec.clrl", 1)
            assert cost_skew() is None  # budget spent

    def test_other_sites_do_not_answer(self, tmp_path):
        from repro.testing.faults import cost_skew

        plan = plan_with(
            tmp_path, FaultRule(site="monitor.dump", action="miscount", times=-1)
        )
        with plan.active():
            assert cost_skew() is None

    def test_armed_skew_disables_the_compiled_path(self, tmp_path):
        """A skewed model must disagree with the analytic expectations
        identically in every mode — the compiled path replays recorded
        charges without consulting the skew, so arming it forces
        interpretation."""
        from repro.validate import execute_probe
        from repro.validate.probes import build_probes

        probe = build_probes()["reg_mov_chain"]
        plan = plan_with(
            tmp_path,
            FaultRule(
                site="costs.skew", action="skew", match="spec1.register", times=-1
            ),
            seed=3,
        )
        with plan.active():
            skewed = execute_probe(probe, "compiled")
        clean = execute_probe(probe, "compiled")
        # 64 register sources, 1 + seed % 4 = 4 extra cycles each, in the
        # "compiled" mode too.
        spec1 = clean.reduction.matrix["spec1"]["compute"]
        assert skewed.reduction.matrix["spec1"]["compute"] == spec1 + 64 * 4


class TestCrossProcess:
    def test_times_budget_shared_across_pool_workers(self, tmp_path):
        # Four forked workers race the same 2-firing budget: exactly two
        # must observe the fault, whatever the interleaving.
        from repro.core.engine import parallel_map

        plan = plan_with(
            tmp_path, FaultRule(site="worker", action="raise", times=2)
        )
        with plan.active():
            outcomes = parallel_map(_fire_once, ["same-key"] * 4, jobs=4)
        assert sum(outcomes) == 2


def _fire_once(key):
    from repro.testing import faults

    try:
        faults.fire("worker", key=key)
    except faults.InjectedFault:
        return 1
    return 0

"""Tests for workload profiles and the code generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.vms import VMSKernel
from repro.workloads import (
    COMPOSITE_WORKLOAD_NAMES,
    PROFILES,
    GeneratedProgram,
    generate_program,
    profile_by_name,
)
from repro.workloads.codegen import CODE_ORIGIN, DATA_ORIGIN


class TestProfiles:
    def test_five_composite_workloads(self):
        assert len(COMPOSITE_WORKLOAD_NAMES) == 5
        for name in COMPOSITE_WORKLOAD_NAMES:
            assert name in PROFILES

    def test_profiles_match_paper_populations(self):
        assert PROFILES["timesharing_light"].users == 15
        assert PROFILES["timesharing_heavy"].users == 30
        assert PROFILES["educational"].users == 40
        assert PROFILES["scientific"].users == 40
        assert PROFILES["commercial"].users == 32

    def test_string_lengths_match_paper_inference(self):
        # "the average size of a character string is 36-44 characters"
        for profile in PROFILES.values():
            low, high = profile.string_length
            assert 36 <= low <= high <= 44

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("mainframe")

    def test_mix_weights_positive(self):
        for profile in PROFILES.values():
            assert all(weight >= 0 for weight in profile.mix.values())
            assert sum(profile.mix.values()) > 0

    def test_scientific_is_float_heavy(self):
        assert PROFILES["scientific"].mix["floatop"] > PROFILES["educational"].mix["floatop"]

    def test_commercial_is_decimal_heavy(self):
        assert PROFILES["commercial"].mix["decop"] > PROFILES["scientific"].mix["decop"]


class TestGeneration:
    def test_generation_is_deterministic(self):
        profile = profile_by_name("educational")
        first = generate_program(profile, variant=1)
        second = generate_program(profile, variant=1)
        assert first.code == second.code
        assert first.data == second.data

    def test_variants_differ(self):
        profile = profile_by_name("educational")
        assert generate_program(profile, 0).code != generate_program(profile, 1).code

    def test_profiles_differ(self):
        a = generate_program(profile_by_name("scientific"), 0)
        b = generate_program(profile_by_name("commercial"), 0)
        assert a.code != b.code

    def test_code_is_nontrivial(self):
        program = generate_program(profile_by_name("timesharing_light"), 0)
        assert len(program.code) > 4_000  # a real ring, not a stub
        assert program.code_origin == CODE_ORIGIN
        assert program.data_origin == DATA_ORIGIN

    def test_slot_counts_cover_major_categories(self):
        program = generate_program(profile_by_name("commercial"), 0)
        for category in ("data", "branch", "call", "fieldop"):
            assert program.slot_counts.get(category, 0) > 0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_any_variant_assembles(self, variant):
        program = generate_program(profile_by_name("timesharing_heavy"), variant)
        assert isinstance(program, GeneratedProgram)
        assert len(program.code) > 0


class TestGeneratedProgramsExecute:
    @pytest.mark.parametrize("name", COMPOSITE_WORKLOAD_NAMES)
    def test_program_runs_thousands_of_instructions(self, name):
        """Every profile's generated code must run indefinitely without
        faulting under the kernel."""
        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        kernel = VMSKernel(machine)
        profile = profile_by_name(name)
        program = generate_program(profile, variant=0)
        process = kernel.create_process(name, program.code, program.code_origin)
        kernel.load_into_process(process, program.data_origin, program.data)
        kernel.boot()
        executed = kernel.run(max_instructions=5_000)
        assert executed == 5_000
        assert not machine.ebox.halted

    def test_program_exercises_all_groups_eventually(self):
        monitor = UPCMonitor.build()
        machine = VAX780(monitor=monitor)
        kernel = VMSKernel(machine)
        profile = profile_by_name("commercial")
        program = generate_program(profile, variant=0)
        process = kernel.create_process("c", program.code, program.code_origin)
        kernel.load_into_process(process, program.data_origin, program.data)
        kernel.boot()
        kernel.start_measurement()
        kernel.run(max_instructions=25_000)
        from repro.isa.opcodes import OpcodeGroup, opcode_by_mnemonic

        groups = set()
        for mnemonic in machine.events.opcode_counts:
            groups.add(opcode_by_mnemonic(mnemonic).group)
        assert OpcodeGroup.CHARACTER in groups
        assert OpcodeGroup.FLOAT in groups
        assert OpcodeGroup.FIELD in groups
        assert OpcodeGroup.CALLRET in groups

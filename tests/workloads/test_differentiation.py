"""The five workloads must differ the way the paper describes them."""

import pytest

from repro.core import tables
from repro.core.experiment import run_workload


@pytest.fixture(scope="module")
def per_workload():
    budget = 4_000
    return {
        name: run_workload(name, instructions=budget, warmup_instructions=1_000)
        for name in ("scientific", "commercial", "educational")
    }


class TestWorkloadCharacter:
    def test_scientific_is_float_heaviest(self, per_workload):
        floats = {
            name: tables.table1(result)["float"]
            for name, result in per_workload.items()
        }
        assert floats["scientific"] == max(floats.values())
        assert floats["scientific"] > 1.2 * floats["commercial"]

    def test_commercial_runs_decimal_and_strings(self, per_workload):
        table = tables.table1(per_workload["commercial"])
        assert table["decimal"] > 0
        assert (
            table["character"]
            >= tables.table1(per_workload["scientific"])["character"]
        )

    def test_educational_is_call_heavy(self, per_workload):
        calls = {
            name: tables.table1(result)["callret"]
            for name, result in per_workload.items()
        }
        assert calls["educational"] >= calls["scientific"] * 0.8

    def test_all_workloads_have_sane_cpi(self, per_workload):
        for name, result in per_workload.items():
            assert 6.0 < result.cpi < 16.0, name

    def test_every_workload_reaches_the_kernel(self, per_workload):
        for name, result in per_workload.items():
            assert result.events.interrupts_delivered > 0, name
            assert result.events.opcode_counts["REI"] > 0, name

    def test_simple_group_dominates_everywhere(self, per_workload):
        for name, result in per_workload.items():
            assert tables.table1(result)["simple"] > 70.0, name

"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal environments that lack the
``wheel`` package needed for PEP 660 editable installs; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()

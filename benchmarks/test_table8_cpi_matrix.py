"""Table 8: average VAX instruction timing — the paper's headline result.

The average instruction takes ~10.6 cycles, decomposed over activity rows
(decode, specifier processing, branch displacements, per-group execution,
overheads) and cycle-category columns (compute, read, read-stall, write,
write-stall, IB-stall).  The famous qualitative findings checked here:

* decode + specifier processing (with their stalls) is almost half of
  all time;
* CALL/RET is the largest instruction-group row despite its low
  frequency;
* SIMPLE execution is only ~10 percent of time despite being 84 percent
  of executions;
* compute dominates the columns, with every stall category material.
"""

from repro.core import paper_data, tables
from repro.core.reduction import COLUMNS, ROWS
from repro.core.report import format_table, matrix_to_text, within_factor


def test_table8_cycles_per_average_instruction(benchmark, composite_result):
    measured = benchmark(tables.table8, composite_result)

    print()
    print(
        matrix_to_text(
            {row: measured[row] for row in ROWS + ["total"]},
            COLUMNS + ["total"],
            "Table 8 (measured): cycles per average instruction",
        )
    )
    print()
    print(
        format_table(
            "Table 8 row totals: paper vs measured",
            [
                (row, paper_data.TABLE8_ROW_TOTALS[row], measured[row]["total"])
                for row in ROWS
            ]
            + [("TOTAL CPI", paper_data.TABLE8_TOTAL_CPI, measured["total"]["total"])],
        )
    )
    print()
    print(
        format_table(
            "Table 8 column totals: paper vs measured",
            [
                (col, paper_data.TABLE8_COLUMN_TOTALS[col], measured["total"][col])
                for col in COLUMNS
            ],
        )
    )

    cpi = measured["total"]["total"]
    # "The average VAX instruction ... takes a little more than 10 cycles."
    assert within_factor(cpi, paper_data.TABLE8_TOTAL_CPI, 1.35)

    # Decode: exactly one non-overlapped decode cycle per instruction.
    assert abs(measured["decode"]["compute"] - 1.0) < 0.01

    # "almost half of all the time went into decode and specifier
    # processing, counting their stalls"
    front_end = (
        measured["decode"]["total"]
        + measured["spec1"]["total"]
        + measured["spec26"]["total"]
    )
    assert 0.30 < front_end / cpi < 0.60

    # "The opcode group with the greatest contribution is CALL/RET,
    # despite its low frequency."
    group_rows = ["simple", "field", "float", "callret", "system", "character", "decimal"]
    assert measured["callret"]["total"] == max(measured[r]["total"] for r in group_rows)

    # "The execution phase of the SIMPLE instructions ... accounts for
    # only about 10 percent of the time."
    assert measured["simple"]["total"] / cpi < 0.20

    # Column shape: compute dominates; all stall categories nonzero.
    assert measured["total"]["compute"] > 0.5 * cpi
    for column in ("rstall", "wstall", "ibstall"):
        assert measured["total"][column] > 0.1

    # Legible cells within a factor of two.  Group-level *stall* cells
    # are printed but not asserted: they hinge on absolute locality
    # patterns (stack depth, string placement) the synthetic workload
    # approximates only in aggregate.
    for (row, col), value in paper_data.TABLE8_CELLS.items():
        if col in ("rstall", "wstall") and row != "decode":
            continue
        assert within_factor(measured[row][col], value, 2.2), (row, col)

    # Columns and rows are mutually exclusive partitions of all cycles.
    row_sum = sum(measured[row]["total"] for row in ROWS)
    col_sum = sum(measured["total"][col] for col in COLUMNS)
    assert abs(row_sum - col_sum) < 1e-6

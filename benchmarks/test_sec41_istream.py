"""Section 4.1: I-stream reference behaviour.

Paper: the IB makes ~2.2 cache references per instruction, delivering
~1.7 bytes per reference against a 3.8-byte average instruction.  These
numbers come from the hardware-side counters, not the histogram — the
monitor cannot see IB references (the paper's stated blind spot).
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor


def test_sec41_istream_references(benchmark, composite_result):
    measured = benchmark(tables.sec41_istream, composite_result)
    paper = paper_data.SEC41_ISTREAM

    print()
    print(
        format_table(
            "Section 4.1: I-stream behaviour",
            [
                (
                    "IB refs / instruction",
                    paper["ib_references_per_instruction"],
                    measured["ib_references_per_instruction"],
                ),
                ("Bytes / reference", paper["bytes_per_reference"], measured["bytes_per_reference"]),
                ("Instruction bytes", paper["instruction_bytes"], measured["instruction_bytes"]),
            ],
        )
    )

    assert within_factor(
        measured["ib_references_per_instruction"],
        paper["ib_references_per_instruction"],
        1.5,
    )
    # Bytes delivered per reference: the model's prefetcher tops off in
    # larger units than the measured machine, so the tolerance is wide.
    assert within_factor(measured["bytes_per_reference"], paper["bytes_per_reference"], 1.8)
    assert within_factor(measured["instruction_bytes"], paper["instruction_bytes"], 1.2)
    # Consistency: the IB can only consume what it delivered; the excess
    # is prefetch discarded at taken branches.
    delivered = measured["ib_references_per_instruction"] * measured["bytes_per_reference"]
    assert delivered >= measured["instruction_bytes"] * 0.95
    assert delivered < measured["instruction_bytes"] * 2.2

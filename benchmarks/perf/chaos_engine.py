#!/usr/bin/env python3
"""Chaos gate: the engine must survive injected faults bit-identically.

Runs the composite workload twice under a deterministic, deliberately
hostile :class:`~repro.testing.faults.FaultPlan` and asserts the results
equal fault-free golden digests:

* **Sweep chaos** — the five-workload composite with one worker shot
  dead mid-spec, one spec raising on its first attempt, and one spec
  hanging past its wall-clock budget.  The resilience policy (retries +
  timeout + pool respawn) must recover every spec and the composite
  must match the undisturbed run bit for bit.
* **Cache chaos** — a sharded run whose cache writes are corrupted on
  disk as they land (seeded coin-flip per object).  The next run must
  quarantine every rotten object, recompute, and still merge to the
  golden histogram; a third run must replay the healed store clean.

Everything is deterministic: the same plan injects the same faults every
time, so a failure here is a regression, not flake.

Run:  PYTHONPATH=src python benchmarks/perf/chaos_engine.py
"""

import sys
import tempfile

INSTRUCTIONS = 600
WARMUP = 150
SHARDS = 4
SHARD_WORKLOAD = "educational"


def _equal(result_a, result_b):
    from repro.core.histogram_io import result_to_json

    return result_to_json(result_a) == result_to_json(result_b)


def _composite_specs():
    from repro.core.engine import RunSpec
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    return [
        RunSpec(
            workload=name, instructions=INSTRUCTIONS, warmup_instructions=WARMUP
        )
        for name in COMPOSITE_WORKLOAD_NAMES
    ]


def sweep_chaos(state_dir):
    from repro.core.engine import run_specs
    from repro.core.experiment import composite
    from repro.core.resilience import ResiliencePolicy, RetryPolicy
    from repro.obs.metrics import MetricsRegistry, resilience_counters
    from repro.testing.faults import FaultPlan, FaultRule

    specs = _composite_specs()
    golden_runs = run_specs(specs, jobs=1)
    golden = composite([run.result for run in golden_runs])

    plan = FaultPlan(
        rules=[
            FaultRule(site="worker", action="crash", match="scientific", times=1),
            FaultRule(site="worker", action="raise", match="commercial", times=1),
            FaultRule(
                site="worker",
                action="hang",
                match="educational",
                times=1,
                seconds=6.0,
            ),
        ],
        state_dir=state_dir,
    )
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4),
        spec_timeout=1.5,
        metrics=resilience_counters(MetricsRegistry()),
    )
    with plan.active():
        disturbed_runs = run_specs(specs, jobs=4, policy=policy)
    disturbed = composite([run.result for run in disturbed_runs])

    if not _equal(disturbed, golden):
        print("FAIL: chaos composite differs from golden", file=sys.stderr)
        return None
    if [r.histogram for r in disturbed_runs] != [r.histogram for r in golden_runs]:
        print("FAIL: chaos per-workload histograms differ", file=sys.stderr)
        return None
    counters = policy.metrics.snapshot()["counters"]
    if counters["engine.retries"] < 1 or counters["engine.pool_respawns"] < 1:
        print(
            "FAIL: chaos plan did not actually disturb the sweep "
            "(retries={}, respawns={})".format(
                counters["engine.retries"], counters["engine.pool_respawns"]
            ),
            file=sys.stderr,
        )
        return None
    return {
        "retries": counters["engine.retries"],
        "timeouts": counters["engine.spec_timeouts"],
        "pool_respawns": counters["engine.pool_respawns"],
    }


def cache_chaos(state_dir, cache_root):
    from repro.core.engine import RunSpec, execute_spec, execute_spec_sharded
    from repro.core.resilience import ResiliencePolicy
    from repro.core.runcache import RunCache
    from repro.obs.metrics import MetricsRegistry, resilience_counters
    from repro.testing.faults import FaultPlan, FaultRule

    spec = RunSpec(
        workload=SHARD_WORKLOAD,
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
    )
    golden = execute_spec(spec)

    # Cold run with bit rot injected at write time: a seeded coin-flip
    # corrupts roughly half the stored objects on disk.
    rot_plan = FaultPlan(
        rules=[
            FaultRule(
                site="cache.stored", action="bitflip", times=1, probability=0.5
            )
        ],
        seed=11,
        state_dir=state_dir,
    )
    with rot_plan.active():
        cold = execute_spec_sharded(
            spec, shards=SHARDS, cache=RunCache(cache_root)
        )
    if cold.histogram != golden.histogram or not _equal(cold.result, golden.result):
        print("FAIL: cold sharded run differs from golden", file=sys.stderr)
        return None

    # Warm run against the rotten store: quarantine + recompute must
    # reproduce the golden result exactly.
    policy = ResiliencePolicy(metrics=resilience_counters(MetricsRegistry()))
    warm_cache = RunCache(cache_root)
    warm = execute_spec_sharded(
        spec, shards=SHARDS, cache=warm_cache, policy=policy
    )
    if warm.histogram != golden.histogram or not _equal(warm.result, golden.result):
        print("FAIL: self-healed run differs from golden", file=sys.stderr)
        return None
    quarantined = warm.manifest.quarantined_objects
    if quarantined < 1:
        print(
            "FAIL: rot plan corrupted nothing — the chaos gate is not "
            "exercising quarantine",
            file=sys.stderr,
        )
        return None

    # Healed store: a third run must replay everything clean.
    healed = execute_spec_sharded(spec, shards=SHARDS, cache=RunCache(cache_root))
    if healed.histogram != golden.histogram:
        print("FAIL: healed cache replay differs from golden", file=sys.stderr)
        return None
    if healed.manifest.quarantined_objects != 0:
        print("FAIL: healed cache still quarantining", file=sys.stderr)
        return None
    return {
        "quarantined": quarantined,
        "repaired_shards": warm.manifest.repaired_shards,
        "healed_shards_from_cache": healed.shards_from_cache,
    }


def main():
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        sweep_report = sweep_chaos(scratch + "/sweep-faults")
        if sweep_report is None:
            return 1
        cache_report = cache_chaos(scratch + "/cache-faults", scratch + "/cache")
        if cache_report is None:
            return 1
    print(
        "chaos OK: composite bit-identical under crash+raise+hang "
        "({retries} retries, {timeouts} timeouts, {pool_respawns} pool "
        "respawns)".format(**sweep_report)
    )
    print(
        "chaos OK: sharded run bit-identical under write-time bit rot "
        "({quarantined} quarantined, {repaired_shards} repaired, healed "
        "replay {healed_shards_from_cache}/{shards} from cache)".format(
            shards=SHARDS, **cache_report
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Engine throughput benchmark: the composite, sequential vs parallel.

Times a fixed five-workload composite (the paper's headline experiment)
three ways and writes ``BENCH_engine.json`` at the repository root:

* **cold** — one sequential composite in a fresh interpreter, paying
  one-time costs (workload program assembly, layout build) exactly as a
  user's first run does;
* **warm** — the same composite re-run in-process, the steady-state
  single-thread throughput an ablation sweep sees;
* **parallel** — the composite fanned out over a process pool
  (``--jobs``, default ``os.cpu_count()``), verified bit-identical to
  the sequential run before its timing is reported.

The fixed configuration (4000 measured instructions per workload, 1000
warmup) matches the measurement this repository's seed commit clocked
at 6766 instructions/second single-thread, recorded below as the
baseline the ≥1.25× target is judged against.

The full run also gates the telemetry layer: with tracing off (the
default — no tracer attached) warm throughput must stay within 2% of
the pre-telemetry figure recorded in
``PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND``, and the report gains a
structured ``metrics`` block (simulated counters + wall-clock
self-profiling) plus a ``telemetry`` overhead block.

The full run also times intra-workload sharding: one workload split
into ``SHARD_COUNT`` resumable shards through the snapshot/run-cache
machinery, cold (populating a fresh cache) and warm (replaying every
finished shard from it), both verified bit-identical to the unsharded
run.  The warm figure is the cache's value proposition: re-running a
measured experiment costs deserialization, not simulation.

Run:  PYTHONPATH=src python benchmarks/perf/bench_engine.py [--jobs N]
      [--smoke]   (tiny run: sequential/parallel, traced/untraced and
                   sharded/unsharded bit-identity plus trace-export
                   validity — the CI gate)
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: The benchmark's fixed measurement configuration.
INSTRUCTIONS_PER_WORKLOAD = 4_000
WARMUP_INSTRUCTIONS = 1_000

#: Single-thread instructions/second of the seed commit on this fixed
#: configuration (cold, fresh interpreter), measured on the reference
#: container.  The optimization target is >= 1.25x this figure.
SEED_BASELINE_INSTRUCTIONS_PER_SECOND = 6_766

#: Warm single-thread instructions/second recorded on the reference
#: container immediately *before* the telemetry layer landed.  The
#: tracing-off gate: with no tracer attached the warm throughput must
#: stay within TRACING_OFF_BUDGET_PERCENT of this figure.
PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND = 13_952
TRACING_OFF_BUDGET_PERCENT = 2.0

#: Shards for the single-workload sharding benchmark.
SHARD_COUNT = 4
SHARD_WORKLOAD = "educational"


def _measure_composite(instructions, warmup, jobs):
    from repro.core.engine import RunSpec, run_specs
    from repro.core.experiment import composite
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    specs = [
        RunSpec(
            workload=name, instructions=instructions, warmup_instructions=warmup
        )
        for name in COMPOSITE_WORKLOAD_NAMES
    ]
    started = time.perf_counter()
    runs = run_specs(specs, jobs=jobs)
    result = composite([run.result for run in runs])
    wall = time.perf_counter() - started
    return result, wall, runs


def _equal(result_a, result_b) -> bool:
    from repro.core.histogram_io import result_to_json

    return result_to_json(result_a) == result_to_json(result_b)


def _measure_sharded(instructions, warmup, shards, cache):
    from repro.core.engine import RunSpec, execute_spec_sharded

    spec = RunSpec(
        workload=SHARD_WORKLOAD,
        instructions=instructions,
        warmup_instructions=warmup,
    )
    started = time.perf_counter()
    run = execute_spec_sharded(spec, shards=shards, cache=cache)
    wall = time.perf_counter() - started
    return run, wall


def smoke(jobs: int) -> int:
    """CI gate: tiny composite, sequential vs parallel must be
    identical; a traced run must be bit-identical to an untraced one
    (the tracer is passive) with a valid Chrome export; and a K=3
    sharded run must be bit-identical to the unsharded reference."""
    from repro.core.engine import RunSpec, execute_spec, execute_spec_sharded
    from repro.core.experiment import run_workload
    from repro.obs.trace import Tracer, validate_chrome

    sequential, seq_wall, _ = _measure_composite(600, 150, jobs=1)
    parallel, par_wall, _ = _measure_composite(600, 150, jobs=jobs)
    if not _equal(sequential, parallel):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1

    tracer = Tracer()
    traced, traced_board = run_workload(
        "educational",
        instructions=600,
        warmup_instructions=150,
        tracer=tracer,
        return_board=True,
    )
    plain, plain_board = run_workload(
        "educational", instructions=600, warmup_instructions=150, return_board=True
    )
    if traced_board.dump_sparse() != plain_board.dump_sparse() or not _equal(
        traced, plain
    ):
        print("FAIL: tracing perturbed the measurement", file=sys.stderr)
        return 1
    problems = validate_chrome(tracer.to_chrome())
    if problems:
        print(
            "FAIL: trace export invalid: {}".format("; ".join(problems[:5])),
            file=sys.stderr,
        )
        return 1

    shard_spec = RunSpec(
        workload=SHARD_WORKLOAD, instructions=600, warmup_instructions=150
    )
    unsharded = execute_spec(shard_spec)
    sharded = execute_spec_sharded(shard_spec, shards=3)
    if sharded.histogram != unsharded.histogram or not _equal(
        sharded.result, unsharded.result
    ):
        print("FAIL: sharded run differs from unsharded", file=sys.stderr)
        return 1

    print(
        "smoke OK: jobs={} bit-identical to sequential "
        "(seq {:.2f}s, par {:.2f}s, {} instructions); "
        "tracing passive ({} events, valid Chrome export); "
        "3-shard merge bit-identical".format(
            jobs, seq_wall, par_wall, sequential.instructions, len(tracer)
        )
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument(
        "--smoke", action="store_true", help="fast equality-only check (CI)"
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_engine.json")
    )
    args = parser.parse_args()

    if args.smoke:
        return smoke(max(2, args.jobs))

    from repro.obs.metrics import registry_from_result

    cold_result, cold_wall, _ = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
    )
    # Warm throughput gates the telemetry overhead budget, so it is the
    # best of three trials: scheduler noise only ever slows a run down.
    warm_result, warm_wall, warm_runs = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
    )
    for _ in range(2):
        retry = _measure_composite(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
        )
        if retry[1] < warm_wall:
            warm_result, warm_wall, warm_runs = retry
    parallel_result, parallel_wall, _ = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=args.jobs
    )
    if not _equal(cold_result, parallel_result):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1

    # Intra-workload sharding: one workload, SHARD_COUNT shards, cold
    # (fresh cache populated) then warm (every shard replayed from it).
    from repro.core.engine import RunSpec, execute_spec
    from repro.core.runcache import RunCache

    cache_root = tempfile.mkdtemp(prefix="bench-repro-cache-")
    try:
        cache = RunCache(cache_root)
        unsharded_run = execute_spec(
            RunSpec(
                workload=SHARD_WORKLOAD,
                instructions=INSTRUCTIONS_PER_WORKLOAD,
                warmup_instructions=WARMUP_INSTRUCTIONS,
            )
        )
        sharded_cold, sharded_cold_wall = _measure_sharded(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, SHARD_COUNT, cache
        )
        sharded_warm, sharded_warm_wall = _measure_sharded(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, SHARD_COUNT, cache
        )
        sharded_identical = (
            sharded_cold.histogram == unsharded_run.histogram
            and sharded_warm.histogram == unsharded_run.histogram
            and _equal(sharded_cold.result, unsharded_run.result)
            and _equal(sharded_warm.result, unsharded_run.result)
        )
        cache_bytes = cache.total_bytes()
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    if not sharded_identical:
        print("FAIL: sharded run differs from unsharded", file=sys.stderr)
        return 1
    if sharded_warm.shards_from_cache != SHARD_COUNT:
        print(
            "FAIL: warm sharded re-run replayed {}/{} shards from cache".format(
                sharded_warm.shards_from_cache, SHARD_COUNT
            ),
            file=sys.stderr,
        )
        return 1

    instructions = cold_result.instructions
    warm_ips = instructions / warm_wall
    tracing_off_overhead_percent = (
        (PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND - warm_ips)
        / PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND
        * 100.0
    )

    # The typed metrics surface: the composite's simulated counters plus
    # the per-run wall-clock self-profiling folded in from the workers.
    registry = registry_from_result(warm_result)
    for run in warm_runs:
        if run.metrics:
            registry.merge_snapshot(run.metrics)
    report = {
        "config": {
            "instructions_per_workload": INSTRUCTIONS_PER_WORKLOAD,
            "warmup_instructions": WARMUP_INSTRUCTIONS,
            "workloads": 5,
            "jobs": args.jobs,
            "cpu_count": os.cpu_count(),
        },
        "measured_instructions": instructions,
        "sequential": {
            "cold_wall_seconds": round(cold_wall, 3),
            "cold_instructions_per_second": round(instructions / cold_wall, 1),
            "warm_wall_seconds": round(warm_wall, 3),
            "warm_instructions_per_second": round(instructions / warm_wall, 1),
        },
        "parallel": {
            "wall_seconds": round(parallel_wall, 3),
            "instructions_per_second": round(instructions / parallel_wall, 1),
            "speedup_vs_cold_sequential": round(cold_wall / parallel_wall, 2),
            "bit_identical_to_sequential": True,
        },
        "seed_baseline": {
            "instructions_per_second": SEED_BASELINE_INSTRUCTIONS_PER_SECOND,
            "cold_speedup": round(
                (instructions / cold_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
            "warm_speedup": round(
                (instructions / warm_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
        },
        "sharded": {
            "workload": SHARD_WORKLOAD,
            "shards": SHARD_COUNT,
            "instructions": sharded_cold.result.instructions,
            "cold_wall_seconds": round(sharded_cold_wall, 3),
            "warm_wall_seconds": round(sharded_warm_wall, 4),
            "warm_shards_from_cache": sharded_warm.shards_from_cache,
            "warm_speedup_vs_cold": round(sharded_cold_wall / sharded_warm_wall, 1),
            "cache_bytes": cache_bytes,
            "bit_identical_to_unsharded": True,
        },
        "telemetry": {
            "pre_obs_warm_instructions_per_second": PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND,
            "warm_instructions_per_second": round(warm_ips, 1),
            "tracing_off_overhead_percent": round(tracing_off_overhead_percent, 2),
            "budget_percent": TRACING_OFF_BUDGET_PERCENT,
            "within_budget": tracing_off_overhead_percent
            <= TRACING_OFF_BUDGET_PERCENT,
        },
        "metrics": registry.snapshot(),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print("\nwrote {}".format(args.output))
    if tracing_off_overhead_percent > TRACING_OFF_BUDGET_PERCENT:
        print(
            "FAIL: tracing-off overhead {:.2f}% exceeds the {:.1f}% budget "
            "(warm {:.0f} ips vs pre-telemetry {} ips)".format(
                tracing_off_overhead_percent,
                TRACING_OFF_BUDGET_PERCENT,
                warm_ips,
                PRE_OBS_WARM_INSTRUCTIONS_PER_SECOND,
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Engine throughput benchmark: the composite, sequential vs parallel.

Times a fixed five-workload composite (the paper's headline experiment)
three ways and writes ``BENCH_engine.json`` at the repository root:

* **cold** — one sequential composite in a fresh interpreter, paying
  one-time costs (workload program assembly, layout build) exactly as a
  user's first run does;
* **warm** — the same composite re-run in-process, the steady-state
  single-thread throughput an ablation sweep sees;
* **parallel** — the composite fanned out over a process pool
  (``--jobs``, default ``os.cpu_count()``), verified bit-identical to
  the sequential run before its timing is reported.

The fixed configuration (4000 measured instructions per workload, 1000
warmup) matches the measurement this repository's seed commit clocked
at 6766 instructions/second single-thread, recorded below as the
baseline the ≥1.25× target is judged against.

The full run also gates the telemetry layer with two arms measured in
the *same* bench run (the old gate compared against a stale constant
recorded on a different build and went negative): a bare composite
(no metrics registry, no tracer) versus the engine's usual
instrumented composite.  The instrumented, tracing-off arm must stay
within 2% of the bare arm.  A tracer-attached arm is also timed and
reported — informationally, since an attached tracer forces the
interpreted path by design and its cost is therefore expected to be
large, not budgeted.

The full run also times the replay compiler (``repro.core.compile``):
the warm composite re-runs with ``REPRO_NO_COMPILE=1`` in the same
process, is verified bit-identical, and the report's ``compiled``
block records both arms' throughput, the speedup, and the JIT's
``sim.compile.*`` counters.

The full run also times intra-workload sharding: one workload split
into ``SHARD_COUNT`` resumable shards through the snapshot/run-cache
machinery, cold (populating a fresh cache) and warm (replaying every
finished shard from it), both verified bit-identical to the unsharded
run.  The warm figure is the cache's value proposition: re-running a
measured experiment costs deserialization, not simulation.

Run:  PYTHONPATH=src python benchmarks/perf/bench_engine.py [--jobs N]
      [--smoke]   (tiny run: sequential/parallel, traced/untraced,
                   sharded/unsharded and compiled/interpreted
                   bit-identity, trace-export validity, and the
                   steady-state compiled-throughput ratchet — the CI
                   gate)
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: The benchmark's fixed measurement configuration.
INSTRUCTIONS_PER_WORKLOAD = 4_000
WARMUP_INSTRUCTIONS = 1_000

#: Single-thread instructions/second of the seed commit on this fixed
#: configuration (cold, fresh interpreter), measured on the reference
#: container.  The optimization target is >= 1.25x this figure.
SEED_BASELINE_INSTRUCTIONS_PER_SECOND = 6_766

#: Tracing-off budget: the instrumented composite (metrics registry
#: attached, no tracer — what the engine always runs) must stay within
#: this percentage of a bare composite timed in the same bench run.
TRACING_OFF_BUDGET_PERCENT = 2.0

#: Perf-smoke ratchet (CI): the steady-state compiled-path throughput
#: floor.  Deliberately conservative against slow CI containers — the
#: point is to catch the compiled path silently degrading to
#: interpreted speed, not to pin this container's figure.
SMOKE_MIN_WARM_IPS = 12_000
#: Perf-smoke ratchet (CI): steady-state compiled throughput must beat
#: the interpreted path by at least this factor, measured as
#: interleaved rounds on two long-warmed kernels (superblock formation
#: completes during warmup; see ``_steady_state_ab``).  The reference
#: container measures 1.6-1.75x; the gate keeps a noise margin below
#: that so a regression to the old single-record replay (~1.1x) or to
#: interpreted speed (1.0x) fails loudly without flaking on slow CI.
SMOKE_MIN_COMPILED_SPEEDUP = 1.50

#: Steady-state A/B configuration: instructions of warmup per arm
#: (superblock discovery decays after ~100k instructions), measured
#: instructions per round, and interleaved rounds per arm.
STEADY_WARMUP_INSTRUCTIONS = 100_000
STEADY_ROUND_INSTRUCTIONS = 20_000
STEADY_ROUNDS = 3

#: Shards for the single-workload sharding benchmark.
SHARD_COUNT = 4
SHARD_WORKLOAD = "educational"


def _measure_composite(instructions, warmup, jobs):
    from repro.core.engine import RunSpec, run_specs
    from repro.core.experiment import composite
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    specs = [
        RunSpec(
            workload=name, instructions=instructions, warmup_instructions=warmup
        )
        for name in COMPOSITE_WORKLOAD_NAMES
    ]
    started = time.perf_counter()
    runs = run_specs(specs, jobs=jobs)
    result = composite([run.result for run in runs])
    wall = time.perf_counter() - started
    return result, wall, runs


def _equal(result_a, result_b) -> bool:
    from repro.core.histogram_io import result_to_json

    return result_to_json(result_a) == result_to_json(result_b)


def _measure_sharded(instructions, warmup, shards, cache):
    from repro.core.engine import RunSpec, execute_spec_sharded

    spec = RunSpec(
        workload=SHARD_WORKLOAD,
        instructions=instructions,
        warmup_instructions=warmup,
    )
    started = time.perf_counter()
    run = execute_spec_sharded(spec, shards=shards, cache=cache)
    wall = time.perf_counter() - started
    return run, wall


def _measure_plain_composite(instructions, warmup):
    """The bare arm: five sequential ``run_workload`` calls with no
    metrics registry, no manifests, no tracer — the simulator without
    the telemetry layer's per-run plumbing.  Same phases as the
    instrumented arm (build + boot + warmup + measure per workload)."""
    from repro.core.experiment import composite, run_workload
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    started = time.perf_counter()
    results = [
        run_workload(name, instructions=instructions, warmup_instructions=warmup)
        for name in COMPOSITE_WORKLOAD_NAMES
    ]
    wall = time.perf_counter() - started
    return composite(results), wall


def _measure_phase_ips(runs, instructions):
    """Instructions/second over the measured phases alone, summed from
    the workers' self-profiling — the steady-state simulation speed,
    with per-workload build/boot/warmup wall time excluded."""
    total = 0.0
    for run in runs:
        if run.metrics:
            phase = run.metrics.get("histograms", {}).get("phase.measure.seconds")
            if phase:
                total += phase["sum"]
    return instructions / total if total else None


class _no_compile:
    """Context manager: force ``REPRO_NO_COMPILE=1`` for machines built
    inside the block (the env var is read at machine construction)."""

    def __enter__(self):
        self._saved = os.environ.get("REPRO_NO_COMPILE")
        os.environ["REPRO_NO_COMPILE"] = "1"

    def __exit__(self, *exc):
        if self._saved is None:
            del os.environ["REPRO_NO_COMPILE"]
        else:
            os.environ["REPRO_NO_COMPILE"] = self._saved


def _enable_codegen_tier():
    """Promote every replay record straight to generated Python.

    The bench measures the compiled path as shipped to a long-running
    experiment: by the time a sweep's measurement window opens, every
    hot record has crossed ``CODEGEN_THRESHOLD``.  The short bench
    workloads would leave most records in the op-loop tier (and report
    ``records_compiled: 0``), so the bench pins the promotion point at
    the first execution instead of simulating hundreds of thousands of
    instructions per arm just to cross thresholds.
    """
    os.environ["REPRO_COMPILE_TIER_THRESHOLD"] = "1"


def _steady_state_ab(warmup, instructions, rounds):
    """Interleaved compiled-vs-interpreted A/B at simulation steady state.

    Builds one kernel per arm, warms each past superblock formation
    (discovery decays after ~100k instructions), then times ``rounds``
    alternating measurement rounds *continuing on the same kernels* —
    compiled, interpreted, compiled, ... — so both arms see the same
    machine-load drift.  Best round per arm is reported: scheduler
    noise only ever slows a run down.  Returns ``(compiled_ips,
    interpreted_ips, stats, identical)`` where ``identical`` asserts
    both kernels retired the same instructions to bit-identical
    architectural state (cycle count and register file).
    """
    import pickle

    from repro.core.compile import clear_record_caches
    from repro.core.experiment import prepare_workload

    def build(no_compile):
        clear_record_caches()
        if no_compile:
            with _no_compile():
                kernel, _ = prepare_workload(SHARD_WORKLOAD)
        else:
            kernel, _ = prepare_workload(SHARD_WORKLOAD)
        kernel.run(max_instructions=warmup)
        return kernel

    compiled_kernel = build(False)
    interpreted_kernel = build(True)
    best = {"c": 0.0, "i": 0.0}
    for _ in range(rounds):
        for label, kernel in (("c", compiled_kernel), ("i", interpreted_kernel)):
            started = time.perf_counter()
            n = kernel.run(max_instructions=instructions)
            wall = time.perf_counter() - started
            best[label] = max(best[label], n / wall)
    ce = compiled_kernel.machine.ebox
    ie = interpreted_kernel.machine.ebox
    identical = ce.cycle_count == ie.cycle_count and pickle.dumps(
        ce.regs
    ) == pickle.dumps(ie.regs)
    return best["c"], best["i"], ce.compile_stats, identical


def _timed_workload(instructions, warmup, tracer=None):
    """One warm educational run; returns (result, measured-phase ips).

    Only the measured phase is timed — build/boot/warmup wall time is
    excluded — so two arms compared through this helper differ only in
    how they execute instructions, not in construction noise."""
    from repro.core.experiment import prepare_workload, result_from_machine
    from repro.core.experiment import MachineStats

    kernel, monitor = prepare_workload("educational", tracer=tracer)
    kernel.run(max_instructions=warmup)
    baseline = MachineStats.from_machine(kernel.machine)
    kernel.start_measurement()
    started = time.perf_counter()
    kernel.run(max_instructions=instructions)
    wall = time.perf_counter() - started
    kernel.stop_measurement()
    result = result_from_machine(
        kernel.machine, monitor, name="educational", stats_baseline=baseline
    )
    return result, result.instructions / wall


def smoke(jobs: int) -> int:
    """CI gate: tiny composite, sequential vs parallel must be
    identical; a traced run must be bit-identical to an untraced one
    (the tracer is passive) with a valid Chrome export; a K=3 sharded
    run must be bit-identical to the unsharded reference; and the
    steady-state compiled path must clear the throughput floor and the
    compiled-vs-interpreted speedup ratchet with superblocks formed."""
    from repro.core.engine import RunSpec, execute_spec, execute_spec_sharded
    from repro.core.experiment import run_workload
    from repro.obs.trace import Tracer, validate_chrome

    _enable_codegen_tier()
    sequential, seq_wall, _ = _measure_composite(600, 150, jobs=1)
    parallel, par_wall, _ = _measure_composite(600, 150, jobs=jobs)
    if not _equal(sequential, parallel):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1

    tracer = Tracer()
    traced, traced_board = run_workload(
        "educational",
        instructions=600,
        warmup_instructions=150,
        tracer=tracer,
        return_board=True,
    )
    plain, plain_board = run_workload(
        "educational", instructions=600, warmup_instructions=150, return_board=True
    )
    if traced_board.dump_sparse() != plain_board.dump_sparse() or not _equal(
        traced, plain
    ):
        print("FAIL: tracing perturbed the measurement", file=sys.stderr)
        return 1
    problems = validate_chrome(tracer.to_chrome())
    if problems:
        print(
            "FAIL: trace export invalid: {}".format("; ".join(problems[:5])),
            file=sys.stderr,
        )
        return 1

    shard_spec = RunSpec(
        workload=SHARD_WORKLOAD, instructions=600, warmup_instructions=150
    )
    unsharded = execute_spec(shard_spec)
    sharded = execute_spec_sharded(shard_spec, shards=3)
    if sharded.histogram != unsharded.histogram or not _equal(
        sharded.result, unsharded.result
    ):
        print("FAIL: sharded run differs from unsharded", file=sys.stderr)
        return 1

    # Replay-compiler bit-identity: a compiled measured run must produce
    # the same result object as an interpreted one (with the codegen
    # tier forced on, so the generated functions — superblocks included
    # — are what actually executes).
    compiled_result, _ = _timed_workload(2_500, 500)
    with _no_compile():
        interpreted_result, _ = _timed_workload(2_500, 500)
    if not _equal(compiled_result, interpreted_result):
        print("FAIL: compiled run differs from interpreted", file=sys.stderr)
        return 1

    # Replay-compiler ratchet: steady-state compiled throughput must
    # clear the absolute floor and beat the interpreted path, measured
    # as interleaved rounds on two long-warmed kernels.
    compiled_ips, interpreted_ips, sb_stats, identical = _steady_state_ab(
        STEADY_WARMUP_INSTRUCTIONS, STEADY_ROUND_INSTRUCTIONS, STEADY_ROUNDS
    )
    if not identical:
        print(
            "FAIL: steady-state compiled kernel diverged from interpreted",
            file=sys.stderr,
        )
        return 1
    if sb_stats.superblocks_formed == 0 or sb_stats.records_compiled == 0:
        print(
            "FAIL: codegen tier never fired ({} records compiled, "
            "{} superblocks formed)".format(
                sb_stats.records_compiled, sb_stats.superblocks_formed
            ),
            file=sys.stderr,
        )
        return 1
    if compiled_ips < SMOKE_MIN_WARM_IPS:
        print(
            "FAIL: steady-state compiled throughput {:.0f} ips below the {} "
            "floor".format(compiled_ips, SMOKE_MIN_WARM_IPS),
            file=sys.stderr,
        )
        return 1
    if compiled_ips < SMOKE_MIN_COMPILED_SPEEDUP * interpreted_ips:
        print(
            "FAIL: compiled path {:.0f} ips is not {:.2f}x the interpreted "
            "{:.0f} ips".format(
                compiled_ips, SMOKE_MIN_COMPILED_SPEEDUP, interpreted_ips
            ),
            file=sys.stderr,
        )
        return 1

    print(
        "smoke OK: jobs={} bit-identical to sequential "
        "(seq {:.2f}s, par {:.2f}s, {} instructions); "
        "tracing passive ({} events, valid Chrome export); "
        "3-shard merge bit-identical; "
        "steady-state compiled {:.0f} ips vs interpreted {:.0f} ips "
        "({:.2f}x, {} superblocks, mean {:.2f} instr/dispatch), "
        "bit-identical".format(
            jobs,
            seq_wall,
            par_wall,
            sequential.instructions,
            len(tracer),
            compiled_ips,
            interpreted_ips,
            compiled_ips / interpreted_ips,
            sb_stats.superblocks_formed,
            sb_stats.superblock_mean_length,
        )
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument(
        "--smoke", action="store_true", help="fast equality-only check (CI)"
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_engine.json")
    )
    args = parser.parse_args()

    if args.smoke:
        return smoke(max(2, args.jobs))

    from repro.obs.metrics import registry_from_result

    # The cold figure represents a user's first run under default
    # settings — the codegen tier threshold stays at its default here
    # and is only pinned to 1 (below) for the arms that measure the
    # compiled path itself.
    cold_result, cold_wall, _ = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
    )
    # Parallel also runs under default settings: each pool worker is a
    # fresh process, so pinning the tier here would time per-worker
    # code generation instead of process-pool scaling.
    parallel_result, parallel_wall, _ = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=args.jobs
    )
    if not _equal(cold_result, parallel_result):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1
    _enable_codegen_tier()
    # Warm (compiled) and interpreted arms run as adjacent interleaved
    # trials so both see the same machine load — container throughput
    # drifts by tens of percent over minutes, so arms measured far
    # apart produce garbage ratios.  Best wall of three per arm:
    # scheduler noise only ever slows a run down.  The first warm trial
    # pays the full generation cost (tier pinned to first sight); the
    # best-of-three is the converged figure.
    warm_result = warm_wall = warm_runs = None
    interpreted_result = interpreted_wall = interpreted_runs = None
    for _ in range(3):
        trial = _measure_composite(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
        )
        if warm_wall is None or trial[1] < warm_wall:
            warm_result, warm_wall, warm_runs = trial
        with _no_compile():
            trial = _measure_composite(
                INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
            )
        if interpreted_wall is None or trial[1] < interpreted_wall:
            interpreted_result, interpreted_wall, interpreted_runs = trial
    if not _equal(interpreted_result, warm_result):
        print("FAIL: interpreted composite differs from compiled", file=sys.stderr)
        return 1

    # Intra-workload sharding: one workload, SHARD_COUNT shards, cold
    # (fresh cache populated) then warm (every shard replayed from it).
    from repro.core.engine import RunSpec, execute_spec
    from repro.core.runcache import RunCache

    cache_root = tempfile.mkdtemp(prefix="bench-repro-cache-")
    try:
        cache = RunCache(cache_root)
        unsharded_run = execute_spec(
            RunSpec(
                workload=SHARD_WORKLOAD,
                instructions=INSTRUCTIONS_PER_WORKLOAD,
                warmup_instructions=WARMUP_INSTRUCTIONS,
            )
        )
        sharded_cold, sharded_cold_wall = _measure_sharded(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, SHARD_COUNT, cache
        )
        sharded_warm, sharded_warm_wall = _measure_sharded(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, SHARD_COUNT, cache
        )
        sharded_identical = (
            sharded_cold.histogram == unsharded_run.histogram
            and sharded_warm.histogram == unsharded_run.histogram
            and _equal(sharded_cold.result, unsharded_run.result)
            and _equal(sharded_warm.result, unsharded_run.result)
        )
        cache_bytes = cache.total_bytes()
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    if not sharded_identical:
        print("FAIL: sharded run differs from unsharded", file=sys.stderr)
        return 1
    if sharded_warm.shards_from_cache != SHARD_COUNT:
        print(
            "FAIL: warm sharded re-run replayed {}/{} shards from cache".format(
                sharded_warm.shards_from_cache, SHARD_COUNT
            ),
            file=sys.stderr,
        )
        return 1

    instructions = cold_result.instructions
    warm_ips = instructions / warm_wall

    # Telemetry arms, measured in this same run and interleaved so both
    # see the same machine load: a bare composite (no metrics, no
    # manifests, no tracer) against the engine's instrumented composite.
    # Best of two trials per arm.
    plain_result, plain_wall = None, None
    instrumented_wall = None
    for _ in range(2):
        candidate = _measure_plain_composite(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS
        )
        if plain_wall is None or candidate[1] < plain_wall:
            plain_result, plain_wall = candidate
        candidate_wall = _measure_composite(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
        )[1]
        if instrumented_wall is None or candidate_wall < instrumented_wall:
            instrumented_wall = candidate_wall
    if not _equal(plain_result, cold_result):
        print("FAIL: bare composite differs from instrumented", file=sys.stderr)
        return 1
    plain_ips = instructions / plain_wall
    instrumented_ips = instructions / instrumented_wall
    tracing_off_overhead_percent = (plain_ips - instrumented_ips) / plain_ips * 100.0

    # Tracer-attached arm (informational): the tracer forces the
    # interpreted path by design, so this measures tracing's full cost,
    # not a budgeted overhead.  Measured-phase time only, interleaved,
    # best of two per arm.
    from repro.obs.trace import Tracer

    traced_ips, untraced_ips = None, None
    for _ in range(2):
        candidate = _timed_workload(
            INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, tracer=Tracer()
        )[1]
        if traced_ips is None or candidate > traced_ips:
            traced_ips = candidate
        candidate = _timed_workload(INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS)[1]
        if untraced_ips is None or candidate > untraced_ips:
            untraced_ips = candidate
    tracing_on_overhead_percent = (untraced_ips - traced_ips) / untraced_ips * 100.0

    interpreted_ips = instructions / interpreted_wall
    warm_phase_ips = _measure_phase_ips(warm_runs, instructions)
    interpreted_phase_ips = _measure_phase_ips(interpreted_runs, instructions)

    # Steady-state A/B: the headline compiled-path figure, measured past
    # superblock formation on long-warmed kernels with interleaved
    # rounds (the short composite arms above never leave the formation
    # transient, so their ratio understates the compiled path).
    steady_compiled_ips, steady_interpreted_ips, sb_stats, steady_identical = (
        _steady_state_ab(
            STEADY_WARMUP_INSTRUCTIONS, STEADY_ROUND_INSTRUCTIONS, STEADY_ROUNDS
        )
    )
    if not steady_identical:
        print(
            "FAIL: steady-state compiled kernel diverged from interpreted",
            file=sys.stderr,
        )
        return 1

    # The typed metrics surface: the composite's simulated counters plus
    # the per-run wall-clock self-profiling folded in from the workers.
    registry = registry_from_result(warm_result)
    for run in warm_runs:
        if run.metrics:
            registry.merge_snapshot(run.metrics)
    from repro.core.compile import stats_from_snapshot

    compile_stats = stats_from_snapshot(registry.snapshot())
    report = {
        "config": {
            "instructions_per_workload": INSTRUCTIONS_PER_WORKLOAD,
            "warmup_instructions": WARMUP_INSTRUCTIONS,
            "workloads": 5,
            "jobs": args.jobs,
            "cpu_count": os.cpu_count(),
        },
        "measured_instructions": instructions,
        "sequential": {
            "cold_wall_seconds": round(cold_wall, 3),
            "cold_instructions_per_second": round(instructions / cold_wall, 1),
            "warm_wall_seconds": round(warm_wall, 3),
            "warm_instructions_per_second": round(instructions / warm_wall, 1),
        },
        "parallel": {
            "wall_seconds": round(parallel_wall, 3),
            "instructions_per_second": round(instructions / parallel_wall, 1),
            "speedup_vs_cold_sequential": round(cold_wall / parallel_wall, 2),
            "bit_identical_to_sequential": True,
        },
        "seed_baseline": {
            "instructions_per_second": SEED_BASELINE_INSTRUCTIONS_PER_SECOND,
            "cold_speedup": round(
                (instructions / cold_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
            "warm_speedup": round(
                (instructions / warm_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
        },
        "sharded": {
            "workload": SHARD_WORKLOAD,
            "shards": SHARD_COUNT,
            "instructions": sharded_cold.result.instructions,
            "cold_wall_seconds": round(sharded_cold_wall, 3),
            "warm_wall_seconds": round(sharded_warm_wall, 4),
            "warm_shards_from_cache": sharded_warm.shards_from_cache,
            "warm_speedup_vs_cold": round(sharded_cold_wall / sharded_warm_wall, 1),
            "cache_bytes": cache_bytes,
            "bit_identical_to_unsharded": True,
        },
        "telemetry": {
            "bare_instructions_per_second": round(plain_ips, 1),
            "instrumented_instructions_per_second": round(instrumented_ips, 1),
            "tracing_off_overhead_percent": round(tracing_off_overhead_percent, 2),
            "budget_percent": TRACING_OFF_BUDGET_PERCENT,
            "within_budget": tracing_off_overhead_percent
            <= TRACING_OFF_BUDGET_PERCENT,
            "tracing_on_overhead_percent": round(tracing_on_overhead_percent, 2),
            "tracing_on_note": "an attached tracer forces the interpreted "
            "path by design; its cost is reported, not budgeted",
        },
        "compiled": {
            "warm_instructions_per_second": round(warm_ips, 1),
            "interpreted_instructions_per_second": round(interpreted_ips, 1),
            "speedup": round(warm_ips / interpreted_ips, 2),
            "measured_phase_instructions_per_second": round(
                warm_phase_ips, 1
            )
            if warm_phase_ips
            else None,
            "interpreted_measured_phase_instructions_per_second": round(
                interpreted_phase_ips, 1
            )
            if interpreted_phase_ips
            else None,
            "measured_phase_speedup": round(warm_phase_ips / interpreted_phase_ips, 2)
            if warm_phase_ips and interpreted_phase_ips
            else None,
            "bit_identical_to_interpreted": True,
            "steady_state": {
                "workload": SHARD_WORKLOAD,
                "warmup_instructions": STEADY_WARMUP_INSTRUCTIONS,
                "round_instructions": STEADY_ROUND_INSTRUCTIONS,
                "rounds_per_arm": STEADY_ROUNDS,
                "compiled_instructions_per_second": round(steady_compiled_ips, 1),
                "interpreted_instructions_per_second": round(
                    steady_interpreted_ips, 1
                ),
                "speedup": round(steady_compiled_ips / steady_interpreted_ips, 2),
                "bit_identical_to_interpreted": True,
                "superblocks_formed": sb_stats.superblocks_formed,
                "superblock_runs": sb_stats.superblock_runs,
                "superblock_instructions": sb_stats.superblock_instructions,
                "superblock_deopts": sb_stats.superblock_deopts,
                "superblock_mean_length": round(sb_stats.superblock_mean_length, 2),
                "records_compiled": sb_stats.records_compiled,
            },
            "stats": compile_stats,
        },
        "metrics": registry.snapshot(),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print("\nwrote {}".format(args.output))
    if tracing_off_overhead_percent > TRACING_OFF_BUDGET_PERCENT:
        print(
            "FAIL: tracing-off overhead {:.2f}% exceeds the {:.1f}% budget "
            "(instrumented {:.0f} ips vs bare {:.0f} ips in this run)".format(
                tracing_off_overhead_percent,
                TRACING_OFF_BUDGET_PERCENT,
                warm_ips,
                plain_ips,
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

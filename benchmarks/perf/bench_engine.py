#!/usr/bin/env python3
"""Engine throughput benchmark: the composite, sequential vs parallel.

Times a fixed five-workload composite (the paper's headline experiment)
three ways and writes ``BENCH_engine.json`` at the repository root:

* **cold** — one sequential composite in a fresh interpreter, paying
  one-time costs (workload program assembly, layout build) exactly as a
  user's first run does;
* **warm** — the same composite re-run in-process, the steady-state
  single-thread throughput an ablation sweep sees;
* **parallel** — the composite fanned out over a process pool
  (``--jobs``, default ``os.cpu_count()``), verified bit-identical to
  the sequential run before its timing is reported.

The fixed configuration (4000 measured instructions per workload, 1000
warmup) matches the measurement this repository's seed commit clocked
at 6766 instructions/second single-thread, recorded below as the
baseline the ≥1.25× target is judged against.

Run:  PYTHONPATH=src python benchmarks/perf/bench_engine.py [--jobs N]
      [--smoke]   (tiny run, equality check only — the CI perf gate)
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: The benchmark's fixed measurement configuration.
INSTRUCTIONS_PER_WORKLOAD = 4_000
WARMUP_INSTRUCTIONS = 1_000

#: Single-thread instructions/second of the seed commit on this fixed
#: configuration (cold, fresh interpreter), measured on the reference
#: container.  The optimization target is >= 1.25x this figure.
SEED_BASELINE_INSTRUCTIONS_PER_SECOND = 6_766


def _measure_composite(instructions, warmup, jobs):
    from repro.core.experiment import run_composite_experiment

    started = time.perf_counter()
    result = run_composite_experiment(
        instructions_per_workload=instructions,
        warmup_instructions=warmup,
        jobs=jobs,
    )
    wall = time.perf_counter() - started
    return result, wall


def _equal(result_a, result_b) -> bool:
    from repro.core.histogram_io import result_to_json

    return result_to_json(result_a) == result_to_json(result_b)


def smoke(jobs: int) -> int:
    """CI gate: tiny composite, sequential vs parallel must be identical."""
    sequential, seq_wall = _measure_composite(600, 150, jobs=1)
    parallel, par_wall = _measure_composite(600, 150, jobs=jobs)
    if not _equal(sequential, parallel):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1
    print(
        "smoke OK: jobs={} bit-identical to sequential "
        "(seq {:.2f}s, par {:.2f}s, {} instructions)".format(
            jobs, seq_wall, par_wall, sequential.instructions
        )
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument(
        "--smoke", action="store_true", help="fast equality-only check (CI)"
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_engine.json")
    )
    args = parser.parse_args()

    if args.smoke:
        return smoke(max(2, args.jobs))

    cold_result, cold_wall = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
    )
    warm_result, warm_wall = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=1
    )
    parallel_result, parallel_wall = _measure_composite(
        INSTRUCTIONS_PER_WORKLOAD, WARMUP_INSTRUCTIONS, jobs=args.jobs
    )
    if not _equal(cold_result, parallel_result):
        print("FAIL: parallel composite differs from sequential", file=sys.stderr)
        return 1

    instructions = cold_result.instructions
    report = {
        "config": {
            "instructions_per_workload": INSTRUCTIONS_PER_WORKLOAD,
            "warmup_instructions": WARMUP_INSTRUCTIONS,
            "workloads": 5,
            "jobs": args.jobs,
            "cpu_count": os.cpu_count(),
        },
        "measured_instructions": instructions,
        "sequential": {
            "cold_wall_seconds": round(cold_wall, 3),
            "cold_instructions_per_second": round(instructions / cold_wall, 1),
            "warm_wall_seconds": round(warm_wall, 3),
            "warm_instructions_per_second": round(instructions / warm_wall, 1),
        },
        "parallel": {
            "wall_seconds": round(parallel_wall, 3),
            "instructions_per_second": round(instructions / parallel_wall, 1),
            "speedup_vs_cold_sequential": round(cold_wall / parallel_wall, 2),
            "bit_identical_to_sequential": True,
        },
        "seed_baseline": {
            "instructions_per_second": SEED_BASELINE_INSTRUCTIONS_PER_SECOND,
            "cold_speedup": round(
                (instructions / cold_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
            "warm_speedup": round(
                (instructions / warm_wall) / SEED_BASELINE_INSTRUCTIONS_PER_SECOND, 2
            ),
        },
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print("\nwrote {}".format(args.output))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 4: operand specifier mode distribution.

The paper's observations: register mode is the most common addressing
mode, especially after the first specifier (results tend to land in
registers); short literals are common, immediates scarce; displacement is
the most common memory mode; indexing is "surprisingly common" at 6.3
percent of all specifiers.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor

_ROWS = [
    "register",
    "short_literal",
    "immediate",
    "displacement",
    "register_deferred",
    "displacement_deferred",
    "absolute",
    "auto_inc_dec_def",
]


def test_table4_specifier_mode_distribution(benchmark, composite_result):
    measured = benchmark(tables.table4, composite_result)
    paper = paper_data.TABLE4_SPECIFIER_MODES

    for column in ("spec1", "spec26", "total"):
        print()
        print(
            format_table(
                "Table 4 ({} column, percent)".format(column),
                [(r, getattr(paper[r], column), measured[r][column]) for r in _ROWS]
                + [
                    (
                        "percent indexed",
                        paper_data.TABLE4_PERCENT_INDEXED[column],
                        measured["percent_indexed"][column],
                    )
                ],
            )
        )

    # Register mode dominates, especially in SPEC2-6.
    assert measured["register"]["spec26"] == max(
        measured[row]["spec26"] for row in _ROWS
    )
    assert measured["register"]["spec26"] > measured["register"]["spec1"]
    # Short literals common as first specifiers; immediates scarce.
    assert measured["short_literal"]["spec1"] > 10.0
    assert measured["immediate"]["total"] < measured["short_literal"]["total"]
    # Displacement is the most common memory mode.
    memory_rows = ["displacement", "register_deferred", "displacement_deferred", "absolute", "auto_inc_dec_def"]
    assert measured["displacement"]["total"] == max(measured[r]["total"] for r in memory_rows)
    # Exact-provenance magnitudes within a factor of ~1.6.
    for row in ("register", "short_literal", "immediate"):
        assert within_factor(measured[row]["total"], paper[row].total, 1.6), row
    # Indexing lands near the published 6.3 percent.
    assert within_factor(
        measured["percent_indexed"]["total"], paper_data.TABLE4_PERCENT_INDEXED["total"], 2.0
    )

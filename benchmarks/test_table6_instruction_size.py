"""Table 6: estimated size of the average instruction.

Paper: 1 byte of opcode + 1.48 specifiers x 1.68 bytes + 0.31 branch
displacements x 1.0 byte = 3.8 bytes per average instruction.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor


def test_table6_average_instruction_size(benchmark, composite_result):
    measured = benchmark(tables.table6, composite_result)
    paper = paper_data.TABLE6_SIZE

    print()
    print(
        format_table(
            "Table 6: Estimated Size of Average Instruction",
            [
                ("Opcode bytes", paper["opcode_bytes"], measured["opcode_bytes"]),
                (
                    "Specifiers / instruction",
                    paper["specifiers_per_instruction"],
                    measured["specifiers_per_instruction"],
                ),
                ("Avg specifier size", paper["specifier_size"], measured["specifier_size"]),
                (
                    "Branch disp / instruction",
                    paper["displacements_per_instruction"],
                    measured["displacements_per_instruction"],
                ),
                ("Avg displacement size", paper["displacement_size"], measured["displacement_size"]),
                ("TOTAL bytes", paper["total_bytes"], measured["total_bytes"]),
            ],
        )
    )

    assert within_factor(measured["total_bytes"], paper["total_bytes"], 1.2)
    assert within_factor(measured["specifier_size"], paper["specifier_size"], 1.3)
    # Internal consistency: the decomposition reproduces the total.
    estimated = (
        measured["opcode_bytes"]
        + measured["specifiers_per_instruction"] * measured["specifier_size"]
        + measured["displacements_per_instruction"] * measured["displacement_size"]
    )
    assert abs(estimated - measured["total_bytes"]) < 0.1

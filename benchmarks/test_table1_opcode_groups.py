"""Table 1: opcode group frequency.

Regenerates the paper's "moves, branches, and simple instructions account
for most instruction executions" table and checks the ordering and rough
magnitudes against the published percentages.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor

_ROW_ORDER = ["simple", "field", "float", "callret", "system", "character", "decimal"]


def test_table1_opcode_group_frequency(benchmark, composite_result):
    measured = benchmark(tables.table1, composite_result)

    print()
    print(
        format_table(
            "Table 1: Opcode Group Frequency (percent)",
            [
                (row, paper_data.TABLE1_GROUP_FREQUENCY[row], measured[row])
                for row in _ROW_ORDER
            ],
        )
    )

    paper = paper_data.TABLE1_GROUP_FREQUENCY
    # Shape: the dominance ordering the paper highlights.
    assert measured["simple"] > 75.0
    assert measured["simple"] > measured["field"] > measured["character"]
    assert measured["character"] > measured["decimal"]
    # Magnitudes: each group within a factor of ~2 of the published value.
    for row in ("simple", "field", "callret", "system"):
        assert within_factor(measured[row], paper[row], 2.0), row
    assert within_factor(measured["float"], paper["float"], 2.5)
    assert within_factor(measured["character"], paper["character"], 3.0)

"""Table 3: specifiers and branch displacements per average instruction.

Paper: 0.726 first specifiers, 0.758 other specifiers (1.48 in total),
and 0.312 branch displacements per average instruction.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor


def test_table3_specifiers_per_instruction(benchmark, composite_result):
    measured = benchmark(tables.table3, composite_result)
    paper = paper_data.TABLE3_PER_INSTRUCTION

    print()
    print(
        format_table(
            "Table 3: Specifiers and Branch Displacements per Instruction",
            [
                ("First specifiers", paper["spec1"], measured["spec1"]),
                ("Other specifiers", paper["spec26"], measured["spec26"]),
                ("Branch displacements", paper["branch_displacements"], measured["branch_displacements"]),
                (
                    "Specifiers total",
                    paper_data.TABLE3_SPECIFIERS_TOTAL,
                    measured["spec1"] + measured["spec26"],
                ),
            ],
        )
    )

    assert within_factor(measured["spec1"], paper["spec1"], 1.3)
    assert within_factor(measured["spec26"], paper["spec26"], 1.3)
    assert within_factor(
        measured["branch_displacements"], paper["branch_displacements"], 1.5
    )
    total = measured["spec1"] + measured["spec26"]
    assert within_factor(total, paper_data.TABLE3_SPECIFIERS_TOTAL, 1.25)

"""Table 2: PC-changing instructions — frequency and taken proportion.

The paper's observations: PC-changing instructions are almost 40 percent
of all executions, about two thirds of them actually branch, loop
branches are taken ~9 times in 10 (so loops iterate ~10 times), and the
subroutine/procedure/case classes branch every time.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor

_ROWS = [
    "simple_cond",
    "loop",
    "lowbit",
    "subroutine",
    "unconditional",
    "case",
    "bit",
    "procedure",
    "system",
    "total",
]


def test_table2_pc_changing_instructions(benchmark, composite_result):
    measured = benchmark(tables.table2, composite_result)

    def paper_row(name):
        if name == "total":
            return paper_data.TABLE2_TOTAL
        return paper_data.TABLE2_PC_CHANGING[name]

    print()
    print(
        format_table(
            "Table 2: percent of instructions that are PC-changing",
            [(r, paper_row(r).percent_of_instructions, measured[r]["percent_of_instructions"]) for r in _ROWS],
        )
    )
    print(
        format_table(
            "Table 2: percent of those that actually branch",
            [(r, paper_row(r).percent_taken, measured[r]["percent_taken"]) for r in _ROWS],
        )
    )

    total = measured["total"]
    # "PC-changing instructions ... almost 40 percent of all instructions"
    assert 30.0 < total["percent_of_instructions"] < 50.0
    # "the proportion of these that actually change the PC is also quite high"
    assert 55.0 < total["percent_taken"] < 80.0
    # "about 9 out of 10 loop branches actually branched"
    assert 80.0 < measured["loop"]["percent_taken"] <= 100.0
    # Always-taken classes.
    for row in ("subroutine", "case", "procedure", "system"):
        assert measured[row]["percent_taken"] == 100.0
    # Class magnitudes within a factor of two of the paper.
    for row in ("simple_cond", "loop", "lowbit", "subroutine", "bit", "procedure"):
        assert within_factor(
            measured[row]["percent_of_instructions"],
            paper_row(row).percent_of_instructions,
            2.0,
        ), row

"""Ablations: memory-hierarchy design choices.

The paper repeatedly connects its timing results to implementation
choices — the write-through cache with a one-longword write buffer
("which force the CALL instruction to stall while pushing the caller's
state"), the cache whose misses cost the read stalls, the TB whose misses
cost 21.6 cycles each.  These sweeps vary those choices and check the
directions the paper implies.
"""

import pytest

from repro.core.experiment import run_workload
from repro.memory.cache import Cache
from repro.memory.tb import TranslationBuffer
from repro.memory.write_buffer import WriteBuffer

_INSTRUCTIONS = 6_000
_WARMUP = 1_500


def run_with(configure):
    return run_workload(
        "timesharing_light",
        instructions=_INSTRUCTIONS,
        warmup_instructions=_WARMUP,
        configure=configure,
    )


def test_ablation_cache_size(benchmark):
    """A bigger cache means fewer read misses and a lower CPI; the 8 KB
    point is where the 11/780 actually sat."""

    def sweep():
        results = {}
        for size_kb in (2, 8, 32):
            def configure(machine, size_kb=size_kb):
                machine.memory.cache = Cache(size_bytes=size_kb * 1024)

            results[size_kb] = run_with(configure)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for size_kb, result in results.items():
        misses = result.stats.cache_read_misses / result.instructions
        print(
            "cache {:>2} KB: CPI {:5.2f}  read misses/instr {:.3f}".format(
                size_kb, result.cpi, misses
            )
        )
    miss_rates = [
        results[k].stats.cache_read_misses / results[k].instructions for k in (2, 8, 32)
    ]
    assert miss_rates[0] > miss_rates[1] > miss_rates[2]
    assert results[2].cpi > results[32].cpi


def test_ablation_write_buffer_depth(benchmark):
    """Slower write drain -> more write stalls; instant drain -> none.

    This isolates the paper's write-stall column: it exists because the
    write-through design funnels every write through one longword of
    buffering."""

    def sweep():
        results = {}
        for drain in (0, 6, 12):
            def configure(machine, drain=drain):
                machine.memory.write_buffer = WriteBuffer(drain_cycles=drain)

            results[drain] = run_with(configure)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    wstalls = {}
    for drain, result in results.items():
        wstalls[drain] = result.reduction.column_totals()["wstall"] / result.instructions
        print("drain {:>2} cycles: CPI {:5.2f}  wstall/instr {:.3f}".format(
            drain, result.cpi, wstalls[drain]))
    assert wstalls[0] == 0.0
    assert wstalls[6] < wstalls[12]
    assert results[0].cpi < results[12].cpi


def test_ablation_tb_size(benchmark):
    """More TB entries -> fewer misses -> less memory-management time."""

    def sweep():
        results = {}
        for half in (16, 64, 256):
            def configure(machine, half=half):
                machine.memory.tb = TranslationBuffer(half_entries=half)

            results[half] = run_with(configure)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rates = {}
    for half, result in results.items():
        rates[half] = result.stats.tb_misses / result.instructions
        memmgmt = result.reduction.row_totals()["memmgmt"] / result.instructions
        print(
            "TB {:>3}+{:<3} entries: CPI {:5.2f}  TB misses/instr {:.4f}  memmgmt cyc/instr {:.3f}".format(
                half, half, result.cpi, rates[half], memmgmt
            )
        )
    # Between flushes the hot working set fits in 64 entries, so going
    # bigger buys little — context-switch flushes, not capacity, set the
    # floor (exactly the paper's point about the flush interval).
    assert rates[16] > rates[64] >= rates[256]
    assert results[16].cpi > results[64].cpi

"""Table 9: cycles per instruction within each group (unweighted).

The paper's observations: the average simple instruction needs little
over one execute cycle, while the range across groups covers two orders
of magnitude; CALL/RET moves about 8 registers; the average character
instruction reads and writes 9-11 longwords (36-44 byte strings).
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor

_ROWS = ["simple", "field", "float", "callret", "system", "character", "decimal"]


def test_table9_within_group_cycles(benchmark, composite_result):
    measured = benchmark(tables.table9, composite_result)
    paper = paper_data.TABLE9_GROUP_TOTALS

    print()
    print(
        format_table(
            "Table 9: execute-phase cycles per instruction of each group",
            [(row, paper[row], measured[row]["total"]) for row in _ROWS],
        )
    )

    # "the range ... covers two orders of magnitude"
    assert measured["character"]["total"] > 50 * measured["simple"]["total"]
    assert measured["decimal"]["total"] > 30 * measured["simple"]["total"]
    # Ordering: character/decimal >> callret > system > field/float >> simple.
    assert measured["character"]["total"] > measured["callret"]["total"]
    assert measured["decimal"]["total"] > measured["callret"]["total"]
    assert measured["callret"]["total"] > measured["system"]["total"]
    assert measured["system"]["total"] > measured["simple"]["total"]
    assert measured["field"]["total"] > measured["simple"]["total"]
    # Magnitudes.
    assert within_factor(measured["simple"]["total"], paper["simple"], 2.2)
    assert within_factor(measured["callret"]["total"], paper["callret"], 1.8)
    assert within_factor(measured["character"]["total"], paper["character"], 1.8)
    assert within_factor(measured["float"]["total"], paper["float"], 2.0)

    # "about 8 registers are being pushed and popped" per CALL/RET or
    # PUSHR/POPR instruction: reads+writes per group instruction ~4 each.
    callret = measured["callret"]
    moved = callret["read"] + callret["write"]
    print("\nCALL/RET reads+writes per group instruction: {:.1f} (paper ~8)".format(moved))
    assert 4.0 < moved < 14.0

    # "the average character instruction reads and writes 9 to 11
    # longwords" — reads+writes within the character group.
    character = measured["character"]
    longwords = character["read"] + character["write"]
    print("Character reads+writes per group instruction: {:.1f} (paper 18-22)".format(longwords))
    assert 8.0 < longwords < 40.0

"""Table 7: interrupt and context-switch headway.

Paper (instructions between events): software-interrupt requests 2539,
hardware+software interrupts 637, context switches 6418.  The paper notes
the context-switch figure "is useful in setting the 'flush' interval in
cache and translation buffer simulations" — the reproduction's TB really
is flushed at that interval (checked below).
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor


def test_table7_interrupt_and_switch_headway(benchmark, composite_result):
    measured = benchmark(tables.table7, composite_result)
    paper = paper_data.TABLE7_HEADWAY

    print()
    print(
        format_table(
            "Table 7: Instruction headway between events",
            [
                (
                    "SW interrupt requests",
                    paper["software_interrupt_requests"],
                    measured["software_interrupt_requests"],
                ),
                ("HW+SW interrupts", paper["interrupts"], measured["interrupts"]),
                ("Context switches", paper["context_switches"], measured["context_switches"]),
            ],
        )
    )

    # Ordering: interrupts far more frequent than context switches;
    # software-interrupt requests in between.
    assert measured["interrupts"] < measured["software_interrupt_requests"]
    assert measured["software_interrupt_requests"] < measured["context_switches"]
    # Magnitudes within a factor of ~2 of the published headways.
    assert within_factor(measured["interrupts"], paper["interrupts"], 2.0)
    assert within_factor(
        measured["software_interrupt_requests"], paper["software_interrupt_requests"], 2.0
    )
    assert within_factor(measured["context_switches"], paper["context_switches"], 2.5)

    # Every context switch flushed the TB's process half.
    stats = composite_result.stats
    assert stats.tb_process_flushes >= composite_result.events.context_switches

"""Table 5: D-stream reads and writes per average instruction.

Paper totals: 0.783 reads and 0.409 writes per instruction — "the ratio
of reads to writes is about two to one" — with specifier processing the
largest single source and CALL/RET the largest instruction-group source.
Also checks Section 3.3.1's unaligned-reference rate (0.016/instruction).
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor

_ROWS = [
    "spec1",
    "spec2_6",
    "simple",
    "field",
    "float",
    "callret",
    "system",
    "character",
    "decimal",
    "other",
]


def test_table5_reads_and_writes(benchmark, composite_result):
    measured = benchmark(tables.table5, composite_result)
    paper = paper_data.TABLE5_READS_WRITES

    print()
    print(
        format_table(
            "Table 5: Reads per average instruction",
            [(r, paper[r].reads, measured[r]["reads"]) for r in _ROWS]
            + [("TOTAL", paper_data.TABLE5_TOTAL.reads, measured["total"]["reads"])],
        )
    )
    print()
    print(
        format_table(
            "Table 5: Writes per average instruction",
            [(r, paper[r].writes, measured[r]["writes"]) for r in _ROWS]
            + [("TOTAL", paper_data.TABLE5_TOTAL.writes, measured["total"]["writes"])],
        )
    )

    totals = measured["total"]
    # Read:write ratio about two to one.
    ratio = totals["reads"] / totals["writes"]
    assert 1.4 < ratio < 2.8
    # Totals within a factor of ~1.5 of the published figures.
    assert within_factor(totals["reads"], paper_data.TABLE5_TOTAL.reads, 1.5)
    assert within_factor(totals["writes"], paper_data.TABLE5_TOTAL.writes, 1.5)
    # Specifier processing accounts for the majority of reads.
    spec_reads = measured["spec1"]["reads"] + measured["spec2_6"]["reads"]
    assert spec_reads > 0.5 * totals["reads"]
    # CALL/RET is the largest instruction-group contributor to writes.
    group_rows = ["simple", "field", "float", "callret", "system", "character", "decimal"]
    assert measured["callret"]["writes"] == max(measured[r]["writes"] for r in group_rows)

    # Section 3.3.1: unaligned D-stream references are rare.
    unaligned = (
        composite_result.stats.unaligned_reads + composite_result.stats.unaligned_writes
    ) / composite_result.instructions
    print("\nUnaligned refs/instr: paper {} measured {:.4f}".format(
        paper_data.UNALIGNED_REFERENCES_PER_INSTRUCTION.value, unaligned))
    assert unaligned < 0.05

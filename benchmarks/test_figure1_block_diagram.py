"""Figure 1: the VAX-11/780 block diagram.

The paper's only figure is structural.  This bench verifies that the
simulated machine's topology matches the diagram — the three pipeline
stages, the TB in front of the cache, the 4-byte write buffer beside it,
the SBI below, memory at the bottom — and renders the diagram.
"""

from repro.cpu import VAX780
from repro.core.monitor import UPCMonitor
from repro.memory.tb import HALF_ENTRIES


def build_machine():
    return VAX780(monitor=UPCMonitor.build())


def test_figure1_block_diagram(benchmark):
    machine = benchmark(build_machine)
    components = machine.components()

    # The two major subsystems and their constituents (Section 2.1).
    for name in (
        "i_fetch",
        "i_decode",
        "ebox",
        "control_store",
        "translation_buffer",
        "cache",
        "write_buffer",
        "sbi",
        "memory",
        "monitor",
    ):
        assert components[name] is not None, name

    # Geometry as measured: 8 KB 2-way cache with 8-byte blocks,
    # 128-entry split TB, 4-byte (one-longword) write buffer, 8 MB memory.
    cache = components["cache"]
    assert cache.sets * cache.ways * cache.block_size == 8 * 1024
    assert cache.ways == 2 and cache.block_size == 8
    assert 2 * HALF_ENTRIES == 128
    assert components["memory"].size == 8 * 1024 * 1024

    # The control store is the 16K-location array the monitor shadows.
    from repro.ucode.control_store import CONTROL_STORE_SIZE

    assert CONTROL_STORE_SIZE == 16 * 1024
    assert components["monitor"].board.buckets == 16_000

    diagram = machine.block_diagram()
    print()
    print(diagram)
    for label in ("I-Fetch", "I-Decode", "EBOX", "Translation Buffer", "Cache", "SBI", "Memory", "write"):
        assert label in diagram

"""Shared composite experiment for the benchmark harness.

Every table/figure bench reads from one composite run of the five
workloads (the paper's "sum of the five UPC histograms"), built once per
benchmark session.  Individual benches time the *analysis* step — the
reduction of the shared histogram into their table — and assert the
paper's shape on the result.

Budget knobs via environment:

* ``REPRO_BENCH_INSTRUCTIONS`` — measured instructions per workload
  (default 12000; the paper's runs were ~1h of real time each).
* ``REPRO_BENCH_WARMUP`` — unmeasured warmup instructions (default 3000).
"""

import os

import pytest

from repro.core.experiment import run_composite_experiment, run_workload

INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "12000"))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "3000"))


@pytest.fixture(scope="session")
def per_workload_results():
    """Individual workload results (built once; the composite sums them)."""
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    return {
        name: run_workload(name, instructions=INSTRUCTIONS, warmup_instructions=WARMUP)
        for name in COMPOSITE_WORKLOAD_NAMES
    }


@pytest.fixture(scope="session")
def composite_result(per_workload_results):
    """The five-workload composite (the sum of the five UPC histograms)."""
    from repro.core.experiment import composite

    return composite(list(per_workload_results.values()))

"""Ablations: pipeline and FPA design choices the paper names.

* Decode overlap — "saving the non-overlapped I-Decode cycle could save
  one cycle on each non-PC-changing instruction.  (The later VAX model
  11/750 did exactly this.)" (Section 5).
* The Floating Point Accelerator — "All of the VAXes had Floating Point
  Accelerators"; removing it multiplies float execute time.
"""

import pytest

from repro.core.experiment import run_workload

_INSTRUCTIONS = 6_000
_WARMUP = 1_500


def test_ablation_decode_overlap(benchmark):
    """The 11/750's overlap should save close to one cycle per
    non-PC-changing instruction (roughly 60 percent of instructions)."""

    def sweep():
        baseline = run_workload(
            "timesharing_light", instructions=_INSTRUCTIONS, warmup_instructions=_WARMUP
        )

        def overlap(machine):
            machine.ebox.decode_overlap = True

        overlapped = run_workload(
            "timesharing_light",
            instructions=_INSTRUCTIONS,
            warmup_instructions=_WARMUP,
            configure=overlap,
        )
        return baseline, overlapped

    baseline, overlapped = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # With overlap the decode-dispatch microinstruction no longer runs
    # once per instruction, so the histogram's instruction marker breaks
    # — a faithful artifact; the analyst falls back to the companion
    # event counters for the denominator.
    overlapped_cpi = overlapped.reduction.total_cycles / overlapped.events.instructions
    saving = baseline.cpi - overlapped_cpi
    print()
    print(
        "decode overlap: CPI {:.2f} -> {:.2f} (saving {:.2f} cycles/instr)".format(
            baseline.cpi, overlapped_cpi, saving
        )
    )
    # The saving must be positive and bounded by one cycle/instruction.
    assert 0.1 < saving < 1.1
    # Decode compute drops to roughly the taken-branch rate.
    decode_compute = (
        overlapped.reduction.matrix["decode"]["compute"] / overlapped.events.instructions
    )
    assert decode_compute < 0.7


def test_ablation_floating_point_accelerator(benchmark):
    """Without the FPA, the float-heavy scientific workload slows much
    more than the character-heavy commercial one."""

    def sweep():
        results = {}
        for name in ("scientific", "commercial"):
            with_fpa = run_workload(
                name, instructions=_INSTRUCTIONS, warmup_instructions=_WARMUP
            )

            def no_fpa(machine):
                machine.ebox.float_slowdown = 4

            without = run_workload(
                name,
                instructions=_INSTRUCTIONS,
                warmup_instructions=_WARMUP,
                configure=no_fpa,
            )
            results[name] = (with_fpa, without)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    slowdowns = {}
    for name, (with_fpa, without) in results.items():
        slowdowns[name] = without.cpi / with_fpa.cpi
        print(
            "{:<12} CPI with FPA {:5.2f}, without {:5.2f} ({:.2f}x)".format(
                name, with_fpa.cpi, without.cpi, slowdowns[name]
            )
        )
    assert slowdowns["scientific"] > slowdowns["commercial"]
    assert slowdowns["scientific"] > 1.02

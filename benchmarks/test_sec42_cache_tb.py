"""Section 4.2: cache and translation-buffer misses.

Paper: 0.28 cache read misses per instruction (0.18 I-stream + 0.10
D-stream); 0.029 TB misses per instruction (0.020 D + 0.009 I); TB miss
service averages 21.6 cycles, of which 3.5 are read stalls on the PTE
fetch.
"""

from repro.core import paper_data, tables
from repro.core.report import format_table, within_factor


def test_sec42_cache_and_tb_misses(benchmark, composite_result):
    measured = benchmark(tables.sec42_cache_tb, composite_result)
    paper = paper_data.SEC42_CACHE_TB

    rows = [
        ("Cache read misses/instr", "cache_read_misses_per_instruction"),
        ("  I-stream", "cache_read_misses_istream"),
        ("  D-stream", "cache_read_misses_dstream"),
        ("TB misses/instr", "tb_misses_per_instruction"),
        ("  D-stream", "tb_misses_dstream"),
        ("  I-stream", "tb_misses_istream"),
        ("Cycles per TB miss", "cycles_per_tb_miss"),
        ("  of which read stall", "tb_miss_read_stall_cycles"),
    ]
    print()
    print(
        format_table(
            "Section 4.2: Cache and TB misses",
            [(label, paper[key], measured[key]) for label, key in rows],
        )
    )

    # Cache miss rate near 0.28/instruction, I-stream-dominated.
    assert within_factor(
        measured["cache_read_misses_per_instruction"],
        paper["cache_read_misses_per_instruction"],
        1.6,
    )
    assert measured["cache_read_misses_istream"] > measured["cache_read_misses_dstream"]

    # TB miss rate near 0.029/instruction, D-stream-dominated.
    assert within_factor(
        measured["tb_misses_per_instruction"], paper["tb_misses_per_instruction"], 1.7
    )
    assert measured["tb_misses_dstream"] > measured["tb_misses_istream"]

    # Service cost near 21.6 cycles with a few cycles of PTE-fetch stall.
    assert within_factor(measured["cycles_per_tb_miss"], paper["cycles_per_tb_miss"], 1.4)
    assert 0.3 < measured["tb_miss_read_stall_cycles"] < 7.0

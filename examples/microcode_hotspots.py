#!/usr/bin/env python3
"""Explore the raw histogram: where does the machine spend its cycles?

The paper calls the UPC histogram "a general resource from which the
answers to many questions ... can be obtained simply by doing additional
interpretation of the raw histogram data."  This example does exactly
that interpretation by hand: it runs one workload, dumps the raw bucket
counts, and walks the control-store map to list the hottest
microroutines, the biggest stall sites, and the IB-stall dispatch
targets.

Run:  python examples/microcode_hotspots.py [workload] [instructions]
"""

import sys

from repro.core.experiment import run_workload
from repro.workloads import PROFILES


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "commercial"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    if workload not in PROFILES:
        raise SystemExit("unknown workload {!r}; pick from {}".format(workload, sorted(PROFILES)))

    result = run_workload(workload, instructions=budget, warmup_instructions=2_000)
    reduction = result.reduction

    print(
        "{}: {} instructions, CPI {:.2f}".format(
            workload, reduction.instructions, reduction.cpi
        )
    )

    per_routine = sorted(
        reduction.routine_cycles.items(),
        key=lambda item: -(item[1][0] + item[1][1]),
    )

    print("\nHottest 20 microroutines (by total cycles)")
    print("  {:<28} {:>10} {:>10} {:>7}".format("routine", "executed", "stalled", "%time"))
    total = reduction.total_cycles
    for name, (normal, stalled) in per_routine[:20]:
        print(
            "  {:<28} {:>10} {:>10} {:6.1f}%".format(
                name, normal, stalled, 100.0 * (normal + stalled) / total
            )
        )

    print("\nBiggest stall sites (stalled-bank counts)")
    by_stall = sorted(reduction.routine_cycles.items(), key=lambda item: -item[1][1])
    for name, (normal, stalled) in by_stall[:8]:
        if stalled == 0:
            break
        ratio = stalled / normal if normal else float("inf")
        print(
            "  {:<28} {:>10} stall cycles ({:.2f} per execution)".format(
                name, stalled, ratio
            )
        )

    print("\nIB-stall cycles by requesting activity")
    ibstall_rows = [
        (row, columns["ibstall"])
        for row, columns in reduction.matrix.items()
        if columns["ibstall"] > 0
    ]
    for row, cycles in sorted(ibstall_rows, key=lambda item: -item[1]):
        print("  {:<28} {:>10.0f} cycles".format(row, cycles))

    print(
        "\nMemory management: {:.0f} cycles total "
        "({:.2f} per instruction) — TB miss service plus alignment".format(
            sum(reduction.matrix["memmgmt"].values()),
            sum(reduction.matrix["memmgmt"].values()) / reduction.instructions,
        )
    )


if __name__ == "__main__":
    main()

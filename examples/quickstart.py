#!/usr/bin/env python3
"""Quickstart: assemble a VAX program, run it on a monitored 11/780,
read the micro-PC histogram.

This is the paper's measurement loop in miniature:

1. build the machine and plug in the histogram monitor;
2. load a program (here: sum the integers 1..100 with a SOBGTR loop,
   then string-copy a message with MOVC3);
3. issue the Unibus-style start command, run, stop;
4. reduce the raw histogram into the cycle accounts of Table 8.

Run:  python examples/quickstart.py
"""

from repro.asm import Assembler
from repro.core.monitor import UPCMonitor
from repro.core.reduction import COLUMNS, ROWS, reduce_histogram
from repro.core.report import matrix_to_text
from repro.cpu import VAX780


def build_program():
    asm = Assembler(origin=0x200)
    # Sum 1..100.
    asm.instr("MOVL", "#100", "R1")
    asm.instr("CLRL", "R0")
    asm.label("loop")
    asm.instr("ADDL2", "R1", "R0")
    asm.instr("SOBGTR", "R1", "loop")
    # MOVC3 clobbers R0-R5 (as on the real VAX), so bank the sum first.
    asm.instr("MOVL", "R0", "total")
    # Copy a string through the character microcode.
    asm.instr("MOVC3", "#19", "message", "buffer")
    asm.instr("HALT")
    asm.align(4)
    asm.label("total")
    asm.long(0)
    asm.label("message")
    asm.ascii("HELLO FROM THE EBOX")
    asm.label("buffer")
    asm.space(19)
    return asm


def main():
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor)

    asm = build_program()
    machine.load_program(asm.assemble(), origin=0x200)

    monitor.start()
    machine.run()
    monitor.stop()

    print(machine.block_diagram())
    print()

    total = machine.read_virtual(asm.symbols["total"], 4)
    copied = bytes(
        machine.read_virtual(asm.symbols["buffer"] + i, 1) for i in range(19)
    )
    print("Sum of 1..100 computed by the EBOX: {}".format(total))
    print("MOVC3 copied: {!r}".format(copied.decode("ascii")))
    print()

    counts, stalled = monitor.board.dump()
    reduction = reduce_histogram(counts, stalled, machine.layout, events=machine.events)
    print(
        "Instructions: {}   Cycles: {}   CPI: {:.2f}".format(
            reduction.instructions, int(reduction.total_cycles), reduction.cpi
        )
    )
    print()
    print(
        matrix_to_text(
            {row: dict(reduction.per_instruction()[row]) for row in ROWS},
            COLUMNS,
            "Cycles per average instruction (Table 8 form)",
        )
    )


if __name__ == "__main__":
    main()

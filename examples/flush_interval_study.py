#!/usr/bin/env python3
"""The study the paper's Table 7 was meant to inform.

"The context-switch figure is useful in setting the 'flush' interval in
cache and translation buffer simulations" (Section 3.4, pointing at the
companion Clark & Emer TB paper).  This example performs that study:

1. capture a virtual reference trace from a live workload run (with real
   context-switch points);
2. replay it through the trace-driven TB simulator across a sweep of
   synthetic flush intervals and TB sizes;
3. show where the measured context-switch headway sits on the curve.

The replay sweeps are independent trace simulations, so they go through
the experiment engine's :func:`parallel_map` — ``jobs > 1`` replays the
sweep points on a process pool with identical results in identical
order.

Run:  python examples/flush_interval_study.py [instructions] [jobs]
"""

import sys

from repro.core.engine import parallel_map
from repro.core.monitor import UPCMonitor
from repro.cpu import VAX780
from repro.memory.tracesim import (
    TraceRecorder,
    flush_interval_sweep,
    simulate_cache,
    simulate_tb,
)
from repro.vms import VMSKernel
from repro.workloads import RemoteTerminalEmulator, generate_program, profile_by_name


def capture_trace(budget):
    profile = profile_by_name("timesharing_light")
    machine = VAX780(monitor=UPCMonitor.build())
    kernel = VMSKernel(machine, terminal_period_cycles=11_000, quantum_ticks=3)
    for variant in range(3):
        program = generate_program(profile, variant=variant)
        process = kernel.create_process("p{}".format(variant), program.code, program.code_origin)
        kernel.load_into_process(process, program.data_origin, program.data)
    RemoteTerminalEmulator(kernel, users=profile.users, script_name="timesharing")
    kernel.boot()
    kernel.run(max_instructions=2_000)  # warm up
    recorder = TraceRecorder(kernel)
    recorder.start()
    kernel.run(max_instructions=budget)
    return recorder.stop(), machine.events


def _tb_size_point(args):
    """Pool worker: one TB-size replay -> (half_entries, miss_rate)."""
    trace, half = args
    return half, simulate_tb(trace, half_entries=half).miss_rate


def _cache_size_point(args):
    """Pool worker: one cache-size replay -> (size_kb, result)."""
    trace, size_kb = args
    return size_kb, simulate_cache(trace, size_bytes=size_kb * 1024)


def main():
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    trace, events = capture_trace(budget)

    refs_per_instr = len(trace) / max(1, events.instructions)
    measured_headway_refs = trace.mean_switch_interval
    print(
        "Captured {} references over {} instructions "
        "({:.2f} refs/instr, real flush interval {:.0f} refs)".format(
            len(trace), events.instructions, refs_per_instr, measured_headway_refs
        )
    )

    print("\nTB miss rate vs. synthetic flush interval (64+64-entry TB)")
    intervals = [500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000]
    sweep = flush_interval_sweep(trace, intervals)
    natural = simulate_tb(trace).miss_rate
    for interval, rate in sweep:
        bar = "#" * int(rate * 2000)
        print("  every {:>6} refs: {:.4f}  {}".format(interval, rate, bar))
    print("  real switch points: {:.4f}  (headway {:.0f} refs)".format(
        natural, measured_headway_refs))

    print("\nTB miss rate vs. TB size (flushing at real switch points)")
    tb_points = parallel_map(
        _tb_size_point, [(trace, half) for half in (16, 32, 64, 128, 256)], jobs=jobs
    )
    for half, rate in tb_points:
        print("  {:>3}+{:<3} entries: {:.4f}".format(half, half, rate))

    print("\nCache read-miss rate vs. size (trace replay, 2-way, 8-byte blocks)")
    cache_points = parallel_map(
        _cache_size_point, [(trace, kb) for kb in (2, 4, 8, 16, 32)], jobs=jobs
    )
    for size_kb, result in cache_points:
        print(
            "  {:>2} KB: {:.4f}  (I {:.4f} / D {:.4f} per reference)".format(
                size_kb,
                result.read_miss_rate,
                result.i_read_misses / result.references,
                result.d_read_misses / result.references,
            )
        )

    print(
        "\nReading: the knee of the flush-interval curve is why Table 7's "
        "6418-instruction switch headway mattered to TB sizing studies."
    )


if __name__ == "__main__":
    main()

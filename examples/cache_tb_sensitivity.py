#!/usr/bin/env python3
"""Design-space sweep: how the 11/780's memory-hierarchy choices shape
the CPI decomposition.

The paper reads its Table 8 as a map of "where performance may be
improved, and where it may not": read stalls trace to the cache, write
stalls to the one-longword write buffer behind the write-through cache,
memory-management time to the TB.  This example re-runs one workload
across those design points and prints the resulting CPI decompositions
side by side — the kind of what-if the authors built the monitor to
inform.

The design points are declarative :class:`MachineConfig` specs executed
by the parallel experiment engine: with ``jobs > 1`` the seven runs fan
out over a process pool and come back in the same order with
bit-identical histograms.

Run:  python examples/cache_tb_sensitivity.py [instructions] [jobs]
"""

import sys

from repro.core.engine import MachineConfig, RunSpec, run_specs

#: (label, config) — the real machine first, then each what-if.
DESIGN_POINTS = [
    ("11/780 baseline (8KB cache, 64+64 TB, 1-lw WB)", None),
    ("cache 2 KB", MachineConfig(cache_size_bytes=2 * 1024)),
    ("cache 32 KB", MachineConfig(cache_size_bytes=32 * 1024)),
    ("TB 16+16 entries", MachineConfig(tb_half_entries=16)),
    ("TB 256+256 entries", MachineConfig(tb_half_entries=256)),
    ("write buffer: instant drain", MachineConfig(wb_drain_cycles=0)),
    ("write buffer: 12-cycle drain", MachineConfig(wb_drain_cycles=12)),
]


def summarize(result):
    columns = result.reduction.column_totals()
    instructions = result.instructions
    return {
        "label": result.name,
        "cpi": result.cpi,
        "rstall": columns["rstall"] / instructions,
        "wstall": columns["wstall"] / instructions,
        "ibstall": columns["ibstall"] / instructions,
        "memmgmt": result.reduction.row_totals()["memmgmt"] / instructions,
        "cache_miss": result.stats.cache_read_misses / instructions,
        "tb_miss": result.stats.tb_misses / instructions,
    }


def main():
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    specs = [
        RunSpec(
            workload="timesharing_light",
            instructions=budget,
            warmup_instructions=1_500,
            config=config,
            label=label,
        )
        for label, config in DESIGN_POINTS
    ]
    runs = run_specs(specs, jobs=jobs)
    rows = [summarize(run.result) for run in runs]

    header = "{:<44} {:>6} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}".format(
        "configuration", "CPI", "rstall", "wstall", "ibstall", "memmgmt", "miss/i", "tbmiss/i"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "{label:<44} {cpi:6.2f} {rstall:7.3f} {wstall:7.3f} {ibstall:8.3f} "
            "{memmgmt:8.3f} {cache_miss:7.3f} {tb_miss:8.4f}".format(**row)
        )

    print(
        "\nReading the table the way Section 5 does: shrinking the cache "
        "moves time into the stall columns; shrinking the TB moves it into "
        "memory management; deepening the write drain swells write stall "
        "exactly where CALL/RET pushes cluster."
    )


if __name__ == "__main__":
    main()

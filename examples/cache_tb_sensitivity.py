#!/usr/bin/env python3
"""Design-space sweep: how the 11/780's memory-hierarchy choices shape
the CPI decomposition.

The paper reads its Table 8 as a map of "where performance may be
improved, and where it may not": read stalls trace to the cache, write
stalls to the one-longword write buffer behind the write-through cache,
memory-management time to the TB.  This example re-runs one workload
across those design points and prints the resulting CPI decompositions
side by side — the kind of what-if the authors built the monitor to
inform.

Run:  python examples/cache_tb_sensitivity.py [instructions]
"""

import sys

from repro.core.experiment import run_workload
from repro.memory.cache import Cache
from repro.memory.tb import TranslationBuffer
from repro.memory.write_buffer import WriteBuffer


def measure(label, configure=None, budget=6_000):
    result = run_workload(
        "timesharing_light",
        instructions=budget,
        warmup_instructions=1_500,
        configure=configure,
    )
    columns = result.reduction.column_totals()
    instructions = result.instructions
    return {
        "label": label,
        "cpi": result.cpi,
        "rstall": columns["rstall"] / instructions,
        "wstall": columns["wstall"] / instructions,
        "ibstall": columns["ibstall"] / instructions,
        "memmgmt": result.reduction.row_totals()["memmgmt"] / instructions,
        "cache_miss": result.stats.cache_read_misses / instructions,
        "tb_miss": result.stats.tb_misses / instructions,
    }


def main():
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000

    def cache_config(size_kb):
        def configure(machine):
            machine.memory.cache = Cache(size_bytes=size_kb * 1024)

        return configure

    def wb_config(drain):
        def configure(machine):
            machine.memory.write_buffer = WriteBuffer(drain_cycles=drain)

        return configure

    def tb_config(half):
        def configure(machine):
            machine.memory.tb = TranslationBuffer(half_entries=half)

        return configure

    rows = [
        measure("11/780 baseline (8KB cache, 64+64 TB, 1-lw WB)", budget=budget),
        measure("cache 2 KB", cache_config(2), budget),
        measure("cache 32 KB", cache_config(32), budget),
        measure("TB 16+16 entries", tb_config(16), budget),
        measure("TB 256+256 entries", tb_config(256), budget),
        measure("write buffer: instant drain", wb_config(0), budget),
        measure("write buffer: 12-cycle drain", wb_config(12), budget),
    ]

    header = "{:<44} {:>6} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}".format(
        "configuration", "CPI", "rstall", "wstall", "ibstall", "memmgmt", "miss/i", "tbmiss/i"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "{label:<44} {cpi:6.2f} {rstall:7.3f} {wstall:7.3f} {ibstall:8.3f} "
            "{memmgmt:8.3f} {cache_miss:7.3f} {tb_miss:8.4f}".format(**row)
        )

    print(
        "\nReading the table the way Section 5 does: shrinking the cache "
        "moves time into the stall columns; shrinking the TB moves it into "
        "memory management; deepening the write drain swells write stall "
        "exactly where CALL/RET pushes cluster."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's headline experiment: characterize the composite of five
timesharing workloads.

Boots the mini-VMS kernel five times — two live-timesharing stand-ins and
three RTE-driven populations (educational, scientific, commercial) — and
sums the five micro-PC histograms, exactly as Section 2.2 describes.
Prints the paper's tables from the composite.

Run:  python examples/timesharing_characterization.py [instructions-per-workload]
"""

import sys

from repro.core import tables
from repro.core.experiment import run_workload, composite
from repro.core.reduction import COLUMNS, ROWS
from repro.core.report import matrix_to_text
from repro.workloads import COMPOSITE_WORKLOAD_NAMES, PROFILES


def main():
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    results = []
    for name in COMPOSITE_WORKLOAD_NAMES:
        profile = PROFILES[name]
        print("measuring {:<20} ({} users) ...".format(name, profile.users))
        results.append(run_workload(name, instructions=budget, warmup_instructions=2_000))
    merged = composite(results)

    print()
    print("=" * 64)
    print(
        "Composite of five workloads: {} instructions, CPI {:.2f}".format(
            merged.instructions, merged.cpi
        )
    )
    print("=" * 64)

    table1 = tables.table1(merged)
    print("\nTable 1: opcode group frequency (percent)")
    for group, percent in sorted(table1.items(), key=lambda kv: -kv[1]):
        print("  {:<12} {:6.2f}".format(group, percent))

    table2 = tables.table2(merged)
    print("\nTable 2: PC-changing instructions")
    print("  {:<14} {:>8} {:>8}".format("class", "% instr", "% taken"))
    for row, cells in table2.items():
        if cells["percent_of_instructions"] > 0:
            print(
                "  {:<14} {:8.1f} {:8.1f}".format(
                    row, cells["percent_of_instructions"], cells["percent_taken"]
                )
            )

    table6 = tables.table6(merged)
    print(
        "\nTable 6: average instruction is {:.2f} bytes "
        "({:.2f} specifiers of {:.2f} bytes each)".format(
            table6["total_bytes"],
            table6["specifiers_per_instruction"],
            table6["specifier_size"],
        )
    )

    table7 = tables.table7(merged)
    print("\nTable 7: instruction headway between events")
    for event, headway in table7.items():
        print("  {:<28} {:8.0f}".format(event, headway))

    print()
    table8 = tables.table8(merged)
    print(
        matrix_to_text(
            {row: table8[row] for row in ROWS + ["total"]},
            COLUMNS + ["total"],
            "Table 8: cycles per average instruction",
        )
    )

    table9 = tables.table9(merged)
    print("\nTable 9: execute cycles per instruction within each group")
    for row, cells in table9.items():
        print("  {:<12} {:8.2f}".format(row, cells["total"]))

    sec42 = tables.sec42_cache_tb(merged)
    print(
        "\nSection 4.2: {:.3f} cache read misses/instr, "
        "{:.4f} TB misses/instr at {:.1f} cycles per miss".format(
            sec42["cache_read_misses_per_instruction"],
            sec42["tb_misses_per_instruction"],
            sec42["cycles_per_tb_miss"],
        )
    )


if __name__ == "__main__":
    main()

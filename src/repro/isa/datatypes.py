"""VAX data types and scalar arithmetic helpers.

The VAX is a little-endian, byte-addressable 32-bit architecture.  All
scalar integer values travel through the simulator as Python ints in the
range ``0 .. 2**bits - 1``; these helpers convert between that unsigned
representation and signed interpretations, and implement the two VAX
non-integer scalar formats the instruction subset needs:

* **F_floating** — the 32-bit VAX floating type (sign, 8-bit excess-128
  exponent, 23-bit fraction with a hidden leading 1, and the famous
  PDP-11-inherited word swap in its memory layout).
* **Packed decimal** — BCD digit pairs with a trailing sign nibble, used
  by the DECIMAL instruction group.
"""

from __future__ import annotations

import math
from enum import Enum


class DataType(Enum):
    """Operand data types used by the instruction subset."""

    BYTE = "b"
    WORD = "w"
    LONG = "l"
    QUAD = "q"
    F_FLOAT = "f"
    PACKED = "p"
    VARIABLE_FIELD = "v"

    @property
    def size(self) -> int:
        """Size in bytes of one datum (packed/field sizes are contextual)."""
        return _SIZES[self]


_SIZES = {
    DataType.BYTE: 1,
    DataType.WORD: 2,
    DataType.LONG: 4,
    DataType.QUAD: 8,
    DataType.F_FLOAT: 4,
    DataType.PACKED: 0,
    DataType.VARIABLE_FIELD: 4,
}

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def truncate(value: int, bits: int = 32) -> int:
    """Truncate ``value`` to an unsigned ``bits``-wide integer."""
    return value & ((1 << bits) - 1)


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend a ``bits``-wide value to a 32-bit unsigned representation."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & MASK32


def to_signed(value: int, bits: int = 32) -> int:
    """Interpret an unsigned ``bits``-wide value as a signed Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def from_signed(value: int, bits: int = 32) -> int:
    """Convert a signed Python int to its unsigned ``bits``-wide form."""
    return value & ((1 << bits) - 1)


class ConditionCodes:
    """The N, Z, V, C condition code bits of the PSL.

    Instruction semantics set these exactly as the VAX architecture
    manual specifies for the subset we implement; conditional branch
    microcode then tests them.
    """

    __slots__ = ("n", "z", "v", "c")

    def __init__(self, n: bool = False, z: bool = False, v: bool = False, c: bool = False):
        self.n = n
        self.z = z
        self.v = v
        self.c = c

    def set_nz(self, value: int, bits: int = 32) -> None:
        """Set N and Z from ``value``; clear V (the common MOV-class rule)."""
        self.n = bool(value & (1 << (bits - 1)))
        self.z = truncate(value, bits) == 0
        self.v = False

    def as_tuple(self) -> tuple:
        return (self.n, self.z, self.v, self.c)

    def __repr__(self) -> str:
        return "ConditionCodes(n={}, z={}, v={}, c={})".format(self.n, self.z, self.v, self.c)


def add_with_flags(a: int, b: int, bits: int = 32, carry_in: int = 0):
    """Add two unsigned values, returning (result, ConditionCodes).

    Implements the VAX ADDx condition-code rules: N and Z from the result,
    V on signed overflow, C on unsigned carry out.
    """
    mask = (1 << bits) - 1
    raw = (a & mask) + (b & mask) + carry_in
    result = raw & mask
    cc = ConditionCodes()
    cc.n = bool(result & (1 << (bits - 1)))
    cc.z = result == 0
    sa, sb, sr = to_signed(a, bits), to_signed(b, bits), to_signed(result, bits)
    cc.v = (sa >= 0) == (sb >= 0) and (sr >= 0) != (sa >= 0)
    cc.c = raw > mask
    return result, cc


def sub_with_flags(a: int, b: int, bits: int = 32):
    """Compute ``a - b`` with VAX SUBx condition-code rules (C = borrow)."""
    mask = (1 << bits) - 1
    raw = (a & mask) - (b & mask)
    result = raw & mask
    cc = ConditionCodes()
    cc.n = bool(result & (1 << (bits - 1)))
    cc.z = result == 0
    sa, sb, sr = to_signed(a, bits), to_signed(b, bits), to_signed(result, bits)
    cc.v = (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0)
    cc.c = raw < 0
    return result, cc


def mul_with_flags(a: int, b: int, bits: int = 32):
    """Multiply with VAX MULx condition-code rules (V on overflow, C clear)."""
    mask = (1 << bits) - 1
    product = to_signed(a, bits) * to_signed(b, bits)
    result = product & mask
    cc = ConditionCodes()
    cc.n = bool(result & (1 << (bits - 1)))
    cc.z = result == 0
    cc.v = not (-(1 << (bits - 1)) <= product < (1 << (bits - 1)))
    cc.c = False
    return result, cc


def div_with_flags(dividend: int, divisor: int, bits: int = 32):
    """Divide (DIVx: quotient of dividend/divisor, truncated toward zero).

    Division by zero sets V (the real machine also raises an arithmetic
    exception; the EBOX model turns V here into a microtrap).
    """
    cc = ConditionCodes()
    if truncate(divisor, bits) == 0:
        cc.v = True
        return truncate(dividend, bits), cc
    sa, sb = to_signed(dividend, bits), to_signed(divisor, bits)
    quotient = int(sa / sb)  # trunc toward zero, as the VAX specifies
    result = from_signed(quotient, bits)
    cc.n = bool(result & (1 << (bits - 1)))
    cc.z = result == 0
    cc.v = not (-(1 << (bits - 1)) <= quotient < (1 << (bits - 1)))
    cc.c = False
    return result, cc


# ---------------------------------------------------------------------------
# F_floating
# ---------------------------------------------------------------------------

_F_BIAS = 128
_F_FRACTION_BITS = 23


def f_floating_encode(value: float) -> int:
    """Encode a Python float as a 32-bit VAX F_floating value.

    The returned integer uses the *memory image* layout: the 16-bit halves
    are swapped relative to the natural (sign, exponent, fraction) order,
    exactly as the VAX stores the datum little-endian in memory.
    Returns 0 for inputs that underflow to the VAX "true zero".
    """
    if value == 0.0 or math.isnan(value):
        return 0
    sign = 1 if value < 0 else 0
    mantissa, exponent = math.frexp(abs(value))  # mantissa in [0.5, 1)
    exp = exponent + _F_BIAS
    if exp <= 0:
        return 0  # underflow -> true zero
    if exp > 255:
        exp = 255  # clamp; real hardware would fault on overflow
        mantissa = 1.0 - 2.0 ** -_F_FRACTION_BITS / 2
    fraction = int(round((mantissa - 0.5) * (1 << (_F_FRACTION_BITS + 1))))
    if fraction >= (1 << _F_FRACTION_BITS):
        fraction = (1 << _F_FRACTION_BITS) - 1
    natural = (sign << 31) | (exp << _F_FRACTION_BITS) | fraction
    # Swap the 16-bit halves to produce the VAX memory image.
    return ((natural & 0xFFFF) << 16) | ((natural >> 16) & 0xFFFF)


def f_floating_decode(image: int) -> float:
    """Decode a 32-bit VAX F_floating memory image into a Python float."""
    natural = ((image & 0xFFFF) << 16) | ((image >> 16) & 0xFFFF)
    sign = (natural >> 31) & 1
    exp = (natural >> _F_FRACTION_BITS) & 0xFF
    fraction = natural & ((1 << _F_FRACTION_BITS) - 1)
    if exp == 0:
        if sign:
            raise ValueError("reserved operand (sign=1, exp=0)")
        return 0.0
    mantissa = 0.5 + fraction / (1 << (_F_FRACTION_BITS + 1))
    value = math.ldexp(mantissa, exp - _F_BIAS)
    return -value if sign else value


# ---------------------------------------------------------------------------
# Packed decimal
# ---------------------------------------------------------------------------

_PLUS_NIBBLE = 0xC
_MINUS_NIBBLE = 0xD


def packed_decimal_encode(value: int, digits: int) -> bytes:
    """Encode a signed integer as a VAX packed-decimal string.

    ``digits`` is the decimal digit count (0..31); the encoded string
    occupies ``digits // 2 + 1`` bytes, with the sign in the low nibble of
    the last byte.
    """
    if not 0 <= digits <= 31:
        raise ValueError("packed decimal supports 0..31 digits, got {}".format(digits))
    magnitude = abs(value)
    text = str(magnitude).rjust(digits, "0")
    if len(text) > digits:
        raise OverflowError("{} does not fit in {} decimal digits".format(value, digits))
    sign = _MINUS_NIBBLE if value < 0 else _PLUS_NIBBLE
    nibbles = [int(ch) for ch in text] + [sign]
    if len(nibbles) % 2:
        nibbles.insert(0, 0)
    out = bytearray()
    for hi, lo in zip(nibbles[::2], nibbles[1::2]):
        out.append((hi << 4) | lo)
    return bytes(out)


def packed_decimal_decode(data: bytes, digits: int) -> int:
    """Decode a VAX packed-decimal string into a signed integer."""
    nibbles = []
    for byte in data:
        nibbles.append((byte >> 4) & 0xF)
        nibbles.append(byte & 0xF)
    sign_nibble = nibbles[-1]
    digit_nibbles = nibbles[-1 - digits : -1]
    magnitude = 0
    for nib in digit_nibbles:
        if nib > 9:
            raise ValueError("invalid BCD digit {:#x}".format(nib))
        magnitude = magnitude * 10 + nib
    if sign_nibble in (_MINUS_NIBBLE, 0xB):
        return -magnitude
    return magnitude


def packed_size(digits: int) -> int:
    """Bytes occupied by a packed-decimal string of ``digits`` digits."""
    return digits // 2 + 1

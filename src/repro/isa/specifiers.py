"""VAX operand specifiers and addressing modes.

A VAX instruction is an opcode byte followed by zero to six *operand
specifiers*.  Each specifier's first byte carries a 4-bit addressing mode
in its high nibble and (usually) a register number in its low nibble;
modes 0-3 pack a 6-bit short literal into the byte instead.  Register 15
is the PC, and the register modes acquire PC-relative meanings when
Rn = PC (immediate, absolute, relative, relative deferred).

The paper's Table 4 reports the dynamic distribution of these modes;
:mod:`repro.core.tables` recreates that table from specifier-microcode
execution counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.isa.datatypes import DataType


class AccessType(Enum):
    """How an instruction accesses an operand (VAX architecture terms)."""

    READ = "r"
    WRITE = "w"
    MODIFY = "m"
    ADDRESS = "a"
    VFIELD = "v"  # variable-length bit field base
    BRANCH = "b"  # branch displacement, not a general specifier


class AddressingMode(Enum):
    """VAX addressing modes, keyed by the specifier's high nibble.

    ``SHORT_LITERAL`` covers nibbles 0-3.  The PC-register variants
    (immediate, absolute, relative, relative deferred) are distinguished
    during decode when the register field is 15.
    """

    SHORT_LITERAL = 0x0  # nibbles 0..3
    INDEXED = 0x4
    REGISTER = 0x5
    REGISTER_DEFERRED = 0x6
    AUTODECREMENT = 0x7
    AUTOINCREMENT = 0x8
    AUTOINCREMENT_DEFERRED = 0x9
    BYTE_DISPLACEMENT = 0xA
    BYTE_DISPLACEMENT_DEFERRED = 0xB
    WORD_DISPLACEMENT = 0xC
    WORD_DISPLACEMENT_DEFERRED = 0xD
    LONG_DISPLACEMENT = 0xE
    LONG_DISPLACEMENT_DEFERRED = 0xF
    # PC-register pseudo-modes (mode nibble shown in comments):
    IMMEDIATE = 0x108  # 8F: autoincrement of PC
    ABSOLUTE = 0x109  # 9F: autoincrement deferred of PC
    BYTE_RELATIVE = 0x10A  # AF
    BYTE_RELATIVE_DEFERRED = 0x10B  # BF
    WORD_RELATIVE = 0x10C  # CF
    WORD_RELATIVE_DEFERRED = 0x10D  # DF
    LONG_RELATIVE = 0x10E  # EF
    LONG_RELATIVE_DEFERRED = 0x10F  # FF

    @property
    def is_pc_mode(self) -> bool:
        return self.value >= 0x100

    @property
    def base_nibble(self) -> int:
        """The high nibble this mode encodes to in the specifier byte."""
        return self.value & 0xF

    @property
    def references_memory(self) -> bool:
        """True when operand *data* lives in memory (not register/literal)."""
        return self not in (
            AddressingMode.SHORT_LITERAL,
            AddressingMode.REGISTER,
            AddressingMode.INDEXED,  # memory-ness comes from the base mode
        )

    @property
    def is_deferred(self) -> bool:
        return self in _DEFERRED_MODES

    @property
    def displacement_size(self) -> int:
        """Bytes of displacement that follow the specifier byte (0 if none)."""
        return _DISPLACEMENT_SIZES.get(self, 0)


_DEFERRED_MODES = frozenset(
    {
        AddressingMode.AUTOINCREMENT_DEFERRED,
        AddressingMode.BYTE_DISPLACEMENT_DEFERRED,
        AddressingMode.WORD_DISPLACEMENT_DEFERRED,
        AddressingMode.LONG_DISPLACEMENT_DEFERRED,
        AddressingMode.ABSOLUTE,
        AddressingMode.BYTE_RELATIVE_DEFERRED,
        AddressingMode.WORD_RELATIVE_DEFERRED,
        AddressingMode.LONG_RELATIVE_DEFERRED,
    }
)

_DISPLACEMENT_SIZES = {
    AddressingMode.BYTE_DISPLACEMENT: 1,
    AddressingMode.BYTE_DISPLACEMENT_DEFERRED: 1,
    AddressingMode.WORD_DISPLACEMENT: 2,
    AddressingMode.WORD_DISPLACEMENT_DEFERRED: 2,
    AddressingMode.LONG_DISPLACEMENT: 4,
    AddressingMode.LONG_DISPLACEMENT_DEFERRED: 4,
    AddressingMode.BYTE_RELATIVE: 1,
    AddressingMode.BYTE_RELATIVE_DEFERRED: 1,
    AddressingMode.WORD_RELATIVE: 2,
    AddressingMode.WORD_RELATIVE_DEFERRED: 2,
    AddressingMode.LONG_RELATIVE: 4,
    AddressingMode.LONG_RELATIVE_DEFERRED: 4,
    AddressingMode.ABSOLUTE: 4,
}

#: Mode groups used by the Table 4 row labels.
TABLE4_ROW_FOR_MODE = {
    AddressingMode.REGISTER: "register",
    AddressingMode.SHORT_LITERAL: "short_literal",
    AddressingMode.IMMEDIATE: "immediate",
    AddressingMode.BYTE_DISPLACEMENT: "displacement",
    AddressingMode.WORD_DISPLACEMENT: "displacement",
    AddressingMode.LONG_DISPLACEMENT: "displacement",
    AddressingMode.BYTE_RELATIVE: "displacement",
    AddressingMode.WORD_RELATIVE: "displacement",
    AddressingMode.LONG_RELATIVE: "displacement",
    AddressingMode.REGISTER_DEFERRED: "register_deferred",
    AddressingMode.BYTE_DISPLACEMENT_DEFERRED: "displacement_deferred",
    AddressingMode.WORD_DISPLACEMENT_DEFERRED: "displacement_deferred",
    AddressingMode.LONG_DISPLACEMENT_DEFERRED: "displacement_deferred",
    AddressingMode.BYTE_RELATIVE_DEFERRED: "displacement_deferred",
    AddressingMode.WORD_RELATIVE_DEFERRED: "displacement_deferred",
    AddressingMode.LONG_RELATIVE_DEFERRED: "displacement_deferred",
    AddressingMode.ABSOLUTE: "absolute",
    AddressingMode.AUTOINCREMENT: "auto_inc_dec_def",
    AddressingMode.AUTODECREMENT: "auto_inc_dec_def",
    AddressingMode.AUTOINCREMENT_DEFERRED: "auto_inc_dec_def",
}


@dataclass(frozen=True)
class OperandSpec:
    """The static signature of one operand position of an opcode.

    For example ``ADDL3 add.rl, add.rl, sum.wl`` has three OperandSpecs:
    two ``(READ, LONG)`` and one ``(WRITE, LONG)``.
    """

    access: AccessType
    dtype: DataType

    def __str__(self) -> str:
        return "{}{}".format(self.access.value, self.dtype.value)


def parse_operand_signature(signature: str):
    """Parse a compact signature like ``"rl,rl,wl"`` into OperandSpecs.

    Access letters: r/w/m/a/v/b; type letters: b/w/l/q/f/p/v (see
    :class:`DataType`).  Used by the opcode table for brevity.
    """
    if not signature:
        return ()
    specs = []
    for token in signature.split(","):
        token = token.strip()
        if len(token) != 2:
            raise ValueError("bad operand token {!r}".format(token))
        specs.append(OperandSpec(AccessType(token[0]), DataType(token[1])))
    return tuple(specs)


@dataclass(frozen=True)
class DecodedSpecifier:
    """A dynamically decoded operand specifier (output of the I-Decode stage).

    ``mode`` is the resolved addressing mode (PC pseudo-modes already
    distinguished), ``register`` the base register (None for literal /
    PC pseudo-modes), ``extension`` the literal value or displacement,
    ``index_register`` the Rx of an index prefix (None when not indexed),
    and ``length`` the total bytes the specifier occupied in the I-stream.
    """

    mode: AddressingMode
    register: Optional[int]
    extension: int
    length: int
    index_register: Optional[int] = None

    @property
    def is_indexed(self) -> bool:
        return self.index_register is not None

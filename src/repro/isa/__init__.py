"""VAX architecture subset: data types, opcodes, operand specifiers, registers.

This package defines the *architectural* layer of the reproduction — the
things that are true of any VAX implementation (Section 3 of the paper).
The implementation-specific machinery (pipeline, microcode, caches) lives
in :mod:`repro.cpu`, :mod:`repro.ucode` and :mod:`repro.memory`.
"""

from repro.isa.datatypes import (
    DataType,
    sign_extend,
    truncate,
    to_signed,
    f_floating_encode,
    f_floating_decode,
    packed_decimal_encode,
    packed_decimal_decode,
)
from repro.isa.opcodes import Opcode, OpcodeGroup, OPCODES, opcode_by_mnemonic
from repro.isa.specifiers import AddressingMode, AccessType, OperandSpec
from repro.isa.registers import RegisterFile, Reg
from repro.isa.psl import ProcessorStatus

__all__ = [
    "DataType",
    "sign_extend",
    "truncate",
    "to_signed",
    "f_floating_encode",
    "f_floating_decode",
    "packed_decimal_encode",
    "packed_decimal_decode",
    "Opcode",
    "OpcodeGroup",
    "OPCODES",
    "opcode_by_mnemonic",
    "AddressingMode",
    "AccessType",
    "OperandSpec",
    "RegisterFile",
    "Reg",
    "ProcessorStatus",
]

"""The VAX Processor Status Longword (PSL).

The low word (PSW) carries the condition codes and trap-enable bits; the
high word carries processor state: current/previous access mode,
interrupt priority level (IPL), and the interrupt-stack flag.  The
miniature VMS layer in :mod:`repro.vms` manipulates the IPL and mode
fields through CHMK/REI and MTPR exactly as real VMS does.
"""

from __future__ import annotations

from enum import IntEnum

from repro.isa.datatypes import ConditionCodes


class AccessMode(IntEnum):
    """The four VAX access modes, most to least privileged."""

    KERNEL = 0
    EXECUTIVE = 1
    SUPERVISOR = 2
    USER = 3


class ProcessorStatus:
    """Architectural processor status: condition codes, IPL, access modes."""

    __slots__ = ("cc", "ipl", "current_mode", "previous_mode", "interrupt_stack", "trace")

    def __init__(self):
        self.cc = ConditionCodes()
        self.ipl = 0
        self.current_mode = AccessMode.KERNEL
        self.previous_mode = AccessMode.KERNEL
        self.interrupt_stack = False
        self.trace = False

    def pack(self) -> int:
        """Pack into the architectural 32-bit PSL image."""
        word = (
            (1 if self.cc.c else 0)
            | (1 if self.cc.v else 0) << 1
            | (1 if self.cc.z else 0) << 2
            | (1 if self.cc.n else 0) << 3
            | (1 if self.trace else 0) << 4
        )
        high = (
            (self.ipl & 0x1F) << 16
            | (int(self.previous_mode) & 3) << 22
            | (int(self.current_mode) & 3) << 24
            | (1 if self.interrupt_stack else 0) << 26
        )
        return word | high

    def unpack(self, image: int) -> None:
        """Restore state from a packed PSL image (used by REI/LDPCTX)."""
        self.cc.c = bool(image & 1)
        self.cc.v = bool(image >> 1 & 1)
        self.cc.z = bool(image >> 2 & 1)
        self.cc.n = bool(image >> 3 & 1)
        self.trace = bool(image >> 4 & 1)
        self.ipl = image >> 16 & 0x1F
        self.previous_mode = AccessMode(image >> 22 & 3)
        self.current_mode = AccessMode(image >> 24 & 3)
        self.interrupt_stack = bool(image >> 26 & 1)

    @property
    def is_kernel(self) -> bool:
        return self.current_mode is AccessMode.KERNEL

    def __repr__(self) -> str:
        return "ProcessorStatus(ipl={}, mode={}, cc={})".format(
            self.ipl, self.current_mode.name, self.cc
        )

"""The VAX general register file.

Sixteen 32-bit registers; R12-R15 have architectural roles (AP, FP, SP,
PC).  The PC is special: the I-Fetch stage owns the fetch PC while the
register file holds the architectural PC used by PC-relative specifier
arithmetic — the simulator keeps them coherent at instruction boundaries.
"""

from __future__ import annotations

from enum import IntEnum

from repro.isa.datatypes import MASK32


class Reg(IntEnum):
    """Register numbers, including the four special ones."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    AP = 12
    FP = 13
    SP = 14
    PC = 15


class RegisterFile:
    """Sixteen 32-bit general registers with masking on every write."""

    __slots__ = ("_regs",)

    def __init__(self):
        self._regs = [0] * 16

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        self._regs[index] = value & MASK32

    @property
    def sp(self) -> int:
        return self._regs[Reg.SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self._regs[Reg.SP] = value & MASK32

    @property
    def fp(self) -> int:
        return self._regs[Reg.FP]

    @fp.setter
    def fp(self, value: int) -> None:
        self._regs[Reg.FP] = value & MASK32

    @property
    def ap(self) -> int:
        return self._regs[Reg.AP]

    @ap.setter
    def ap(self, value: int) -> None:
        self._regs[Reg.AP] = value & MASK32

    @property
    def pc(self) -> int:
        return self._regs[Reg.PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self._regs[Reg.PC] = value & MASK32

    def snapshot(self):
        """Copy of all sixteen registers (used by SVPCTX and tests)."""
        return list(self._regs)

    def restore(self, values) -> None:
        """Restore a snapshot taken by :meth:`snapshot` (used by LDPCTX)."""
        if len(values) != 16:
            raise ValueError("register snapshot must have 16 entries")
        self._regs = [v & MASK32 for v in values]

    def __repr__(self) -> str:
        cells = ", ".join(
            "{}={:#x}".format(Reg(i).name, v) for i, v in enumerate(self._regs) if v
        )
        return "RegisterFile({})".format(cells or "all zero")

"""The VAX opcode subset, with the paper's instruction-group taxonomy.

Table 1 of the paper partitions opcodes into seven groups; Table 2 further
classifies the PC-changing instructions.  Both classifications are encoded
here as static opcode attributes so the analysis layer can aggregate
micro-PC histogram counts into the published rows.

Opcode byte values are the real VAX ones (from the VAX-11 Architecture
Reference Manual); the subset covers every group the paper reports,
including the rare-but-expensive CHARACTER and DECIMAL instructions whose
outsized per-execution cost is one of the paper's findings (Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.isa.specifiers import OperandSpec, parse_operand_signature


class OpcodeGroup(Enum):
    """The seven instruction groups of Table 1."""

    SIMPLE = "simple"
    FIELD = "field"
    FLOAT = "float"
    CALLRET = "callret"
    SYSTEM = "system"
    CHARACTER = "character"
    DECIMAL = "decimal"


class BranchClass(Enum):
    """Rows of Table 2 (PC-changing instruction classes)."""

    SIMPLE_CONDITIONAL = "simple_cond"  # Bcc, plus BRB/BRW (microcode-shared)
    LOOP = "loop"  # AOBx, SOBx, ACBx
    LOW_BIT_TEST = "lowbit"  # BLBS, BLBC
    SUBROUTINE = "subroutine"  # BSBB, BSBW, JSB, RSB
    UNCONDITIONAL = "unconditional"  # JMP
    CASE = "case"  # CASEB/W/L
    BIT = "bit"  # BBS..BBCCI
    PROCEDURE = "procedure"  # CALLS, CALLG, RET
    SYSTEM = "system"  # CHMx, REI


@dataclass(frozen=True)
class Opcode:
    """Static description of one VAX opcode."""

    mnemonic: str
    code: int
    operands: Tuple[OperandSpec, ...]
    group: OpcodeGroup
    branch_class: Optional[BranchClass] = None

    @property
    def is_pc_changing(self) -> bool:
        return self.branch_class is not None

    @property
    def uses_branch_displacement(self) -> bool:
        """True when the instruction's target comes from a branch displacement.

        JMP/JSB/CALLx take their targets from ordinary operand specifiers,
        and RSB/RET/REI/CHMx determine them implicitly — the paper's
        Table 3 counts displacements separately from specifiers.
        """
        from repro.isa.specifiers import AccessType

        return any(spec.access is AccessType.BRANCH for spec in self.operands)

    def __str__(self) -> str:
        return self.mnemonic


def _op(mnemonic, code, signature, group, branch_class=None):
    return Opcode(mnemonic, code, parse_operand_signature(signature), group, branch_class)


_S = OpcodeGroup.SIMPLE
_FI = OpcodeGroup.FIELD
_FL = OpcodeGroup.FLOAT
_C = OpcodeGroup.CALLRET
_SY = OpcodeGroup.SYSTEM
_CH = OpcodeGroup.CHARACTER
_D = OpcodeGroup.DECIMAL

_OPCODE_LIST = [
    # --- SIMPLE: moves -----------------------------------------------------
    _op("MOVB", 0x90, "rb,wb", _S),
    _op("MOVW", 0xB0, "rw,ww", _S),
    _op("MOVL", 0xD0, "rl,wl", _S),
    _op("MOVQ", 0x7D, "rq,wq", _S),
    _op("MOVZBW", 0x9B, "rb,ww", _S),
    _op("MOVZBL", 0x9A, "rb,wl", _S),
    _op("MOVZWL", 0x3C, "rw,wl", _S),
    _op("MOVAB", 0x9E, "ab,wl", _S),
    _op("MOVAW", 0x3E, "aw,wl", _S),
    _op("MOVAL", 0xDE, "al,wl", _S),
    _op("MOVAQ", 0x7E, "aq,wl", _S),
    _op("PUSHL", 0xDD, "rl", _S),
    _op("PUSHAB", 0x9F, "ab", _S),
    _op("PUSHAW", 0x3F, "aw", _S),
    _op("PUSHAL", 0xDF, "al", _S),
    _op("CLRB", 0x94, "wb", _S),
    _op("CLRW", 0xB4, "ww", _S),
    _op("CLRL", 0xD4, "wl", _S),
    _op("CLRQ", 0x7C, "wq", _S),
    _op("MCOMB", 0x92, "rb,wb", _S),
    _op("MCOMW", 0xB2, "rw,ww", _S),
    _op("MCOML", 0xD2, "rl,wl", _S),
    _op("MNEGB", 0x8E, "rb,wb", _S),
    _op("MNEGW", 0xAE, "rw,ww", _S),
    _op("MNEGL", 0xCE, "rl,wl", _S),
    # --- SIMPLE: arithmetic / logic / test ---------------------------------
    _op("ADDB2", 0x80, "rb,mb", _S),
    _op("ADDB3", 0x81, "rb,rb,wb", _S),
    _op("ADDW2", 0xA0, "rw,mw", _S),
    _op("ADDW3", 0xA1, "rw,rw,ww", _S),
    _op("ADDL2", 0xC0, "rl,ml", _S),
    _op("ADDL3", 0xC1, "rl,rl,wl", _S),
    _op("SUBB2", 0x82, "rb,mb", _S),
    _op("SUBB3", 0x83, "rb,rb,wb", _S),
    _op("SUBW2", 0xA2, "rw,mw", _S),
    _op("SUBW3", 0xA3, "rw,rw,ww", _S),
    _op("SUBL2", 0xC2, "rl,ml", _S),
    _op("SUBL3", 0xC3, "rl,rl,wl", _S),
    _op("INCB", 0x96, "mb", _S),
    _op("INCW", 0xB6, "mw", _S),
    _op("INCL", 0xD6, "ml", _S),
    _op("DECB", 0x97, "mb", _S),
    _op("DECW", 0xB7, "mw", _S),
    _op("DECL", 0xD7, "ml", _S),
    _op("ADWC", 0xD8, "rl,ml", _S),
    _op("SBWC", 0xD9, "rl,ml", _S),
    _op("CMPB", 0x91, "rb,rb", _S),
    _op("CMPW", 0xB1, "rw,rw", _S),
    _op("CMPL", 0xD1, "rl,rl", _S),
    _op("TSTB", 0x95, "rb", _S),
    _op("TSTW", 0xB5, "rw", _S),
    _op("TSTL", 0xD5, "rl", _S),
    _op("BITB", 0x93, "rb,rb", _S),
    _op("BITW", 0xB3, "rw,rw", _S),
    _op("BITL", 0xD3, "rl,rl", _S),
    _op("BICB2", 0x8A, "rb,mb", _S),
    _op("BICB3", 0x8B, "rb,rb,wb", _S),
    _op("BICW2", 0xAA, "rw,mw", _S),
    _op("BICW3", 0xAB, "rw,rw,ww", _S),
    _op("BICL2", 0xCA, "rl,ml", _S),
    _op("BICL3", 0xCB, "rl,rl,wl", _S),
    _op("BISB2", 0x88, "rb,mb", _S),
    _op("BISB3", 0x89, "rb,rb,wb", _S),
    _op("BISW2", 0xA8, "rw,mw", _S),
    _op("BISW3", 0xA9, "rw,rw,ww", _S),
    _op("BISL2", 0xC8, "rl,ml", _S),
    _op("BISL3", 0xC9, "rl,rl,wl", _S),
    _op("XORB2", 0x8C, "rb,mb", _S),
    _op("XORB3", 0x8D, "rb,rb,wb", _S),
    _op("XORW2", 0xAC, "rw,mw", _S),
    _op("XORW3", 0xAD, "rw,rw,ww", _S),
    _op("XORL2", 0xCC, "rl,ml", _S),
    _op("XORL3", 0xCD, "rl,rl,wl", _S),
    _op("ASHL", 0x78, "rb,rl,wl", _S),
    _op("ROTL", 0x9C, "rb,rl,wl", _S),
    _op("CVTBW", 0x99, "rb,ww", _S),
    _op("CVTBL", 0x98, "rb,wl", _S),
    _op("CVTWL", 0x32, "rw,wl", _S),
    _op("CVTWB", 0x33, "rw,wb", _S),
    _op("CVTLB", 0xF6, "rl,wb", _S),
    _op("CVTLW", 0xF7, "rl,ww", _S),
    _op("NOP", 0x01, "", _S),
    # --- SIMPLE: simple conditional branches (+ BRB/BRW shared microcode) --
    _op("BNEQ", 0x12, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BEQL", 0x13, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BGTR", 0x14, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BLEQ", 0x15, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BGEQ", 0x18, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BLSS", 0x19, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BGTRU", 0x1A, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BLEQU", 0x1B, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BVC", 0x1C, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BVS", 0x1D, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BCC", 0x1E, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BCS", 0x1F, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BRB", 0x11, "bb", _S, BranchClass.SIMPLE_CONDITIONAL),
    _op("BRW", 0x31, "bw", _S, BranchClass.SIMPLE_CONDITIONAL),
    # --- SIMPLE: loop branches ---------------------------------------------
    _op("AOBLSS", 0xF2, "rl,ml,bb", _S, BranchClass.LOOP),
    _op("AOBLEQ", 0xF3, "rl,ml,bb", _S, BranchClass.LOOP),
    _op("SOBGEQ", 0xF4, "ml,bb", _S, BranchClass.LOOP),
    _op("SOBGTR", 0xF5, "ml,bb", _S, BranchClass.LOOP),
    _op("ACBB", 0x9D, "rb,rb,mb,bw", _S, BranchClass.LOOP),
    _op("ACBF", 0x4F, "rf,rf,mf,bw", _FL, BranchClass.LOOP),
    _op("ACBW", 0x3D, "rw,rw,mw,bw", _S, BranchClass.LOOP),
    _op("ACBL", 0xF1, "rl,rl,ml,bw", _S, BranchClass.LOOP),
    # --- SIMPLE: low-bit tests ----------------------------------------------
    _op("BLBS", 0xE8, "rl,bb", _S, BranchClass.LOW_BIT_TEST),
    _op("BLBC", 0xE9, "rl,bb", _S, BranchClass.LOW_BIT_TEST),
    # --- SIMPLE: subroutine call/return ------------------------------------
    _op("BSBB", 0x10, "bb", _S, BranchClass.SUBROUTINE),
    _op("BSBW", 0x30, "bw", _S, BranchClass.SUBROUTINE),
    _op("JSB", 0x16, "ab", _S, BranchClass.SUBROUTINE),
    _op("RSB", 0x05, "", _S, BranchClass.SUBROUTINE),
    # --- SIMPLE: unconditional / case ---------------------------------------
    _op("JMP", 0x17, "ab", _S, BranchClass.UNCONDITIONAL),
    _op("CASEB", 0x8F, "rb,rb,rb", _S, BranchClass.CASE),
    _op("CASEW", 0xAF, "rw,rw,rw", _S, BranchClass.CASE),
    _op("CASEL", 0xCF, "rl,rl,rl", _S, BranchClass.CASE),
    # --- FIELD: bit-field operations + bit branches -------------------------
    _op("EXTV", 0xEE, "rl,rb,vb,wl", _FI),
    _op("EXTZV", 0xEF, "rl,rb,vb,wl", _FI),
    _op("INSV", 0xF0, "rl,rl,rb,vb", _FI),
    _op("CMPV", 0xEC, "rl,rb,vb,rl", _FI),
    _op("CMPZV", 0xED, "rl,rb,vb,rl", _FI),
    _op("FFS", 0xEA, "rl,rb,vb,wl", _FI),
    _op("FFC", 0xEB, "rl,rb,vb,wl", _FI),
    _op("BBS", 0xE0, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBC", 0xE1, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBSS", 0xE2, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBCS", 0xE3, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBSC", 0xE4, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBCC", 0xE5, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBSSI", 0xE6, "rl,vb,bb", _FI, BranchClass.BIT),
    _op("BBCCI", 0xE7, "rl,vb,bb", _FI, BranchClass.BIT),
    # --- FLOAT: F_floating + integer multiply/divide ------------------------
    _op("ADDF2", 0x40, "rf,mf", _FL),
    _op("ADDF3", 0x41, "rf,rf,wf", _FL),
    _op("SUBF2", 0x42, "rf,mf", _FL),
    _op("SUBF3", 0x43, "rf,rf,wf", _FL),
    _op("MULF2", 0x44, "rf,mf", _FL),
    _op("MULF3", 0x45, "rf,rf,wf", _FL),
    _op("DIVF2", 0x46, "rf,mf", _FL),
    _op("DIVF3", 0x47, "rf,rf,wf", _FL),
    _op("MOVF", 0x50, "rf,wf", _FL),
    _op("CMPF", 0x51, "rf,rf", _FL),
    _op("MNEGF", 0x52, "rf,wf", _FL),
    _op("TSTF", 0x53, "rf", _FL),
    _op("CVTBF", 0x4C, "rb,wf", _FL),
    _op("CVTWF", 0x4D, "rw,wf", _FL),
    _op("CVTLF", 0x4E, "rl,wf", _FL),
    _op("CVTFB", 0x48, "rf,wb", _FL),
    _op("CVTFW", 0x49, "rf,ww", _FL),
    _op("CVTFL", 0x4A, "rf,wl", _FL),
    _op("CVTRFL", 0x4B, "rf,wl", _FL),
    _op("MULB2", 0x84, "rb,mb", _FL),
    _op("MULB3", 0x85, "rb,rb,wb", _FL),
    _op("MULW2", 0xA4, "rw,mw", _FL),
    _op("MULW3", 0xA5, "rw,rw,ww", _FL),
    _op("MULL2", 0xC4, "rl,ml", _FL),
    _op("MULL3", 0xC5, "rl,rl,wl", _FL),
    _op("DIVB2", 0x86, "rb,mb", _FL),
    _op("DIVB3", 0x87, "rb,rb,wb", _FL),
    _op("DIVW2", 0xA6, "rw,mw", _FL),
    _op("DIVW3", 0xA7, "rw,rw,ww", _FL),
    _op("DIVL2", 0xC6, "rl,ml", _FL),
    _op("DIVL3", 0xC7, "rl,rl,wl", _FL),
    _op("POLYF", 0x55, "rf,rw,ab", _FL),
    _op("EMODF", 0x54, "rf,rb,rf,wl,wf", _FL),
    _op("EMUL", 0x7A, "rl,rl,rl,wq", _FL),
    _op("EDIV", 0x7B, "rl,rq,wl,wl", _FL),
    # --- CALL/RET: procedure linkage + multi-register push/pop --------------
    _op("CALLG", 0xFA, "ab,ab", _C, BranchClass.PROCEDURE),
    _op("CALLS", 0xFB, "rl,ab", _C, BranchClass.PROCEDURE),
    _op("RET", 0x04, "", _C, BranchClass.PROCEDURE),
    _op("PUSHR", 0xBB, "rw", _C),
    _op("POPR", 0xBA, "rw", _C),
    # --- SYSTEM -------------------------------------------------------------
    _op("HALT", 0x00, "", _SY),
    _op("CHMK", 0xBC, "rw", _SY, BranchClass.SYSTEM),
    _op("CHME", 0xBD, "rw", _SY, BranchClass.SYSTEM),
    _op("REI", 0x02, "", _SY, BranchClass.SYSTEM),
    _op("SVPCTX", 0x07, "", _SY),
    _op("LDPCTX", 0x06, "", _SY),
    _op("PROBER", 0x0C, "rb,rw,ab", _SY),
    _op("PROBEW", 0x0D, "rb,rw,ab", _SY),
    _op("MTPR", 0xDA, "rl,rl", _SY),
    _op("MFPR", 0xDB, "rl,wl", _SY),
    _op("INSQUE", 0x0E, "ab,ab", _SY),
    _op("REMQUE", 0x0F, "ab,wl", _SY),
    _op("BISPSW", 0xB8, "rw", _SY),
    _op("BICPSW", 0xB9, "rw", _SY),
    # --- CHARACTER ----------------------------------------------------------
    _op("MOVC3", 0x28, "rw,ab,ab", _CH),
    _op("MOVC5", 0x2C, "rw,ab,rb,rw,ab", _CH),
    _op("CMPC3", 0x29, "rw,ab,ab", _CH),
    _op("CMPC5", 0x2D, "rw,ab,rb,rw,ab", _CH),
    _op("LOCC", 0x3A, "rb,rw,ab", _CH),
    _op("SKPC", 0x3B, "rb,rw,ab", _CH),
    _op("SCANC", 0x2A, "rw,ab,ab,rb", _CH),
    _op("SPANC", 0x2B, "rw,ab,ab,rb", _CH),
    _op("MOVTC", 0x2E, "rw,ab,rb,ab,rw,ab", _CH),
    _op("MATCHC", 0x39, "rw,ab,rw,ab", _CH),
    _op("CRC", 0x0B, "ab,rl,rw,ab", _CH),
    # --- DECIMAL ------------------------------------------------------------
    _op("ADDP4", 0x20, "rw,ab,rw,ab", _D),
    _op("SUBP4", 0x22, "rw,ab,rw,ab", _D),
    _op("MOVP", 0x34, "rw,ab,ab", _D),
    _op("CMPP3", 0x35, "rw,ab,ab", _D),
    _op("CVTLP", 0xF9, "rl,rw,ab", _D),
    _op("CVTPL", 0x36, "rw,ab,wl", _D),
    _op("ASHP", 0xF8, "rb,rw,ab,rb,rw,ab", _D),
]

#: Opcode table keyed by opcode byte.
OPCODES: Dict[int, Opcode] = {}
#: Opcode table keyed by mnemonic.
_BY_MNEMONIC: Dict[str, Opcode] = {}

for _entry in _OPCODE_LIST:
    if _entry.code in OPCODES:
        raise ValueError(
            "duplicate opcode byte {:#04x}: {} vs {}".format(
                _entry.code, OPCODES[_entry.code].mnemonic, _entry.mnemonic
            )
        )
    if _entry.mnemonic in _BY_MNEMONIC:
        raise ValueError("duplicate mnemonic {}".format(_entry.mnemonic))
    OPCODES[_entry.code] = _entry
    _BY_MNEMONIC[_entry.mnemonic] = _entry


def opcode_by_mnemonic(mnemonic: str) -> Opcode:
    """Look up an opcode by mnemonic (case-insensitive)."""
    try:
        return _BY_MNEMONIC[mnemonic.upper()]
    except KeyError:
        raise KeyError("unknown VAX mnemonic {!r}".format(mnemonic)) from None


def opcodes_in_group(group: OpcodeGroup):
    """All opcodes in one of Table 1's groups, in opcode order."""
    return [op for code, op in sorted(OPCODES.items()) if op.group is group]


def opcodes_in_branch_class(branch_class: BranchClass):
    """All opcodes in one of Table 2's PC-changing classes."""
    return [op for code, op in sorted(OPCODES.items()) if op.branch_class is branch_class]

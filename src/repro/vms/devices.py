"""Device interrupt sources, in EBOX cycle time.

The measured machines took hardware interrupts from the interval clock,
terminal multiplexers (heavily, with 15-40 users typing) and disks.
Each :class:`DeviceTimer` fires on a cycle-count schedule with a
deterministic jitter; firing posts an interrupt request that the EBOX
delivers between instructions, exactly like the real request lines.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class DeviceTimer:
    """A recurring interrupt source.

    ``callback(timer)`` runs at each firing and is responsible for
    posting the interrupt (the kernel wires this).  ``jitter`` is the
    fractional spread applied to each period.
    """

    name: str
    ipl: int
    period_cycles: int
    callback: Callable[["DeviceTimer"], None]
    jitter: float = 0.3
    next_fire: int = 0
    firings: int = 0
    _random: random.Random = field(default_factory=lambda: random.Random(0))

    def schedule_first(self, now: int) -> None:
        self.next_fire = now + self._spread()

    def _spread(self) -> int:
        if self.jitter <= 0:
            return self.period_cycles
        low = int(self.period_cycles * (1.0 - self.jitter))
        high = int(self.period_cycles * (1.0 + self.jitter))
        return max(1, self._random.randint(low, high))

    def poll(self, now: int) -> None:
        while now >= self.next_fire:
            self.firings += 1
            self.callback(self)
            self.next_fire += self._spread()


class DeviceBoard:
    """All device timers; polled between instructions by the kernel loop."""

    def __init__(self, seed: int = 0):
        self.timers: List[DeviceTimer] = []
        self._seed = seed
        #: earliest next_fire over all timers; the kernel polls once per
        #: instruction and device periods are thousands of cycles, so
        #: almost every poll returns on this one comparison.
        self._next_fire = 0

    def add(self, name: str, ipl: int, period_cycles: int, callback, jitter: float = 0.3) -> DeviceTimer:
        timer = DeviceTimer(
            name=name,
            ipl=ipl,
            period_cycles=period_cycles,
            callback=callback,
            jitter=jitter,
            # crc32, not hash(): str hashing is randomized per interpreter
            # process (PYTHONHASHSEED), and per-device jitter streams must
            # be identical whether a run executes in-process or in a
            # parallel experiment worker.
            _random=random.Random((self._seed ^ zlib.crc32(name.encode())) & 0xFFFFFFFF),
        )
        self.timers.append(timer)
        self._next_fire = min(self._next_fire, timer.next_fire)
        return timer

    def start(self, now: int) -> None:
        for timer in self.timers:
            timer.schedule_first(now)
        self._refresh_next_fire()

    def _refresh_next_fire(self) -> None:
        self._next_fire = min(
            (timer.next_fire for timer in self.timers), default=1 << 62
        )

    def poll(self, now: int) -> None:
        if now < self._next_fire:
            return
        for timer in self.timers:
            timer.poll(now)
        self._refresh_next_fire()

    def state_summary(self) -> dict:
        """Per-timer schedule state, for snapshot metadata and debugging."""
        return {
            timer.name: {
                "ipl": timer.ipl,
                "period_cycles": timer.period_cycles,
                "next_fire": timer.next_fire,
                "firings": timer.firings,
            }
            for timer in self.timers
        }

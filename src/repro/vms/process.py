"""Processes: PCBs, private P0 address spaces, scheduling state."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.isa.psl import AccessMode
from repro.memory.pagetable import PAGE_SHIFT, PAGE_SIZE, PageTable, vpn_of

#: PCB size in bytes (20 longwords: R0-R13, four SPs, PC, PSL).
PCB_BYTES = 80


class ProcessState(Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"


@dataclass
class Process:
    """One VMS process: PCB location, page table, scheduling state."""

    pid: int
    name: str
    pcb_pa: int
    page_table: PageTable
    state: ProcessState = ProcessState.RUNNABLE
    is_null: bool = False
    quantum_ticks_used: int = 0
    #: set while blocked: the terminal event that will wake this process
    waiting_for: Optional[str] = None

    def __repr__(self) -> str:
        return "Process(pid={}, name={!r}, state={})".format(
            self.pid, self.name, self.state.value
        )


def initialize_pcb(
    machine,
    pcb_pa: int,
    entry_pc: int,
    kernel_sp: int,
    user_sp: int,
    user_mode: bool = True,
) -> None:
    """Fill a fresh PCB so the first LDPCTX+REI starts the process.

    Layout matches the SVPCTX/LDPCTX microcode: R0-R13, then KSP/ESP/SSP/
    USP, then PC and PSL.
    """
    for index in range(14):
        machine.physical.write(pcb_pa + 4 * index, 4, 0)
    sps = [kernel_sp, kernel_sp, kernel_sp, user_sp]
    for mode, sp in enumerate(sps):
        machine.physical.write(pcb_pa + 4 * (14 + mode), 4, sp)
    machine.physical.write(pcb_pa + 4 * 18, 4, entry_pc)
    mode_bits = int(AccessMode.USER) if user_mode else int(AccessMode.KERNEL)
    psl = (mode_bits & 3) << 24
    machine.physical.write(pcb_pa + 4 * 19, 4, psl)

"""The miniature VMS kernel.

All kernel activity is *real VAX code* assembled into system space and
executed by the simulated CPU, so operating-system work shows up in the
micro-PC histogram exactly as it did on the measured machines:

* interrupt service routines for the clock, terminals and disk (each
  saves registers with PUSHR/POPR, touches kernel data, and REIs);
* a software-interrupt rescheduler built on SVPCTX / LDPCTX;
* CHMK system services (a terminal-read QIO that blocks the caller, a
  get-time service, and a probe-and-copy service);
* the Null process ("branch to self, awaiting an interrupt"), excluded
  from measurement exactly as the paper excluded VMS's.

Python code handles only what the real VMS kept in kernel *data*
structures: the run queue, process states, and device timing.  Those
decisions surface to the VAX code through implementation-defined
processor registers (MTPR hooks), so every architecturally visible
action — every push, queue insertion, context load — is executed and
therefore measured.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.asm import Assembler
from repro.cpu.events import EventCounters
from repro.cpu.machine import InterruptRequest, VAX780
from repro.isa.psl import AccessMode
from repro.memory.pagetable import PAGE_SHIFT, PAGE_SIZE, PageTable, vpn_of
from repro.vms.devices import DeviceBoard
from repro.vms.process import PCB_BYTES, Process, ProcessState, initialize_pcb

SYSTEM_BASE = 0x8000_0000

#: Implementation-defined processor registers the kernel code uses to
#: reach the Python-held kernel data structures.
PR_SCHED_PICK = 100  # MTPR #0, #100: select next process into PCBB
PR_WAKE = 101  # MTPR pid, #101: make a process runnable
PR_BLOCK = 102  # MTPR #0, #102: block the current process
PR_WHOAMI = 103  # MTPR #0, #103: write the current pid into the tt_pid cell
PR_SHOULD_SWITCH = 104  # MTPR #0, #104: set switch_flag if a pick would switch

PR_SIRR = 20

#: Interrupt priority levels (VMS conventions).
IPL_CLOCK = 24
IPL_DISK = 21
IPL_TERMINAL = 20
IPL_RESCHED = 3

#: System service codes.
SVC_QIO_READ = 1
SVC_GETTIM = 2
SVC_PROBE_COPY = 3


class VMSKernel:
    """Builds the kernel, owns the run queue, drives devices."""

    KERNEL_CODE_VA = SYSTEM_BASE + 0x0000
    KERNEL_DATA_VA = SYSTEM_BASE + 0x4000
    KERNEL_STACKS_VA = SYSTEM_BASE + 0x8000
    KERNEL_STACK_BYTES = 2048

    #: physical bump allocator for PCBs and per-process page tables
    OS_STRUCTS_PA = 0x80000

    def __init__(
        self,
        machine: VAX780,
        clock_period_cycles: int = 26_000,
        terminal_period_cycles: int = 9_000,
        disk_period_cycles: int = 55_000,
        quantum_ticks: int = 2,
        seed: int = 1984,
    ):
        self.machine = machine
        self.ebox = machine.ebox
        self.devices = DeviceBoard(seed=seed)
        self.quantum_ticks = quantum_ticks
        self._random = random.Random(seed)
        self.processes: List[Process] = []
        self._by_pcb: Dict[int, Process] = {}
        self.current: Optional[Process] = None
        self.null_process: Optional[Process] = None
        self._rr_cursor = 0
        self._structs_cursor = self.OS_STRUCTS_PA
        self._next_pid = 0
        self._measuring = False
        self.null_events = EventCounters()
        self._main_events = machine.events
        self._clock_ticks_since_switch = 0
        self._quantum_expired = False
        self.symbols: Dict[str, int] = {}
        #: optional override for where terminal characters come from
        #: (the RTE installs itself here); callable(kernel) -> (pid, char)
        self.terminal_source = None

        self._build_kernel_image()
        self._install_hooks()
        self.null_process = self._create_null_process()
        self._wire_devices(clock_period_cycles, terminal_period_cycles, disk_period_cycles)

    # ------------------------------------------------------------------
    # kernel image
    # ------------------------------------------------------------------

    def _build_kernel_image(self) -> None:
        machine = self.machine
        asm = Assembler(origin=self.KERNEL_CODE_VA)
        data = self.KERNEL_DATA_VA

        # Kernel data cells (virtual addresses).
        self.tick_count_va = data + 0x00
        self.tt_pid_va = data + 0x04
        self.tt_char_va = data + 0x08
        self.tt_ring_idx_va = data + 0x0C
        self.time_cell_va = data + 0x10
        self.disk_count_va = data + 0x14
        self.switch_flag_va = data + 0x18
        self.ioq_header_va = data + 0x20  # flink, blink
        self.diskq_header_va = data + 0x28
        self.tt_ring_va = data + 0x100  # 256-byte ring buffer
        self.io_packets_va = data + 0x200  # 16 bytes per pid, 64 pids

        # --- boot: pick a process and start it -------------------------
        asm.label("boot")
        asm.instr("MTPR", "#0", "#{}".format(PR_SCHED_PICK))
        asm.instr("LDPCTX")
        asm.instr("REI")

        # --- clock ISRs -------------------------------------------------
        asm.label("clock_plain")
        asm.instr("PUSHR", "#0x03")  # R0, R1
        asm.instr("MOVAL", "@#{:#x}".format(self.tick_count_va), "R0")
        asm.instr("INCL", "(R0)")
        asm.instr("POPR", "#0x03")
        asm.instr("REI")

        asm.label("clock_resched")
        asm.instr("PUSHR", "#0x03")
        asm.instr("MOVAL", "@#{:#x}".format(self.tick_count_va), "R0")
        asm.instr("INCL", "(R0)")
        asm.instr("MTPR", "#{}".format(IPL_RESCHED), "#{}".format(PR_SIRR))
        asm.instr("POPR", "#0x03")
        asm.instr("REI")

        # --- terminal ISR: store the char, complete the IO, wake --------
        asm.label("terminal_isr")
        asm.instr("PUSHR", "#0x7F")  # R0-R6
        asm.instr("MOVL", "@#{:#x}".format(self.tt_pid_va), "R1")
        asm.instr("MOVZBL", "@#{:#x}".format(self.tt_char_va), "R2")
        asm.instr("MOVAL", "@#{:#x}".format(self.tt_ring_va), "R3")
        asm.instr("MOVL", "@#{:#x}".format(self.tt_ring_idx_va), "R4")
        asm.instr("MOVB", "R2", "(R3)[R4]")
        asm.instr("INCL", "R4")
        asm.instr("BICL2", "#0xFFFFFF00", "R4")  # wrap at 256
        asm.instr("MOVL", "R4", "@#{:#x}".format(self.tt_ring_idx_va))
        # Remove the process's IO packet from the pending queue.
        asm.instr("ASHL", "#4", "R1", "R5")
        asm.instr("MOVAL", "@#{:#x}".format(self.io_packets_va), "R6")
        asm.instr("ADDL2", "R5", "R6")
        asm.instr("REMQUE", "(R6)", "R0")
        asm.instr("MTPR", "R1", "#{}".format(PR_WAKE))
        asm.instr("POPR", "#0x7F")
        asm.instr("REI")

        # --- disk ISR ----------------------------------------------------
        asm.label("disk_isr")
        asm.instr("PUSHR", "#0x03")
        asm.instr("MOVAL", "@#{:#x}".format(self.disk_count_va), "R0")
        asm.instr("INCL", "(R0)")
        asm.instr("POPR", "#0x03")
        asm.instr("REI")

        # --- rescheduler (software interrupt) ----------------------------
        # Like VMS, the rescheduler only performs the (expensive) context
        # switch when a different process should run; PR 104 asks the
        # run-queue whether the pick would change anything.
        asm.label("resched")
        asm.instr("MTPR", "#0", "#{}".format(PR_SHOULD_SWITCH))
        asm.instr("TSTL", "@#{:#x}".format(data + 0x18))  # switch_flag
        asm.instr("BEQL", "resched_done")
        asm.instr("SVPCTX")
        asm.instr("MTPR", "#0", "#{}".format(PR_SCHED_PICK))
        asm.instr("LDPCTX")
        asm.label("resched_done")
        asm.instr("REI")

        # --- CHMK dispatcher ----------------------------------------------
        asm.label("chmk")
        asm.instr("PUSHR", "#0x3F")  # R0-R5
        asm.instr("MOVL", "24(SP)", "R0")  # the service code (below saved regs)
        asm.instr("CMPL", "R0", "#{}".format(SVC_QIO_READ))
        asm.instr("BEQL", "svc_qio")
        asm.instr("CMPL", "R0", "#{}".format(SVC_GETTIM))
        asm.instr("BEQL", "svc_gettim")
        asm.instr("CMPL", "R0", "#{}".format(SVC_PROBE_COPY))
        asm.instr("BEQL", "svc_probe")
        asm.label("chmk_done")
        asm.instr("POPR", "#0x3F")
        asm.instr("ADDL2", "#4", "SP")  # discard the service code
        asm.instr("REI")

        # QIO terminal read: queue an IO packet, block, reschedule.
        asm.label("svc_qio")
        asm.instr("MTPR", "#0", "#{}".format(PR_WHOAMI))
        asm.instr("MOVL", "@#{:#x}".format(self.tt_pid_va), "R1")
        asm.instr("ASHL", "#4", "R1", "R2")
        asm.instr("MOVAL", "@#{:#x}".format(self.io_packets_va), "R3")
        asm.instr("ADDL2", "R2", "R3")
        asm.instr("INSQUE", "(R3)", "@#{:#x}".format(self.ioq_header_va))
        asm.instr("MTPR", "#0", "#{}".format(PR_BLOCK))
        asm.instr("MTPR", "#{}".format(IPL_RESCHED), "#{}".format(PR_SIRR))
        asm.instr("BRW", "chmk_done")

        # GETTIM: read the tick cell, scale to "time", hand back in R0.
        asm.label("svc_gettim")
        asm.instr("MOVL", "@#{:#x}".format(self.tick_count_va), "R1")
        asm.instr("MULL3", "#10000", "R1", "R2")
        asm.instr("MOVL", "R2", "@#{:#x}".format(self.time_cell_va))
        # Completion processing rides a software interrupt, as VMS's
        # IO-post / AST-delivery levels do; the rescheduler usually finds
        # the same process still best and performs no switch.
        asm.instr("MTPR", "#{}".format(IPL_RESCHED), "#{}".format(PR_SIRR))
        asm.instr("BRW", "chmk_done")

        # PROBE+copy: validate a user buffer, then copy a descriptor.
        asm.label("svc_probe")
        asm.instr("PROBER", "#0", "#4", "@#{:#x}".format(self.time_cell_va))
        asm.instr("BEQL", "probe_fail")
        asm.instr("MOVL", "@#{:#x}".format(self.time_cell_va), "R1")
        asm.instr("ADDL2", "#1", "R1")
        asm.instr("MOVL", "R1", "@#{:#x}".format(self.time_cell_va))
        asm.label("probe_fail")
        asm.instr("BRW", "chmk_done")

        # --- the Null process ---------------------------------------------
        asm.label("null_loop")
        asm.instr("BRB", "null_loop")

        image = asm.assemble()
        self.symbols = dict(asm.symbols)

        # Map and install kernel code + data + stacks region.
        machine.map_range(self.KERNEL_CODE_VA, len(image))
        machine.write_virtual(self.KERNEL_CODE_VA, image)
        machine.map_range(self.KERNEL_DATA_VA, 0x1000)
        machine.map_range(self.KERNEL_STACKS_VA, 64 * self.KERNEL_STACK_BYTES)

        # Initialise queue headers to self-reference (empty queues), and
        # every IO packet likewise so a stray REMQUE is harmless.
        for header in (self.ioq_header_va, self.diskq_header_va):
            self._write_kernel_longword(header, header)
            self._write_kernel_longword(header + 4, header)
        for pid in range(64):
            packet = self.io_packets_va + 16 * pid
            self._write_kernel_longword(packet, packet)
            self._write_kernel_longword(packet + 4, packet)

        machine.scb.update(
            {
                "clock_plain": self.symbols["clock_plain"],
                "clock_resched": self.symbols["clock_resched"],
                "terminal": self.symbols["terminal_isr"],
                "disk": self.symbols["disk_isr"],
                "software": self.symbols["resched"],
                "chmk": self.symbols["chmk"],
            }
        )

    def _write_kernel_longword(self, va: int, value: int) -> None:
        entry = self.machine.system_table.lookup(vpn_of(va))
        pa = (entry.pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        self.machine.physical.write(pa, 4, value)

    def _read_kernel_longword(self, va: int) -> int:
        entry = self.machine.system_table.lookup(vpn_of(va))
        pa = (entry.pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        return self.machine.physical.read(pa, 4)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def _install_hooks(self) -> None:
        machine = self.machine
        machine.context_load_hook = self._on_context_load
        machine.mtpr_hooks[PR_SCHED_PICK] = self._pick_next
        machine.mtpr_hooks[PR_WAKE] = self._wake
        machine.mtpr_hooks[PR_BLOCK] = self._block_current
        machine.mtpr_hooks[PR_WHOAMI] = self._note_current_pid
        machine.mtpr_hooks[PR_SHOULD_SWITCH] = self._should_switch
        machine.pager = self._pager

    def _pager(self, va: int, write: bool) -> bool:
        """Demand-zero paging into the active address space."""
        try:
            return self.machine.map_new_frame(va)
        except (MemoryError, IndexError):
            return False

    def _note_current_pid(self, _value: int) -> None:
        """Service code asked "who am I": write current pid into tt_pid."""
        pid = self.current.pid if self.current else 0
        self._write_kernel_longword(self.tt_pid_va, pid)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def _alloc_struct(self, size: int, align: int = 512) -> int:
        cursor = (self._structs_cursor + align - 1) & ~(align - 1)
        self._structs_cursor = cursor + size
        if self._structs_cursor > self.machine.RESERVED_PHYSICAL:
            raise MemoryError("OS structure area exhausted")
        return cursor

    def create_process(
        self,
        name: str,
        image: bytes,
        origin: int,
        user_stack_top: int = 0x000F_8000,
        table_pages: int = 2048,
    ) -> Process:
        """Create a user process with its own P0 space running ``image``."""
        machine = self.machine
        pid = self._next_pid
        self._next_pid += 1

        table_pa = self._alloc_struct(4 * table_pages)
        table = PageTable(machine.physical, table_pa, table_pages)
        pcb_pa = self._alloc_struct(PCB_BYTES, align=128)

        kernel_stack_top = (
            self.KERNEL_STACKS_VA + (pid + 2) * self.KERNEL_STACK_BYTES
        )

        # Load the image into the process's own P0 space: temporarily make
        # its table active for the loader-side writes.
        previous = machine.memory.page_tables["p0"]
        machine.memory.set_page_table("p0", table)
        try:
            machine.write_virtual(origin, image)
            machine.map_range(user_stack_top - 4 * PAGE_SIZE, 4 * PAGE_SIZE)
        finally:
            machine.memory.set_page_table("p0", previous)

        initialize_pcb(
            machine,
            pcb_pa,
            entry_pc=origin,
            kernel_sp=kernel_stack_top,
            user_sp=user_stack_top,
            user_mode=True,
        )
        process = Process(pid=pid, name=name, pcb_pa=pcb_pa, page_table=table)
        self.processes.append(process)
        self._by_pcb[pcb_pa] = process
        return process

    def load_into_process(self, process: Process, va: int, payload: bytes) -> None:
        """Loader-side write into one process's P0 space (no cycle cost)."""
        machine = self.machine
        previous = machine.memory.page_tables["p0"]
        machine.memory.set_page_table("p0", process.page_table)
        try:
            machine.write_virtual(va, payload)
        finally:
            machine.memory.set_page_table("p0", previous)

    def _create_null_process(self) -> Process:
        machine = self.machine
        pid = self._next_pid
        self._next_pid += 1
        pcb_pa = self._alloc_struct(PCB_BYTES, align=128)
        kernel_stack_top = self.KERNEL_STACKS_VA + self.KERNEL_STACK_BYTES
        initialize_pcb(
            machine,
            pcb_pa,
            entry_pc=self.symbols["null_loop"],
            kernel_sp=kernel_stack_top,
            user_sp=kernel_stack_top,
            user_mode=False,
        )
        process = Process(
            pid=pid,
            name="NULL",
            pcb_pa=pcb_pa,
            page_table=machine.p0_table,
            is_null=True,
        )
        self._by_pcb[pcb_pa] = process
        return process

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _pick_next(self, _value: int) -> None:
        """MTPR #0, #100 from the scheduler: choose the next process."""
        if self.current is not None and not self.current.is_null:
            if self.current.state is ProcessState.RUNNING:
                self.current.state = ProcessState.RUNNABLE
        chosen = self._round_robin()
        if chosen is None:
            chosen = self.null_process
        else:
            chosen.state = ProcessState.RUNNING
        self.ebox.pr[16] = chosen.pcb_pa  # PCBB
        self._clock_ticks_since_switch = 0
        self._quantum_expired = False

    def _peek_next(self) -> Optional[Process]:
        """What _round_robin would pick, without advancing the cursor."""
        if not self.processes:
            return None
        count = len(self.processes)
        for offset in range(count):
            candidate = self.processes[(self._rr_cursor + offset) % count]
            if candidate.state is ProcessState.RUNNABLE:
                return candidate
        return None

    def _should_switch(self, _value: int) -> None:
        """PR 104: would a scheduler pick change the running process?

        Mirrors VMS policy: a runnable current process keeps the CPU
        unless its quantum expired; blocked (or null) current always
        yields when another process can run.
        """
        current = self.current
        nxt = self._peek_next()
        current_blocked = (
            current is None
            or current.is_null
            or current.state is ProcessState.BLOCKED
        )
        if current_blocked:
            switch = nxt is not None or current is None or not current.is_null
            if current is not None and current.is_null and nxt is None:
                switch = False  # null stays
        elif self._quantum_expired:
            switch = nxt is not None and nxt is not current
        else:
            switch = False
        self._write_kernel_longword(self.switch_flag_va, 1 if switch else 0)

    def _round_robin(self) -> Optional[Process]:
        if not self.processes:
            return None
        count = len(self.processes)
        for offset in range(count):
            candidate = self.processes[(self._rr_cursor + offset) % count]
            if candidate.state is ProcessState.RUNNABLE:
                self._rr_cursor = (self._rr_cursor + offset + 1) % count
                return candidate
        return None

    def _on_context_load(self, pcb_pa: int) -> None:
        """LDPCTX hook: switch address space and measurement gating."""
        process = self._by_pcb.get(pcb_pa)
        if process is None:
            return
        self.current = process
        self.machine.memory.set_page_table("p0", process.page_table)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                "VMS",
                self.ebox.cycle_count,
                "context switch",
                {"process": process.name, "pid": process.pid},
            )
        monitor = self.machine.monitor
        if process.is_null:
            # The Null process is excluded from measurement (Section 2.2).
            if monitor is not None and self._measuring:
                monitor.stop()
            self.ebox.events = self.null_events
        else:
            if monitor is not None and self._measuring:
                monitor.start()
            self.ebox.events = self._main_events

    def _wake(self, pid: int) -> None:
        for process in self.processes:
            if process.pid == pid and process.state is ProcessState.BLOCKED:
                process.state = ProcessState.RUNNABLE
                process.waiting_for = None
                # Preempt the Null process promptly; a running user
                # process keeps its quantum (VMS would consider priority).
                if self.current is not None and self.current.is_null:
                    self.ebox.events.software_interrupt_requests += 1
                    self.machine.request_software_interrupt(IPL_RESCHED)
                break

    def _block_current(self, _value: int) -> None:
        if self.current is not None and not self.current.is_null:
            self.current.state = ProcessState.BLOCKED
            self.current.waiting_for = "terminal"

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------

    def _wire_devices(self, clock_period: int, terminal_period: int, disk_period: int) -> None:
        self.devices.add("clock", IPL_CLOCK, clock_period, self._clock_fired, jitter=0.05)
        self.devices.add("terminal", IPL_TERMINAL, terminal_period, self._terminal_fired)
        self.devices.add("disk", IPL_DISK, disk_period, self._disk_fired)

    def _clock_fired(self, timer) -> None:
        self._clock_ticks_since_switch += 1
        expired = (
            self._clock_ticks_since_switch >= self.quantum_ticks
            and self.current is not None
            and not self.current.is_null
        )
        if expired:
            self._quantum_expired = True
        vector = "clock_resched" if expired else "clock_plain"
        if self.machine.tracer is not None:
            self.machine.tracer.instant(
                "VMS", self.ebox.cycle_count, "clock fired", {"resched": expired}
            )
        self.machine.interrupts.post(
            InterruptRequest(ipl=timer.ipl, vector_va=self.machine.scb[vector])
        )

    def _terminal_fired(self, timer) -> None:
        """A character arrives: pick a recipient, fill the device cells."""
        if self.terminal_source is not None:
            pick = self.terminal_source(self)
            if pick is None:
                return
            pid, char = pick
        else:
            blocked = [p for p in self.processes if p.state is ProcessState.BLOCKED]
            if blocked:
                target = self._random.choice(blocked)
            elif self.processes:
                target = self._random.choice(self.processes)
            else:
                return
            pid = target.pid
            char = 0x20 + self._random.randrange(95)
        self._write_kernel_longword(self.tt_pid_va, pid)
        self._write_kernel_longword(self.tt_char_va, char)
        if self.machine.tracer is not None:
            self.machine.tracer.instant(
                "VMS", self.ebox.cycle_count, "terminal fired", {"pid": pid}
            )
        self.machine.interrupts.post(
            InterruptRequest(ipl=timer.ipl, vector_va=self.machine.scb["terminal"])
        )

    def _disk_fired(self, timer) -> None:
        if self.machine.tracer is not None:
            self.machine.tracer.instant("VMS", self.ebox.cycle_count, "disk fired")
        self.machine.interrupts.post(
            InterruptRequest(ipl=timer.ipl, vector_va=self.machine.scb["disk"])
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def boot(self) -> None:
        """Point the CPU at the boot stub (which LDPCTXes the first pick)."""
        boot_stack = self.KERNEL_STACKS_VA + 64 * self.KERNEL_STACK_BYTES
        self.machine.map_range(boot_stack - PAGE_SIZE, PAGE_SIZE)
        self.ebox.reset(self.symbols["boot"], sp=boot_stack, mode=AccessMode.KERNEL)
        self.devices.start(self.ebox.cycle_count)
        if self.machine.tracer is not None:
            self.machine.tracer.instant("VMS", self.ebox.cycle_count, "boot")

    def start_measurement(self) -> None:
        """Start the histogram boards (unless the Null process is current).

        Event counters restart alongside the monitor so both channels
        cover exactly the measurement interval (warmup is excluded from
        both, like the time before the experimenters issued the Unibus
        start command).
        """
        self._measuring = True
        fresh = EventCounters()
        self._main_events = fresh
        self.machine.events = fresh
        if self.current is None or not self.current.is_null:
            self.ebox.events = fresh
        monitor = self.machine.monitor
        if monitor is not None and (self.current is None or not self.current.is_null):
            monitor.start()
        if self.machine.tracer is not None:
            self.machine.tracer.instant(
                "VMS", self.ebox.cycle_count, "measurement start"
            )

    def stop_measurement(self) -> None:
        self._measuring = False
        if self.machine.monitor is not None:
            self.machine.monitor.stop()
        if self.machine.tracer is not None:
            self.machine.tracer.instant(
                "VMS", self.ebox.cycle_count, "measurement stop"
            )

    def run(self, max_instructions: int = 1_000_000, max_cycles: Optional[int] = None) -> int:
        """The main loop: poll devices between instructions, run the CPU.

        Dispatches in superblock units: the board's next fire time (and
        the cycle budget) become the block's cycle limit, so a block
        deopts at the first instruction boundary at or past a device
        event — the same boundary, at the same cycle, where this loop's
        poll would have fired it when stepping one instruction at a
        time.  A stepped interpreter run retires instructions at
        identical cycles; only the dispatch granularity differs.
        """
        executed = 0
        ebox = self.ebox
        devices = self.devices
        while executed < max_instructions:
            if max_cycles is not None and ebox.cycle_count >= max_cycles:
                break
            devices.poll(ebox.cycle_count)
            limit = devices._next_fire
            if max_cycles is not None and max_cycles < limit:
                limit = max_cycles
            n = ebox.step_block(max_instructions - executed, limit)
            if not n:
                break
            executed += n
        return executed

    @property
    def ticks(self) -> int:
        return self._read_kernel_longword(self.tick_count_va)

    def state_summary(self) -> dict:
        """A plain-data summary of where the machine stands.

        Stamped into snapshot metadata (``repro snapshot info`` shows it
        without unpickling anything) and handy when debugging resumed
        runs."""
        return {
            "cycle_count": self.ebox.cycle_count,
            "measured_instructions": self._main_events.instructions,
            "measuring": self._measuring,
            "collecting": bool(
                self.machine.monitor is not None and self.machine.monitor.collecting
            ),
            "current_process": self.current.name if self.current else None,
            "processes": [
                {"pid": p.pid, "name": p.name, "state": p.state.name}
                for p in self.processes
            ],
            "ticks": self.ticks,
            "devices": self.devices.state_summary(),
        }

"""A miniature VMS: the operating-system layer of the reproduction.

The paper's headline methodological claim is that benchmark- and
trace-based techniques "cannot be applied to operating systems or to
multiprogramming workloads", while the micro-PC monitor sees everything.
This package supplies that everything: a kernel whose interrupt service
routines, system services and scheduler are *real VAX code* executed by
the simulated CPU (so OS activity lands in the histogram like any other
microcode activity), plus processes with private address spaces, quantum
scheduling through SVPCTX/LDPCTX, software-interrupt chaining, and the
famous excluded-from-measurement Null process.
"""

from repro.vms.process import Process, ProcessState
from repro.vms.devices import DeviceTimer, DeviceBoard
from repro.vms.kernel import VMSKernel

__all__ = ["Process", "ProcessState", "DeviceTimer", "DeviceBoard", "VMSKernel"]

"""Deterministic machine snapshots at instruction boundaries.

The paper's histograms were accumulated over an hour of live
timesharing and read out incrementally — the measurement composes
across time slices.  This module makes that composition operational for
the simulator: :func:`capture` freezes a booted
:class:`~repro.vms.kernel.VMSKernel` — EBOX registers and micro-PC
state, the instruction buffer, TB, cache, write buffer, page tables,
physical memory, VMS process/device state, every seeded RNG stream and
the monitor's count banks — and :func:`restore` brings it back so the
run continues *bit-identically* to one that was never interrupted
(``tests/integration/test_snapshot_equivalence.py`` proves this for all
five workloads).

Implementation notes:

* The whole simulator state is one object graph rooted at the kernel
  (machine, EBOX, monitor, devices and the terminal emulator are all
  reachable from it), every RNG is an instance-seeded ``random.Random``,
  and object identity is preserved by the pickle memo — so a plain
  pickle of the kernel *is* a faithful snapshot.  The only outside
  reference is the passive tracer (it may hold arbitrary sinks), which
  capture detaches for the duration of the dump and restore re-attaches
  through :meth:`~repro.cpu.machine.VAX780.attach_tracer`.
* The wire format is versioned and digest-checked: an 8-byte magic, a
  JSON header (version, codec, sha256 of the uncompressed pickle, and a
  plain-data :meth:`~repro.vms.kernel.VMSKernel.state_summary`), then
  the zlib-compressed pickle.  ``repro snapshot info`` reads the header
  without unpickling anything.
* Snapshots are pickles: restoring one executes the usual pickle
  machinery, so only load snapshots you (or your own cache) wrote —
  the same trust model as the run cache itself.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Bump when the snapshot payload or header layout changes shape.
SNAPSHOT_VERSION = 1

#: Identifies a snapshot file/blob; the trailing byte is the format
#: generation so even pre-header parsers fail loudly on a new one.
SNAPSHOT_MAGIC = b"REPROSNP"

_CODEC = "pickle+zlib"
_PICKLE_PROTOCOL = 4
_HEADER_STRUCT = struct.Struct(">I")
_MAX_HEADER_BYTES = 1 << 20


class SnapshotError(RuntimeError):
    """Snapshot capture/restore failed (digest mismatch, bad state)."""


class SnapshotFormatError(SnapshotError):
    """A snapshot blob is malformed: wrong magic, version or framing."""


@dataclass
class MachineSnapshot:
    """One frozen machine state plus the metadata to trust it.

    ``payload`` is the zlib-compressed pickle of the kernel graph;
    ``digest`` is the sha256 of the *uncompressed* pickle, verified on
    restore; ``meta`` is plain JSON-safe data (instruction counts,
    process states, device schedules) readable without unpickling.
    """

    payload: bytes
    digest: str
    meta: Dict = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format."""
        header = json.dumps(
            {
                "version": self.version,
                "codec": _CODEC,
                "digest": self.digest,
                "meta": self.meta,
            },
            sort_keys=True,
        ).encode("utf-8")
        return SNAPSHOT_MAGIC + _HEADER_STRUCT.pack(len(header)) + header + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MachineSnapshot":
        """Parse the wire format, rejecting malformed blobs loudly."""
        prefix = len(SNAPSHOT_MAGIC) + _HEADER_STRUCT.size
        if len(blob) < prefix:
            raise SnapshotFormatError(
                "snapshot truncated: {} bytes is shorter than the {}-byte "
                "magic + header-length prefix".format(len(blob), prefix)
            )
        if blob[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
            raise SnapshotFormatError(
                "not a machine snapshot (magic {!r}, expected {!r})".format(
                    bytes(blob[: len(SNAPSHOT_MAGIC)]), SNAPSHOT_MAGIC
                )
            )
        (header_len,) = _HEADER_STRUCT.unpack_from(blob, len(SNAPSHOT_MAGIC))
        if header_len > _MAX_HEADER_BYTES or prefix + header_len > len(blob):
            raise SnapshotFormatError(
                "snapshot header length {} is implausible for a {}-byte blob".format(
                    header_len, len(blob)
                )
            )
        try:
            header = json.loads(blob[prefix : prefix + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotFormatError("snapshot header is not valid JSON: {}".format(exc))
        version = header.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                "snapshot format version {} not supported (this build reads "
                "version {})".format(version, SNAPSHOT_VERSION)
            )
        codec = header.get("codec")
        if codec != _CODEC:
            raise SnapshotFormatError(
                "snapshot codec {!r} not supported (expected {!r})".format(codec, _CODEC)
            )
        return cls(
            payload=bytes(blob[prefix + header_len :]),
            digest=header.get("digest", ""),
            meta=header.get("meta", {}),
            version=version,
        )

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "MachineSnapshot":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    @classmethod
    def read_header(cls, path: str) -> Dict:
        """Read just version/digest/meta — never touches the pickle."""
        with open(path, "rb") as handle:
            blob = handle.read()
        snapshot = cls.from_bytes(blob)
        return {
            "version": snapshot.version,
            "digest": snapshot.digest,
            "compressed_bytes": snapshot.compressed_bytes,
            "meta": snapshot.meta,
        }


def capture(kernel, label: Optional[str] = None, extra_meta: Optional[Dict] = None) -> "MachineSnapshot":
    """Freeze ``kernel`` (and everything reachable from it) mid-run.

    Capture is passive: the kernel keeps running afterwards exactly as
    if nothing happened.  The tracer — the one object in the graph that
    may hold non-picklable sinks — is detached for the dump and
    re-attached before returning.  Legal at any instruction boundary,
    including mid-measurement with the monitor still collecting.
    """
    machine = kernel.machine
    tracer = machine.tracer
    machine.attach_tracer(None)
    try:
        raw = pickle.dumps(kernel, protocol=_PICKLE_PROTOCOL)
    finally:
        machine.attach_tracer(tracer)
    meta = {"label": label, "raw_bytes": len(raw)}
    meta.update(kernel.state_summary())
    if extra_meta:
        meta.update(extra_meta)
    return MachineSnapshot(
        payload=zlib.compress(raw, 6),
        digest=hashlib.sha256(raw).hexdigest(),
        meta=meta,
    )


def restore(snapshot: MachineSnapshot, tracer=None):
    """Bring a captured kernel back to life, digest-checked.

    Returns a fresh :class:`~repro.vms.kernel.VMSKernel` whose continued
    execution is bit-identical to the original's.  ``tracer`` (optional)
    is attached to the restored machine — the snapshot itself never
    carries one.
    """
    from repro.testing import faults

    # Injected restore failures surface as SnapshotError, exactly like a
    # real digest mismatch — callers' recovery paths cannot tell them
    # apart, which is the point.
    faults.fire("snapshot.restore", key=snapshot.digest, raiser=SnapshotError)
    try:
        raw = zlib.decompress(snapshot.payload)
    except zlib.error as exc:
        raise SnapshotFormatError("snapshot payload does not decompress: {}".format(exc))
    digest = hashlib.sha256(raw).hexdigest()
    if digest != snapshot.digest:
        raise SnapshotError(
            "snapshot digest mismatch: payload hashes to {} but the header "
            "says {} — refusing to restore corrupt state".format(
                digest, snapshot.digest
            )
        )
    kernel = pickle.loads(raw)
    kernel.machine.attach_tracer(tracer)
    return kernel

"""Per-opcode frequency reporting — the Clark & Levy companion view.

The paper leans on a prior study ("Measurement and Analysis of
Instruction Use in the VAX-11/780", Clark & Levy, ISCA 1982) for
individual-opcode frequencies, because "the UPC method cannot distinguish
all opcodes" (microcode sharing).  The simulator's companion event
counters *can*, so this module produces the Clark & Levy-style report:
ranked dynamic opcode frequencies, cumulative coverage, and the
frequency-vs-cost contrast that motivates the paper's Table 9 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.experiment import ExperimentResult
from repro.isa.opcodes import opcode_by_mnemonic
from repro.ucode.costs import exec_profile


@dataclass(frozen=True)
class OpcodeFrequency:
    """One row of the ranked report."""

    mnemonic: str
    group: str
    count: int
    percent: float
    cumulative_percent: float


def opcode_frequencies(result: ExperimentResult) -> List[OpcodeFrequency]:
    """Ranked dynamic opcode frequencies for a measurement."""
    counts = result.events.opcode_counts
    total = sum(counts.values())
    if not total:
        return []
    rows = []
    cumulative = 0.0
    for mnemonic, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        percent = 100.0 * count / total
        cumulative += percent
        rows.append(
            OpcodeFrequency(
                mnemonic=mnemonic,
                group=opcode_by_mnemonic(mnemonic).group.value,
                count=count,
                percent=percent,
                cumulative_percent=cumulative,
            )
        )
    return rows


def coverage_count(result: ExperimentResult, percent: float) -> int:
    """How many distinct opcodes cover ``percent`` of executions.

    Clark & Levy's famous observation: a small handful of opcodes covers
    the bulk of dynamic execution.
    """
    for index, row in enumerate(opcode_frequencies(result), start=1):
        if row.cumulative_percent >= percent:
            return index
    return len(opcode_frequencies(result))


def frequency_cost_contrast(result: ExperimentResult, top: int = 10) -> str:
    """The paper's motivating contrast, rendered: the most frequent
    opcodes are cheap, and the expensive ones are rare."""
    rows = opcode_frequencies(result)
    lines = [
        "rank  opcode     group       %dyn   cum%   base exec cycles",
        "-" * 60,
    ]
    for rank, row in enumerate(rows[:top], start=1):
        profile = exec_profile(opcode_by_mnemonic(row.mnemonic))
        lines.append(
            "{:>4}  {:<9} {:<10} {:6.2f} {:6.1f}   {}".format(
                rank, row.mnemonic, row.group, row.percent,
                row.cumulative_percent, profile.base_cycles,
            )
        )
    expensive = sorted(
        rows,
        key=lambda r: -exec_profile(opcode_by_mnemonic(r.mnemonic)).base_cycles,
    )[:5]
    lines.append("")
    lines.append("most expensive executed opcodes (by base execute cycles):")
    for row in expensive:
        profile = exec_profile(opcode_by_mnemonic(row.mnemonic))
        lines.append(
            "      {:<9} {:<10} {:6.2f}%dyn   {} cycles".format(
                row.mnemonic, row.group, row.percent, profile.base_cycles
            )
        )
    return "\n".join(lines)

"""The cache-resolution layer: what can be *reused* instead of executed.

Middle layer of the engine split (scheduler / executor /
cache-resolution).  The scheduler asks this module three questions
before it spends any simulation time:

* *Is this whole run already banked?* — run-level objects
  (:func:`resolve_cached_run` / :func:`store_run`) let the service
  dedupe complete sweeps against the content-addressed
  :class:`~repro.core.runcache.RunCache` across server restarts.
* *Which shards of this run are already banked?* —
  :func:`shard_cache_keys` / :func:`load_cached_shard` resolve the
  resumable shard results and :func:`load_cached_snapshot` the boundary
  snapshots that let the remaining shards fan out across the pool.
* *Where do new results go?* — the ``store_*`` writers bank shard
  deltas, boundary snapshots and whole runs with provenance-bearing
  metadata, relying on the cache's atomic first-write-wins puts so
  concurrent writers never collide.

Everything here is self-healing by contract: an object that is absent,
digest-rotten (the cache layer catches that), or undeserializable by
this build is treated as a miss and quarantined so the recomputation
lands in a clean slot.  Nothing in this module executes simulation
work or decides scheduling — resolution only.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Tuple


def shard_cache_keys(spec, boundaries: List[int]) -> Tuple[str, List[str], Dict[int, str]]:
    """(config hash, per-shard result keys, per-boundary snapshot keys)."""
    from repro.core.runcache import cache_key
    from repro.obs.provenance import config_hash

    chash = config_hash(spec)
    shard_keys = [
        cache_key("shard", config=chash, start=boundaries[i], end=boundaries[i + 1])
        for i in range(len(boundaries) - 1)
    ]
    snapshot_keys = {
        boundary: cache_key("snapshot", config=chash, instruction=boundary)
        for boundary in boundaries[:-1]
    }
    return chash, shard_keys, snapshot_keys


def store_shard(cache, key: str, shard, spec_name: str, chash: str) -> None:
    cache.put(
        key,
        pickle.dumps(shard, protocol=4),
        meta={
            "kind": "shard",
            "spec": spec_name,
            "config": chash,
            "start": shard.start_instruction,
            "instructions": shard.instructions,
            "shard": "{}/{}".format(shard.index + 1, shard.shard_count),
        },
    )


def load_cached_shard(cache, key: str):
    """Fetch one banked shard delta; ``None`` on miss or damage.

    ``RunCache.get`` already rejects byte-level rot via the ``.sum``
    digest; the except clause quarantines what slips past it — a
    digest-valid pickle written by an incompatible build."""
    blob = cache.get(key)
    if blob is None:
        return None
    try:
        shard = pickle.loads(blob)
    except Exception as exc:
        cache.quarantine(key, reason="unpicklable shard: {}".format(exc))
        return None
    shard.from_cache = True
    return shard


def store_boundary_snapshot(
    cache, key: str, kernel, spec_name: str, chash: str, instruction: int
) -> None:
    from repro.core.snapshot import capture

    snapshot = capture(kernel, label="{}@{}".format(spec_name, instruction))
    cache.put(
        key,
        snapshot.to_bytes(),
        meta={
            "kind": "snapshot",
            "spec": spec_name,
            "config": chash,
            "instruction": instruction,
            "digest": snapshot.digest,
        },
    )


def load_cached_snapshot(cache, key: str):
    """Fetch and restore a boundary snapshot, self-healing corruption.

    Returns ``(kernel, digest)``, or ``(None, None)`` when the snapshot
    is absent *or* damaged — damage is quarantined so the caller's
    recomputation lands in a clean slot.  ``RunCache.get`` already
    catches byte-level rot via the ``.sum`` digest; the except clause
    here catches what slips past it (a truncated legacy object, an
    injected restore failure, a pickle from an incompatible build)."""
    from repro.core.snapshot import MachineSnapshot, SnapshotError, restore

    blob = cache.get(key)
    if blob is None:
        return None, None
    try:
        snapshot = MachineSnapshot.from_bytes(blob)
        kernel = restore(snapshot)
    except (
        SnapshotError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
    ) as exc:
        cache.quarantine(key, reason="snapshot restore failed: {}".format(exc))
        return None, None
    return kernel, snapshot.digest


# ----------------------------------------------------------------------
# run-level objects: whole-sweep dedupe for the service
# ----------------------------------------------------------------------
#
# Shard objects resume a run; run objects *skip* it.  The service banks
# every completed EngineRun under a key derived from the spec's config
# hash, so a sweep submitted tomorrow — or to a freshly restarted
# server — resolves from the cache without simulating, exactly like a
# warm shard replay but at whole-run granularity.  Determinism makes
# the replayed payload bit-identical to a fresh execution; provenance
# keeps it honest (``resumed_from`` names the cache key, wall time is
# zeroed rather than replayed as if the work had happened again).


def run_cache_key(spec) -> str:
    """The run-level cache key for one spec (config-hash addressed)."""
    from repro.core.runcache import cache_key
    from repro.obs.provenance import config_hash

    return cache_key("run", config=config_hash(spec))


def store_run(cache, spec, run) -> None:
    """Bank one completed EngineRun for whole-run resolution.

    First write wins: a concurrent client that raced the same spec to
    completion leaves the earlier (bit-identical) payload in place."""
    cache.put(
        run_cache_key(spec),
        pickle.dumps(run, protocol=4),
        meta={
            "kind": "run",
            "spec": spec.name,
            "workload": spec.workload,
            "instructions": spec.instructions,
            "shards": run.shard_count,
        },
    )


def resolve_cached_run(cache, spec):
    """Replay one whole run from the cache; ``None`` on miss or damage.

    The replayed :class:`~repro.core.executor.EngineRun` carries honest
    provenance: ``manifest.resumed_from`` names the run-level cache key
    and wall seconds are zeroed — the run cost nothing *this time*, and
    fabricating the original timing would double-count it (the original
    manifest is still banked inside the cached payload's history)."""
    key = run_cache_key(spec)
    blob = cache.get(key)
    if blob is None:
        return None
    try:
        run = pickle.loads(blob)
    except Exception as exc:
        cache.quarantine(key, reason="unpicklable run: {}".format(exc))
        return None
    run.wall_seconds = 0.0
    if run.manifest is not None:
        run.manifest.wall_seconds = 0.0
        run.manifest.resumed_from = key
    return run

"""Raw histogram -> cycle accounts: the paper's data-reduction step.

"Since much of the activity in the 11/780 processor is under the direct
command of microcode functions, the frequency of many events can be
determined through examination of the relative execution counts of
various microinstructions" (Section 2.2).  This module is that
examination: it combines the dumped histogram banks with the
control-store region map to classify every counted cycle into Table 8's
two dimensions — the *activity* (row: which region the micro-PC falls
in) and the *category* (column: what the microinstruction at that
address does, and which bank the cycle landed in).

The monitor's documented blind spots are preserved: I-stream reference
counts and branch-taken proportions come from the companion
:class:`~repro.cpu.events.EventCounters` (the simulator's stand-in for
the separate cache study and "other measurements" the paper cites), not
from the histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.events import EventCounters
from repro.ucode.control_store import Region
from repro.ucode.microword import MicroSlot
from repro.ucode.routines import MicrocodeLayout

#: Table 8 row keys, in presentation order.
ROWS = [
    "decode",
    "spec1",
    "spec26",
    "bdisp",
    "simple",
    "field",
    "float",
    "callret",
    "system",
    "character",
    "decimal",
    "intexc",
    "memmgmt",
    "abort",
]

#: Table 8 column keys, in presentation order.
COLUMNS = ["compute", "read", "rstall", "write", "wstall", "ibstall"]

_REGION_ROW = {
    Region.DECODE: "decode",
    Region.SPEC1: "spec1",
    Region.SPEC26: "spec26",
    Region.BDISP: "bdisp",
    Region.EXEC_SIMPLE: "simple",
    Region.EXEC_FIELD: "field",
    Region.EXEC_FLOAT: "float",
    Region.EXEC_CALLRET: "callret",
    Region.EXEC_SYSTEM: "system",
    Region.EXEC_CHARACTER: "character",
    Region.EXEC_DECIMAL: "decimal",
    Region.INTEXC: "intexc",
    Region.MEMMGMT: "memmgmt",
    Region.ABORT: "abort",
}

#: Execute-region rows, keyed by the Table 1 group name.
EXEC_ROWS = ["simple", "field", "float", "callret", "system", "character", "decimal"]


def _empty_matrix() -> Dict[str, Dict[str, float]]:
    return {row: {column: 0.0 for column in COLUMNS} for row in ROWS}


@dataclass
class Reduction:
    """The reduced histogram: cycles classified by (row, column).

    Build one with :func:`reduce_histogram`.
    """

    matrix: Dict[str, Dict[str, float]]
    instructions: int
    total_cycles: float
    #: per-routine (normal, stalled) cycle totals, by routine name
    routine_cycles: Dict[str, Tuple[int, int]]
    events: Optional[EventCounters] = None

    # -- views ------------------------------------------------------------

    def per_instruction(self) -> Dict[str, Dict[str, float]]:
        """The Table 8 body: cycles per average instruction."""
        if not self.instructions:
            return _empty_matrix()
        return {
            row: {col: cycles / self.instructions for col, cycles in columns.items()}
            for row, columns in self.matrix.items()
        }

    def row_totals(self) -> Dict[str, float]:
        return {row: sum(columns.values()) for row, columns in self.matrix.items()}

    def column_totals(self) -> Dict[str, float]:
        totals = {column: 0.0 for column in COLUMNS}
        for columns in self.matrix.values():
            for column, cycles in columns.items():
                totals[column] += cycles
        return totals

    @property
    def cpi(self) -> float:
        """Total cycles per average instruction (the 10.6 number)."""
        return self.total_cycles / self.instructions if self.instructions else 0.0

    def exec_cycles_for_group(self, group_row: str) -> Dict[str, float]:
        """One execute region's cycles by column (Table 9 raw material)."""
        if group_row not in EXEC_ROWS:
            raise KeyError("{} is not an execute-region row".format(group_row))
        return dict(self.matrix[group_row])

    def routine_total(self, name_prefix: str) -> Tuple[int, int]:
        """Sum (normal, stalled) cycles over routines matching a prefix."""
        normal = 0
        stalled = 0
        for name, (n, s) in self.routine_cycles.items():
            if name.startswith(name_prefix):
                normal += n
                stalled += s
        return normal, stalled


def reduce_histogram(
    counts: List[int],
    stalled_counts: List[int],
    layout: MicrocodeLayout,
    events: Optional[EventCounters] = None,
) -> Reduction:
    """Classify every histogram bucket using the control-store map.

    The rules mirror Section 4.3:

    * a bucket at a COMPUTE/DECODE microinstruction contributes its normal
      count to the *compute* column;
    * a READ microinstruction's normal count is successful reads (the
      *read* column) and its stalled count is *rstall*;
    * likewise WRITE / *wstall*;
    * the "insufficient bytes" dispatch targets contribute their normal
      counts to *ibstall* (IB stall cycles are executions of that
      microinstruction, not stalled-bank entries).

    The instruction count is the execution count of the opcode-decode
    dispatch microinstruction — one per instruction, exactly as on the
    real machine (interrupt deliveries execute no decode).
    """
    matrix = _empty_matrix()
    routine_cycles: Dict[str, Tuple[int, int]] = {}
    store = layout.store

    total = 0.0
    for address in store.used_addresses():
        normal = counts[address] if address < len(counts) else 0
        stalled = stalled_counts[address] if address < len(stalled_counts) else 0
        if not normal and not stalled:
            continue
        routine, slot = store.lookup(address)
        row = _REGION_ROW[routine.region]

        previous = routine_cycles.get(routine.name, (0, 0))
        routine_cycles[routine.name] = (previous[0] + normal, previous[1] + stalled)

        if slot in (MicroSlot.COMPUTE_A, MicroSlot.COMPUTE_B):
            matrix[row]["compute"] += normal
        elif slot is MicroSlot.READ:
            matrix[row]["read"] += normal
            matrix[row]["rstall"] += stalled
        elif slot is MicroSlot.WRITE:
            matrix[row]["write"] += normal
            matrix[row]["wstall"] += stalled
        elif slot is MicroSlot.IB_WAIT:
            matrix[row]["ibstall"] += normal
        total += normal + stalled

    decode_dispatch = layout.decode.address(MicroSlot.COMPUTE_A)
    instructions = counts[decode_dispatch] if decode_dispatch < len(counts) else 0

    return Reduction(
        matrix=matrix,
        instructions=instructions,
        total_cycles=total,
        routine_cycles=routine_cycles,
        events=events,
    )

"""Content-addressed run cache for shards and snapshots.

The engine's determinism guarantee is what makes caching sound: a
:func:`~repro.obs.provenance.config_hash` pins down everything that
determines a spec's result, so an object stored under a key derived
from it can be replayed into any later run — a sweep re-run, a bench,
an EXPERIMENTS.md regeneration — and the merged output stays
bit-identical.  The cache stores two kinds of objects today:

* ``shard`` — one shard's measured delta (a pickled
  :class:`~repro.core.engine.ShardResult`);
* ``snapshot`` — the machine state at a shard boundary (a
  :class:`~repro.core.snapshot.MachineSnapshot` blob), letting a later
  run resume mid-measurement instead of re-simulating from boot;
* ``run`` — one whole completed :class:`~repro.core.engine.EngineRun`,
  letting the experiment service resolve a duplicate sweep without
  simulating at all (see :mod:`repro.core.cache_resolution`).

Layout is git-like: ``<root>/objects/<first 2 hex>/<rest>`` with an
optional ``.json`` metadata sidecar per object.  Writes go through a
temp file + ``os.replace`` so concurrent pool workers never observe a
torn object; content addressing makes double-writes idempotent.

The store is self-healing: every put records a ``.sum`` sidecar (the
sha256 of the stored bytes) and every get verifies it.  An object whose
bytes no longer hash to their recorded digest — bit rot, a truncated
write that somehow survived, a corrupted filesystem — is *quarantined*
(moved to ``objects/quarantine/`` with a ``.reason`` note) and reported
as a miss, so the engine recomputes it instead of crashing on it or,
worse, merging garbage.  ``repro cache info`` reports the quarantine
count; the quarantined files stick around for post-mortems until
``clear`` removes them.

Hit/miss counters are per-``RunCache``-instance and therefore
per-process: a pool worker opens its own instance on the shared root,
and its counts die with the worker unless persisted.  The cache keeps a
persistent ledger for exactly this — ``flush_stats`` appends each
instance's unflushed deltas as one line of ``<root>/stats.jsonl`` (an
O_APPEND single-write, safe under concurrent workers) and
``persistent_totals`` sums the ledger, so ``repro cache info`` reports
true fleet-wide totals instead of the freshly-constructed instance's
zeros.

Cached objects are pickles and deserializing them executes pickle
machinery — treat a cache directory with the same trust as the working
tree it sits in (the default root lives inside it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.testing import faults

#: Bump to invalidate every existing cache entry (key derivation
#: changes, stored-object shape changes).
CACHE_SCHEMA_VERSION = 1

#: Environment override for the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def cache_key(kind: str, **fields) -> str:
    """Derive the content address for one cached object.

    The key commits to the cache schema version, the package version
    (determinism across code changes is not guaranteed, so a release
    bump retires stale objects), the object ``kind`` and every
    caller-supplied field — for shards that is the spec's config hash
    plus the instruction span, which by the determinism guarantee fixes
    the object's content.
    """
    from repro.obs.provenance import code_version

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code_version": code_version(),
        "kind": kind,
    }
    for name, value in fields.items():
        if name in payload:
            raise ValueError("cache_key field {!r} collides with a reserved field".format(name))
        payload[name] = value
    blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheEntry:
    """One stored object, as listed by :meth:`RunCache.entries`."""

    key: str
    path: str
    size_bytes: int
    meta: Dict = field(default_factory=dict)


class RunCache:
    """A directory of content-addressed objects with hit/miss stats."""

    #: Subdirectory of ``objects/`` corrupt objects are moved into.
    QUARANTINE_DIRNAME = "quarantine"

    #: Fields tracked per instance and aggregated by the stats ledger.
    STAT_FIELDS = ("hits", "misses", "puts", "quarantined")

    #: Ledger of flushed per-instance stat deltas, relative to ``root``.
    STATS_LEDGER = "stats.jsonl"

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._objects_dir = os.path.join(self.root, "objects")
        self._quarantine_dir = os.path.join(self._objects_dir, self.QUARANTINE_DIRNAME)
        os.makedirs(self._objects_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: corrupt objects this instance moved to quarantine (see
        #: :meth:`quarantined_objects` for the cross-process disk count)
        self.quarantined = 0
        self._stats_path = os.path.join(self.root, self.STATS_LEDGER)
        #: what this instance has already flushed to the ledger
        self._flushed = {name: 0 for name in self.STAT_FIELDS}

    @classmethod
    def default(cls, path: Optional[str] = None) -> "RunCache":
        """The conventional cache: ``path`` if given, else
        ``$REPRO_CACHE_DIR``, else ``.repro-cache`` in the cwd."""
        return cls(path or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIRNAME)

    # -- object paths ------------------------------------------------------

    def _object_path(self, key: str) -> str:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError("cache key must be a hex digest, got {!r}".format(key))
        return os.path.join(self._objects_dir, key[:2], key[2:])

    # -- store / fetch -----------------------------------------------------

    def has(self, key: str) -> bool:
        """Existence probe; does not count toward hit/miss stats."""
        return os.path.exists(self._object_path(key))

    def get(self, key: str, verify: bool = True) -> Optional[bytes]:
        """Fetch ``key``, integrity-checked against its ``.sum`` sidecar.

        A digest mismatch quarantines the object and reports a miss —
        the caller recomputes instead of consuming corrupt state.
        Objects written before ``.sum`` sidecars existed are accepted
        as-is (legacy caches stay readable)."""
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        data = faults.corrupt_bytes("cache.get", key, data)
        if verify:
            expected = self._read_sum(key)
            if expected is not None and hashlib.sha256(data).hexdigest() != expected:
                self.quarantine(
                    key,
                    reason="content digest mismatch: stored bytes no longer "
                    "hash to the recorded sha256",
                )
                self.misses += 1
                return None
        self.hits += 1
        return data

    def put(self, key: str, data: bytes, meta: Optional[Dict] = None) -> str:
        """Store ``data`` under ``key`` atomically; first write wins.

        Content addressing means a key fully determines its bytes, so a
        concurrent or repeated put of an existing object is a no-op."""
        path = self._object_path(key)
        if os.path.exists(path):
            return path
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if meta is not None:
            self._write_atomic(path + ".json", json.dumps(meta, sort_keys=True, default=repr).encode("utf-8"))
        self._write_atomic(
            path + ".sum", hashlib.sha256(data).hexdigest().encode("ascii")
        )
        self._write_atomic(path, data)
        faults.corrupt_file("cache.stored", key, path)
        self.puts += 1
        return path

    @staticmethod
    def _write_atomic(path: str, data: bytes) -> None:
        handle, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".tmp-")
        try:
            with os.fdopen(handle, "wb") as tmp:
                handle = None  # the file object owns the fd now
                tmp.write(data)
                faults.fire("cache.write", key=path, raiser=OSError)
            os.replace(tmp_path, path)
        finally:
            if handle is not None:
                # os.fdopen itself failed: the raw fd is still ours.
                try:
                    os.close(handle)
                except OSError:
                    pass
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def _read_sum(self, key: str) -> Optional[str]:
        try:
            with open(self._object_path(key) + ".sum") as handle:
                return handle.read().strip()
        except OSError:
            return None

    # -- quarantine --------------------------------------------------------

    def quarantine(self, key: str, reason: str = "") -> str:
        """Move a corrupt object (and sidecars) out of the addressable
        store so callers recompute it; returns the quarantine path.

        The damaged bytes are preserved for post-mortems alongside a
        ``.reason`` note; a later put of the recomputed object lands at
        the now-vacant address."""
        path = self._object_path(key)
        os.makedirs(self._quarantine_dir, exist_ok=True)
        dest = os.path.join(self._quarantine_dir, key)
        moved = False
        for suffix in ("", ".json", ".sum"):
            try:
                os.replace(path + suffix, dest + suffix)
                moved = moved or suffix == ""
            except OSError:
                pass
        if reason:
            with open(dest + ".reason", "w") as handle:
                handle.write(reason + "\n")
        if moved:
            self.quarantined += 1
        return dest

    def quarantined_objects(self) -> int:
        """Objects currently in quarantine on disk — counts every
        writer's quarantines, not just this instance's."""
        try:
            names = os.listdir(self._quarantine_dir)
        except FileNotFoundError:
            return 0
        return sum(
            1
            for name in names
            if not name.endswith((".json", ".sum", ".reason"))
        )

    def get_meta(self, key: str) -> Optional[Dict]:
        try:
            with open(self._object_path(key) + ".json") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # -- inspection --------------------------------------------------------

    def entries(self) -> Iterator[CacheEntry]:
        """All stored objects, sorted by key (stable listings)."""
        found = []
        for prefix in sorted(os.listdir(self._objects_dir)):
            prefix_dir = os.path.join(self._objects_dir, prefix)
            # Only the two-hex fan-out dirs hold addressable objects;
            # quarantine/ in particular is not listable inventory.
            if (
                not os.path.isdir(prefix_dir)
                or len(prefix) != 2
                or any(c not in "0123456789abcdef" for c in prefix)
            ):
                continue
            for rest in sorted(os.listdir(prefix_dir)):
                if rest.endswith((".json", ".sum")) or rest.startswith(".tmp-"):
                    continue
                key = prefix + rest
                path = os.path.join(prefix_dir, rest)
                found.append(
                    CacheEntry(
                        key=key,
                        path=path,
                        size_bytes=os.path.getsize(path),
                        meta=self.get_meta(key) or {},
                    )
                )
        return iter(found)

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def clear(self) -> int:
        """Delete every object (sidecars and quarantine included);
        returns addressable objects removed."""
        removed = 0
        for entry in list(self.entries()):
            try:
                os.unlink(entry.path)
                removed += 1
            except FileNotFoundError:
                pass
            for suffix in (".json", ".sum"):
                try:
                    os.unlink(entry.path + suffix)
                except FileNotFoundError:
                    pass
        try:
            for name in os.listdir(self._quarantine_dir):
                try:
                    os.unlink(os.path.join(self._quarantine_dir, name))
                except OSError:
                    pass
        except FileNotFoundError:
            pass
        # The stats ledger describes objects that no longer exist; drop
        # it, and re-baseline so this instance's pre-clear activity is
        # not re-flushed into the fresh ledger.
        try:
            os.unlink(self._stats_path)
        except FileNotFoundError:
            pass
        self._flushed = self.stats()
        return removed

    def stats(self) -> Dict[str, int]:
        """This instance's counters — per-process by construction.  For
        fleet-wide truth, flush and read :meth:`persistent_totals`."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
        }

    # -- persistent stats --------------------------------------------------

    def flush_stats(self) -> Dict[str, int]:
        """Append this instance's unflushed stat deltas to the ledger.

        One JSON line per flush, written with ``O_APPEND`` in a single
        ``write`` call so concurrent pool workers interleave whole
        lines, never bytes.  Idempotent between new activity (an empty
        delta writes nothing).  Returns the delta that was flushed."""
        current = self.stats()
        delta = {
            name: current[name] - self._flushed[name] for name in self.STAT_FIELDS
        }
        if any(delta.values()):
            line = (json.dumps(delta, sort_keys=True) + "\n").encode("ascii")
            fd = os.open(self._stats_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
            self._flushed = current
        return delta

    def persistent_totals(self) -> Dict[str, int]:
        """Sum every flushed delta in the ledger: the true fleet-wide
        hit/miss/put/quarantine totals across all processes that ever
        flushed against this root.  Unflushed activity of live
        instances (this one included) is not visible here — the engine
        flushes at the end of every sharded run and every worker task.
        A torn or foreign line is skipped, not fatal."""
        totals = {name: 0 for name in self.STAT_FIELDS}
        totals["flushes"] = 0
        try:
            with open(self._stats_path, "r", encoding="ascii", errors="replace") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    totals["flushes"] += 1
                    for name in self.STAT_FIELDS:
                        value = record.get(name, 0)
                        if isinstance(value, int):
                            totals[name] += value
        except FileNotFoundError:
            pass
        return totals

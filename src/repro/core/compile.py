"""Compiled micro-routine hot path: replay programs for the EBOX.

The interpreted EBOX charges every microcycle one ``_tick`` at a time:
each simulated cycle is a Python call chain (slot lookup, monitor
strobe, IB background cycle) even though the vast majority of
instructions take the exact same non-stalled path through the exact
same microroutines every time they execute.  This module removes that
per-cycle interpretation the way nanoBench/uops.info remove measurement
overhead: precompute what a measured unit *will* do, replay its net
effect in a few batched steps, and validate the shortcut against exact
ground truth (the repository's bit-identical golden digests).

Three layers:

* :class:`RoutineProgram` / :class:`LayoutReplay` — the
  ``build_layout``-time specializer.  Each microroutine in the control
  store is flattened into a dense replay program: its per-slot
  histogram buckets plus the precomputed (bucket, count) increment
  sequences its compute charges produce, patched-entry abort detour
  included.
* :func:`compile_record` — the trace-JIT.  Given the raw bytes of one
  instruction it merges the routine programs along the decode →
  specifier → execute path into an :class:`InstructionRecord`: an op
  list of CONSUME / ADVANCE / SPEC / BRANCH steps that preserves the
  interpreted path's exact interleaving of I-stream consumption, cycle
  charging, event counting and memory references (so the cache, TB,
  write buffer and prefetcher see byte-identical traffic, and
  ``Counter`` key insertion order is preserved) while batching
  everything else.  Records are keyed by raw instruction bytes — the
  uops.info keying: one record per opcode × specifier-mode
  (× displacement) variant — and shared by every machine on the same
  layout.
* :func:`execute_record` — the replay engine ``EBox.step`` dispatches
  to.  It bails out *before mutating anything* unless the
  instruction's full byte image is either already in the IB or
  provably on its way: a side-effect-free lookahead (:func:`peek_image`
  / ``_image_ready``) checks that no fill or TB miss is in flight and
  that the TB-resident pages ahead of the prefetcher hold exactly the
  record's remaining bytes.  Mid-replay IB under-runs (the buffer was
  flushed by a taken branch and refills during the instruction) ride
  the interpreter's own ``_take_bytes`` stall loop, one consume per
  interpreted ``take``, so stall cycles land on the same wait routine
  at the same instant.  The other dynamic events (read/write stalls,
  TB misses, page faults, unaligned detours) are handled by the same
  ``EBox.data_read`` / ``data_write`` code the interpreter uses, so
  they are equivalent by construction.

Anything the replay cannot prove static falls back to the interpreted
path: I-stream bytes neither buffered nor verifiable ahead of the
prefetcher, instructions longer than the 16-byte image cap,
unknown opcodes or missing execute semantics, illegal specifier
combinations (the interpreter raises the architectural exception),
attached tracers, nonstandard monitor boards, and the
``REPRO_NO_COMPILE=1`` environment switch (the differential harness
runs every workload both ways).  Machine snapshots never contain replay
state, so a snapshot is byte-identical whether the run that produced it
was compiled or interpreted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.cpu.operands import (
    IllegalSpecifier,
    OperandRef,
    decode_specifier,
    expand_float_literal,
)
from repro.isa.datatypes import DataType, f_floating_encode
from repro.isa.opcodes import OPCODES, OpcodeGroup
from repro.isa.specifiers import (
    AccessType,
    AddressingMode,
    TABLE4_ROW_FOR_MODE,
)
from repro.memory.pagetable import PAGE_SIZE
from repro.ucode.control_store import CONTROL_STORE_SIZE
from repro.ucode.costs import INDEX_EXTRA_CYCLES, SPEC_COSTS
from repro.ucode.microword import MicroSlot

#: Environment switch: set to 1/true/yes/on to force the interpreted path.
NO_COMPILE_ENV = "REPRO_NO_COMPILE"

#: The IB's capacity; replay byte images may exceed it (see _MAX_IMAGE)
#: because the I-stream lookahead verifies bytes the buffer has not
#: accepted yet.
_IB_CAPACITY = 8

#: Cap on a record's byte image.  Instructions longer than the IB are
#: verified via the lookahead and consume through ``_take_bytes``
#: under-runs; beyond 16 bytes (three memory operands with long
#: displacements) instructions are rare enough to interpret forever.
_MAX_IMAGE = 16

#: Soft cap on distinct byte-keyed records per layout; beyond it new
#: records still execute but are not retained.
_RECORD_CACHE_CAP = 65_536

_MASK32 = 0xFFFFFFFF

_COMPUTE_A = MicroSlot.COMPUTE_A.value
_COMPUTE_B = MicroSlot.COMPUTE_B.value

# Replay op kinds (tuple tag ints, matched in execute_record).
OP_CONSUME = 0  # (OP_CONSUME, byte_count, wait_routine)
OP_ADVANCE = 1  # (OP_ADVANCE, cycles, ((bucket, count), ...))
OP_SPEC = 2  # (OP_SPEC, SpecTemplate)
OP_BRANCH = 3  # (OP_BRANCH, width, displacement)
OP_DECODE_TICK = 4  # (OP_DECODE_TICK, cycles, incs) — decode_overlap only

# Specifier template kinds.
K_VALUE = 0  # short literal / immediate: value precomputed
K_REGISTER = 1
K_MEMORY = 2

# Effective-address kinds for K_MEMORY templates.
EA_REG_DEFERRED = 0
EA_AUTOINCREMENT = 1
EA_AUTODECREMENT = 2
EA_AUTOINCREMENT_DEFERRED = 3
EA_DISPLACEMENT = 4
EA_DISPLACEMENT_DEFERRED = 5
EA_ABSOLUTE = 6
EA_RELATIVE = 7
EA_RELATIVE_DEFERRED = 8

_EA_KIND = {
    AddressingMode.REGISTER_DEFERRED: EA_REG_DEFERRED,
    AddressingMode.AUTOINCREMENT: EA_AUTOINCREMENT,
    AddressingMode.AUTODECREMENT: EA_AUTODECREMENT,
    AddressingMode.AUTOINCREMENT_DEFERRED: EA_AUTOINCREMENT_DEFERRED,
    AddressingMode.BYTE_DISPLACEMENT: EA_DISPLACEMENT,
    AddressingMode.WORD_DISPLACEMENT: EA_DISPLACEMENT,
    AddressingMode.LONG_DISPLACEMENT: EA_DISPLACEMENT,
    AddressingMode.BYTE_DISPLACEMENT_DEFERRED: EA_DISPLACEMENT_DEFERRED,
    AddressingMode.WORD_DISPLACEMENT_DEFERRED: EA_DISPLACEMENT_DEFERRED,
    AddressingMode.LONG_DISPLACEMENT_DEFERRED: EA_DISPLACEMENT_DEFERRED,
    AddressingMode.ABSOLUTE: EA_ABSOLUTE,
    AddressingMode.BYTE_RELATIVE: EA_RELATIVE,
    AddressingMode.WORD_RELATIVE: EA_RELATIVE,
    AddressingMode.LONG_RELATIVE: EA_RELATIVE,
    AddressingMode.BYTE_RELATIVE_DEFERRED: EA_RELATIVE_DEFERRED,
    AddressingMode.WORD_RELATIVE_DEFERRED: EA_RELATIVE_DEFERRED,
    AddressingMode.LONG_RELATIVE_DEFERRED: EA_RELATIVE_DEFERRED,
}

_DTYPE_SIZE = {
    DataType.BYTE: 1,
    DataType.WORD: 2,
    DataType.LONG: 4,
    DataType.QUAD: 8,
    DataType.F_FLOAT: 4,
    DataType.PACKED: 1,
    DataType.VARIABLE_FIELD: 4,
}


def compile_disabled_by_env() -> bool:
    """True when ``REPRO_NO_COMPILE`` asks for the interpreted path."""
    return os.environ.get(NO_COMPILE_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


#: Environment override for the codegen tier threshold: the number of
#: op-loop executions a record earns before its specialized function is
#: generated.  ``REPRO_COMPILE_TIER_THRESHOLD=1`` generates code at
#: record creation (warm benchmarks, the CI tier-1 leg); unset or
#: invalid values fall back to :data:`CODEGEN_THRESHOLD`.
TIER_THRESHOLD_ENV = "REPRO_COMPILE_TIER_THRESHOLD"


def codegen_threshold() -> int:
    """The effective codegen tier threshold (env override or default).

    Read at record creation, so it can be flipped between runs without
    reloading the module; already-created records keep the threshold
    they were born with (use :func:`clear_record_caches` to rebuild).
    """
    raw = os.environ.get(TIER_THRESHOLD_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return CODEGEN_THRESHOLD


@dataclass
class CompileStats:
    """Per-machine replay diagnostics (never part of measured results).

    Excluded from snapshots so compiled and interpreted runs pickle
    byte-identically; surfaced through MetricsRegistry / RunManifest.
    """

    #: microroutines flattened into RoutinePrograms for this layout
    routines_specialized: int = 0
    #: instruction records compiled (cache misses that built a program)
    records_compiled: int = 0
    #: fast-path executions (JIT cache hit, replay ran to completion)
    jit_hits: int = 0
    #: interpreted executions while compilation was enabled
    jit_misses: int = 0
    #: byte-image mismatches at a cached address (aliasing / rewrites)
    byte_fallbacks: int = 0
    #: instructions found permanently uncompilable
    uncompilable: int = 0
    #: cycles charged by replayed instructions
    fast_cycles: int = 0
    #: cycles charged by interpreted instructions (compile enabled)
    slow_cycles: int = 0
    #: chained superblocks generated (windows promoted to one function)
    superblocks_formed: int = 0
    #: superblock dispatches that retired at least one instruction
    superblock_runs: int = 0
    #: instructions retired inside superblock dispatches
    superblock_instructions: int = 0
    #: superblock dispatches that exited before the full window
    #: (pending interrupt, cycle limit, or a byte-guard mismatch)
    superblock_deopts: int = 0
    #: superblock deopts by reason ("interrupt" / "cycle_limit" /
    #: "byte_guard"), diagnosed at the deopt site
    deopt_reasons: dict = field(default_factory=dict)
    #: interpreter fallbacks by cause ("uncompilable" / "byte_mismatch"
    #: / "unresolved"), diagnosed on the jit-miss path
    fallback_causes: dict = field(default_factory=dict)

    @property
    def fast_instruction_fraction(self) -> float:
        total = self.jit_hits + self.jit_misses
        return self.jit_hits / total if total else 0.0

    @property
    def fast_cycle_fraction(self) -> float:
        total = self.fast_cycles + self.slow_cycles
        return self.fast_cycles / total if total else 0.0

    @property
    def superblock_mean_length(self) -> float:
        runs = self.superblock_runs
        return self.superblock_instructions / runs if runs else 0.0

    def to_dict(self) -> dict:
        return {
            "routines_specialized": self.routines_specialized,
            "records_compiled": self.records_compiled,
            "jit_hits": self.jit_hits,
            "jit_misses": self.jit_misses,
            "byte_fallbacks": self.byte_fallbacks,
            "uncompilable": self.uncompilable,
            "fast_cycles": self.fast_cycles,
            "slow_cycles": self.slow_cycles,
            "superblocks_formed": self.superblocks_formed,
            "superblock_runs": self.superblock_runs,
            "superblock_instructions": self.superblock_instructions,
            "superblock_deopts": self.superblock_deopts,
            "deopt_reasons": dict(sorted(self.deopt_reasons.items())),
            "fallback_causes": dict(sorted(self.fallback_causes.items())),
            "superblock_mean_length": round(self.superblock_mean_length, 2),
            "fast_instruction_fraction": round(self.fast_instruction_fraction, 4),
            "fast_cycle_fraction": round(self.fast_cycle_fraction, 4),
        }

    def merge_from(self, other: "CompileStats") -> None:
        """Accumulate another machine's stats (shard merging)."""
        self.routines_specialized = max(
            self.routines_specialized, other.routines_specialized
        )
        self.records_compiled += other.records_compiled
        self.jit_hits += other.jit_hits
        self.jit_misses += other.jit_misses
        self.byte_fallbacks += other.byte_fallbacks
        self.uncompilable += other.uncompilable
        self.fast_cycles += other.fast_cycles
        self.slow_cycles += other.slow_cycles
        self.superblocks_formed += other.superblocks_formed
        self.superblock_runs += other.superblock_runs
        self.superblock_instructions += other.superblock_instructions
        self.superblock_deopts += other.superblock_deopts
        for reason, count in other.deopt_reasons.items():
            self.deopt_reasons[reason] = self.deopt_reasons.get(reason, 0) + count
        for cause, count in other.fallback_causes.items():
            self.fallback_causes[cause] = self.fallback_causes.get(cause, 0) + count

    def note_deopt(self, reason: str) -> None:
        self.deopt_reasons[reason] = self.deopt_reasons.get(reason, 0) + 1

    def note_fallback(self, cause: str) -> None:
        self.fallback_causes[cause] = self.fallback_causes.get(cause, 0) + 1


#: MetricsRegistry name prefix for the replay diagnostics.
METRIC_PREFIX = "sim.compile."

# Lifecycle-event kinds, bound locally so emission sites read tersely.
from repro.obs.channel import (  # noqa: E402  (grouped with its users)
    KIND_DEOPT as _KIND_DEOPT,
    KIND_FALLBACK as _KIND_FALLBACK,
    KIND_RECORD_FORMED as _KIND_RECORD_FORMED,
    KIND_SUPERBLOCK_FORMED as _KIND_SUPERBLOCK_FORMED,
    KIND_TIER_UP as _KIND_TIER_UP,
)

#: CompileStats fields that accumulate (counters; the remainder are
#: point-in-time gauges).
_COUNTER_FIELDS = (
    "records_compiled",
    "jit_hits",
    "jit_misses",
    "byte_fallbacks",
    "uncompilable",
    "fast_cycles",
    "slow_cycles",
    "superblocks_formed",
    "superblock_runs",
    "superblock_instructions",
    "superblock_deopts",
)


def record_metrics(
    registry, stats: CompileStats, active: bool, disabled_by_tracer: bool = False
) -> None:
    """Expose one machine's :class:`CompileStats` through a
    :class:`~repro.obs.metrics.MetricsRegistry` under ``sim.compile.*``.

    Counts go in as counters (so pool workers' snapshots sum when the
    coordinator merges them); the specialization count and derived
    fractions go in as gauges.  ``active`` records whether the compiled
    path was enabled at all (0 under ``REPRO_NO_COMPILE=1`` or a
    tracer); ``disabled_by_tracer`` counts runs where an attached
    tracer — and nothing else — forced the interpreted path, so A/B
    comparisons can see the forcing in the metrics, not just stderr.
    """
    for name in _COUNTER_FIELDS:
        registry.counter(METRIC_PREFIX + name).inc(getattr(stats, name))
    for reason, count in sorted(stats.deopt_reasons.items()):
        registry.counter(
            METRIC_PREFIX + "deopt." + reason,
            "superblock deopts: " + reason,
        ).inc(count)
    for cause, count in sorted(stats.fallback_causes.items()):
        registry.counter(
            METRIC_PREFIX + "fallback." + cause,
            "interpreter fallbacks: " + cause,
        ).inc(count)
    if disabled_by_tracer:
        registry.counter(
            METRIC_PREFIX + "disabled_by_tracer",
            "runs where an attached tracer forced the interpreted path",
        ).inc(1)
    registry.gauge(
        METRIC_PREFIX + "routines_specialized",
        "microroutines flattened into replay programs",
    ).set(stats.routines_specialized)
    registry.gauge(
        METRIC_PREFIX + "fast_instruction_fraction",
        "instructions replayed from compiled records",
    ).set(round(stats.fast_instruction_fraction, 4))
    registry.gauge(
        METRIC_PREFIX + "fast_cycle_fraction",
        "cycles charged by the compiled fast path",
    ).set(round(stats.fast_cycle_fraction, 4))
    registry.gauge(
        METRIC_PREFIX + "active", "1 when the compiled path was enabled"
    ).set(1 if active else 0)


def stats_from_snapshot(snapshot) -> "dict | None":
    """Rebuild the compile-stats dict from a registry snapshot.

    The engine calls this to stamp a :class:`~repro.obs.provenance.RunManifest`
    without reaching into the machine; returns ``None`` when the
    snapshot carries no ``sim.compile.*`` metrics (pre-compile
    snapshots, foreign registries).
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if METRIC_PREFIX + "active" not in gauges:
        return None
    out = {}
    for source in (counters, gauges):
        for name, value in source.items():
            if name.startswith(METRIC_PREFIX):
                out[name[len(METRIC_PREFIX):]] = value
    # Fractions recomputed from the (possibly merged) counts beat the
    # last worker's gauge value.
    hits = out.get("jit_hits", 0)
    misses = out.get("jit_misses", 0)
    if hits + misses:
        out["fast_instruction_fraction"] = round(hits / (hits + misses), 4)
    fast = out.get("fast_cycles", 0)
    slow = out.get("slow_cycles", 0)
    if fast + slow:
        out["fast_cycle_fraction"] = round(fast / (fast + slow), 4)
    runs = out.get("superblock_runs", 0)
    if runs:
        out["superblock_mean_length"] = round(
            out.get("superblock_instructions", 0) / runs, 2
        )
    return out


# ---------------------------------------------------------------------------
# layer 1: routine specialization (build_layout time)
# ---------------------------------------------------------------------------


class RoutineProgram:
    """One microroutine flattened for replay.

    The dense form of what ``EBox._tick_slot`` recomputes every cycle:
    the histogram bucket of each slot and the increment sequence a
    ``_charge_compute``-style burst produces, patched-entry abort
    detour included.
    """

    __slots__ = ("routine", "buckets", "patched", "abort_bucket")

    def __init__(self, routine, bucket_map, abort_bucket):
        self.routine = routine
        # Dense per-slot bucket table, indexed by MicroSlot.value; None
        # for slots the routine does not implement.
        self.buckets = tuple(
            bucket_map[address] if address is not None else None
            for address in routine.slot_addrs
        )
        self.patched = routine.patched
        self.abort_bucket = abort_bucket

    def compute_incs(self, cycles):
        """(total_cycles, incs) for ``_charge_compute(routine, cycles)``."""
        if cycles <= 0:
            return 0, ()
        incs = []
        total = cycles
        if self.patched:
            # A patched entry microinstruction costs one abort cycle per
            # execution, charged before COMPUTE_A.
            incs.append((self.abort_bucket, 1))
            total += 1
        incs.append((self.buckets[_COMPUTE_A], 1))
        if cycles > 1:
            incs.append((self.buckets[_COMPUTE_B], cycles - 1))
        return total, tuple(incs)

    def slot_incs(self, slot, count=1):
        """(total_cycles, incs) for ``_tick_slot(routine, slot, count)``."""
        incs = []
        total = count
        if self.patched and slot == _COMPUTE_A:
            incs.append((self.abort_bucket, 1))
            total += 1
        incs.append((self.buckets[slot], count))
        return total, tuple(incs)


class LayoutReplay:
    """The specialized control store: one RoutineProgram per routine.

    Built once per :class:`~repro.ucode.routines.MicrocodeLayout`
    (``build_layout`` triggers it for the shared layout) and consulted
    by the instruction compiler.  The micro-PC → bucket fold is the
    monitor interface board's: identity below the top bucket,
    everything else folded onto it.
    """

    #: must match the histogram board the replay's bucket numbers hit
    BUCKETS = 16_000

    def __init__(self, layout):
        top = self.BUCKETS - 1
        bucket_map = [
            upc if upc < top else top for upc in range(CONTROL_STORE_SIZE)
        ]
        abort_bucket = bucket_map[layout.abort.address(MicroSlot.COMPUTE_A)]
        self.abort_bucket = abort_bucket
        self.programs = {}
        self._by_id = {}
        for routine in layout.store.routines:
            program = RoutineProgram(routine, bucket_map, abort_bucket)
            self.programs[routine.name] = program
            self._by_id[id(routine)] = program

    def program_for(self, routine) -> RoutineProgram:
        program = self._by_id.get(id(routine))
        if program is None:
            raise KeyError("routine {} is not in this layout".format(routine.name))
        return program

    def __len__(self):
        return len(self.programs)


#: control store -> LayoutReplay.  Keyed by the store (1:1 with its
#: layout, and hashable by identity — MicrocodeLayout is an eq-comparing
#: dataclass and therefore unhashable).  Lives outside the layout object
#: so machine snapshots (which pickle the layout) stay byte-identical
#: whether or not the replay layer was ever built.
_LAYOUT_REPLAYS: "WeakKeyDictionary" = WeakKeyDictionary()


def specialize_layout(layout) -> LayoutReplay:
    """Flatten every microroutine of ``layout`` into replay programs.

    Idempotent; ``build_layout`` calls this so a freshly built layout is
    specialized up front, and lazy callers (snapshot-restored layouts)
    get the same treatment on first use.
    """
    replay = _LAYOUT_REPLAYS.get(layout.store)
    if replay is None:
        replay = LayoutReplay(layout)
        _LAYOUT_REPLAYS[layout.store] = replay
    return replay


# ---------------------------------------------------------------------------
# layer 2: the instruction compiler (trace-JIT)
# ---------------------------------------------------------------------------


class SpecTemplate:
    """One operand specifier, fully resolved at compile time.

    Everything ``EBox._process_specifier_impl`` derives per execution —
    addressing mode, registers, extension, sizes, routine, event keys —
    is precomputed; only register contents and memory traffic remain
    dynamic.
    """

    __slots__ = (
        "kind",
        "ea_kind",
        "spec",
        "mode",
        "register",
        "extension",
        "size",
        "routine",
        "row",
        "position_class",
        "is_indexed",
        "index_register",
        "value",
        "rel_partial",
        "read_value",
        "reg_quad",
        "reg_mask",
        "count_key",
        "length",
    )


class InstructionRecord:
    """A compiled instruction: the merged replay program."""

    __slots__ = (
        "raw",
        "length",
        "ops",
        "opcode",
        "mnemonic",
        "handler",
        "exec_routine",
        "merge_pending",
        "last_source_routine",
        "run",
        "hits",
        "chainable",
    )

    #: distinguishes real records from NeverRecord on the hot path
    never = False


class NeverRecord:
    """A witness that instructions starting with ``raw`` never compile.

    Any buffer beginning with the witness prefix fails compilation at
    the same point for the same reason (specifier parsing is
    deterministic on prefixes), so the EBOX skips straight to the
    interpreter — which raises the same architectural exception the
    instruction always raised.
    """

    __slots__ = ("raw",)
    never = True

    def __init__(self, raw):
        self.raw = raw


class _NeedMoreBytes(Exception):
    """Compilation ran past the bytes currently available."""


class _Uncompilable(Exception):
    """The prefix seen so far proves this can never compile."""


class _Cursor:
    """Byte source over a raw image for ``decode_specifier``.

    Every successful ``take`` is logged so the compiler can emit one
    CONSUME op per interpreted ``take`` call — take boundaries are
    where IB stalls can happen, and where partially-consumed bytes
    free buffer room for the prefetcher.
    """

    __slots__ = ("raw", "pos", "takes")

    def __init__(self, raw, pos):
        self.raw = raw
        self.pos = pos
        self.takes = []

    def take(self, count):
        start = self.pos
        end = start + count
        raw = self.raw
        if end > len(raw):
            if end > _MAX_IMAGE:
                # Longer than the replay's image cap: never compiled.
                raise _Uncompilable()
            raise _NeedMoreBytes()
        self.pos = end
        self.takes.append(count)
        return raw[start:end]


class _OpBuilder:
    """Accumulates replay ops, merging adjacent compatible charges.

    Charge bursts merge when nothing interleaves: ``ib.run(a);
    ib.run(b)`` ≡ ``ib.run(a+b)``, and histogram increments inside one
    burst commute.  Consumes never merge — each mirrors exactly one
    interpreter ``take``, because that is the granularity at which the
    IB can stall (stall cycles must land on that take's wait routine)
    and at which consumed bytes free buffer room for the prefetcher.
    """

    __slots__ = ("ops",)

    def __init__(self):
        self.ops = []

    def consume(self, count, wait_routine):
        if count <= 0:
            return
        self.ops.append((OP_CONSUME, count, wait_routine))

    def advance(self, cycles, incs):
        if cycles <= 0:
            return
        ops = self.ops
        if ops and ops[-1][0] == OP_ADVANCE:
            prev = ops[-1]
            ops[-1] = (OP_ADVANCE, prev[1] + cycles, prev[2] + tuple(incs))
        else:
            ops.append((OP_ADVANCE, cycles, tuple(incs)))

    def spec(self, template):
        self.ops.append((OP_SPEC, template))

    def branch(self, width, displacement):
        self.ops.append((OP_BRANCH, width, displacement))

    def decode_tick(self, cycles, incs):
        self.ops.append((OP_DECODE_TICK, cycles, tuple(incs)))

    def build(self):
        return tuple(self.ops)


def compile_record(layout, raw, decode_overlap: bool):
    """Compile the instruction whose byte image starts ``raw``.

    Returns an :class:`InstructionRecord`, or a :class:`NeverRecord`
    when the prefix proves the instruction permanently uncompilable
    (unknown opcode, no execute semantics, illegal specifier
    combination, longer than the IB); raises :class:`_NeedMoreBytes`
    when ``raw`` is a prefix of a longer instruction and more bytes
    could change the answer.
    """
    from repro.cpu.semantics import HANDLERS

    if not raw:
        raise _NeedMoreBytes()
    opcode = OPCODES.get(raw[0])
    if opcode is None:
        return NeverRecord(bytes(raw[:1]))
    handler = HANDLERS.get(opcode.mnemonic)
    if handler is None:
        return NeverRecord(bytes(raw[:1]))

    replay = specialize_layout(layout)
    builder = _OpBuilder()
    cursor = _Cursor(raw, 1)

    builder.consume(1, layout.decode)
    decode_cycles, decode_incs = replay.program_for(layout.decode).slot_incs(
        _COMPUTE_A
    )
    if decode_overlap:
        # The decode cycle is hidden except after a taken branch; the
        # condition is only known at replay time.
        builder.decode_tick(decode_cycles, decode_incs)
    else:
        builder.advance(decode_cycles, decode_incs)

    last_source_routine = None
    last_operand_mode = None
    operand_count = 0

    try:
        for position, spec in enumerate(opcode.operands):
            if spec.access is AccessType.BRANCH:
                width = _DTYPE_SIZE[spec.dtype]
                value = int.from_bytes(cursor.take(width), "little")
                if value & (1 << (8 * width - 1)):
                    value -= 1 << (8 * width)
                builder.consume(width, layout.bdisp)
                builder.branch(width, value)
                continue

            template = _compile_specifier(
                replay, layout, position, spec, cursor, builder
            )
            builder.spec(template)
            operand_count += 1
            last_operand_mode = template.mode
            if spec.access is AccessType.READ:
                last_source_routine = template.routine
    except _Uncompilable:
        return NeverRecord(bytes(raw[: min(cursor.pos, _MAX_IMAGE)]))

    record = InstructionRecord()
    record.raw = bytes(raw[: cursor.pos])
    record.length = cursor.pos
    record.ops = builder.build()
    record.opcode = opcode
    record.mnemonic = opcode.mnemonic
    record.handler = handler
    record.exec_routine = layout.execute[opcode.mnemonic]
    record.merge_pending = (
        opcode.group in (OpcodeGroup.SIMPLE, OpcodeGroup.FIELD)
        and last_source_routine is not None
        and operand_count > 0
        and last_operand_mode
        in (AddressingMode.REGISTER, AddressingMode.SHORT_LITERAL)
    )
    record.last_source_routine = last_source_routine
    # SYSTEM-group instructions (HALT, CHMx, REI, LDPCTX, MTPR, ...) can
    # halt the machine, swap the event sink, redirect privilege or IPL —
    # exactly the state superblock prologues hoist — so they end chains.
    record.chainable = opcode.group is not OpcodeGroup.SYSTEM
    record.hits = 0
    threshold = codegen_threshold()
    if threshold <= 1:
        record.run = _codegen(record)
    else:
        record.run = _tiered_run(record, threshold)
    return record


def _compile_specifier(replay, layout, position, spec, cursor, builder):
    """Compile one operand specifier into charge ops + a SpecTemplate.

    Event increments ride on the template and are applied inside the
    SPEC step, at the same point relative to possible fault sites as
    the interpreter's, and in the same per-specifier order (Counter
    key insertion order is part of the bit-identity contract).
    """
    is_first = position == 0
    wait_routine = layout.spec1_wait if is_first else layout.spec26_wait
    first_take = len(cursor.takes)
    try:
        decoded = decode_specifier(cursor.take, spec.dtype)
    except IllegalSpecifier:
        raise _Uncompilable()

    position_class = "spec1" if is_first else "spec26"
    mode = decoded.mode

    # Microcode sharing: indexed specifiers run the shared index
    # microcode in the SPEC2-6 region, even for first specifiers.
    if decoded.is_indexed:
        routine_bank = layout.spec26
    else:
        routine_bank = layout.spec1 if is_first else layout.spec26
    routine = routine_bank[mode]

    # One CONSUME per interpreted take (spec byte, index base byte,
    # extension ...), all waiting on this position's wait routine.
    for count in cursor.takes[first_take:]:
        builder.consume(count, wait_routine)
    if decoded.is_indexed:
        cycles, incs = replay.program_for(layout.index_shared).compute_incs(
            INDEX_EXTRA_CYCLES
        )
        builder.advance(cycles, incs)
    cost = SPEC_COSTS[mode]
    cycles, incs = replay.program_for(routine).compute_incs(cost.address_cycles)
    builder.advance(cycles, incs)

    template = SpecTemplate()
    template.spec = spec
    template.mode = mode
    template.register = decoded.register
    template.extension = decoded.extension
    template.size = _DTYPE_SIZE[spec.dtype]
    template.routine = routine
    template.row = "spec1" if is_first else "spec2_6"
    template.position_class = position_class
    template.is_indexed = decoded.is_indexed
    template.index_register = decoded.index_register
    template.value = None
    template.rel_partial = 0
    template.read_value = False
    template.reg_quad = False
    template.reg_mask = 0
    template.count_key = (position_class, TABLE4_ROW_FOR_MODE[mode])
    template.length = decoded.length
    template.ea_kind = -1

    access = spec.access
    if mode is AddressingMode.SHORT_LITERAL:
        if access not in (AccessType.READ, AccessType.VFIELD):
            raise _Uncompilable()  # interpreter raises IllegalInstruction
        template.kind = K_VALUE
        if spec.dtype is DataType.F_FLOAT:
            template.value = f_floating_encode(
                expand_float_literal(decoded.extension)
            )
        else:
            template.value = decoded.extension
        return template

    if mode is AddressingMode.IMMEDIATE:
        if access not in (AccessType.READ, AccessType.VFIELD):
            raise _Uncompilable()
        template.kind = K_VALUE
        template.value = decoded.extension
        return template

    if mode is AddressingMode.REGISTER:
        if access is AccessType.ADDRESS:
            raise _Uncompilable()
        template.kind = K_REGISTER
        if access in (AccessType.READ, AccessType.MODIFY, AccessType.VFIELD):
            template.read_value = True
            # A field base in a register means the field lives in the
            # register itself: whole longword regardless of dtype.
            dtype = DataType.LONG if access is AccessType.VFIELD else spec.dtype
            if dtype is DataType.QUAD:
                template.reg_quad = True
            else:
                template.reg_mask = (1 << (8 * _DTYPE_SIZE[dtype])) - 1
        return template

    # Memory modes.
    template.kind = K_MEMORY
    template.ea_kind = _EA_KIND[mode]
    if template.ea_kind in (EA_RELATIVE, EA_RELATIVE_DEFERRED):
        # decode_va at EA time = instruction start VA + bytes consumed
        # through this specifier; the extension folds in statically.
        template.rel_partial = cursor.pos + decoded.extension
    template.read_value = access in (AccessType.READ, AccessType.MODIFY)
    return template


# ---------------------------------------------------------------------------
# record caches
# ---------------------------------------------------------------------------

#: control store -> ({(raw, overlap): record}, {first_byte: set(lengths)},
#: {image: sightings})
_LAYOUT_RECORDS: "WeakKeyDictionary" = WeakKeyDictionary()

#: Executions of a byte image seen before its record is compiled.  The
#: first sighting is interpreted and only counted (a dict increment,
#: ~0.3 µs); compilation (~100 µs) happens on the second.  One-shot
#: images — cold boot paths, straight-line code executed once — never
#: pay compilation at all, which matters because a workload's byte-image
#: working set can exceed the instruction budget of a short run.
_COMPILE_MIN_SIGHTINGS = 2

#: Bound on the sightings table; cleared wholesale if ever exceeded
#: (counting restarts, records already compiled are unaffected).
_SIGHTINGS_CAP = 1 << 18

#: Executions to wait before re-attempting compilation of an image
#: whose last attempt ran out of bytes (a chronically short probe — an
#: instruction tail the lookahead can never see, e.g. behind a
#: persistently in-flight fill).  Without backoff every execution would
#: re-parse and re-fail, ~100 µs a time.
_RETRY_BACKOFF = 64


def _layout_cache(layout):
    entry = _LAYOUT_RECORDS.get(layout.store)
    if entry is None:
        entry = ({}, {}, {})
        _LAYOUT_RECORDS[layout.store] = entry
    return entry


def resolve(layout, buf, decode_overlap: bool, stats=None):
    """Find (or compile) the record for the instruction starting ``buf``.

    ``buf`` is the IB's current byte run (a bytearray), or a
    :func:`peek_image` lookahead extending it.  Returns an
    :class:`InstructionRecord`, a :class:`NeverRecord`, or ``None``
    when more IB bytes could change the answer (not cached — the
    interpreter handles this execution and prefetch catches up).

    Record raws are prefix-unambiguous — specifier parsing is
    deterministic, so no valid instruction image is a proper prefix of
    another, and a failing witness prefix is never a prefix of a valid
    image — which makes probing the cached lengths for one first byte
    sound: at most one can match.
    """
    records, lengths, sightings = _layout_cache(layout)
    lens = lengths.get(buf[0])
    if lens:
        n = len(buf)
        for length in lens:
            if length <= n:
                record = records.get((bytes(buf[:length]), decode_overlap))
                if record is not None:
                    return record
    key = bytes(buf[:_MAX_IMAGE])
    count = sightings.get(key, 0) + 1
    # The tier-threshold override collapses the sighting gate too:
    # benchmarks and the CI tier leg want every generation cost paid on
    # first sight (cold run / warmup), not trickled across measurement.
    if count < _COMPILE_MIN_SIGHTINGS and codegen_threshold() > 1:
        if len(sightings) >= _SIGHTINGS_CAP:
            sightings.clear()
        sightings[key] = count
        return None
    try:
        record = compile_record(layout, bytes(buf), decode_overlap)
    except _NeedMoreBytes:
        sightings[key] = _COMPILE_MIN_SIGHTINGS - 1 - _RETRY_BACKOFF
        return None
    sightings.pop(key, None)
    if stats is not None:
        if record.never:
            stats.uncompilable += 1
        else:
            stats.records_compiled += 1
    if len(records) < _RECORD_CACHE_CAP:
        records[(record.raw, decode_overlap)] = record
        lengths.setdefault(record.raw[0], set()).add(len(record.raw))
    return record


# ---------------------------------------------------------------------------
# I-stream lookahead
# ---------------------------------------------------------------------------
#
# A taken branch flushes the IB, so the next instruction starts with an
# empty buffer — on branchy code a quarter of instructions would never
# validate their byte image against the IB and would fall back to the
# interpreter forever.  But what the prefetcher is *going* to deliver
# is already determined: with no fill or TB miss in flight, the next
# bytes are exactly physical memory at the translation of ``fetch_va``
# (the pager only ever maps fresh frames, handlers only write after the
# decode phase's consumes, and spec-phase data reads never change
# memory contents — only cache/TB timing state).  Both helpers below
# read through ``TranslationBuffer.peek`` and ``PhysicalMemory.dump``,
# which have no statistics or timing side effects, so a failed
# lookahead leaves the machine bit-identical to never having asked.
#
# An in-flight cache fill carries a longword that was read from memory
# in an earlier cycle and could in principle predate a store — so the
# lookahead verifies it: if memory *still* holds the same longword at
# the (still resident) translation, the stale read is indistinguishable
# from a fresh one and the lookahead sees straight through the fill.
# Any intervening store to that longword makes the comparison fail and
# the lookahead declines as before.


def _inflight_tail(ib, memory):
    """The byte run an in-flight fill will deliver, when provably current.

    Returns ``(bytes, next_va)`` — the undelivered bytes of the pending
    longword and the VA lookahead continues from — or ``None`` when the
    pending value can no longer be proven to match memory.
    """
    va = ib._pending_va
    aligned = va & ~3
    pa = memory.tb.peek(aligned)
    if pa is None:
        return None
    data = memory.physical.dump(pa, 4)
    if int.from_bytes(data, "little") != ib._pending_value:
        return None
    return data[va & 3 :], aligned + 4


def _image_ready(ebox, ib, buf, raw):
    """True when the IB will provably deliver the missing tail of ``raw``."""
    n = len(buf)
    if n >= len(raw) or not raw.startswith(buf):
        return False
    if ib.tb_miss_pending:
        return False
    memory = ebox.memory
    va = ib._fetch_va
    pos = n
    end = len(raw)
    if ib._pending_value is not None:
        tail = _inflight_tail(ib, memory)
        if tail is None:
            return False
        extra, va = tail
        take = end - pos
        if take > len(extra):
            take = len(extra)
        if extra[:take] != raw[pos : pos + take]:
            return False
        pos += take
    peek = memory.tb.peek
    dump = memory.physical.dump
    while pos < end:
        pa = peek(va)
        if pa is None:
            return False
        chunk = PAGE_SIZE - (va & (PAGE_SIZE - 1))
        if chunk > end - pos:
            chunk = end - pos
        if dump(pa, chunk) != raw[pos : pos + chunk]:
            return False
        va += chunk
        pos += chunk
    return True


def peek_image(ebox):
    """The next I-stream bytes from ``decode_va``, up to ``_MAX_IMAGE``.

    The IB's current contents extended by side-effect-free lookahead
    through the TB and physical memory; stops early (possibly returning
    fewer than ``_MAX_IMAGE`` bytes) at a non-resident page or an
    in-flight fill that no longer matches memory.  Returns ``None``
    when not even the first byte is determined.
    """
    ib = ebox.ib
    buf = ib._bytes
    n = len(buf)
    if n >= _MAX_IMAGE or ib.tb_miss_pending:
        return bytes(buf) if n else None
    memory = ebox.memory
    va = ib._fetch_va
    parts = [bytes(buf)]
    if ib._pending_value is not None:
        tail = _inflight_tail(ib, memory)
        if tail is None:
            return bytes(buf) if n else None
        extra, va = tail
        parts.append(extra)
        n += len(extra)
    peek = memory.tb.peek
    dump = memory.physical.dump
    need = _MAX_IMAGE - n
    while need > 0:
        pa = peek(va)
        if pa is None:
            break
        chunk = PAGE_SIZE - (va & (PAGE_SIZE - 1))
        if chunk > need:
            chunk = need
        data = dump(pa, chunk)
        if len(data) < chunk:
            break
        parts.append(data)
        va += chunk
        need -= chunk
    image = b"".join(parts)
    return image if image else None


# ---------------------------------------------------------------------------
# layer 3: per-record code generation
# ---------------------------------------------------------------------------

#: Executions of a record through the op-loop executor before its
#: specialized function is generated.  ``compile()``-ing the emitted
#: source costs ~0.5 ms per record; one-shot records (cold code, boot
#: paths) never earn it back, while hot-loop records cross this within
#: the warmup of any real run.
CODEGEN_THRESHOLD = 16


def _tiered_run(record, threshold=None):
    """The warm tier: interpret the op list, counting executions.

    Once the record proves hot, generate its specialized function and
    replace ``record.run`` with it — subsequent dispatches go straight
    to the generated code with no check at all.  ``threshold`` pins the
    promotion point at record creation (the env override); ``None``
    reads the module default live, so tests can patch it.
    """

    def run(ebox, start_va):
        hits = record.hits + 1
        record.hits = hits
        if hits >= (threshold if threshold is not None else CODEGEN_THRESHOLD):
            record.run = _codegen(record)
            channel = ebox._compile_events
            if channel is not None:
                channel.emit(
                    ebox.cycle_count, _KIND_TIER_UP, record.mnemonic, hits
                )
            return record.run(ebox, start_va)
        return execute_record(record, ebox, start_va)

    return run


def _op_uses(ops):
    """Which prologue bindings a record's op list needs.

    Returns ``(uses_counts, uses_regs, uses_data_read, uses_start_va)``;
    the generated prologue only hoists what the body references.
    """
    uses_counts = False
    uses_regs = False
    uses_data_read = False
    uses_start_va = False
    for op in ops:
        kind = op[0]
        if kind in (OP_ADVANCE, OP_DECODE_TICK):
            uses_counts = True
        elif kind == OP_SPEC:
            template = op[1]
            if template.kind == K_MEMORY:
                uses_regs = uses_regs or template.ea_kind != EA_ABSOLUTE
                uses_data_read = uses_data_read or (
                    template.read_value
                    or template.ea_kind
                    in (
                        EA_AUTOINCREMENT_DEFERRED,
                        EA_DISPLACEMENT_DEFERRED,
                        EA_RELATIVE_DEFERRED,
                    )
                )
                uses_regs = uses_regs or template.is_indexed
                uses_start_va = uses_start_va or template.ea_kind in (
                    EA_RELATIVE,
                    EA_RELATIVE_DEFERRED,
                )
            elif template.kind == K_REGISTER and template.read_value:
                uses_regs = True
    return uses_counts, uses_regs, uses_data_read, uses_start_va


def _fold_incs(incs):
    """Coalesce a charge burst's (bucket, count) pairs.

    Increments inside one burst commute; a merged burst can touch the
    same bucket twice.
    """
    folded = []
    for bucket, count in incs:
        for i, (seen, total) in enumerate(folded):
            if seen == bucket:
                folded[i] = (bucket, total + count)
                break
        else:
            folded.append((bucket, count))
    return folded


class _Deferred:
    """Statically-known event increments batched to one commit per block.

    A superblock defers every event/histogram increment whose amount is
    known at build time — specifier and opcode Counter keys, byte and
    instruction totals, the charge bursts' histogram buckets — and
    commits them once per dispatch.  Scalars and histogram buckets
    commute, so folding across segments is unconditionally safe;
    Counter-dict increments fold in first-occurrence program order so
    key insertion order (part of the bit-identity contract on
    serialized results) matches an interpreted run.  Snapshots taken at
    segment boundaries become the prefix tables early exits commit.
    """

    __slots__ = ("_totals",)

    def __init__(self):
        self._totals = {}  # (kind, attr, key) -> total, insertion-ordered

    def _add(self, entry, n):
        totals = self._totals
        totals[entry] = totals.get(entry, 0) + n

    def scalar(self, attr, n=1):
        self._add(("s", attr, None), n)

    def dict_count(self, attr, key, n=1):
        self._add(("d", attr, key), n)

    def buckets(self, incs):
        for bucket, count in incs:
            self._add(("c", None, bucket), count)

    def snapshot(self):
        """Commit entries so far, in first-occurrence order."""
        return tuple(
            (kind, attr, key, total)
            for (kind, attr, key), total in self._totals.items()
        )


def _commit_prefix(events, counts, entries):
    """Apply a prefix table: the deferred increments of the segments a
    superblock dispatch completed before exiting early."""
    for kind, attr, key, total in entries:
        if kind == "s":
            setattr(events, attr, getattr(events, attr) + total)
        elif kind == "d":
            getattr(events, attr)[key] += total
        elif counts is not None:  # "c": histogram buckets, collecting only
            counts[key] += total


def _emit_ops(emit, cref, record, ovar_prefix="_o", defer=None):
    """Emit the replay statements for one record's op list.

    The shared body of the per-record generator and the superblock
    generator: cycle charges, I-stream consumes, specifier evaluation
    and operand construction, at 4-space indent over the standard
    prologue names (``ebox``, ``ib``, ``buf``, ``events``,
    ``collecting``, ``counts``, ``ib_run``, ``regs``, ``regs_read``,
    ``data_read``, ``start_va``).  With ``defer`` set, statically-known
    event increments are collected there instead of emitted inline
    (OP_DECODE_TICK's stay inline — they are conditional on the
    previous instruction's redirect).  Returns the operand variable
    names for the handler call.
    """

    def emit_incs(incs, indent):
        emit("{}if collecting:".format(indent))
        for bucket, count in _fold_incs(incs):
            emit("{}    counts[{}] += {}".format(indent, bucket, count))

    operand_vars = []
    for op in record.ops:
        kind = op[0]
        if kind == OP_ADVANCE:
            if defer is None:
                emit_incs(op[2], "    ")
            else:
                defer.buckets(_fold_incs(op[2]))
            emit("    ebox.cycle_count += {}".format(op[1]))
            # The prefetcher's nothing-can-happen exits (fill
            # outstanding handled by run(); TB-miss paused or buffer
            # full advance the clock and return) inlined at the call
            # site — the overwhelmingly common burst.
            emit("    _w = ib._fill_wait")
            emit("    if _w == 0:")
            emit("        if ib.tb_miss_pending or len(buf) >= 8:")
            emit("            ib._now += {}".format(op[1]))
            emit("        else:")
            emit("            ib_run({})".format(op[1]))
            emit("    elif _w > {}:".format(op[1]))
            emit("        ib._fill_wait = _w - {}".format(op[1]))
            emit("        ib._now += {}".format(op[1]))
            emit("    else:")
            emit("        ib_run({})".format(op[1]))
        elif kind == OP_CONSUME:
            emit("    if len(buf) >= {}:".format(op[1]))
            emit("        del buf[:{}]".format(op[1]))
            emit("        ib._decode_va += {}".format(op[1]))
            emit("    else:")
            emit("        ebox._take_bytes({}, {})".format(op[1], cref(op[2])))
        elif kind == OP_SPEC:
            template = op[1]
            if defer is None:
                if template.is_indexed:
                    emit(
                        "    events.indexed_specifiers[{!r}] += 1".format(
                            template.position_class
                        )
                    )
                emit(
                    "    events.specifier_counts[{!r}] += 1".format(
                        template.count_key
                    )
                )
                emit("    events.specifier_bytes += {}".format(template.length))
            else:
                if template.is_indexed:
                    defer.dict_count(
                        "indexed_specifiers", template.position_class
                    )
                defer.dict_count("specifier_counts", template.count_key)
                defer.scalar("specifier_bytes", template.length)
            var = "{}{}".format(ovar_prefix, len(operand_vars))
            operand_vars.append(var)
            address = "None"
            value = "None"
            if template.kind == K_MEMORY:
                ea_kind = template.ea_kind
                reg = template.register
                if ea_kind == EA_DISPLACEMENT:
                    emit(
                        "    _addr = (regs_read({}) + {}) & 0xFFFFFFFF".format(
                            reg, template.extension
                        )
                    )
                elif ea_kind == EA_REG_DEFERRED:
                    emit("    _addr = regs_read({})".format(reg))
                elif ea_kind == EA_AUTOINCREMENT:
                    emit("    _addr = regs_read({})".format(reg))
                    emit(
                        "    regs.write({}, _addr + {})".format(reg, template.size)
                    )
                elif ea_kind == EA_AUTODECREMENT:
                    emit(
                        "    _addr = (regs_read({}) - {}) & 0xFFFFFFFF".format(
                            reg, template.size
                        )
                    )
                    emit("    regs.write({}, _addr)".format(reg))
                elif ea_kind == EA_AUTOINCREMENT_DEFERRED:
                    emit("    _ptr = regs_read({})".format(reg))
                    emit("    regs.write({}, _ptr + 4)".format(reg))
                    emit(
                        "    _addr = data_read(_ptr, 4, {}, {!r})".format(
                            cref(template.routine), template.row
                        )
                    )
                elif ea_kind == EA_DISPLACEMENT_DEFERRED:
                    emit(
                        "    _ptr = (regs_read({}) + {}) & 0xFFFFFFFF".format(
                            reg, template.extension
                        )
                    )
                    emit(
                        "    _addr = data_read(_ptr, 4, {}, {!r})".format(
                            cref(template.routine), template.row
                        )
                    )
                elif ea_kind == EA_RELATIVE:
                    emit(
                        "    _addr = (start_va + {}) & 0xFFFFFFFF".format(
                            template.rel_partial
                        )
                    )
                elif ea_kind == EA_ABSOLUTE:
                    emit("    _addr = {}".format(template.extension & _MASK32))
                else:  # EA_RELATIVE_DEFERRED
                    emit(
                        "    _ptr = (start_va + {}) & 0xFFFFFFFF".format(
                            template.rel_partial
                        )
                    )
                    emit(
                        "    _addr = data_read(_ptr, 4, {}, {!r})".format(
                            cref(template.routine), template.row
                        )
                    )
                if template.is_indexed:
                    emit(
                        "    _addr = (_addr + regs_read({}) * {}) & 0xFFFFFFFF".format(
                            template.index_register, template.size
                        )
                    )
                address = "_addr"
                if template.read_value:
                    emit(
                        "    _val = data_read(_addr, {}, {}, {!r})".format(
                            template.size, cref(template.routine), template.row
                        )
                    )
                    value = "_val"
            elif template.kind == K_REGISTER and template.read_value:
                if template.reg_quad:
                    emit(
                        "    _val = regs_read({}) | (regs_read({}) << 32)".format(
                            template.register, (template.register + 1) & 0xF
                        )
                    )
                else:
                    emit(
                        "    _val = regs_read({}) & {}".format(
                            template.register, template.reg_mask
                        )
                    )
                value = "_val"
            elif template.kind == K_VALUE:
                value = repr(template.value)
            emit(
                "    {} = {}({}, {}, {}, {}, {}, {}, {!r}, {})".format(
                    var,
                    cref(OperandRef),
                    cref(template.spec),
                    cref(template.mode),
                    template.register,
                    address,
                    value,
                    cref(template.routine),
                    template.position_class,
                    template.is_indexed,
                )
            )
        elif kind == OP_BRANCH:
            emit("    ebox.branch_displacement = {}".format(op[2]))
            if defer is None:
                emit("    events.branch_displacements += 1")
                emit("    events.displacement_bytes += {}".format(op[1]))
            else:
                defer.scalar("branch_displacements", 1)
                defer.scalar("displacement_bytes", op[1])
        else:  # OP_DECODE_TICK
            emit("    if ebox._last_instruction_redirected:")
            emit_incs(op[2], "        ")
            emit("        ebox.cycle_count += {}".format(op[1]))
            emit("        _w = ib._fill_wait")
            emit("        if _w == 0:")
            emit("            if ib.tb_miss_pending or len(buf) >= 8:")
            emit("                ib._now += {}".format(op[1]))
            emit("            else:")
            emit("                ib_run({})".format(op[1]))
            emit("        elif _w > {}:".format(op[1]))
            emit("            ib._fill_wait = _w - {}".format(op[1]))
            emit("            ib._now += {}".format(op[1]))
            emit("        else:")
            emit("            ib_run({})".format(op[1]))
    return operand_vars


def _codegen(record):
    """Generate a specialized replay function for ``record``.

    Emits straight-line Python with every compile-time constant inlined
    (cycle charges, histogram buckets, byte counts, event keys) and
    non-literal objects (routines, the opcode, the handler, enum
    members) bound as exec-namespace globals.  The emitted body is a
    statement-for-statement transcription of :func:`execute_record`'s
    op loop with the dispatch unrolled away — that function remains the
    readable oracle; tests hold the two executors equivalent.
    """
    consts = []
    names = []

    def cref(obj):
        for name, seen in zip(names, consts):
            if seen is obj:
                return name
        name = "_k{}".format(len(consts))
        names.append(name)
        consts.append(obj)
        return name

    lines = []
    emit = lines.append

    uses_counts, uses_regs, uses_data_read, _ = _op_uses(record.ops)

    emit("def _replay(ebox, start_va):")
    emit("    ib = ebox.ib")
    emit("    buf = ib._bytes")
    emit("    if not buf.startswith({!r}):".format(record.raw))
    emit(
        "        if not {}(ebox, ib, buf, {!r}):".format(
            cref(_image_ready), record.raw
        )
    )
    emit("            return False")
    emit("    events = ebox.events")
    emit("    board = ebox._board")
    emit("    collecting = board is not None and board._collecting")
    if uses_counts:
        emit("    counts = board._counts if collecting else None")
    emit("    ib_run = ebox._ib_run")
    emit("    regs = ebox.regs")
    if uses_regs:
        emit("    regs_read = regs.read")
    if uses_data_read:
        emit("    data_read = ebox.data_read")
    emit("    ib_stats = ib.stats")
    emit("    redirects_before = ib_stats.redirects")
    emit("    ebox._instruction_start_cycle = ebox.cycle_count")
    emit("    ebox.current_opcode = {}".format(cref(record.opcode)))
    emit("    ebox._exec_routine = {}".format(cref(record.exec_routine)))
    emit("    ebox._exec_a_used = False")
    emit("    ebox._last_source_routine = None")
    emit("    ebox.branch_displacement = None")

    operand_vars = _emit_ops(emit, cref, record)

    emit("    ebox._merge_pending = {}".format(record.merge_pending))
    if record.last_source_routine is not None:
        emit(
            "    ebox._last_source_routine = {}".format(
                cref(record.last_source_routine)
            )
        )
    emit("    events.instruction_bytes += {}".format(record.length))
    emit("    events.opcode_counts[{!r}] += 1".format(record.mnemonic))
    emit(
        "    {}(ebox, {}, [{}])".format(
            cref(record.handler), cref(record.opcode), ", ".join(operand_vars)
        )
    )
    emit("    ebox.events.instructions += 1")
    emit("    regs.pc = ib._decode_va")
    emit("    ebox._merge_pending = False")
    emit(
        "    ebox._last_instruction_redirected ="
        " ib_stats.redirects != redirects_before"
    )
    emit("    return True")

    namespace = dict(zip(names, consts))
    exec(
        compile("\n".join(lines), "<replay:{}>".format(record.mnemonic), "exec"),
        namespace,
    )
    return namespace["_replay"]


# ---------------------------------------------------------------------------
# layer 3b: chained superblocks
# ---------------------------------------------------------------------------
#
# When the same window of records repeatedly executes back-to-back with
# no fallback between them, the per-instruction dispatch (kernel loop,
# device poll, pending-interrupt check, record-cache probe, function
# call) is pure overhead: one generated function can replay the whole
# window.  Guard structure keeps every exit an exact interpreter state:
#
# * each segment re-checks its byte image against the IB (or the
#   side-effect-free lookahead) *before mutating anything*, so segments
#   are atomic — after k completed segments the machine is bit-identical
#   to k interpreted instructions, and a mid-block exit simply returns k
#   (self-modifying code, aliasing and IB under-runs all land here);
# * each boundary checks the hoisted interrupt-pending list and the
#   caller's cycle limit (the device board's next fire time), so
#   interrupt delivery and device polls happen at the same instruction
#   boundary, at the same cycle, as the stepped loop;
# * SYSTEM-group records never chain (they can halt, swap the event
#   sink, or change IPL — the state the block prologue hoists).
#
# Page faults, TB misses, and IB stalls are serviced *inside* segments
# by the same data_read/data_write/_take_bytes code the interpreter
# uses, so they need no guards.  The one divergence: if the run is
# aborted by an unrecoverable fault mid-segment (HaltExecution), the
# block's deferred event commits are lost — acceptable, because an
# aborted run's state is never part of a measured result.

#: Hard cap on a window's length; hot paths longer than this split
#: into consecutive blocks.
_SB_MAX_LEN = 8

#: Minimum window length worth a block (a single instruction already
#: has its per-record function).
_SB_MIN_LEN = 2

#: Times a specific window must recur before its block is generated.
#: Superblock ``compile()`` costs a few ms — an order of magnitude more
#: than a record — so the bar matches the record codegen threshold:
#: short default runs (tests, cold benchmarks) never pay it, while any
#: real experiment's warmup crosses it thousands of times over.  The
#: tier-threshold env override collapses this to first sight.
_SB_MIN_SIGHTINGS = 16

#: Cap on generated superblocks per layout.
_SB_CACHE_CAP = 4096

#: Cap on the candidate-window sightings table; cleared wholesale when
#: exceeded (counting restarts, installed blocks are unaffected).
_SB_CANDIDATE_CAP = 4096

#: Per-layout formation state, shared by every machine on the layout:
#: candidate-window sighting counts and the generated blocks, both
#: keyed by ``(head_va, window records)`` so a pool of machines running
#: the same program shares one generation cost per window.
_SB_STATE = WeakKeyDictionary()


def superblock_state(layout):
    state = _SB_STATE.get(layout.store)
    if state is None:
        state = {"candidates": {}, "blocks": {}, "installed": 0}
        _SB_STATE[layout.store] = state
    return state


def clear_record_caches() -> None:
    """Drop every layout's record and superblock caches.

    Benchmarks call this between arms so each run re-resolves, re-tiers
    and re-forms from cold under the current environment knobs
    (machines built afterwards start with empty per-machine caches; the
    layout-wide byte-keyed caches are what persists across machines).
    """
    _LAYOUT_RECORDS.clear()
    _SB_STATE.clear()


class Superblock:
    """A chained window of records replayed by one generated function.

    ``run(ebox, limit)`` returns the number of instructions retired:
    the full window, a prefix (boundary deopt — pending interrupt,
    cycle limit reached, byte-guard mismatch), or 0 when the first
    segment's own guard declines (state untouched, the per-record path
    handles the instruction).
    """

    __slots__ = ("records", "length", "run")


def chain_note(ebox, va, record):
    """Account one compiled-record execution toward superblock formation.

    Called by the EBOX on every per-record fast-path hit; consecutive
    chainable hits grow the chain, and the length cap closes it into a
    window.  Windows are *traces*: they run straight through branches,
    recording the path actually executed — replay is position-blind
    (every segment re-reads the live decode VA and re-checks its byte
    image before touching anything), so when a later execution branches
    the other way the mismatching segment's guard simply ends the run
    there.  Records are keyed by byte image and shared across every
    code site with the same bytes, so windows are keyed by their head
    *address* — a block only ever dispatches at the site whose
    successor path it recorded (first window wins per head VA).  A
    window sighted ``_SB_MIN_SIGHTINGS`` times is generated and
    installed in the machine's VA-keyed block cache.
    """
    chain = ebox._sb_chain
    if not record.chainable:
        # The chain so far still happened back-to-back; a short window
        # ending here is how code bracketed by SYSTEM instructions
        # (kernel paths full of MTPR/REI) earns blocks at all.
        if chain:
            _close_window(ebox, chain)
        return
    chain.append((va, record))
    if len(chain) >= _SB_MAX_LEN:
        _close_window(ebox, chain)


def chain_break(ebox):
    """A non-replay event ended the consecutive run: close what's there.

    Called where the EBOX abandons the chain (interpreter fallback,
    interrupt delivery) — the instructions already chained were still
    consecutive, so a long-enough prefix becomes a window rather than
    being thrown away.
    """
    chain = ebox._sb_chain
    if chain:
        _close_window(ebox, chain)


def _close_window(ebox, chain):
    """Turn the current chain into a (possibly cached) superblock."""
    if len(chain) < _SB_MIN_LEN:
        chain.clear()
        return
    head_va = chain[0][0]
    window = tuple(entry[1] for entry in chain)
    chain.clear()
    cache = ebox._sb_cache
    if head_va in cache:
        return
    state = ebox._sb_state
    # Keyed by head VA plus the *first* record only: the head bytes
    # pin the program, while the tail of a trace varies with where
    # earlier dispatches happened to cut the chain — keying on the
    # full window would make every machine re-sight and re-generate
    # its own variant of the same hot path.  Whichever variant is
    # generated first serves them all; a divergent tail just ends a
    # run early at its byte guard.
    key = (head_va, window[0])
    blocks = state["blocks"]
    sb = blocks.get(key)
    if sb is not None:
        cache[head_va] = sb
        return
    if state["installed"] >= _SB_CACHE_CAP:
        return
    candidates = state["candidates"]
    count = candidates.get(key, 0) + 1
    # The tier-threshold override lowers the bar to two sightings (the
    # steady-state benchmarks want formation done within warmup) but
    # not to one: first-wins installation means an unfiltered one-shot
    # variant would squat its head VA, and measured deopt rates
    # quadruple when it does.
    min_sightings = 2 if codegen_threshold() <= 1 else _SB_MIN_SIGHTINGS
    if count < min_sightings:
        if len(candidates) >= _SB_CANDIDATE_CAP:
            candidates.clear()
        candidates[key] = count
        return
    candidates.pop(key, None)
    sb = compile_superblock(window)
    blocks[key] = sb
    cache[head_va] = sb
    state["installed"] += 1
    ebox.compile_stats.superblocks_formed += 1
    channel = ebox._compile_events
    if channel is not None:
        channel.emit(
            ebox.cycle_count,
            _KIND_SUPERBLOCK_FORMED,
            "+".join(record.mnemonic for record in window),
            len(window),
        )


def compile_superblock(records):
    """Generate one dispatch function for a window of chainable records.

    The emitted body concatenates each record's replay statements
    (:func:`_emit_ops`, the same emitter the per-record generator
    uses), with the per-record prologue hoisted to block entry and
    every statically-known event increment deferred to one commit.
    Early exits commit the completed segments' prefix table, so any
    return value ``k`` leaves the machine byte-identical to ``k``
    interpreted instructions.
    """
    records = tuple(records)
    consts = []
    names = []

    def cref(obj):
        for name, seen in zip(names, consts):
            if seen is obj:
                return name
        name = "_k{}".format(len(consts))
        names.append(name)
        consts.append(obj)
        return name

    lines = []
    emit = lines.append

    uses_regs = False
    uses_data_read = False
    seg_start_va = []
    for record in records:
        _, regs_u, dread_u, sva_u = _op_uses(record.ops)
        uses_regs = uses_regs or regs_u
        uses_data_read = uses_data_read or dread_u
        seg_start_va.append(sva_u)

    emit("def _sbrun(ebox, limit):")
    emit("    ib = ebox.ib")
    emit("    buf = ib._bytes")
    emit("    events = ebox.events")
    emit("    board = ebox._board")
    emit("    collecting = board is not None and board._collecting")
    emit("    counts = board._counts if collecting else None")
    emit("    ib_run = ebox._ib_run")
    emit("    regs = ebox.regs")
    if uses_regs:
        emit("    regs_read = regs.read")
    if uses_data_read:
        emit("    data_read = ebox.data_read")
    emit("    ib_stats = ib.stats")
    emit("    machine = ebox.machine")
    # The pending list's identity is stable (post appends, acknowledge
    # removes in place), so one hoist covers every boundary check.
    emit("    pending = machine.interrupts._pending if machine is not None else ()")

    defer = _Deferred()
    commit = cref(_commit_prefix)
    for seg, record in enumerate(records):
        emit("    # -- segment {}: {}".format(seg, record.mnemonic))
        if seg:
            prefix = cref(defer.snapshot())
            emit("    if pending or ebox.cycle_count >= limit:")
            emit("        {}(events, counts, {})".format(commit, prefix))
            emit("        return {}".format(seg))
        emit("    if not buf.startswith({!r}):".format(record.raw))
        emit(
            "        if not {}(ebox, ib, buf, {!r}):".format(
                cref(_image_ready), record.raw
            )
        )
        if seg:
            emit("            {}(events, counts, {})".format(commit, prefix))
        emit("            return {}".format(seg))
        emit("    redirects_before = ib_stats.redirects")
        emit("    ebox._instruction_start_cycle = ebox.cycle_count")
        emit("    ebox.current_opcode = {}".format(cref(record.opcode)))
        emit("    ebox._exec_routine = {}".format(cref(record.exec_routine)))
        emit("    ebox._exec_a_used = False")
        emit("    ebox._last_source_routine = None")
        emit("    ebox.branch_displacement = None")
        if seg_start_va[seg]:
            emit("    start_va = ib._decode_va")
        operand_vars = _emit_ops(
            emit, cref, record, ovar_prefix="_o{}_".format(seg), defer=defer
        )
        emit("    ebox._merge_pending = {}".format(record.merge_pending))
        if record.last_source_routine is not None:
            emit(
                "    ebox._last_source_routine = {}".format(
                    cref(record.last_source_routine)
                )
            )
        defer.scalar("instruction_bytes", record.length)
        defer.dict_count("opcode_counts", record.mnemonic)
        emit(
            "    {}(ebox, {}, [{}])".format(
                cref(record.handler), cref(record.opcode), ", ".join(operand_vars)
            )
        )
        defer.scalar("instructions", 1)
        emit("    regs.pc = ib._decode_va")
        emit("    ebox._merge_pending = False")
        emit(
            "    ebox._last_instruction_redirected ="
            " ib_stats.redirects != redirects_before"
        )

    # Full-window commit, inlined (every completed dispatch runs it).
    emit("    # -- block commit")
    bucket_entries = []
    for kind, attr, key, total in defer.snapshot():
        if kind == "s":
            emit("    events.{} += {}".format(attr, total))
        elif kind == "d":
            emit("    events.{}[{!r}] += {}".format(attr, key, total))
        else:
            bucket_entries.append((key, total))
    if bucket_entries:
        emit("    if collecting:")
        for bucket, total in bucket_entries:
            emit("        counts[{}] += {}".format(bucket, total))
    emit("    return {}".format(len(records)))

    namespace = dict(zip(names, consts))
    exec(
        compile(
            "\n".join(lines),
            "<superblock:{}>".format("+".join(r.mnemonic for r in records)),
            "exec",
        ),
        namespace,
    )
    sb = Superblock()
    sb.records = records
    sb.length = len(records)
    sb.run = namespace["_sbrun"]
    return sb


# ---------------------------------------------------------------------------
# layer 4: the replay engine
# ---------------------------------------------------------------------------


def execute_record(record, ebox, start_va) -> bool:
    """Replay one compiled instruction on ``ebox``.

    Returns False — with **no state mutated** — when the record's byte
    image is neither in the IB nor provably on its way (see the
    I-stream lookahead section).  Mirrors the interpreted ``EBox.step``
    body exactly; see the module docstring for the equivalence
    argument.
    """
    ib = ebox.ib
    buf = ib._bytes
    if not buf.startswith(record.raw) and not _image_ready(
        ebox, ib, buf, record.raw
    ):
        return False

    events = ebox.events
    board = ebox._board
    collecting = board is not None and board._collecting
    counts = board._counts if collecting else None
    ib_run = ebox._ib_run
    regs = ebox.regs
    data_read = ebox.data_read
    redirects_before = ib.stats.redirects

    ebox._instruction_start_cycle = ebox.cycle_count
    ebox.current_opcode = record.opcode
    ebox._exec_routine = record.exec_routine
    ebox._exec_a_used = False
    ebox._last_source_routine = None
    ebox.branch_displacement = None

    operands = []
    append = operands.append

    for op in record.ops:
        kind = op[0]
        if kind == OP_ADVANCE:
            if collecting:
                for bucket, count in op[2]:
                    counts[bucket] += count
            cycles = op[1]
            ebox.cycle_count += cycles
            ib_run(cycles)
        elif kind == OP_CONSUME:
            count = op[1]
            if len(buf) >= count:
                del buf[:count]
                ib._decode_va += count
            else:
                # The interpreter's own IB-stall loop: ticks on this
                # take's wait routine, services I-stream TB misses,
                # consumes when the bytes land.
                ebox._take_bytes(count, op[2])
        elif kind == OP_SPEC:
            template = op[1]
            # Event accounting sits here — before this specifier's
            # memory traffic, after the previous one's — exactly where
            # the interpreter puts it relative to fault sites.
            if template.is_indexed:
                events.indexed_specifiers[template.position_class] += 1
            events.specifier_counts[template.count_key] += 1
            events.specifier_bytes += template.length
            tkind = template.kind
            if tkind == K_MEMORY:
                ea_kind = template.ea_kind
                register = template.register
                if ea_kind == EA_DISPLACEMENT:
                    address = (regs.read(register) + template.extension) & _MASK32
                elif ea_kind == EA_REG_DEFERRED:
                    address = regs.read(register)
                elif ea_kind == EA_AUTOINCREMENT:
                    address = regs.read(register)
                    regs.write(register, address + template.size)
                elif ea_kind == EA_AUTODECREMENT:
                    address = (regs.read(register) - template.size) & _MASK32
                    regs.write(register, address)
                elif ea_kind == EA_AUTOINCREMENT_DEFERRED:
                    pointer = regs.read(register)
                    regs.write(register, pointer + 4)
                    address = data_read(pointer, 4, template.routine, template.row)
                elif ea_kind == EA_DISPLACEMENT_DEFERRED:
                    pointer = (regs.read(register) + template.extension) & _MASK32
                    address = data_read(pointer, 4, template.routine, template.row)
                elif ea_kind == EA_RELATIVE:
                    address = (start_va + template.rel_partial) & _MASK32
                elif ea_kind == EA_ABSOLUTE:
                    address = template.extension & _MASK32
                else:  # EA_RELATIVE_DEFERRED
                    pointer = (start_va + template.rel_partial) & _MASK32
                    address = data_read(pointer, 4, template.routine, template.row)
                if template.is_indexed:
                    address = (
                        address + regs.read(template.index_register) * template.size
                    ) & _MASK32
                value = None
                if template.read_value:
                    value = data_read(
                        address, template.size, template.routine, template.row
                    )
            else:
                address = None
                value = template.value
                if template.read_value:  # K_REGISTER with READ/MODIFY/VFIELD
                    if template.reg_quad:
                        low = regs.read(template.register)
                        high = regs.read((template.register + 1) & 0xF)
                        value = low | (high << 32)
                    else:
                        value = regs.read(template.register) & template.reg_mask
            operand = _NEW(OperandRef)
            operand.spec = template.spec
            operand.mode = template.mode
            operand.register = template.register
            operand.address = address
            operand.value = value
            operand.routine = template.routine
            operand.position_class = template.position_class
            operand.is_indexed = template.is_indexed
            append(operand)
        elif kind == OP_BRANCH:
            ebox.branch_displacement = op[2]
            events.branch_displacements += 1
            events.displacement_bytes += op[1]
        else:  # OP_DECODE_TICK (decode_overlap machines only)
            if ebox._last_instruction_redirected:
                if collecting:
                    for bucket, count in op[2]:
                        counts[bucket] += count
                cycles = op[1]
                ebox.cycle_count += cycles
                ib_run(cycles)

    ebox._merge_pending = record.merge_pending
    ebox._last_source_routine = record.last_source_routine
    events.instruction_bytes += record.length
    events.opcode_counts[record.mnemonic] += 1

    record.handler(ebox, record.opcode, operands)

    # The handler may have swapped ebox.events (LDPCTX measurement
    # gating), exactly like the interpreter's live attribute read.
    ebox.events.instructions += 1
    regs.pc = ib._decode_va
    ebox._merge_pending = False
    ebox._last_instruction_redirected = ib.stats.redirects != redirects_before
    return True


_NEW = object.__new__

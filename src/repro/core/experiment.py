"""Experiment plumbing: run a monitored machine, collect every data
source, merge five workloads into the paper's composite.

An :class:`ExperimentResult` bundles the three channels the paper's
analysis drew on:

* the micro-PC histogram (via its :class:`~repro.core.reduction.Reduction`),
* the companion event counters (the stand-in for the cache study and
  "other measurements"),
* machine-side statistics (cache/TB/write-buffer/IB counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.monitor import UPCMonitor
from repro.core.reduction import Reduction, reduce_histogram
from repro.cpu.events import EventCounters
from repro.cpu.machine import VAX780


@dataclass
class MachineStats:
    """Hardware-side counters the monitor cannot see."""

    ib_references: int = 0
    ib_bytes_delivered: int = 0
    cache_read_hits: int = 0
    cache_read_misses: int = 0
    cache_i_read_misses: int = 0
    cache_d_read_misses: int = 0
    cache_write_hits: int = 0
    cache_write_misses: int = 0
    tb_hits: int = 0
    tb_misses: int = 0
    tb_i_misses: int = 0
    tb_d_misses: int = 0
    tb_process_flushes: int = 0
    write_buffer_writes: int = 0
    write_buffer_stall_cycles: int = 0
    unaligned_reads: int = 0
    unaligned_writes: int = 0
    sbi_reads: int = 0
    sbi_writes: int = 0
    cycles: int = 0

    @classmethod
    def from_machine(cls, machine: VAX780) -> "MachineStats":
        cache = machine.memory.cache.stats
        tb = machine.memory.tb.stats
        wb = machine.memory.write_buffer.stats
        sbi = machine.memory.sbi.stats
        alignment = machine.memory.alignment
        ib = machine.ebox.ib.stats
        return cls(
            ib_references=ib.references,
            ib_bytes_delivered=ib.bytes_delivered,
            cache_read_hits=cache.read_hits,
            cache_read_misses=cache.read_misses,
            cache_i_read_misses=cache.i_read_misses,
            cache_d_read_misses=cache.d_read_misses,
            cache_write_hits=cache.write_hits,
            cache_write_misses=cache.write_misses,
            tb_hits=tb.hits,
            tb_misses=tb.misses,
            tb_i_misses=tb.i_misses,
            tb_d_misses=tb.d_misses,
            tb_process_flushes=tb.process_flushes,
            write_buffer_writes=wb.writes,
            write_buffer_stall_cycles=wb.stall_cycles,
            unaligned_reads=alignment.unaligned_reads,
            unaligned_writes=alignment.unaligned_writes,
            sbi_reads=sbi.read_transactions,
            sbi_writes=sbi.write_transactions,
            cycles=machine.ebox.cycle_count,
        )

    def merge_from(self, other: "MachineStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def minus(self, baseline: "MachineStats") -> "MachineStats":
        """Field-wise difference: stats accumulated since ``baseline``.

        Used to restrict hardware counters to the measurement interval
        (the monitor gates itself; the cache/TB/IB counters cannot)."""
        delta = MachineStats()
        for name in self.__dataclass_fields__:
            setattr(delta, name, getattr(self, name) - getattr(baseline, name))
        return delta


@dataclass
class ExperimentResult:
    """Everything one measurement run (or a composite) produced."""

    name: str
    reduction: Reduction
    events: EventCounters
    stats: MachineStats

    @property
    def instructions(self) -> int:
        return self.reduction.instructions

    @property
    def cpi(self) -> float:
        return self.reduction.cpi


def result_from_machine(
    machine: VAX780,
    monitor: UPCMonitor,
    name: str = "run",
    stats_baseline: Optional[MachineStats] = None,
) -> ExperimentResult:
    """Dump the monitor and collect all channels after a run.

    ``stats_baseline`` (a snapshot taken when measurement started)
    restricts the hardware counters to the measurement interval."""
    counts, stalled = monitor.board.dump()
    reduction = reduce_histogram(counts, stalled, machine.layout, events=machine.events)
    stats = MachineStats.from_machine(machine)
    if stats_baseline is not None:
        stats = stats.minus(stats_baseline)
    return ExperimentResult(
        name=name,
        reduction=reduction,
        events=machine.events,
        stats=stats,
    )


def prepare_workload(
    profile_name: str,
    process_count: Optional[int] = None,
    seed_offset: int = 0,
    configure=None,
    tracer=None,
    compile_events=None,
):
    """Build one workload's machine, through boot, ready to run.

    Everything :func:`run_workload` does before the first instruction
    executes: build a monitored machine, apply the ablation hook, boot
    the mini-VMS kernel, create the profile's process population, attach
    the RTE as the terminal source.  Returns ``(kernel, monitor)``.

    Shared by :func:`run_workload` and the sharded executor in
    :mod:`repro.core.engine`, which snapshots the machine at shard
    boundaries instead of running straight through.
    """
    from repro.vms import VMSKernel
    from repro.workloads import (
        RemoteTerminalEmulator,
        generate_program,
        profile_by_name,
    )

    profile = profile_by_name(profile_name)
    monitor = UPCMonitor.build()
    machine = VAX780(monitor=monitor, tracer=tracer)
    if compile_events is not None:
        machine.attach_compile_events(compile_events)
    if configure is not None:
        # Ablation hook: swap cache/TB/write-buffer geometry or set EBOX
        # options before any code runs.
        configure(machine)
    kernel = VMSKernel(machine, terminal_period_cycles=11_000, quantum_ticks=3, seed=profile.seed + seed_offset)

    if process_count is None:
        process_count = max(3, min(6, profile.users // 7))
    for variant in range(process_count):
        program = generate_program(profile, variant=variant)
        process = kernel.create_process(
            "{}.{}".format(profile.name, variant), program.code, program.code_origin
        )
        kernel.load_into_process(process, program.data_origin, program.data)

    script = {
        "educational": "educational",
        "scientific": "scientific",
        "commercial": "commercial",
    }.get(profile.name, "timesharing")
    RemoteTerminalEmulator(kernel, users=profile.users, script_name=script, seed=profile.seed)

    kernel.boot()
    return kernel, monitor


def run_workload(
    profile_name: str,
    instructions: int = 30_000,
    warmup_instructions: int = 3_000,
    process_count: Optional[int] = None,
    seed_offset: int = 0,
    configure=None,
    return_board: bool = False,
    tracer=None,
    metrics=None,
    compile_events=None,
):
    """Run one of the paper's five workloads and collect its histogram.

    Builds a monitored machine, boots the mini-VMS kernel, creates a
    population of generated processes for the profile, attaches the RTE
    as the terminal source (see :func:`prepare_workload`), warms up
    unmeasured, then measures ``instructions`` instructions (the
    stand-in for the paper's one-hour runs).  ``configure(machine)``
    runs before boot, for ablations.

    With ``return_board=True`` the return value is ``(result, board)``,
    exposing the stopped histogram board so callers (the parallel
    engine, equality tests) can dump the raw banks as well.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) attaches cycle-level
    event tracing to the machine; the tracer is strictly passive, so a
    traced run produces bit-identical results to an untraced one.
    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) collects
    wall-clock self-profiling: per-phase timings and simulation speed.
    ``compile_events`` (a :class:`repro.obs.channel.EventChannel`)
    records compile-tier lifecycle events; unlike ``tracer`` it leaves
    the compiled hot path enabled.
    """
    import time as _time

    from repro.workloads import profile_by_name

    phase_started = _time.perf_counter()

    profile = profile_by_name(profile_name)
    kernel, monitor = prepare_workload(
        profile_name,
        process_count=process_count,
        seed_offset=seed_offset,
        configure=configure,
        tracer=tracer,
        compile_events=compile_events,
    )
    machine = kernel.machine
    if metrics is not None:
        metrics.histogram(
            "phase.build.seconds", "machine + kernel + workload construction"
        ).observe(_time.perf_counter() - phase_started)
        phase_started = _time.perf_counter()
    kernel.run(max_instructions=warmup_instructions)
    if metrics is not None:
        metrics.histogram(
            "phase.warmup.seconds", "unmeasured warmup instructions"
        ).observe(_time.perf_counter() - phase_started)
        phase_started = _time.perf_counter()
    baseline = MachineStats.from_machine(machine)
    kernel.start_measurement()
    kernel.run(max_instructions=instructions)
    kernel.stop_measurement()
    measure_seconds = _time.perf_counter() - phase_started
    result = result_from_machine(
        machine, monitor, name=profile.name, stats_baseline=baseline
    )
    if metrics is not None:
        metrics.histogram(
            "phase.measure.seconds", "measured instructions"
        ).observe(measure_seconds)
        if measure_seconds > 0:
            metrics.gauge(
                "speed.instructions_per_second", "simulated instructions / wall second"
            ).set(result.instructions / measure_seconds)
            metrics.gauge(
                "speed.cycles_per_second", "simulated cycles / wall second"
            ).set(result.stats.cycles / measure_seconds)
        from repro.core import compile as replay

        replay.record_metrics(
            metrics,
            machine.ebox.compile_stats,
            machine.ebox._compile_active,
            disabled_by_tracer=machine.ebox._compile_disabled_by_tracer,
        )
    if return_board:
        return result, monitor.board
    return result


def run_composite_experiment(
    instructions_per_workload: int = 30_000,
    warmup_instructions: int = 3_000,
    workloads: Optional[List[str]] = None,
    jobs: int = 1,
    seed_offset: int = 0,
    process_count: Optional[int] = None,
    overrides: Optional[dict] = None,
    progress=None,
    shards: int = 1,
    cache=None,
    policy=None,
):
    """The paper's headline measurement: the composite of all five
    workloads (the sum of the five UPC histograms).

    ``jobs`` fans the five independent workload runs out over a process
    pool (``jobs=1`` is the in-process reference path; both produce
    bit-identical composites).  ``seed_offset`` and ``process_count``
    apply to every workload; ``overrides`` maps a workload name to a
    dict of per-workload :class:`~repro.core.engine.RunSpec` field
    overrides, e.g. ``{"scientific": {"seed_offset": 3}}``.  ``progress``
    is forwarded to :func:`~repro.core.engine.run_specs`.

    ``shards > 1`` splits each workload's measurement into resumable
    shards (see :func:`~repro.core.engine.execute_spec_sharded`);
    ``cache`` (a :class:`~repro.core.runcache.RunCache`) lets repeated
    runs reuse finished shards and boundary snapshots.  The composite
    stays bit-identical whatever the shard count.

    ``policy`` (a :class:`~repro.core.resilience.ResiliencePolicy`)
    governs failure handling; ``None`` keeps the historical
    first-failure-raises behaviour and returns the bare
    :class:`ExperimentResult`.  With ``policy.on_error == "collect"``
    the return value is ``(result, report)`` — the composite of every
    workload that succeeded (``None`` when all failed) plus the
    :class:`~repro.core.resilience.FailureReport`.
    """
    from repro.core.engine import RunSpec, Scheduler  # lazy: engine imports us
    from repro.workloads import COMPOSITE_WORKLOAD_NAMES

    names = workloads if workloads is not None else COMPOSITE_WORKLOAD_NAMES
    overrides = overrides or {}
    specs = []
    for name in names:
        fields = {
            "workload": name,
            "instructions": instructions_per_workload,
            "warmup_instructions": warmup_instructions,
            "seed_offset": seed_offset,
            "process_count": process_count,
        }
        fields.update(overrides.get(name, {}))
        specs.append(RunSpec(**fields))
    collect = policy is not None and policy.on_error == "collect"
    # The CLI is just another scheduler client: the same front door the
    # experiment service feeds, sharded or not, one orchestration path.
    scheduler = Scheduler(jobs=jobs, shards=shards, cache=cache, policy=policy)
    outcome = scheduler.run_specs(specs, progress=progress)
    if collect:
        runs = outcome.results
        result = composite([run.result for run in runs]) if runs else None
        return result, outcome.report
    return composite([run.result for run in outcome if run is not None])


def composite(results: List[ExperimentResult], name: str = "composite") -> ExperimentResult:
    """The paper's composite: the *sum* of the per-workload histograms.

    Matrices, events and hardware stats all add; per-instruction views
    recompute from the summed totals, exactly like summing the five UPC
    histograms before reduction.
    """
    if not results:
        raise ValueError("composite of zero experiments")
    merged_matrix = {
        row: {col: 0.0 for col in results[0].reduction.matrix[row]}
        for row in results[0].reduction.matrix
    }
    merged_routines = {}
    total_cycles = 0.0
    instructions = 0
    merged_events = EventCounters()
    merged_stats = MachineStats()
    for result in results:
        for row, columns in result.reduction.matrix.items():
            for column, cycles in columns.items():
                merged_matrix[row][column] += cycles
        for routine, (normal, stalled) in result.reduction.routine_cycles.items():
            previous = merged_routines.get(routine, (0, 0))
            merged_routines[routine] = (previous[0] + normal, previous[1] + stalled)
        total_cycles += result.reduction.total_cycles
        instructions += result.reduction.instructions
        merged_events.merge_from(result.events)
        merged_stats.merge_from(result.stats)
    reduction = Reduction(
        matrix=merged_matrix,
        instructions=instructions,
        total_cycles=total_cycles,
        routine_cycles=merged_routines,
        events=merged_events,
    )
    return ExperimentResult(
        name=name, reduction=reduction, events=merged_events, stats=merged_stats
    )

"""Persist and reload measurement results.

The original experiments banked their raw UPC histograms on the measured
machine itself ("the data collected was immediately available on a
machine of sufficient capacity to do the data reduction") and re-analysed
them repeatedly.  This module provides the same workflow: dump a raw
histogram (or a full :class:`~repro.core.experiment.ExperimentResult`) to
JSON, reload it later, and re-run any table against it without re-running
the machine.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.experiment import ExperimentResult, MachineStats
from repro.core.monitor import HistogramBoard
from repro.core.reduction import Reduction, reduce_histogram
from repro.cpu.events import EventCounters
from repro.ucode.routines import MicrocodeLayout, build_layout

FORMAT_VERSION = 1


def histogram_to_dict(board: HistogramBoard) -> Dict:
    """Serialize a histogram board's two banks (sparsely)."""
    counts, stalled = board.dump()
    return {
        "version": FORMAT_VERSION,
        "buckets": board.buckets,
        "counts": {str(i): c for i, c in enumerate(counts) if c},
        "stalled": {str(i): c for i, c in enumerate(stalled) if c},
    }


def histogram_from_dict(payload: Dict) -> HistogramBoard:
    """Rebuild a histogram board from :func:`histogram_to_dict` output."""
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported histogram format {!r}".format(payload.get("version")))
    board = HistogramBoard(buckets=payload["buckets"])
    board.start()
    for bucket, count in payload["counts"].items():
        board.strobe(int(bucket), repeat=count)
    for bucket, count in payload["stalled"].items():
        board.strobe(int(bucket), stalled=True, repeat=count)
    board.stop()
    return board


def _events_to_dict(events: EventCounters) -> Dict:
    return {
        "instructions": events.instructions,
        "opcode_counts": dict(events.opcode_counts),
        "branch_executed": dict(events.branch_executed),
        "branch_taken": dict(events.branch_taken),
        "specifier_counts": {
            "{}|{}".format(*key): count for key, count in events.specifier_counts.items()
        },
        "indexed_specifiers": dict(events.indexed_specifiers),
        "branch_displacements": events.branch_displacements,
        "instruction_bytes": events.instruction_bytes,
        "specifier_bytes": events.specifier_bytes,
        "displacement_bytes": events.displacement_bytes,
        "reads_by_source": dict(events.reads_by_source),
        "writes_by_source": dict(events.writes_by_source),
        "software_interrupt_requests": events.software_interrupt_requests,
        "interrupts_delivered": events.interrupts_delivered,
        "context_switches": events.context_switches,
        "page_faults": events.page_faults,
        "arithmetic_exceptions": events.arithmetic_exceptions,
    }


def _events_from_dict(payload: Dict) -> EventCounters:
    events = EventCounters()
    events.instructions = payload["instructions"]
    events.opcode_counts.update(payload["opcode_counts"])
    events.branch_executed.update(payload["branch_executed"])
    events.branch_taken.update(payload["branch_taken"])
    for key, count in payload["specifier_counts"].items():
        position, row = key.split("|", 1)
        events.specifier_counts[(position, row)] = count
    events.indexed_specifiers.update(payload["indexed_specifiers"])
    events.branch_displacements = payload["branch_displacements"]
    events.instruction_bytes = payload["instruction_bytes"]
    events.specifier_bytes = payload["specifier_bytes"]
    events.displacement_bytes = payload["displacement_bytes"]
    events.reads_by_source.update(payload["reads_by_source"])
    events.writes_by_source.update(payload["writes_by_source"])
    events.software_interrupt_requests = payload["software_interrupt_requests"]
    events.interrupts_delivered = payload["interrupts_delivered"]
    events.context_switches = payload["context_switches"]
    events.page_faults = payload["page_faults"]
    events.arithmetic_exceptions = payload["arithmetic_exceptions"]
    return events


def result_to_json(result: ExperimentResult, board: Optional[HistogramBoard] = None) -> str:
    """Serialize an experiment result (optionally with its raw histogram).

    When ``board`` is given the raw banks travel along, so the reloaded
    result can be *re-reduced* against a fresh control-store map; without
    it only the already-reduced matrix is stored.
    """
    payload = {
        "version": FORMAT_VERSION,
        "name": result.name,
        "matrix": result.reduction.matrix,
        "instructions": result.reduction.instructions,
        "total_cycles": result.reduction.total_cycles,
        "routine_cycles": {
            name: list(counts) for name, counts in result.reduction.routine_cycles.items()
        },
        "events": _events_to_dict(result.events),
        "stats": {
            name: getattr(result.stats, name)
            for name in result.stats.__dataclass_fields__
        },
    }
    if board is not None:
        payload["histogram"] = histogram_to_dict(board)
    return json.dumps(payload)


def result_from_json(text: str, layout: Optional[MicrocodeLayout] = None) -> ExperimentResult:
    """Reload an experiment result.

    If the payload carries a raw histogram, it is re-reduced against
    ``layout`` (or a freshly built one); otherwise the stored reduction
    is reconstructed as-is.
    """
    payload = json.loads(text)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported result format {!r}".format(payload.get("version")))
    events = _events_from_dict(payload["events"])
    if "histogram" in payload:
        board = histogram_from_dict(payload["histogram"])
        counts, stalled = board.dump()
        reduction = reduce_histogram(
            counts, stalled, layout if layout is not None else build_layout(), events=events
        )
    else:
        reduction = Reduction(
            matrix=payload["matrix"],
            instructions=payload["instructions"],
            total_cycles=payload["total_cycles"],
            routine_cycles={
                name: tuple(counts)
                for name, counts in payload["routine_cycles"].items()
            },
            events=events,
        )
    stats = MachineStats(**payload["stats"])
    return ExperimentResult(
        name=payload["name"], reduction=reduction, events=events, stats=stats
    )

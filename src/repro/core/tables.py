"""Every table of the paper, computed from an
:class:`~repro.core.experiment.ExperimentResult`.

Each ``tableN`` function returns plain dictionaries keyed the way
:mod:`repro.core.paper_data` is keyed, so benches and reports can zip the
two sides together mechanically.
"""

from __future__ import annotations

from typing import Dict

from repro.core.experiment import ExperimentResult
from repro.core.reduction import COLUMNS, EXEC_ROWS, ROWS
from repro.isa.opcodes import OPCODES, BranchClass, OpcodeGroup, opcode_by_mnemonic

_GROUP_KEYS = [group.value for group in OpcodeGroup]

_TABLE4_MODE_ROWS = [
    "register",
    "short_literal",
    "immediate",
    "displacement",
    "register_deferred",
    "displacement_deferred",
    "absolute",
    "auto_inc_dec_def",
]

_TABLE5_ROWS = [
    "spec1",
    "spec2_6",
    "simple",
    "field",
    "float",
    "callret",
    "system",
    "character",
    "decimal",
    "other",
]


def table1(result: ExperimentResult) -> Dict[str, float]:
    """Opcode group frequency, percent of all instruction executions."""
    events = result.events
    totals = {key: 0 for key in _GROUP_KEYS}
    for mnemonic, count in events.opcode_counts.items():
        totals[opcode_by_mnemonic(mnemonic).group.value] += count
    instructions = sum(totals.values())
    if not instructions:
        return {key: 0.0 for key in _GROUP_KEYS}
    return {key: 100.0 * count / instructions for key, count in totals.items()}


def table2(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """PC-changing instruction classes: frequency and taken rate.

    Returns rows keyed by the Table 2 class name, each with
    ``percent_of_instructions``, ``percent_taken`` and
    ``taken_percent_of_instructions``, plus a ``total`` row.
    """
    events = result.events
    instructions = events.instructions or 1
    rows = {}
    total_executed = 0
    total_taken = 0
    for branch_class in BranchClass:
        executed = events.branch_executed[branch_class.value]
        taken = events.branch_taken[branch_class.value]
        total_executed += executed
        total_taken += taken
        rows[branch_class.value] = {
            "percent_of_instructions": 100.0 * executed / instructions,
            "percent_taken": 100.0 * taken / executed if executed else 0.0,
            "taken_percent_of_instructions": 100.0 * taken / instructions,
        }
    rows["total"] = {
        "percent_of_instructions": 100.0 * total_executed / instructions,
        "percent_taken": 100.0 * total_taken / total_executed if total_executed else 0.0,
        "taken_percent_of_instructions": 100.0 * total_taken / instructions,
    }
    return rows


def table3(result: ExperimentResult) -> Dict[str, float]:
    """Specifiers and branch displacements per average instruction."""
    events = result.events
    instructions = events.instructions or 1
    spec1 = sum(
        count for (position, _), count in events.specifier_counts.items() if position == "spec1"
    )
    spec26 = sum(
        count for (position, _), count in events.specifier_counts.items() if position == "spec26"
    )
    return {
        "spec1": spec1 / instructions,
        "spec26": spec26 / instructions,
        "branch_displacements": events.branch_displacements / instructions,
    }


def table4(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Operand specifier mode distribution (percent), plus percent indexed."""
    events = result.events
    spec1_total = sum(
        count for (position, _), count in events.specifier_counts.items() if position == "spec1"
    )
    spec26_total = sum(
        count for (position, _), count in events.specifier_counts.items() if position == "spec26"
    )
    grand_total = spec1_total + spec26_total

    def percent(position: str, row: str) -> float:
        count = events.specifier_counts[(position, row)]
        base = spec1_total if position == "spec1" else spec26_total
        return 100.0 * count / base if base else 0.0

    rows = {}
    for mode_row in _TABLE4_MODE_ROWS:
        both = events.specifier_counts[("spec1", mode_row)] + events.specifier_counts[
            ("spec26", mode_row)
        ]
        rows[mode_row] = {
            "spec1": percent("spec1", mode_row),
            "spec26": percent("spec26", mode_row),
            "total": 100.0 * both / grand_total if grand_total else 0.0,
        }
    indexed1 = events.indexed_specifiers["spec1"]
    indexed26 = events.indexed_specifiers["spec26"]
    rows["percent_indexed"] = {
        "spec1": 100.0 * indexed1 / spec1_total if spec1_total else 0.0,
        "spec26": 100.0 * indexed26 / spec26_total if spec26_total else 0.0,
        "total": 100.0 * (indexed1 + indexed26) / grand_total if grand_total else 0.0,
    }
    return rows


def table5(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """D-stream reads and writes per average instruction, by source."""
    events = result.events
    instructions = events.instructions or 1
    rows = {}
    total_reads = 0
    total_writes = 0
    for row in _TABLE5_ROWS:
        reads = events.reads_by_source[row]
        writes = events.writes_by_source[row]
        total_reads += reads
        total_writes += writes
        rows[row] = {"reads": reads / instructions, "writes": writes / instructions}
    rows["total"] = {
        "reads": total_reads / instructions,
        "writes": total_writes / instructions,
    }
    return rows


def table6(result: ExperimentResult) -> Dict[str, float]:
    """Estimated size of the average instruction, paper-style decomposition."""
    events = result.events
    instructions = events.instructions or 1
    spec_count = sum(events.specifier_counts.values())
    specs_per_instruction = spec_count / instructions
    spec_size = events.specifier_bytes / spec_count if spec_count else 0.0
    disp_per_instruction = events.branch_displacements / instructions
    disp_size = (
        events.displacement_bytes / events.branch_displacements
        if events.branch_displacements
        else 0.0
    )
    return {
        "opcode_bytes": 1.0,
        "specifiers_per_instruction": specs_per_instruction,
        "specifier_size": spec_size,
        "displacements_per_instruction": disp_per_instruction,
        "displacement_size": disp_size,
        "total_bytes": events.instruction_bytes / instructions,
    }


def table7(result: ExperimentResult) -> Dict[str, float]:
    """Interrupt and context-switch headway (instructions between events)."""
    events = result.events
    instructions = events.instructions

    def headway(count: int) -> float:
        return instructions / count if count else float("inf")

    return {
        "software_interrupt_requests": headway(events.software_interrupt_requests),
        "interrupts": headway(events.interrupts_delivered),
        "context_switches": headway(events.context_switches),
    }


def table8(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """The cycles-per-average-instruction matrix, with totals.

    Rows and columns follow :mod:`repro.core.reduction`; a ``total``
    column is appended to each row and a ``total`` row at the bottom.
    """
    per_instruction = result.reduction.per_instruction()
    out = {}
    column_totals = {column: 0.0 for column in COLUMNS}
    for row in ROWS:
        columns = dict(per_instruction[row])
        columns["total"] = sum(columns.values())
        for column in COLUMNS:
            column_totals[column] += columns[column]
        out[row] = columns
    totals = dict(column_totals)
    totals["total"] = sum(column_totals.values())
    out["total"] = totals
    return out


def table9(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Cycles per instruction *within* each group (execute phase only,
    unweighted by group frequency)."""
    events = result.events
    group_counts = {key: 0 for key in _GROUP_KEYS}
    for mnemonic, count in events.opcode_counts.items():
        group_counts[opcode_by_mnemonic(mnemonic).group.value] += count
    out = {}
    for row in EXEC_ROWS:
        cycles = result.reduction.exec_cycles_for_group(row)
        count = group_counts[row]
        columns = {
            column: (cycles[column] / count if count else 0.0)
            for column in ("compute", "read", "rstall", "write", "wstall")
        }
        columns["total"] = sum(columns.values())
        out[row] = columns
    return out


def sec41_istream(result: ExperimentResult) -> Dict[str, float]:
    """Section 4.1: IB reference behaviour."""
    instructions = result.events.instructions or 1
    references = result.stats.ib_references
    return {
        "ib_references_per_instruction": references / instructions,
        "bytes_per_reference": (
            result.stats.ib_bytes_delivered / references if references else 0.0
        ),
        "instruction_bytes": result.events.instruction_bytes / instructions,
    }


def sec42_cache_tb(result: ExperimentResult) -> Dict[str, float]:
    """Section 4.2: cache and TB miss behaviour."""
    instructions = result.events.instructions or 1
    stats = result.stats
    tb_misses = stats.tb_misses
    memmgmt_normal, memmgmt_stalled = result.reduction.routine_total("memmgmt.tb_miss")
    # One abort cycle per microtrap accompanies each miss (Section 5's
    # abort row); include it in the per-miss figure like the paper does
    # ("a count of all cycles within the routine").
    cycles_per_miss = (
        (memmgmt_normal + memmgmt_stalled) / tb_misses if tb_misses else 0.0
    )
    stall_per_miss = memmgmt_stalled / tb_misses if tb_misses else 0.0
    return {
        "cache_read_misses_per_instruction": stats.cache_read_misses / instructions,
        "cache_read_misses_istream": stats.cache_i_read_misses / instructions,
        "cache_read_misses_dstream": stats.cache_d_read_misses / instructions,
        "tb_misses_per_instruction": tb_misses / instructions,
        "tb_misses_dstream": stats.tb_d_misses / instructions,
        "tb_misses_istream": stats.tb_i_misses / instructions,
        "cycles_per_tb_miss": cycles_per_miss,
        "tb_miss_read_stall_cycles": stall_per_miss,
    }


def all_tables(result: ExperimentResult) -> Dict[str, object]:
    """Every table keyed by its paper designation."""
    return {
        "table1": table1(result),
        "table2": table2(result),
        "table3": table3(result),
        "table4": table4(result),
        "table5": table5(result),
        "table6": table6(result),
        "table7": table7(result),
        "table8": table8(result),
        "table9": table9(result),
        "sec41": sec41_istream(result),
        "sec42": sec42_cache_tb(result),
    }

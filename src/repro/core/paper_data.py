"""The paper's published numbers, used by benches and EXPERIMENTS.md.

Provenance flags
----------------
The available scan of the paper garbles the interiors of some tables
(notably Tables 5, 8 and 9).  Every value here carries a provenance tag:

* ``exact`` — legible in the scanned text;
* ``derived`` — reconstructed from legible prose or arithmetic on
  legible values (e.g. "about 9 out of 10 loop branches actually
  branched");
* ``reconstructed`` — a best-effort estimate consistent with the legible
  row/column totals; benches never assert against these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperValue:
    value: float
    provenance: str = "exact"  # exact | derived | reconstructed

    @property
    def assertable(self) -> bool:
        return self.provenance in ("exact", "derived")


def _e(value: float) -> PaperValue:
    return PaperValue(value, "exact")


def _d(value: float) -> PaperValue:
    return PaperValue(value, "derived")


def _r(value: float) -> PaperValue:
    return PaperValue(value, "reconstructed")


# --- Table 1: opcode group frequency (percent of instructions) -------------

TABLE1_GROUP_FREQUENCY = {
    "simple": _e(83.60),
    "field": _e(6.92),
    "float": _e(3.62),
    "callret": _e(3.22),
    "system": _e(2.11),
    "character": _e(0.43),
    "decimal": _e(0.03),
}

# --- Table 2: PC-changing instructions --------------------------------------

@dataclass(frozen=True)
class Table2Row:
    percent_of_instructions: PaperValue
    percent_taken: PaperValue
    taken_percent_of_instructions: PaperValue


TABLE2_PC_CHANGING = {
    "simple_cond": Table2Row(_e(19.3), _e(56.0), _e(10.9)),
    "loop": Table2Row(_e(4.1), _e(91.0), _e(3.7)),
    "lowbit": Table2Row(_e(2.0), _e(41.0), _e(0.8)),
    "subroutine": Table2Row(_e(4.5), _e(100.0), _e(4.5)),
    "unconditional": Table2Row(_e(0.3), _e(100.0), _e(0.3)),
    "case": Table2Row(_e(0.9), _e(100.0), _e(0.9)),
    "bit": Table2Row(_e(4.3), _e(44.0), _e(1.9)),
    "procedure": Table2Row(_e(2.4), _e(100.0), _e(2.4)),
    "system": Table2Row(_e(0.4), _e(100.0), _e(0.4)),
}

TABLE2_TOTAL = Table2Row(_e(38.5), _e(67.0), _e(25.7))

# --- Table 3: specifiers and displacements per instruction ------------------

TABLE3_PER_INSTRUCTION = {
    "spec1": _e(0.726),
    "spec26": _e(0.758),
    "branch_displacements": _e(0.312),
}
TABLE3_SPECIFIERS_TOTAL = _e(1.48)

# --- Table 4: operand specifier distribution (percent) ----------------------

@dataclass(frozen=True)
class Table4Row:
    spec1: Optional[PaperValue]
    spec26: Optional[PaperValue]
    total: PaperValue


TABLE4_SPECIFIER_MODES = {
    "register": Table4Row(_e(28.7), _e(52.6), _e(41.0)),
    "short_literal": Table4Row(_e(21.1), _e(10.8), _e(15.8)),
    "immediate": Table4Row(_e(3.2), _e(1.7), _e(2.4)),
    # The scan only preserves the SPEC1 figure and the fact that
    # displacement is the most common memory mode.
    "displacement": Table4Row(_e(25.0), _r(17.0), _r(21.0)),
    "register_deferred": Table4Row(_r(8.0), _r(9.0), _r(8.5)),
    "displacement_deferred": Table4Row(_r(3.0), _r(3.0), _r(3.0)),
    "absolute": Table4Row(_r(2.0), _r(2.0), _r(2.0)),
    "auto_inc_dec_def": Table4Row(_r(9.0), _r(3.9), _r(6.3)),
}

TABLE4_PERCENT_INDEXED = {
    "spec1": _e(8.5),
    "spec26": _e(4.2),
    "total": _e(6.3),
}

# --- Table 5: D-stream reads and writes per average instruction -------------

@dataclass(frozen=True)
class Table5Row:
    reads: PaperValue
    writes: PaperValue


TABLE5_READS_WRITES = {
    "spec1": Table5Row(_e(0.306), _r(0.029)),
    "spec2_6": Table5Row(_e(0.148), _r(0.033)),
    "simple": Table5Row(_r(0.049), _r(0.049)),
    "field": Table5Row(_r(0.029), _e(0.007)),
    "float": Table5Row(_r(0.000), _e(0.008)),
    "callret": Table5Row(_e(0.133), _e(0.130)),
    "system": Table5Row(_r(0.015), _r(0.014)),
    "character": Table5Row(_r(0.039), _r(0.046)),
    "decimal": Table5Row(_r(0.002), _r(0.001)),
    "other": Table5Row(_e(0.062), _e(0.008)),
}

TABLE5_TOTAL = Table5Row(_e(0.783), _e(0.409))
UNALIGNED_REFERENCES_PER_INSTRUCTION = _e(0.016)
READ_WRITE_RATIO = _d(2.0)  # "the ratio of reads to writes is about two to one"

# --- Table 6: estimated size of the average instruction ---------------------

TABLE6_SIZE = {
    "opcode_bytes": _e(1.00),
    "specifiers_per_instruction": _e(1.48),
    "specifier_size": _e(1.68),
    "displacements_per_instruction": _e(0.31),
    "displacement_size": _e(1.00),
    "total_bytes": _e(3.8),
}

# --- Table 7: interrupt and context-switch headway ---------------------------

TABLE7_HEADWAY = {
    "software_interrupt_requests": _e(2539),
    "interrupts": _e(637),
    "context_switches": _e(6418),
}

# --- Section 4.1: I-stream behaviour -----------------------------------------

SEC41_ISTREAM = {
    "ib_references_per_instruction": _e(2.2),
    "bytes_per_reference": _e(1.7),
    "instruction_bytes": _e(3.8),
}

# --- Section 4.2: cache and TB misses ----------------------------------------

SEC42_CACHE_TB = {
    "cache_read_misses_per_instruction": _e(0.28),
    "cache_read_misses_istream": _e(0.18),
    "cache_read_misses_dstream": _e(0.10),
    "tb_misses_per_instruction": _e(0.029),
    "tb_misses_dstream": _e(0.020),
    "tb_misses_istream": _e(0.009),
    "cycles_per_tb_miss": _e(21.6),
    "tb_miss_read_stall_cycles": _e(3.5),
}

# --- Table 8: cycles per average instruction ---------------------------------

#: Row totals (the TOTAL column).  Rows whose scanned cells are corrupt
#: carry reconstructed interiors but mostly legible totals.
TABLE8_ROW_TOTALS = {
    "decode": _e(1.613),
    "spec1": _r(1.90),
    "spec26": _r(1.50),
    "bdisp": _d(0.226),
    "simple": _e(0.977),
    "field": _d(0.600),
    "float": _e(0.302),
    "callret": _e(1.458),
    "system": _d(0.522),
    "character": _d(0.506),
    "decimal": _e(0.031),
    "intexc": _e(0.071),
    "memmgmt": _d(0.824),
    "abort": _d(0.127),
}

#: Column totals (the TOTAL row) — fully legible.
TABLE8_COLUMN_TOTALS = {
    "compute": _e(7.267),
    "read": _e(0.783),
    "rstall": _e(0.964),
    "write": _e(0.409),
    "wstall": _e(0.450),
    "ibstall": _e(0.720),
}

TABLE8_TOTAL_CPI = _e(10.593)

#: Legible interior cells worth individual comparison.
TABLE8_CELLS = {
    ("decode", "compute"): _e(1.000),
    ("decode", "ibstall"): _e(0.613),
    ("float", "compute"): _e(0.292),
    ("callret", "compute"): _e(0.937),
    ("callret", "read"): _e(0.133),
    ("callret", "rstall"): _e(0.074),
    ("callret", "write"): _e(0.130),
    ("callret", "wstall"): _e(0.134),
    ("decimal", "compute"): _e(0.026),
    ("intexc", "compute"): _e(0.055),
}

#: The literal/register optimization: merged first-execute cycles reported
#: in the specifier rows (Section 5, first remark).
MERGED_CYCLES = {"simple": _e(0.15), "field": _e(0.01)}

# --- Table 9: cycles per instruction within each group ----------------------

#: Within-group totals (cycles per average instruction *of that group*,
#: execute phase only).  Simple ~1.2; character and decimal two orders
#: of magnitude higher — the paper's headline contrast.
TABLE9_GROUP_TOTALS = {
    "simple": _e(1.17),
    "field": _d(8.67),
    "float": _e(8.33),
    "callret": _e(45.25),
    "system": _d(24.74),
    "character": _e(117.04),
    "decimal": _e(100.77),
}

#: Conclusions drawn from Table 9 in prose.
CALLRET_REGISTERS_MOVED = _d(8.0)  # "about 8 registers pushed and popped"
CHARACTER_STRING_BYTES = _d(40.0)  # "36-44 characters"

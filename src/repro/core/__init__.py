"""The paper's contribution: the micro-PC histogram monitor and the
analysis that turns raw histograms into the published characterization.

* :mod:`repro.core.monitor` — the 16K-bucket dual-bank histogram board
  with its Unibus-style command interface.
* :mod:`repro.core.reduction` — raw histogram + control-store map ->
  event counts and cycle accounts.
* :mod:`repro.core.tables` — every table of the paper, computed from a
  reduction.
* :mod:`repro.core.experiment` — one-call experiment runner and the
  five-workload composite.
* :mod:`repro.core.paper_data` — the published numbers, with legibility
  flags for cells the scanned tables corrupt.
* :mod:`repro.core.report` — paper-vs-measured formatting.
"""

from repro.core.monitor import HistogramBoard, MonitorInterface, UPCMonitor

__all__ = ["HistogramBoard", "MonitorInterface", "UPCMonitor"]

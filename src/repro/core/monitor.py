"""The micro-PC histogram monitor (Section 2.2 of the paper).

Two boards, as built at DEC in 1982-83:

* the **histogram count board** — a general-purpose Unibus device with
  16,000 addressable count locations, incrementable at the 780's 200ns
  microcycle rate, actually holding *two* counts per location: one for
  non-stalled microinstruction executions and one for read-/write-stalled
  cycles (Section 4.3);
* the **processor-specific interface board** — taps the micro-PC and the
  stall lines, and supplies the count board with a bucket address plus a
  "count now" strobe each microcycle.

While collecting, the monitor is totally passive: it never perturbs the
machine it measures.  The simulator enforces this structurally — the
monitor object only ever receives notifications; it has no reference to
the machine at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ucode.control_store import CONTROL_STORE_SIZE

HISTOGRAM_BUCKETS = 16_000


class MonitorCommandError(Exception):
    """An ill-formed Unibus command (bad bucket address, etc.)."""


class HistogramBoard:
    """The general-purpose dual-bank count board.

    Unibus commands: :meth:`start`, :meth:`stop`, :meth:`clear`,
    :meth:`read_bucket`.  Counting happens through :meth:`strobe`, which
    the interface board drives once per microcycle.
    """

    def __init__(self, buckets: int = HISTOGRAM_BUCKETS):
        self.buckets = buckets
        self._counts = [0] * buckets
        self._stalled_counts = [0] * buckets
        self._collecting = False

    # -- Unibus commands -------------------------------------------------

    def start(self) -> None:
        self._collecting = True

    def stop(self) -> None:
        self._collecting = False

    def clear(self) -> None:
        if self._collecting:
            raise MonitorCommandError("cannot clear while collecting")
        self._counts = [0] * self.buckets
        self._stalled_counts = [0] * self.buckets

    def read_bucket(self, bucket: int):
        """Read one bucket's (non-stalled, stalled) counts."""
        self._check_bucket(bucket)
        return self._counts[bucket], self._stalled_counts[bucket]

    # -- counting path (driven by the interface board) --------------------

    @property
    def collecting(self) -> bool:
        return self._collecting

    def strobe(self, bucket: int, stalled: bool = False, repeat: int = 1) -> None:
        """Count ``repeat`` cycles at ``bucket`` in the selected bank."""
        if not self._collecting:
            return
        self._check_bucket(bucket)
        if stalled:
            self._stalled_counts[bucket] += repeat
        else:
            self._counts[bucket] += repeat

    def _check_bucket(self, bucket: int) -> None:
        if not 0 <= bucket < self.buckets:
            raise MonitorCommandError("bucket {} out of range".format(bucket))

    # -- bulk readout ------------------------------------------------------

    def dump(self):
        """Read out both banks (what the measurement host did after a run).

        Returns (counts, stalled_counts) as lists indexed by bucket.
        """
        return list(self._counts), list(self._stalled_counts)

    def total_cycles(self) -> int:
        """All cycles counted so far, both banks."""
        return sum(self._counts) + sum(self._stalled_counts)

    def merge_from(self, other: "HistogramBoard") -> None:
        """Accumulate another board's counts into this one.

        The paper reports "the composite of all five [experiments], that
        is, the sum of the five UPC histograms" — this is that sum.
        """
        if other.buckets != self.buckets:
            raise MonitorCommandError("bucket-count mismatch")
        for bucket in range(self.buckets):
            self._counts[bucket] += other._counts[bucket]
            self._stalled_counts[bucket] += other._stalled_counts[bucket]


class MonitorInterface:
    """The processor-specific interface board.

    Maps micro-PC values onto histogram buckets and relays the per-cycle
    strobes.  The 780 control store (16K locations) does not quite fit the
    16,000-bucket board one-to-one; the interface folds the few overflow
    addresses onto the top bucket, which the layout never allocates, so
    in practice the mapping is injective for every used address.
    """

    def __init__(self, board: HistogramBoard):
        self.board = board

    def bucket_for(self, upc: int) -> int:
        if not 0 <= upc < CONTROL_STORE_SIZE:
            raise MonitorCommandError("micro-PC {:#x} out of range".format(upc))
        return min(upc, self.board.buckets - 1)

    def microcycle(self, upc: int, stalled: bool = False, repeat: int = 1) -> None:
        """One (or ``repeat``) microcycles observed at ``upc``."""
        self.board.strobe(self.bucket_for(upc), stalled=stalled, repeat=repeat)


@dataclass
class UPCMonitor:
    """The assembled monitor: count board + interface board.

    This is what gets plugged into a :class:`~repro.cpu.machine.VAX780`.
    """

    board: HistogramBoard
    interface: MonitorInterface

    @classmethod
    def build(cls) -> "UPCMonitor":
        board = HistogramBoard()
        return cls(board=board, interface=MonitorInterface(board))

    def start(self) -> None:
        self.board.start()

    def stop(self) -> None:
        self.board.stop()

    def clear(self) -> None:
        self.board.clear()

    @property
    def collecting(self) -> bool:
        return self.board.collecting

    def observe(self, upc: int, stalled: bool = False, repeat: int = 1) -> None:
        self.interface.microcycle(upc, stalled=stalled, repeat=repeat)

"""The micro-PC histogram monitor (Section 2.2 of the paper).

Two boards, as built at DEC in 1982-83:

* the **histogram count board** — a general-purpose Unibus device with
  16,000 addressable count locations, incrementable at the 780's 200ns
  microcycle rate, actually holding *two* counts per location: one for
  non-stalled microinstruction executions and one for read-/write-stalled
  cycles (Section 4.3);
* the **processor-specific interface board** — taps the micro-PC and the
  stall lines, and supplies the count board with a bucket address plus a
  "count now" strobe each microcycle.

While collecting, the monitor is totally passive: it never perturbs the
machine it measures.  The simulator enforces this structurally — the
monitor object only ever receives notifications; it has no reference to
the machine at all.

Because the strobe path runs once per simulated microcycle it is the
hottest code in the repository.  The banks are ``array('Q')`` (machine
words, like the real board's count RAM), the interface precomputes its
micro-PC → bucket map once, and :meth:`UPCMonitor.observe` performs the
whole interface-plus-board path in a single flattened function.  The
Unibus command surface (``start`` / ``stop`` / ``clear`` /
``read_bucket``) is unchanged.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from operator import add
from typing import Optional

from repro.ucode.control_store import CONTROL_STORE_SIZE

HISTOGRAM_BUCKETS = 16_000

#: The largest count one bank location holds (the boards used 64-bit
#: count words; ``array('Q')`` enforces the same ceiling).
BANK_COUNT_MAX = (1 << 64) - 1


class MonitorCommandError(Exception):
    """An ill-formed Unibus command (bad bucket address, etc.)."""


def _zero_bank(buckets: int) -> array:
    return array("Q", bytes(8 * buckets))


class HistogramBoard:
    """The general-purpose dual-bank count board.

    Unibus commands: :meth:`start`, :meth:`stop`, :meth:`clear`,
    :meth:`read_bucket`.  Counting happens through :meth:`strobe`, which
    the interface board drives once per microcycle.
    """

    def __init__(self, buckets: int = HISTOGRAM_BUCKETS):
        self.buckets = buckets
        self._counts = _zero_bank(buckets)
        self._stalled_counts = _zero_bank(buckets)
        self._collecting = False

    @classmethod
    def from_sparse(cls, counts, stalled_counts, buckets: int = HISTOGRAM_BUCKETS) -> "HistogramBoard":
        """Rebuild a stopped board from sparse ``{bucket: count}`` dumps.

        The inverse of :meth:`dump_sparse`: shard workers ship sparse
        deltas across the process boundary and the coordinator loads them
        back onto boards to :meth:`merge_from`.  Bad bucket addresses and
        counts a 64-bit bank word cannot hold are rejected with the
        offending bucket named."""
        board = cls(buckets)
        for bank_name, bank, sparse in (
            ("non-stalled", board._counts, counts),
            ("stalled", board._stalled_counts, stalled_counts),
        ):
            for bucket, count in sparse.items():
                board._check_bucket(bucket)
                if not 0 <= count <= BANK_COUNT_MAX:
                    raise MonitorCommandError(
                        "count {} at bucket {} in the {} bank does not fit "
                        "a 64-bit count word (0..{})".format(
                            count, bucket, bank_name, BANK_COUNT_MAX
                        )
                    )
                bank[bucket] = count
        return board

    # -- Unibus commands -------------------------------------------------

    def start(self) -> None:
        self._collecting = True

    def stop(self) -> None:
        self._collecting = False

    def clear(self) -> None:
        if self._collecting:
            raise MonitorCommandError("cannot clear while collecting")
        self._counts = _zero_bank(self.buckets)
        self._stalled_counts = _zero_bank(self.buckets)

    def read_bucket(self, bucket: int):
        """Read one bucket's (non-stalled, stalled) counts."""
        self._check_bucket(bucket)
        return self._counts[bucket], self._stalled_counts[bucket]

    # -- counting path (driven by the interface board) --------------------

    @property
    def collecting(self) -> bool:
        return self._collecting

    def strobe(self, bucket: int, stalled: bool = False, repeat: int = 1) -> None:
        """Count ``repeat`` cycles at ``bucket`` in the selected bank."""
        if not self._collecting:
            return
        self._check_bucket(bucket)
        if stalled:
            self._stalled_counts[bucket] += repeat
        else:
            self._counts[bucket] += repeat

    def _check_bucket(self, bucket: int) -> None:
        if not 0 <= bucket < self.buckets:
            raise MonitorCommandError(
                "bucket {} out of range (board has {} buckets, 0..{})".format(
                    bucket, self.buckets, self.buckets - 1
                )
            )

    # -- bulk readout ------------------------------------------------------

    def dump(self):
        """Read out both banks (what the measurement host did after a run).

        Returns (counts, stalled_counts) as lists indexed by bucket.
        Fault-injection site ``monitor.dump`` (action ``miscount``)
        damages the readout — never the live banks — modelling a flaky
        Unibus transfer; ``repro check`` exists to catch exactly this.
        """
        from repro.testing import faults

        counts, stalled = list(self._counts), list(self._stalled_counts)
        faults.corrupt_counts("monitor.dump", "board", counts, stalled)
        return counts, stalled

    def dump_sparse(self):
        """Both banks as sparse ``{bucket: count}`` dicts (zeros omitted).

        The compact wire format: what a parallel experiment worker ships
        back to the coordinating process, and what
        :mod:`repro.core.histogram_io` persists.
        """
        return (
            {i: c for i, c in enumerate(self._counts) if c},
            {i: c for i, c in enumerate(self._stalled_counts) if c},
        )

    def total_cycles(self) -> int:
        """All cycles counted so far, both banks."""
        return sum(self._counts) + sum(self._stalled_counts)

    def merge_from(self, other: "HistogramBoard") -> None:
        """Accumulate another board's counts into this one.

        The paper reports "the composite of all five [experiments], that
        is, the sum of the five UPC histograms" — this is that sum.  It
        is a readout-side operation: merging while either board is still
        collecting is an error (the real merge happened on the host after
        the boards were stopped and dumped).
        """
        if other.buckets != self.buckets:
            raise MonitorCommandError(
                "bucket-count mismatch: this board has {} buckets, "
                "the other has {}".format(self.buckets, other.buckets)
            )
        if self._collecting or other._collecting:
            sides = []
            if self._collecting:
                sides.append("this board")
            if other._collecting:
                sides.append("the other board")
            raise MonitorCommandError(
                "cannot merge while collecting ({} still collecting)".format(
                    " and ".join(sides)
                )
            )
        self._counts = self._merge_bank(self._counts, other._counts, "non-stalled")
        self._stalled_counts = self._merge_bank(
            self._stalled_counts, other._stalled_counts, "stalled"
        )

    def _merge_bank(self, mine: array, theirs: array, bank_name: str) -> array:
        """Sum two banks, naming the first overflowing bucket on failure.

        The fast path stays a single C-level ``map(add)``; the per-bucket
        scan only runs after ``array('Q')`` has rejected an overflowing
        sum, to say *which* location wrapped."""
        try:
            return array("Q", map(add, mine, theirs))
        except OverflowError:
            for bucket, (a, b) in enumerate(zip(mine, theirs)):
                if a + b > BANK_COUNT_MAX:
                    raise MonitorCommandError(
                        "merge overflow at bucket {} in the {} bank: "
                        "{} + {} exceeds the 64-bit count word (max {})".format(
                            bucket, bank_name, a, b, BANK_COUNT_MAX
                        )
                    ) from None
            raise


class MonitorInterface:
    """The processor-specific interface board.

    Maps micro-PC values onto histogram buckets and relays the per-cycle
    strobes.  The 780 control store (16K locations) does not quite fit the
    16,000-bucket board one-to-one; the interface folds the few overflow
    addresses onto the top bucket, which the layout never allocates, so
    in practice the mapping is injective for every used address.

    The fold is precomputed into a lookup table at construction — the
    real board's address-mapping PROM — so the per-microcycle path does a
    single indexed load instead of a range check plus ``min``.
    """

    def __init__(self, board: HistogramBoard):
        self.board = board
        top = board.buckets - 1
        self.bucket_map = array(
            "l", (upc if upc < top else top for upc in range(CONTROL_STORE_SIZE))
        )

    def bucket_for(self, upc: int) -> int:
        if not 0 <= upc < CONTROL_STORE_SIZE:
            raise MonitorCommandError("micro-PC {:#x} out of range".format(upc))
        return self.bucket_map[upc]

    def microcycle(self, upc: int, stalled: bool = False, repeat: int = 1) -> None:
        """One (or ``repeat``) microcycles observed at ``upc``."""
        self.board.strobe(self.bucket_for(upc), stalled=stalled, repeat=repeat)


@dataclass
class UPCMonitor:
    """The assembled monitor: count board + interface board.

    This is what gets plugged into a :class:`~repro.cpu.machine.VAX780`.
    """

    board: HistogramBoard
    interface: MonitorInterface

    def __post_init__(self):
        self._bucket_map = self.interface.bucket_map

    @classmethod
    def build(cls) -> "UPCMonitor":
        board = HistogramBoard()
        return cls(board=board, interface=MonitorInterface(board))

    def start(self) -> None:
        self.board.start()

    def stop(self) -> None:
        self.board.stop()

    def clear(self) -> None:
        self.board.clear()

    @property
    def collecting(self) -> bool:
        return self.board.collecting

    def observe(self, upc: int, stalled: bool = False, repeat: int = 1) -> None:
        """One (or ``repeat``) microcycles observed at ``upc``.

        The interface-board and count-board steps, flattened into one
        call: this runs once per simulated EBOX cycle.
        """
        if not 0 <= upc < CONTROL_STORE_SIZE:
            raise MonitorCommandError("micro-PC {:#x} out of range".format(upc))
        board = self.board
        if not board._collecting:
            return
        bucket = self._bucket_map[upc]
        if stalled:
            board._stalled_counts[bucket] += repeat
        else:
            board._counts[bucket] += repeat

"""The execution layer: how one unit of engine work actually runs.

This is the bottom layer of the engine split (scheduler / executor /
cache-resolution).  Everything here answers one question — *given a
fully-described piece of work, execute it and ship the payload back* —
and nothing here decides what work should run, in what order, or
whether it can be skipped.  Those decisions belong to
:mod:`repro.core.scheduler`; what can be *reused* instead of executed
belongs to :mod:`repro.core.cache_resolution`.

Contents:

* the declarative work descriptions (:class:`RunSpec`,
  :class:`MachineConfig`) and the payloads they produce
  (:class:`EngineRun`, :class:`ShardResult`);
* :func:`execute_spec` — one monitored measurement run, manifest and
  metrics included (this is the pool-worker body);
* :func:`_run_pool_tasks` — the resilient process-pool driver: retries
  with backoff, wall-clock timeouts enforced by pool recycling,
  ``BrokenProcessPool`` respawn and requeue, degradation to in-process
  execution, interrupt handling;
* the shard measurement primitives (:func:`_measure_span`,
  :func:`_execute_shard_task`) used by the sharded orchestration in the
  scheduler.

Every payload crosses the process boundary by value, so everything in
this module must pickle — including :class:`EngineError`, whose
``__reduce__`` keeps the constructor extras (spec name, worker
traceback, per-shard status map) intact across the pool boundary.
"""

from __future__ import annotations

import copy
import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import (
    ExperimentResult,
    MachineStats,
    run_workload,
)
from repro.cpu.events import EventCounters
from repro.testing import faults


class EngineError(RuntimeError):
    """A spec failed inside a pool worker.

    Carries *which* spec died and the worker-side traceback — a bare
    ``BrokenProcessPool`` or a re-raised exception with a coordinator
    stack tells you neither.  Sharded failures additionally carry the
    per-shard status map (``shard_status``), so a partial cache/pool
    failure is diagnosable from the error alone.

    The extras are constructor arguments, which breaks the default
    exception pickling contract (``args`` holds the *formatted message*,
    not the constructor arguments), so ``__reduce__`` re-ships the
    originals explicitly: the error round-trips through the process-pool
    boundary — and the service's JSON envelope
    (:func:`to_payload` / :func:`from_payload`) — without losing
    ``.args``, ``.spec_name``, ``.worker_traceback`` or
    ``.shard_status``.
    """

    def __init__(
        self,
        spec_name: str,
        worker_traceback: str,
        shard_status: Optional[Dict[int, str]] = None,
    ):
        super().__init__(
            "spec {!r} failed in worker:\n{}".format(spec_name, worker_traceback)
        )
        self.spec_name = spec_name
        self.worker_traceback = worker_traceback
        self.shard_status: Dict[int, str] = dict(shard_status) if shard_status else {}

    def __reduce__(self):
        return (
            self.__class__,
            (self.spec_name, self.worker_traceback, self.shard_status),
        )

    def to_payload(self) -> Dict:
        """The JSON error envelope the service API ships."""
        return {
            "type": "EngineError",
            "message": str(self),
            "args": [str(arg) for arg in self.args],
            "spec_name": self.spec_name,
            "worker_traceback": self.worker_traceback,
            "shard_status": {str(k): v for k, v in self.shard_status.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "EngineError":
        """Rebuild from :meth:`to_payload` output; ``.args`` and the
        extras survive the JSON round-trip."""
        status = {
            (int(key) if key.lstrip("-").isdigit() else key): value
            for key, value in (payload.get("shard_status") or {}).items()
        }
        return cls(
            payload.get("spec_name", "?"),
            payload.get("worker_traceback", ""),
            status or None,
        )


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress notification (see the scheduler's
    ``run_specs``).

    ``kind`` is ``"start"`` (the spec was dispatched), ``"done"``
    (finished, ``wall_seconds`` filled in), ``"retry"`` (an attempt
    failed and the resilience policy is retrying; ``error`` holds the
    summary) or ``"error"`` (failed for good, ``error`` holds the
    summary line; the full traceback rides the :class:`EngineError` or
    :class:`~repro.core.resilience.FailureReport` that follows).
    """

    kind: str
    index: int
    total: int
    name: str
    wall_seconds: float = 0.0
    error: Optional[str] = None


#: The shape run_specs notifies: callback(event) -> None.
ProgressCallback = Callable[[ProgressEvent], None]


def _ignore_progress(event: ProgressEvent) -> None:
    """The default progress sink: drop the event."""


@dataclass(frozen=True)
class MachineConfig:
    """A declarative, picklable machine configuration for ablation runs.

    Each field is an optional override of the 11/780 baseline; ``None``
    means "leave the baseline alone".  This is the process-pool-safe
    replacement for the ``configure(machine)`` closures the examples
    used to build inline.
    """

    #: cache data size (the real machine: 8 KB, 2-way, write-through)
    cache_size_bytes: Optional[int] = None
    #: translation-buffer entries per half (the real machine: 64+64)
    tb_half_entries: Optional[int] = None
    #: write-buffer drain latency in cycles (the real machine: 6)
    wb_drain_cycles: Optional[int] = None
    #: overlap I-Decode with the previous instruction (the 11/750 trick)
    decode_overlap: Optional[bool] = None
    #: float-execute slowdown applied when no FPA is fitted
    float_slowdown: Optional[int] = None

    def apply(self, machine) -> None:
        """Apply the overrides to a freshly built machine (pre-boot)."""
        from repro.memory.cache import Cache
        from repro.memory.tb import TranslationBuffer
        from repro.memory.write_buffer import WriteBuffer

        memory = machine.memory
        if self.cache_size_bytes is not None:
            memory.cache = Cache(size_bytes=self.cache_size_bytes)
        if self.tb_half_entries is not None:
            memory.tb = TranslationBuffer(half_entries=self.tb_half_entries)
        if self.wb_drain_cycles is not None:
            memory.write_buffer = WriteBuffer(drain_cycles=self.wb_drain_cycles)
        if self.decode_overlap is not None:
            machine.ebox.decode_overlap = self.decode_overlap
        if self.float_slowdown is not None:
            machine.ebox.float_slowdown = self.float_slowdown

    def describe(self) -> str:
        """A short human-readable tag for sweep tables."""
        parts = []
        if self.cache_size_bytes is not None:
            parts.append("cache={}KB".format(self.cache_size_bytes // 1024))
        if self.tb_half_entries is not None:
            parts.append("tb={0}+{0}".format(self.tb_half_entries))
        if self.wb_drain_cycles is not None:
            parts.append("wb_drain={}".format(self.wb_drain_cycles))
        if self.decode_overlap is not None:
            parts.append("decode_overlap={}".format(self.decode_overlap))
        if self.float_slowdown is not None:
            parts.append("float_slowdown={}".format(self.float_slowdown))
        return ",".join(parts) or "baseline"


@dataclass(frozen=True)
class RunSpec:
    """One monitored measurement run, fully described by value.

    A spec must pickle: keep ``configure`` a module-level function (or
    ``None``) and express ablations with :class:`MachineConfig`.  When
    both are given, ``config`` applies first.
    """

    workload: str
    instructions: int = 30_000
    warmup_instructions: int = 3_000
    process_count: Optional[int] = None
    seed_offset: int = 0
    config: Optional[MachineConfig] = None
    configure: Optional[Callable] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.config is not None:
            return "{}[{}]".format(self.workload, self.config.describe())
        return self.workload


@dataclass
class EngineRun:
    """What one executed spec ships back to the coordinator."""

    spec: RunSpec
    result: ExperimentResult
    #: raw sparse dump of the histogram board, (counts, stalled_counts)
    #: as {bucket: count} dicts — the wire format used to verify that
    #: parallel and sequential runs agree byte for byte.
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    wall_seconds: float
    #: provenance manifest (repro.obs.provenance.RunManifest)
    manifest: Optional[object] = None
    #: worker-side self-profiling, a MetricsRegistry.snapshot() dict
    metrics: Optional[Dict] = None
    #: intra-workload sharding provenance: how many resumable shards the
    #: measurement was split into, and how many replayed from the cache.
    shard_count: int = 1
    shards_from_cache: int = 0


def _spec_configure(spec: RunSpec):
    """Build the effective configure callable (inside the worker)."""
    config, configure = spec.config, spec.configure
    if config is None and configure is None:
        return None

    def apply(machine):
        if config is not None:
            config.apply(machine)
        if configure is not None:
            configure(machine)

    return apply


def execute_spec(spec: RunSpec, tracer=None) -> EngineRun:
    """Run one spec to completion (this is the pool worker).

    Every run ships back a :class:`~repro.obs.provenance.RunManifest`
    (config hash, seeds, code version, timings) and a metrics snapshot
    (per-phase wall-clock self-profiling from the worker).  Timing is
    recorded here, at the execution site, exactly once — the scheduler
    above never re-times work, it only copies or zeroes this figure
    when a spec is deduplicated.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    faults.fire("worker", key=spec.name)
    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    metrics = MetricsRegistry()
    started = time.perf_counter()
    result, board = run_workload(
        spec.workload,
        instructions=spec.instructions,
        warmup_instructions=spec.warmup_instructions,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
        return_board=True,
        tracer=tracer,
        metrics=metrics,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    wall = time.perf_counter() - started
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    snapshot = metrics.snapshot()
    from repro.core.compile import stats_from_snapshot

    manifest.compile = stats_from_snapshot(snapshot)
    return EngineRun(
        spec=spec,
        result=result,
        histogram=board.dump_sparse(),
        wall_seconds=wall,
        manifest=manifest,
        metrics=snapshot,
    )


def _execute_spec_guarded(spec: RunSpec) -> Tuple:
    """Pool-worker wrapper: never raises across the pickle boundary.

    Exceptions re-raised by a future lose their worker stack; shipping
    ``("error", name, traceback_text)`` instead lets the coordinator
    raise an :class:`EngineError` that says exactly which spec died and
    where.
    """
    try:
        return ("ok", execute_spec(spec))
    except Exception:
        return ("error", spec.name, traceback.format_exc())


def _pool_context():
    """Prefer fork (cheap, shares the warmed program cache); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _tb_summary(worker_tb: str) -> str:
    """The last line of a traceback — the one-line progress summary."""
    return worker_tb.strip().splitlines()[-1] if worker_tb else ""


def _run_pool_tasks(
    fn,
    tasks: Sequence[Tuple[int, object]],
    workers: int,
    policy,
    describe: Callable[[int], str],
    on_start=None,
    on_done=None,
    on_retry=None,
):
    """Run guarded tasks through a process pool under a resilience policy.

    ``tasks`` is ``[(task_id, arg), ...]`` and ``fn(arg)`` must return a
    guarded payload (``("ok", ...)`` or ``("error", name, traceback)``).
    Returns ``(payloads, failures, stats)``: ``payloads[task_id]`` is
    ``(payload, attempts)``, ``failures[task_id]`` a
    :class:`~repro.core.resilience.SpecFailure`, and ``stats`` the
    retry/timeout/respawn/degradation counters.

    Three fault classes the bare executor does not survive are handled
    here:

    * a task *raising* — retried with exponential backoff up to the
      policy's attempt budget;
    * a worker *dying abruptly* (``BrokenProcessPool``) — the pool is
      respawned and everything that was in flight requeued; since the
      culprit is unknowable from outside, the crash is charged as one
      attempt against every in-flight task;
    * a task *exceeding its wall-clock budget* — a stuck worker cannot
      be reclaimed individually, so the pool is recycled; the slow task
      is charged an attempt, the innocents requeue for free.

    After ``policy.max_pool_respawns`` recycles the pool is abandoned
    and the remainder runs in-process (degraded mode: retries still
    apply, timeouts cannot preempt).

    A ``KeyboardInterrupt`` cancels outstanding futures, shuts the pool
    down without waiting and re-raises as
    :class:`~repro.core.resilience.SweepInterrupted` carrying everything
    that already finished.
    """
    from repro.core.resilience import SpecFailure, SweepInterrupted

    pending = deque((tid, arg, 1, 0.0) for tid, arg in tasks)
    payloads: Dict[int, Tuple] = {}
    failures: Dict[int, object] = {}
    stats = {"retries": 0, "timeouts": 0, "pool_respawns": 0, "degraded": False}
    max_attempts = policy.retry.max_attempts
    stop_on_failure = policy.on_error == "raise"
    inflight: Dict = {}

    def notify_start(tid, attempt):
        if on_start is not None and attempt == 1:
            on_start(tid)

    def record_success(tid, payload, attempt):
        payloads[tid] = (payload, attempt)
        if on_done is not None:
            on_done(tid, payload)

    def fail_or_retry(tid, arg, attempt, kind, error, tb="") -> bool:
        """Requeue with backoff, or record the final failure (-> True)."""
        if attempt < max_attempts:
            stats["retries"] += 1
            if on_retry is not None:
                on_retry(tid, attempt, kind, error)
            delay = policy.retry.backoff(attempt)
            pending.append((tid, arg, attempt + 1, time.monotonic() + delay))
            return False
        failures[tid] = SpecFailure(
            name=describe(tid),
            index=tid,
            attempts=attempt,
            kind=kind,
            error=error,
            worker_traceback=tb,
        )
        return True

    def recycle(reason_futures, kind, error):
        """The pool is unusable: shut it down, charge ``reason_futures``
        a failed attempt, requeue the innocents for free."""
        nonlocal pool
        stats["pool_respawns"] += 1
        pool.shutdown(wait=False, cancel_futures=True)
        victims = list(inflight.items())
        inflight.clear()
        for future, (tid, arg, attempt, _) in victims:
            if future in reason_futures:
                fail_or_retry(tid, arg, attempt, kind, error)
            else:
                pending.appendleft((tid, arg, attempt, 0.0))
        if stats["pool_respawns"] > policy.max_pool_respawns:
            stats["degraded"] = True
            pool = None
        else:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())

    pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
    try:
        while pending or inflight:
            if stop_on_failure and failures:
                break
            now = time.monotonic()
            if stats["degraded"]:
                # In-process fallback: no pool left to trust.  Retries
                # still apply; timeouts cannot preempt in-process work.
                tid, arg, attempt, not_before = pending.popleft()
                if not_before > now:
                    policy.sleep(not_before - now)
                notify_start(tid, attempt)
                payload = fn(arg)
                if payload[0] == "ok":
                    record_success(tid, payload, attempt)
                else:
                    fail_or_retry(
                        tid, arg, attempt, "error",
                        _tb_summary(payload[-1]), payload[-1],
                    )
                continue
            # Dispatch one task per idle worker; a task whose backoff
            # stamp is still in the future stays queued.
            if pending and len(inflight) < workers:
                waiting = []
                while pending and len(inflight) < workers:
                    tid, arg, attempt, not_before = pending.popleft()
                    if not_before > now:
                        waiting.append((tid, arg, attempt, not_before))
                        continue
                    deadline = (
                        now + policy.spec_timeout if policy.spec_timeout else 0.0
                    )
                    future = pool.submit(fn, arg)
                    inflight[future] = (tid, arg, attempt, deadline)
                    notify_start(tid, attempt)
                for entry in reversed(waiting):
                    pending.appendleft(entry)
            if not inflight:
                # Everything left is backing off; sleep to the earliest
                # stamp instead of spinning.
                wake = min(entry[3] for entry in pending)
                policy.sleep(max(0.0, wake - time.monotonic()))
                continue
            horizons = [meta[3] for meta in inflight.values() if meta[3]]
            horizons += [entry[3] for entry in pending if entry[3]]
            timeout = (
                max(0.0, min(horizons) - time.monotonic()) + 0.02
                if horizons
                else None
            )
            done, _ = wait(list(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                meta = inflight.pop(future)
                tid, arg, attempt, _ = meta
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    inflight[future] = meta  # recycle() charges it below
                    broken = True
                    break
                except Exception as exc:
                    fail_or_retry(
                        tid, arg, attempt, "error", str(exc), traceback.format_exc()
                    )
                    continue
                if payload[0] == "ok":
                    record_success(tid, payload, attempt)
                else:
                    fail_or_retry(
                        tid, arg, attempt, "error",
                        _tb_summary(payload[-1]), payload[-1],
                    )
            if broken:
                recycle(
                    set(inflight),
                    "pool-crash",
                    "a process-pool worker died while the task was in flight",
                )
                continue
            if policy.spec_timeout:
                now = time.monotonic()
                expired = {
                    future
                    for future, meta in inflight.items()
                    if meta[3] and meta[3] <= now
                }
                if expired:
                    stats["timeouts"] += len(expired)
                    recycle(
                        expired,
                        "timeout",
                        "task exceeded the {:.3g}s wall-clock budget".format(
                            policy.spec_timeout
                        ),
                    )
    except KeyboardInterrupt:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        raise SweepInterrupted(payloads=payloads, failures=failures, stats=stats)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    return payloads, failures, stats


# ----------------------------------------------------------------------
# shard measurement primitives
# ----------------------------------------------------------------------


@dataclass
class ShardResult:
    """One shard's measured delta; everything in it is additive."""

    index: int
    shard_count: int
    #: measured-instruction offset where this shard began
    start_instruction: int
    instructions: int
    #: sparse (counts, stalled_counts) delta of the histogram banks
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    events: EventCounters
    stats: MachineStats
    wall_seconds: float = 0.0
    #: True when this shard was replayed from the run cache
    from_cache: bool = False


def shard_boundaries(instructions: int, shards: int) -> List[int]:
    """Instruction offsets splitting ``instructions`` into ``shards``.

    ``i*N//K`` spreads any remainder evenly and makes boundaries shared
    between different shard counts coincide exactly, so their cached
    snapshots are interchangeable."""
    if shards < 1:
        raise ValueError("shard count must be >= 1, got {}".format(shards))
    return [instructions * i // shards for i in range(shards + 1)]


def _sparse_delta(after: Dict[int, int], before: Dict[int, int]) -> Dict[int, int]:
    """Per-bucket difference of two sparse dumps (counts only grow)."""
    return {
        bucket: count - before.get(bucket, 0)
        for bucket, count in after.items()
        if count - before.get(bucket, 0)
    }


def _measure_span(kernel, instructions: int, fault_key: Optional[str] = None):
    """Run ``instructions`` measured instructions; return the delta.

    The kernel must already be measuring.  Returns ``(histogram_delta,
    events_delta, stats_delta, wall_seconds)`` — the additive
    contribution of exactly this span, independent of where in the
    measurement it sits.  ``fault_key`` names this span to the
    fault-injection harness (site ``shard.measure``)."""
    if fault_key is not None:
        faults.fire("shard.measure", key=fault_key)
    machine = kernel.machine
    board = machine.monitor.board
    counts_before, stalled_before = board.dump_sparse()
    events_before = copy.deepcopy(machine.events)
    stats_before = MachineStats.from_machine(machine)
    started = time.perf_counter()
    kernel.run(max_instructions=instructions)
    wall = time.perf_counter() - started
    counts_after, stalled_after = board.dump_sparse()
    histogram = (
        _sparse_delta(counts_after, counts_before),
        _sparse_delta(stalled_after, stalled_before),
    )
    return (
        histogram,
        machine.events.minus(events_before),
        MachineStats.from_machine(machine).minus(stats_before),
        wall,
    )


def _execute_shard_task(task: Dict) -> Tuple[ShardResult, Dict[str, int]]:
    """Measure one shard from its cached start-boundary snapshot.

    Runs in a pool worker (or inline with ``jobs=1``): restore the
    snapshot, measure the span, bank the shard result — and the next
    boundary's snapshot, if nobody has stored it yet — in the cache.
    Returns ``(shard, cache_stats)``; the worker's per-instance cache
    hit/miss counters ride back to the coordinator (and are flushed to
    the cache's persistent ledger) because they would otherwise die
    with the worker process — see ``RunCache.flush_stats``."""
    from repro.core.cache_resolution import (
        load_cached_snapshot,
        store_boundary_snapshot,
        store_shard,
    )
    from repro.core.runcache import RunCache

    fault_key = "{}@{}".format(task["spec_name"], task["start"])
    faults.fire("shard.task", key=fault_key)
    cache = RunCache(task["cache_root"])
    kernel, _ = load_cached_snapshot(cache, task["snapshot_key"])
    if kernel is None:
        raise RuntimeError(
            "boundary snapshot at instruction {} is missing or quarantined "
            "in cache {}".format(task["start"], task["cache_root"])
        )
    histogram, events, stats, wall = _measure_span(
        kernel, task["instructions"], fault_key=fault_key
    )
    shard = ShardResult(
        index=task["index"],
        shard_count=task["shard_count"],
        start_instruction=task["start"],
        instructions=task["instructions"],
        histogram=histogram,
        events=events,
        stats=stats,
        wall_seconds=wall,
    )
    end_key = task.get("end_snapshot_key")
    if end_key is not None and not cache.has(end_key):
        store_boundary_snapshot(
            cache,
            end_key,
            kernel,
            task["spec_name"],
            task["config_hash"],
            task["start"] + task["instructions"],
        )
    store_shard(cache, task["shard_key"], shard, task["spec_name"], task["config_hash"])
    cache.flush_stats()
    return shard, cache.stats()


def _execute_shard_task_guarded(task: Dict) -> Tuple:
    """Pool wrapper: ship worker failures back as data (cf. specs)."""
    try:
        shard, cache_stats = _execute_shard_task(task)
        return ("ok", shard, cache_stats)
    except Exception:
        return ("error", task.get("spec_name", "?"), traceback.format_exc())


def parallel_map(func: Callable, items: Sequence, jobs: int = 1) -> List:
    """Generic deterministic fan-out: ``[func(x) for x in items]``,
    optionally across a process pool.  ``func`` must be a module-level
    function when ``jobs > 1``.  Order is preserved either way."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(func, items))

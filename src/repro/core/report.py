"""Paper-vs-measured report formatting.

Benches and EXPERIMENTS.md use these helpers to print the same rows the
paper's tables report, side by side with the reproduction's numbers and
the provenance of each paper value (exact / derived / reconstructed).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.paper_data import PaperValue

_PROVENANCE_MARK = {"exact": " ", "derived": "~", "reconstructed": "?"}


def format_comparison_row(
    label: str, paper: Optional[PaperValue], measured: float, width: int = 28
) -> str:
    """One aligned row: label, paper value (with provenance mark), measured."""
    if paper is None:
        paper_text = "      --"
    else:
        paper_text = "{:8.3f}{}".format(paper.value, _PROVENANCE_MARK[paper.provenance])
    return "{:<{width}} {} {:10.3f}".format(label, paper_text, measured, width=width)


def format_table(
    title: str,
    rows: Iterable[Tuple[str, Optional[PaperValue], float]],
    headers: Tuple[str, str] = ("paper", "measured"),
    width: int = 28,
) -> str:
    """A full comparison table as a printable string.

    Provenance marks: blank = exact from the text, ``~`` = derived from
    prose, ``?`` = reconstructed (never asserted against).
    """
    lines = [title, "-" * len(title)]
    lines.append(
        "{:<{width}} {:>9} {:>10}".format("", headers[0], headers[1], width=width)
    )
    for label, paper, measured in rows:
        lines.append(format_comparison_row(label, paper, measured, width=width))
    return "\n".join(lines)


def ratio(measured: float, paper: PaperValue) -> float:
    """measured / paper, guarding zero."""
    return measured / paper.value if paper.value else float("inf")


def within_factor(measured: float, paper: PaperValue, factor: float) -> bool:
    """Shape check: measured within [paper/factor, paper*factor]."""
    if paper.value == 0:
        return measured == 0
    r = ratio(measured, paper)
    return (1.0 / factor) <= r <= factor


def matrix_to_text(matrix: Dict[str, Dict[str, float]], columns, title: str) -> str:
    """Render a Table 8-style matrix."""
    lines = [title, "-" * len(title)]
    header = "{:<12}".format("") + "".join("{:>9}".format(c) for c in columns)
    lines.append(header)
    for row, cells in matrix.items():
        lines.append(
            "{:<12}".format(row) + "".join("{:>9.3f}".format(cells.get(c, 0.0)) for c in columns)
        )
    return "\n".join(lines)

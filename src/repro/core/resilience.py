"""Failure policy and structured failure reporting for the engine.

The paper's monitor survived a week of live timesharing because losing
one histogram readout did not abort the experiment; this module gives
the simulator's engine the same property.  A
:class:`ResiliencePolicy` tells :func:`~repro.core.engine.run_specs`
and :func:`~repro.core.engine.execute_spec_sharded` how hard to fight
for a result — retry budgets with exponential backoff, per-spec
wall-clock timeouts, how many process-pool deaths to tolerate before
degrading to in-process execution — and whether a spec that still fails
should abort the sweep (``on_error="raise"``, the historical behaviour)
or be collected into a structured :class:`FailureReport` alongside the
partial results (``on_error="collect"``).

Everything here is plain data: reports serialize to JSON so an
interrupted or partially-failed sweep leaves a machine-readable account
of what finished, what failed and why — the resume story is simply
re-running the sweep, because the run cache replays every finished
shard and the engine recomputes only what is missing.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

#: Exit status the CLI maps an interrupted sweep to (128 + SIGINT).
INTERRUPT_EXIT_CODE = 130


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``max_attempts`` counts every execution, so ``1`` means "no
    retries" (the engine's historical fail-fast behaviour) and ``3``
    means the original try plus two retries.  The delay before retry
    *n* is ``backoff_base * backoff_factor ** (n - 1)`` capped at
    ``backoff_max`` seconds.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def backoff(self, failures: int) -> float:
        """Seconds to wait after the ``failures``-th consecutive failure."""
        if failures <= 0:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (failures - 1),
        )


@dataclass
class SpecFailure:
    """One spec (or shard task) that failed after its whole retry budget.

    ``kind`` is ``"error"`` (the spec raised), ``"timeout"`` (exceeded
    the per-spec wall-clock budget), ``"pool-crash"`` (a pool worker
    died abruptly while the spec was in flight) or ``"interrupted"``.
    """

    name: str
    index: int
    attempts: int
    kind: str
    error: str
    worker_traceback: str = ""

    def to_dict(self) -> Dict:
        return asdict(self)


@dataclass
class FailureReport:
    """The structured account a fail-soft or interrupted sweep returns."""

    total: int = 0
    completed: List[str] = field(default_factory=list)
    failures: List[SpecFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    degraded: bool = False
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["failures"] = [failure.to_dict() for failure in self.failures]
        return payload

    def save(self, path: str) -> str:
        """Persist as JSON (the resumable partial-sweep record)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "FailureReport":
        with open(path) as handle:
            payload = json.load(handle)
        failures = [SpecFailure(**failure) for failure in payload.pop("failures", [])]
        report = cls(**payload)
        report.failures = failures
        return report

    def summary(self) -> str:
        """One line for logs: '3/5 completed, 2 failed (1 retry, ...)'."""
        parts = [
            "{}/{} completed".format(len(self.completed), self.total),
        ]
        if self.failures:
            parts.append("{} failed".format(len(self.failures)))
        if self.retries:
            parts.append("{} retries".format(self.retries))
        if self.timeouts:
            parts.append("{} timeouts".format(self.timeouts))
        if self.pool_respawns:
            parts.append("{} pool respawns".format(self.pool_respawns))
        if self.degraded:
            parts.append("degraded to in-process")
        if self.interrupted:
            parts.append("interrupted")
        return ", ".join(parts)


@dataclass
class ResiliencePolicy:
    """How the engine should behave when a run misbehaves.

    The default policy reproduces the historical engine exactly: one
    attempt, no timeout, fail-fast ``EngineError``.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    retry/timeout/respawn/quarantine counters; ``interrupt_report_path``
    is where a Ctrl-C'd sweep persists its partial
    :class:`FailureReport`.  ``sleep`` exists for tests.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    spec_timeout: Optional[float] = None
    on_error: str = "raise"
    max_pool_respawns: int = 2
    metrics: Optional[object] = None
    interrupt_report_path: Optional[str] = None
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self):
        if self.on_error not in ("raise", "collect"):
            raise ValueError(
                "on_error must be 'raise' or 'collect', got {!r}".format(self.on_error)
            )

    @classmethod
    def from_options(
        cls,
        retries: int = 0,
        spec_timeout: Optional[float] = None,
        on_error: str = "raise",
        metrics=None,
        interrupt_report_path: Optional[str] = None,
    ) -> "ResiliencePolicy":
        """The CLI-flag spelling: ``--retries N`` means N *extra* tries."""
        return cls(
            retry=RetryPolicy(max_attempts=max(1, retries + 1)),
            spec_timeout=spec_timeout,
            on_error=on_error,
            metrics=metrics,
            interrupt_report_path=interrupt_report_path,
        )

    def record_report(self, report: FailureReport) -> None:
        """Fold a finished sweep's counters into the metrics registry."""
        if self.metrics is None:
            return
        registry = self.metrics
        registry.counter("engine.retries", "spec retries performed").inc(report.retries)
        registry.counter("engine.spec_timeouts", "specs that exceeded their wall-clock budget").inc(report.timeouts)
        registry.counter("engine.pool_respawns", "process pools respawned after a death or timeout").inc(report.pool_respawns)
        registry.counter("engine.spec_failures", "specs that failed after their whole retry budget").inc(len(report.failures))
        if report.degraded:
            registry.gauge("engine.degraded", "1 when the sweep fell back to in-process execution").set(1)


@dataclass
class SweepResult:
    """What a fail-soft (``on_error="collect"``) sweep returns.

    ``runs`` is index-aligned with the input specs — ``None`` marks a
    spec that failed; its story is in ``report.failures``.
    """

    runs: List[Optional[object]]
    report: FailureReport

    @property
    def results(self) -> List[object]:
        """The successful EngineRuns, input order preserved."""
        return [run for run in self.runs if run is not None]


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep.

    Raised after the engine has cancelled outstanding futures, shut the
    pool down and (when the policy names a path) persisted the partial
    :class:`FailureReport` — so the interrupt is still an interrupt, but
    nothing is orphaned and the sweep is resumable.
    """

    def __init__(self, report: Optional[FailureReport] = None, payloads=None, failures=None, stats=None):
        super().__init__("sweep interrupted")
        self.report = report
        self.payloads = payloads if payloads is not None else {}
        self.failures = failures if failures is not None else {}
        self.stats = stats if stats is not None else {}

"""The parallel experiment engine.

The paper's measurements were embarrassingly parallel: five workloads,
each measured independently on its own machine, summed afterwards into
the composite histogram.  This module reproduces that shape for the
simulator — each :class:`RunSpec` describes one monitored run, a process
pool executes the specs on separate interpreters, and the payloads come
back to the coordinating process to be merged by
:func:`repro.core.experiment.composite`.

Two properties the engine guarantees:

* **Determinism.**  A spec fully seeds its run (profile seed +
  ``seed_offset``); every RNG in the simulator is an instance-seeded
  ``random.Random`` and nothing depends on interpreter-level state such
  as string-hash randomization.  ``jobs=4`` therefore produces
  bit-identical histograms, event counters and Table 8 matrices to
  ``jobs=1`` — the regression tests assert this.
* **Picklability.**  Specs cross the process boundary, so ablations are
  expressed declaratively with :class:`MachineConfig` rather than with
  closures (a module-level ``configure`` function also works; a lambda
  does not).  Results come back as :class:`EngineRun` payloads carrying
  the reduced :class:`~repro.core.experiment.ExperimentResult` plus the
  raw sparse histogram dump, so the coordinator can both merge and
  verify byte-for-byte.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import (
    ExperimentResult,
    MachineStats,
    prepare_workload,
    run_workload,
)
from repro.cpu.events import EventCounters


class EngineError(RuntimeError):
    """A spec failed inside a pool worker.

    Carries *which* spec died and the worker-side traceback — a bare
    ``BrokenProcessPool`` or a re-raised exception with a coordinator
    stack tells you neither.
    """

    def __init__(self, spec_name: str, worker_traceback: str):
        super().__init__(
            "spec {!r} failed in worker:\n{}".format(spec_name, worker_traceback)
        )
        self.spec_name = spec_name
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress notification (see :func:`run_specs`).

    ``kind`` is ``"start"`` (the spec was dispatched), ``"done"``
    (finished, ``wall_seconds`` filled in) or ``"error"`` (failed,
    ``error`` holds the summary line; the full traceback rides the
    :class:`EngineError` raised right after).
    """

    kind: str
    index: int
    total: int
    name: str
    wall_seconds: float = 0.0
    error: Optional[str] = None


#: The shape run_specs notifies: callback(event) -> None.
ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class MachineConfig:
    """A declarative, picklable machine configuration for ablation runs.

    Each field is an optional override of the 11/780 baseline; ``None``
    means "leave the baseline alone".  This is the process-pool-safe
    replacement for the ``configure(machine)`` closures the examples
    used to build inline.
    """

    #: cache data size (the real machine: 8 KB, 2-way, write-through)
    cache_size_bytes: Optional[int] = None
    #: translation-buffer entries per half (the real machine: 64+64)
    tb_half_entries: Optional[int] = None
    #: write-buffer drain latency in cycles (the real machine: 6)
    wb_drain_cycles: Optional[int] = None
    #: overlap I-Decode with the previous instruction (the 11/750 trick)
    decode_overlap: Optional[bool] = None
    #: float-execute slowdown applied when no FPA is fitted
    float_slowdown: Optional[int] = None

    def apply(self, machine) -> None:
        """Apply the overrides to a freshly built machine (pre-boot)."""
        from repro.memory.cache import Cache
        from repro.memory.tb import TranslationBuffer
        from repro.memory.write_buffer import WriteBuffer

        memory = machine.memory
        if self.cache_size_bytes is not None:
            memory.cache = Cache(size_bytes=self.cache_size_bytes)
        if self.tb_half_entries is not None:
            memory.tb = TranslationBuffer(half_entries=self.tb_half_entries)
        if self.wb_drain_cycles is not None:
            memory.write_buffer = WriteBuffer(drain_cycles=self.wb_drain_cycles)
        if self.decode_overlap is not None:
            machine.ebox.decode_overlap = self.decode_overlap
        if self.float_slowdown is not None:
            machine.ebox.float_slowdown = self.float_slowdown

    def describe(self) -> str:
        """A short human-readable tag for sweep tables."""
        parts = []
        if self.cache_size_bytes is not None:
            parts.append("cache={}KB".format(self.cache_size_bytes // 1024))
        if self.tb_half_entries is not None:
            parts.append("tb={0}+{0}".format(self.tb_half_entries))
        if self.wb_drain_cycles is not None:
            parts.append("wb_drain={}".format(self.wb_drain_cycles))
        if self.decode_overlap is not None:
            parts.append("decode_overlap={}".format(self.decode_overlap))
        if self.float_slowdown is not None:
            parts.append("float_slowdown={}".format(self.float_slowdown))
        return ",".join(parts) or "baseline"


@dataclass(frozen=True)
class RunSpec:
    """One monitored measurement run, fully described by value.

    A spec must pickle: keep ``configure`` a module-level function (or
    ``None``) and express ablations with :class:`MachineConfig`.  When
    both are given, ``config`` applies first.
    """

    workload: str
    instructions: int = 30_000
    warmup_instructions: int = 3_000
    process_count: Optional[int] = None
    seed_offset: int = 0
    config: Optional[MachineConfig] = None
    configure: Optional[Callable] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.config is not None:
            return "{}[{}]".format(self.workload, self.config.describe())
        return self.workload


@dataclass
class EngineRun:
    """What one executed spec ships back to the coordinator."""

    spec: RunSpec
    result: ExperimentResult
    #: raw sparse dump of the histogram board, (counts, stalled_counts)
    #: as {bucket: count} dicts — the wire format used to verify that
    #: parallel and sequential runs agree byte for byte.
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    wall_seconds: float
    #: provenance manifest (repro.obs.provenance.RunManifest)
    manifest: Optional[object] = None
    #: worker-side self-profiling, a MetricsRegistry.snapshot() dict
    metrics: Optional[Dict] = None
    #: intra-workload sharding provenance: how many resumable shards the
    #: measurement was split into, and how many replayed from the cache.
    shard_count: int = 1
    shards_from_cache: int = 0


def _spec_configure(spec: RunSpec):
    """Build the effective configure callable (inside the worker)."""
    config, configure = spec.config, spec.configure
    if config is None and configure is None:
        return None

    def apply(machine):
        if config is not None:
            config.apply(machine)
        if configure is not None:
            configure(machine)

    return apply


def execute_spec(spec: RunSpec, tracer=None) -> EngineRun:
    """Run one spec to completion (this is the pool worker).

    Every run ships back a :class:`~repro.obs.provenance.RunManifest`
    (config hash, seeds, code version, timings) and a metrics snapshot
    (per-phase wall-clock self-profiling from the worker).
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    metrics = MetricsRegistry()
    started = time.perf_counter()
    result, board = run_workload(
        spec.workload,
        instructions=spec.instructions,
        warmup_instructions=spec.warmup_instructions,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
        return_board=True,
        tracer=tracer,
        metrics=metrics,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    wall = time.perf_counter() - started
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    return EngineRun(
        spec=spec,
        result=result,
        histogram=board.dump_sparse(),
        wall_seconds=wall,
        manifest=manifest,
        metrics=metrics.snapshot(),
    )


def _execute_spec_guarded(spec: RunSpec) -> Tuple:
    """Pool-worker wrapper: never raises across the pickle boundary.

    Exceptions re-raised by a future lose their worker stack; shipping
    ``("error", name, traceback_text)`` instead lets the coordinator
    raise an :class:`EngineError` that says exactly which spec died and
    where.
    """
    try:
        return ("ok", execute_spec(spec))
    except Exception:
        return ("error", spec.name, traceback.format_exc())


def _pool_context():
    """Prefer fork (cheap, shares the warmed program cache); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[EngineRun]:
    """Execute ``specs``, ``jobs`` at a time; results keep spec order.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling
    requirement) and is the reference behaviour: parallel execution
    produces bit-identical payloads, just faster.

    ``progress`` receives a :class:`ProgressEvent` when each spec is
    dispatched and when it completes or fails — the CLI renders these as
    live per-workload status lines.  A failing spec raises
    :class:`EngineError` naming the spec and carrying the worker-side
    traceback.
    """
    specs = list(specs)
    total = len(specs)
    notify = progress if progress is not None else _ignore_progress
    if jobs <= 1 or total <= 1:
        runs = []
        for index, spec in enumerate(specs):
            notify(ProgressEvent("start", index, total, spec.name))
            try:
                run = execute_spec(spec)
            except Exception as exc:
                notify(
                    ProgressEvent("error", index, total, spec.name, error=str(exc))
                )
                raise EngineError(spec.name, traceback.format_exc()) from exc
            notify(
                ProgressEvent(
                    "done", index, total, spec.name, wall_seconds=run.wall_seconds
                )
            )
            runs.append(run)
        return runs
    workers = min(jobs, total)
    results: List[Optional[EngineRun]] = [None] * total
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        futures = {}
        for index, spec in enumerate(specs):
            notify(ProgressEvent("start", index, total, spec.name))
            futures[pool.submit(_execute_spec_guarded, spec)] = index
        for future in as_completed(futures):
            index = futures[future]
            spec = specs[index]
            payload = future.result()
            if payload[0] == "error":
                _, name, worker_tb = payload
                summary = worker_tb.strip().splitlines()[-1] if worker_tb else ""
                notify(ProgressEvent("error", index, total, name, error=summary))
                raise EngineError(name, worker_tb)
            run = payload[1]
            results[index] = run
            notify(
                ProgressEvent(
                    "done", index, total, spec.name, wall_seconds=run.wall_seconds
                )
            )
    return results


def _ignore_progress(event: ProgressEvent) -> None:
    """The default progress sink: drop the event."""


# ----------------------------------------------------------------------
# intra-workload sharding
# ----------------------------------------------------------------------
#
# One workload's N-instruction measurement splits into K resumable
# shards at instruction boundaries i*N//K.  Everything the measurement
# produces is additive — monitor banks, event counters, hardware stats —
# so each shard records its *delta* and merging the deltas in order is
# bit-identical to the uninterrupted run (asserted by the equivalence
# tests, like the composite case).
#
# Simulation is inherently serial (shard i+1 starts from shard i's end
# state), so a cold sharded run executes as one in-process chain that
# banks a machine snapshot at every boundary.  The parallelism and the
# speedup come from the content-addressed cache: finished shards replay
# instantly on re-runs, and shards whose start-boundary snapshot is
# already cached fan out across the process pool.  Boundary offsets are
# absolute instruction counts, so different shard counts share the
# snapshots they have in common (a 2-way split reuses a 4-way split's
# midpoint).


@dataclass
class ShardResult:
    """One shard's measured delta; everything in it is additive."""

    index: int
    shard_count: int
    #: measured-instruction offset where this shard began
    start_instruction: int
    instructions: int
    #: sparse (counts, stalled_counts) delta of the histogram banks
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    events: EventCounters
    stats: MachineStats
    wall_seconds: float = 0.0
    #: True when this shard was replayed from the run cache
    from_cache: bool = False


def shard_boundaries(instructions: int, shards: int) -> List[int]:
    """Instruction offsets splitting ``instructions`` into ``shards``.

    ``i*N//K`` spreads any remainder evenly and makes boundaries shared
    between different shard counts coincide exactly, so their cached
    snapshots are interchangeable."""
    if shards < 1:
        raise ValueError("shard count must be >= 1, got {}".format(shards))
    return [instructions * i // shards for i in range(shards + 1)]


def _sparse_delta(after: Dict[int, int], before: Dict[int, int]) -> Dict[int, int]:
    """Per-bucket difference of two sparse dumps (counts only grow)."""
    return {
        bucket: count - before.get(bucket, 0)
        for bucket, count in after.items()
        if count - before.get(bucket, 0)
    }


def _measure_span(kernel, instructions: int):
    """Run ``instructions`` measured instructions; return the delta.

    The kernel must already be measuring.  Returns ``(histogram_delta,
    events_delta, stats_delta, wall_seconds)`` — the additive
    contribution of exactly this span, independent of where in the
    measurement it sits."""
    machine = kernel.machine
    board = machine.monitor.board
    counts_before, stalled_before = board.dump_sparse()
    events_before = copy.deepcopy(machine.events)
    stats_before = MachineStats.from_machine(machine)
    started = time.perf_counter()
    kernel.run(max_instructions=instructions)
    wall = time.perf_counter() - started
    counts_after, stalled_after = board.dump_sparse()
    histogram = (
        _sparse_delta(counts_after, counts_before),
        _sparse_delta(stalled_after, stalled_before),
    )
    return (
        histogram,
        machine.events.minus(events_before),
        MachineStats.from_machine(machine).minus(stats_before),
        wall,
    )


def _shard_cache_keys(spec: RunSpec, boundaries: List[int]):
    """(config hash, per-shard result keys, per-boundary snapshot keys)."""
    from repro.core.runcache import cache_key
    from repro.obs.provenance import config_hash

    chash = config_hash(spec)
    shard_keys = [
        cache_key("shard", config=chash, start=boundaries[i], end=boundaries[i + 1])
        for i in range(len(boundaries) - 1)
    ]
    snapshot_keys = {
        boundary: cache_key("snapshot", config=chash, instruction=boundary)
        for boundary in boundaries[:-1]
    }
    return chash, shard_keys, snapshot_keys


def _store_shard(cache, key: str, shard: ShardResult, spec_name: str, chash: str) -> None:
    cache.put(
        key,
        pickle.dumps(shard, protocol=4),
        meta={
            "kind": "shard",
            "spec": spec_name,
            "config": chash,
            "start": shard.start_instruction,
            "instructions": shard.instructions,
            "shard": "{}/{}".format(shard.index + 1, shard.shard_count),
        },
    )


def _store_boundary_snapshot(
    cache, key: str, kernel, spec_name: str, chash: str, instruction: int
) -> None:
    from repro.core.snapshot import capture

    snapshot = capture(kernel, label="{}@{}".format(spec_name, instruction))
    cache.put(
        key,
        snapshot.to_bytes(),
        meta={
            "kind": "snapshot",
            "spec": spec_name,
            "config": chash,
            "instruction": instruction,
            "digest": snapshot.digest,
        },
    )


def _execute_shard_task(task: Dict) -> ShardResult:
    """Measure one shard from its cached start-boundary snapshot.

    Runs in a pool worker (or inline with ``jobs=1``): restore the
    snapshot, measure the span, bank the shard result — and the next
    boundary's snapshot, if nobody has stored it yet — in the cache."""
    from repro.core.runcache import RunCache
    from repro.core.snapshot import MachineSnapshot, restore

    cache = RunCache(task["cache_root"])
    blob = cache.get(task["snapshot_key"])
    if blob is None:
        raise RuntimeError(
            "boundary snapshot at instruction {} vanished from cache {}".format(
                task["start"], task["cache_root"]
            )
        )
    kernel = restore(MachineSnapshot.from_bytes(blob))
    histogram, events, stats, wall = _measure_span(kernel, task["instructions"])
    shard = ShardResult(
        index=task["index"],
        shard_count=task["shard_count"],
        start_instruction=task["start"],
        instructions=task["instructions"],
        histogram=histogram,
        events=events,
        stats=stats,
        wall_seconds=wall,
    )
    end_key = task.get("end_snapshot_key")
    if end_key is not None and not cache.has(end_key):
        _store_boundary_snapshot(
            cache,
            end_key,
            kernel,
            task["spec_name"],
            task["config_hash"],
            task["start"] + task["instructions"],
        )
    _store_shard(cache, task["shard_key"], shard, task["spec_name"], task["config_hash"])
    return shard


def _execute_shard_task_guarded(task: Dict) -> Tuple:
    """Pool wrapper: ship worker failures back as data (cf. specs)."""
    try:
        return ("ok", _execute_shard_task(task))
    except Exception:
        return ("error", task.get("spec_name", "?"), traceback.format_exc())


def _run_shard_chain(
    spec: RunSpec,
    boundaries: List[int],
    chain_range: range,
    results: List[Optional[ShardResult]],
    cache,
    shard_keys: List[str],
    snapshot_keys: Dict[int, str],
    chash: str,
    notify: ProgressCallback,
    shards: int,
) -> Optional[str]:
    """Execute a contiguous run of shards in-process.

    Starts from the deepest cached boundary snapshot (or a fresh
    build + warmup when starting at instruction 0), emits every missing
    shard result and boundary snapshot into the cache as it passes, and
    returns the digest of the snapshot it resumed from, if any."""
    from repro.core.snapshot import MachineSnapshot, restore

    resumed_digest = None
    start_boundary = boundaries[chain_range.start]
    blob = cache.get(snapshot_keys[start_boundary]) if cache is not None else None
    if blob is not None:
        snapshot = MachineSnapshot.from_bytes(blob)
        kernel = restore(snapshot)
        resumed_digest = snapshot.digest
    else:
        if start_boundary != 0:
            raise EngineError(
                spec.name,
                "boundary snapshot at instruction {} vanished from the cache".format(
                    start_boundary
                ),
            )
        kernel, _ = prepare_workload(
            spec.workload,
            process_count=spec.process_count,
            seed_offset=spec.seed_offset,
            configure=_spec_configure(spec),
        )
        kernel.run(max_instructions=spec.warmup_instructions)
        kernel.start_measurement()
        if cache is not None:
            _store_boundary_snapshot(
                cache, snapshot_keys[0], kernel, spec.name, chash, 0
            )
    for index in chain_range:
        span = boundaries[index + 1] - boundaries[index]
        name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
        notify(ProgressEvent("start", index, shards, name))
        histogram, events, stats, wall = _measure_span(kernel, span)
        if results[index] is None:
            shard = ShardResult(
                index=index,
                shard_count=shards,
                start_instruction=boundaries[index],
                instructions=span,
                histogram=histogram,
                events=events,
                stats=stats,
                wall_seconds=wall,
            )
            results[index] = shard
            if cache is not None:
                _store_shard(cache, shard_keys[index], shard, spec.name, chash)
        notify(ProgressEvent("done", index, shards, name, wall_seconds=wall))
        next_boundary = boundaries[index + 1]
        if cache is not None and index + 1 < shards:
            key = snapshot_keys[next_boundary]
            if not cache.has(key):
                _store_boundary_snapshot(
                    cache, key, kernel, spec.name, chash, next_boundary
                )
    return resumed_digest


def _merge_shard_results(
    spec: RunSpec, shard_results: List[ShardResult]
) -> Tuple[ExperimentResult, Tuple[Dict[int, int], Dict[int, int]]]:
    """Merge shard deltas into one ExperimentResult + sparse histogram.

    The same readout-side machinery the composite uses:
    :meth:`HistogramBoard.merge_from` sums the banks,
    :meth:`EventCounters.merge_from` and :meth:`MachineStats.merge_from`
    sum the companion channels, and one reduction runs over the summed
    banks — bit-identical to reducing the uninterrupted run."""
    from repro.core.monitor import HistogramBoard
    from repro.core.reduction import reduce_histogram
    from repro.ucode.routines import build_layout
    from repro.workloads import profile_by_name

    board = HistogramBoard()
    merged_events = EventCounters()
    merged_stats = MachineStats()
    for shard in shard_results:
        board.merge_from(HistogramBoard.from_sparse(*shard.histogram))
        merged_events.merge_from(shard.events)
        merged_stats.merge_from(shard.stats)
    counts, stalled = board.dump()
    reduction = reduce_histogram(counts, stalled, build_layout(), events=merged_events)
    result = ExperimentResult(
        name=profile_by_name(spec.workload).name,
        reduction=reduction,
        events=merged_events,
        stats=merged_stats,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    return result, board.dump_sparse()


def execute_spec_sharded(
    spec: RunSpec,
    shards: int,
    jobs: int = 1,
    cache=None,
    progress: Optional[ProgressCallback] = None,
) -> EngineRun:
    """Execute one spec as ``shards`` resumable shards.

    With a ``cache`` (a :class:`~repro.core.runcache.RunCache`):
    finished shards replay instantly, shards whose start-boundary
    snapshot is cached run from it — in parallel across the process pool
    when ``jobs > 1`` — and only the rest execute as an in-process chain
    from the deepest cached snapshot.  Without a cache the whole
    measurement runs as one chain.  Either way the merged result is
    bit-identical to :func:`execute_spec` (the equivalence tests assert
    it), and the returned :class:`EngineRun` carries shard provenance in
    its manifest.
    """
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    shards = max(1, min(shards, spec.instructions or 1))
    if shards <= 1:
        return execute_spec(spec)
    notify = progress if progress is not None else _ignore_progress
    started = time.perf_counter()
    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    boundaries = shard_boundaries(spec.instructions, shards)
    chash, shard_keys, snapshot_keys = _shard_cache_keys(spec, boundaries)

    results: List[Optional[ShardResult]] = [None] * shards
    if cache is not None:
        for index in range(shards):
            blob = cache.get(shard_keys[index])
            if blob is not None:
                shard = pickle.loads(blob)
                shard.from_cache = True
                results[index] = shard
                name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
                notify(ProgressEvent("start", index, shards, name))
                notify(ProgressEvent("done", index, shards, name))

    missing = [index for index in range(shards) if results[index] is None]
    resumed_digest = None
    if missing:
        can_restore = set()
        if cache is not None:
            can_restore = {
                index
                for index in missing
                if cache.has(snapshot_keys[boundaries[index]])
            }
        chain_needed = [index for index in missing if index not in can_restore]
        chain_range = range(0)
        if chain_needed:
            anchor = None
            if cache is not None:
                for candidate in range(chain_needed[0], -1, -1):
                    if cache.has(snapshot_keys[boundaries[candidate]]):
                        anchor = candidate
                        break
            chain_range = range(
                anchor if anchor is not None else 0, chain_needed[-1] + 1
            )
        # Shards inside the chain interval fall out of the chain's pass
        # for free; only snapshot-backed shards outside it fan out.
        worker_indices = sorted(can_restore - set(chain_range))
        worker_tasks = [
            {
                "cache_root": cache.root,
                "index": index,
                "shard_count": shards,
                "start": boundaries[index],
                "instructions": boundaries[index + 1] - boundaries[index],
                "snapshot_key": snapshot_keys[boundaries[index]],
                "shard_key": shard_keys[index],
                "end_snapshot_key": snapshot_keys.get(boundaries[index + 1])
                if index + 1 < shards
                else None,
                "spec_name": spec.name,
                "config_hash": chash,
            }
            for index in worker_indices
        ]

        def collect(index: int, payload: Tuple) -> None:
            if payload[0] == "error":
                _, name, worker_tb = payload
                summary = worker_tb.strip().splitlines()[-1] if worker_tb else ""
                notify(ProgressEvent("error", index, shards, name, error=summary))
                raise EngineError(name, worker_tb)
            results[index] = payload[1]
            notify(
                ProgressEvent(
                    "done",
                    index,
                    shards,
                    "{}[shard {}/{}]".format(spec.name, index + 1, shards),
                    wall_seconds=payload[1].wall_seconds,
                )
            )

        if worker_tasks and jobs > 1:
            workers = min(jobs, len(worker_tasks))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                futures = {}
                for task in worker_tasks:
                    notify(
                        ProgressEvent(
                            "start",
                            task["index"],
                            shards,
                            "{}[shard {}/{}]".format(
                                spec.name, task["index"] + 1, shards
                            ),
                        )
                    )
                    futures[pool.submit(_execute_shard_task_guarded, task)] = task[
                        "index"
                    ]
                if len(chain_range):
                    resumed_digest = _run_shard_chain(
                        spec, boundaries, chain_range, results, cache,
                        shard_keys, snapshot_keys, chash, notify, shards,
                    )
                for future in as_completed(futures):
                    collect(futures[future], future.result())
        else:
            for task in worker_tasks:
                notify(
                    ProgressEvent(
                        "start",
                        task["index"],
                        shards,
                        "{}[shard {}/{}]".format(spec.name, task["index"] + 1, shards),
                    )
                )
                collect(task["index"], _execute_shard_task_guarded(task))
            if len(chain_range):
                resumed_digest = _run_shard_chain(
                    spec, boundaries, chain_range, results, cache,
                    shard_keys, snapshot_keys, chash, notify, shards,
                )

    if any(shard is None for shard in results):  # pragma: no cover - invariant
        raise EngineError(spec.name, "sharded execution left a shard unfilled")

    result, histogram = _merge_shard_results(spec, results)
    wall = time.perf_counter() - started
    cached_count = sum(1 for shard in results if shard.from_cache)
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    manifest.shards = shards
    manifest.shards_from_cache = cached_count
    manifest.resumed_from = resumed_digest
    return EngineRun(
        spec=spec,
        result=result,
        histogram=histogram,
        wall_seconds=wall,
        manifest=manifest,
        metrics=None,
        shard_count=shards,
        shards_from_cache=cached_count,
    )


def parallel_map(func: Callable, items: Sequence, jobs: int = 1) -> List:
    """Generic deterministic fan-out: ``[func(x) for x in items]``,
    optionally across a process pool.  ``func`` must be a module-level
    function when ``jobs > 1``.  Order is preserved either way."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(func, items))

"""The parallel experiment engine.

The paper's measurements were embarrassingly parallel: five workloads,
each measured independently on its own machine, summed afterwards into
the composite histogram.  This module reproduces that shape for the
simulator — each :class:`RunSpec` describes one monitored run, a process
pool executes the specs on separate interpreters, and the payloads come
back to the coordinating process to be merged by
:func:`repro.core.experiment.composite`.

Two properties the engine guarantees:

* **Determinism.**  A spec fully seeds its run (profile seed +
  ``seed_offset``); every RNG in the simulator is an instance-seeded
  ``random.Random`` and nothing depends on interpreter-level state such
  as string-hash randomization.  ``jobs=4`` therefore produces
  bit-identical histograms, event counters and Table 8 matrices to
  ``jobs=1`` — the regression tests assert this.
* **Picklability.**  Specs cross the process boundary, so ablations are
  expressed declaratively with :class:`MachineConfig` rather than with
  closures (a module-level ``configure`` function also works; a lambda
  does not).  Results come back as :class:`EngineRun` payloads carrying
  the reduced :class:`~repro.core.experiment.ExperimentResult` plus the
  raw sparse histogram dump, so the coordinator can both merge and
  verify byte-for-byte.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import ExperimentResult, run_workload


class EngineError(RuntimeError):
    """A spec failed inside a pool worker.

    Carries *which* spec died and the worker-side traceback — a bare
    ``BrokenProcessPool`` or a re-raised exception with a coordinator
    stack tells you neither.
    """

    def __init__(self, spec_name: str, worker_traceback: str):
        super().__init__(
            "spec {!r} failed in worker:\n{}".format(spec_name, worker_traceback)
        )
        self.spec_name = spec_name
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress notification (see :func:`run_specs`).

    ``kind`` is ``"start"`` (the spec was dispatched), ``"done"``
    (finished, ``wall_seconds`` filled in) or ``"error"`` (failed,
    ``error`` holds the summary line; the full traceback rides the
    :class:`EngineError` raised right after).
    """

    kind: str
    index: int
    total: int
    name: str
    wall_seconds: float = 0.0
    error: Optional[str] = None


#: The shape run_specs notifies: callback(event) -> None.
ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class MachineConfig:
    """A declarative, picklable machine configuration for ablation runs.

    Each field is an optional override of the 11/780 baseline; ``None``
    means "leave the baseline alone".  This is the process-pool-safe
    replacement for the ``configure(machine)`` closures the examples
    used to build inline.
    """

    #: cache data size (the real machine: 8 KB, 2-way, write-through)
    cache_size_bytes: Optional[int] = None
    #: translation-buffer entries per half (the real machine: 64+64)
    tb_half_entries: Optional[int] = None
    #: write-buffer drain latency in cycles (the real machine: 6)
    wb_drain_cycles: Optional[int] = None
    #: overlap I-Decode with the previous instruction (the 11/750 trick)
    decode_overlap: Optional[bool] = None
    #: float-execute slowdown applied when no FPA is fitted
    float_slowdown: Optional[int] = None

    def apply(self, machine) -> None:
        """Apply the overrides to a freshly built machine (pre-boot)."""
        from repro.memory.cache import Cache
        from repro.memory.tb import TranslationBuffer
        from repro.memory.write_buffer import WriteBuffer

        memory = machine.memory
        if self.cache_size_bytes is not None:
            memory.cache = Cache(size_bytes=self.cache_size_bytes)
        if self.tb_half_entries is not None:
            memory.tb = TranslationBuffer(half_entries=self.tb_half_entries)
        if self.wb_drain_cycles is not None:
            memory.write_buffer = WriteBuffer(drain_cycles=self.wb_drain_cycles)
        if self.decode_overlap is not None:
            machine.ebox.decode_overlap = self.decode_overlap
        if self.float_slowdown is not None:
            machine.ebox.float_slowdown = self.float_slowdown

    def describe(self) -> str:
        """A short human-readable tag for sweep tables."""
        parts = []
        if self.cache_size_bytes is not None:
            parts.append("cache={}KB".format(self.cache_size_bytes // 1024))
        if self.tb_half_entries is not None:
            parts.append("tb={0}+{0}".format(self.tb_half_entries))
        if self.wb_drain_cycles is not None:
            parts.append("wb_drain={}".format(self.wb_drain_cycles))
        if self.decode_overlap is not None:
            parts.append("decode_overlap={}".format(self.decode_overlap))
        if self.float_slowdown is not None:
            parts.append("float_slowdown={}".format(self.float_slowdown))
        return ",".join(parts) or "baseline"


@dataclass(frozen=True)
class RunSpec:
    """One monitored measurement run, fully described by value.

    A spec must pickle: keep ``configure`` a module-level function (or
    ``None``) and express ablations with :class:`MachineConfig`.  When
    both are given, ``config`` applies first.
    """

    workload: str
    instructions: int = 30_000
    warmup_instructions: int = 3_000
    process_count: Optional[int] = None
    seed_offset: int = 0
    config: Optional[MachineConfig] = None
    configure: Optional[Callable] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.config is not None:
            return "{}[{}]".format(self.workload, self.config.describe())
        return self.workload


@dataclass
class EngineRun:
    """What one executed spec ships back to the coordinator."""

    spec: RunSpec
    result: ExperimentResult
    #: raw sparse dump of the histogram board, (counts, stalled_counts)
    #: as {bucket: count} dicts — the wire format used to verify that
    #: parallel and sequential runs agree byte for byte.
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    wall_seconds: float
    #: provenance manifest (repro.obs.provenance.RunManifest)
    manifest: Optional[object] = None
    #: worker-side self-profiling, a MetricsRegistry.snapshot() dict
    metrics: Optional[Dict] = None


def _spec_configure(spec: RunSpec):
    """Build the effective configure callable (inside the worker)."""
    config, configure = spec.config, spec.configure
    if config is None and configure is None:
        return None

    def apply(machine):
        if config is not None:
            config.apply(machine)
        if configure is not None:
            configure(machine)

    return apply


def execute_spec(spec: RunSpec, tracer=None) -> EngineRun:
    """Run one spec to completion (this is the pool worker).

    Every run ships back a :class:`~repro.obs.provenance.RunManifest`
    (config hash, seeds, code version, timings) and a metrics snapshot
    (per-phase wall-clock self-profiling from the worker).
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    metrics = MetricsRegistry()
    started = time.perf_counter()
    result, board = run_workload(
        spec.workload,
        instructions=spec.instructions,
        warmup_instructions=spec.warmup_instructions,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
        return_board=True,
        tracer=tracer,
        metrics=metrics,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    wall = time.perf_counter() - started
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    return EngineRun(
        spec=spec,
        result=result,
        histogram=board.dump_sparse(),
        wall_seconds=wall,
        manifest=manifest,
        metrics=metrics.snapshot(),
    )


def _execute_spec_guarded(spec: RunSpec) -> Tuple:
    """Pool-worker wrapper: never raises across the pickle boundary.

    Exceptions re-raised by a future lose their worker stack; shipping
    ``("error", name, traceback_text)`` instead lets the coordinator
    raise an :class:`EngineError` that says exactly which spec died and
    where.
    """
    try:
        return ("ok", execute_spec(spec))
    except Exception:
        return ("error", spec.name, traceback.format_exc())


def _pool_context():
    """Prefer fork (cheap, shares the warmed program cache); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[EngineRun]:
    """Execute ``specs``, ``jobs`` at a time; results keep spec order.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling
    requirement) and is the reference behaviour: parallel execution
    produces bit-identical payloads, just faster.

    ``progress`` receives a :class:`ProgressEvent` when each spec is
    dispatched and when it completes or fails — the CLI renders these as
    live per-workload status lines.  A failing spec raises
    :class:`EngineError` naming the spec and carrying the worker-side
    traceback.
    """
    specs = list(specs)
    total = len(specs)
    notify = progress if progress is not None else _ignore_progress
    if jobs <= 1 or total <= 1:
        runs = []
        for index, spec in enumerate(specs):
            notify(ProgressEvent("start", index, total, spec.name))
            try:
                run = execute_spec(spec)
            except Exception as exc:
                notify(
                    ProgressEvent("error", index, total, spec.name, error=str(exc))
                )
                raise EngineError(spec.name, traceback.format_exc()) from exc
            notify(
                ProgressEvent(
                    "done", index, total, spec.name, wall_seconds=run.wall_seconds
                )
            )
            runs.append(run)
        return runs
    workers = min(jobs, total)
    results: List[Optional[EngineRun]] = [None] * total
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        futures = {}
        for index, spec in enumerate(specs):
            notify(ProgressEvent("start", index, total, spec.name))
            futures[pool.submit(_execute_spec_guarded, spec)] = index
        for future in as_completed(futures):
            index = futures[future]
            spec = specs[index]
            payload = future.result()
            if payload[0] == "error":
                _, name, worker_tb = payload
                summary = worker_tb.strip().splitlines()[-1] if worker_tb else ""
                notify(ProgressEvent("error", index, total, name, error=summary))
                raise EngineError(name, worker_tb)
            run = payload[1]
            results[index] = run
            notify(
                ProgressEvent(
                    "done", index, total, spec.name, wall_seconds=run.wall_seconds
                )
            )
    return results


def _ignore_progress(event: ProgressEvent) -> None:
    """The default progress sink: drop the event."""


def parallel_map(func: Callable, items: Sequence, jobs: int = 1) -> List:
    """Generic deterministic fan-out: ``[func(x) for x in items]``,
    optionally across a process pool.  ``func`` must be a module-level
    function when ``jobs > 1``.  Order is preserved either way."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(func, items))

"""The parallel experiment engine.

The paper's measurements were embarrassingly parallel: five workloads,
each measured independently on its own machine, summed afterwards into
the composite histogram.  This module reproduces that shape for the
simulator — each :class:`RunSpec` describes one monitored run, a process
pool executes the specs on separate interpreters, and the payloads come
back to the coordinating process to be merged by
:func:`repro.core.experiment.composite`.

Two properties the engine guarantees:

* **Determinism.**  A spec fully seeds its run (profile seed +
  ``seed_offset``); every RNG in the simulator is an instance-seeded
  ``random.Random`` and nothing depends on interpreter-level state such
  as string-hash randomization.  ``jobs=4`` therefore produces
  bit-identical histograms, event counters and Table 8 matrices to
  ``jobs=1`` — the regression tests assert this.
* **Picklability.**  Specs cross the process boundary, so ablations are
  expressed declaratively with :class:`MachineConfig` rather than with
  closures (a module-level ``configure`` function also works; a lambda
  does not).  Results come back as :class:`EngineRun` payloads carrying
  the reduced :class:`~repro.core.experiment.ExperimentResult` plus the
  raw sparse histogram dump, so the coordinator can both merge and
  verify byte-for-byte.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import ExperimentResult, run_workload


@dataclass(frozen=True)
class MachineConfig:
    """A declarative, picklable machine configuration for ablation runs.

    Each field is an optional override of the 11/780 baseline; ``None``
    means "leave the baseline alone".  This is the process-pool-safe
    replacement for the ``configure(machine)`` closures the examples
    used to build inline.
    """

    #: cache data size (the real machine: 8 KB, 2-way, write-through)
    cache_size_bytes: Optional[int] = None
    #: translation-buffer entries per half (the real machine: 64+64)
    tb_half_entries: Optional[int] = None
    #: write-buffer drain latency in cycles (the real machine: 6)
    wb_drain_cycles: Optional[int] = None
    #: overlap I-Decode with the previous instruction (the 11/750 trick)
    decode_overlap: Optional[bool] = None
    #: float-execute slowdown applied when no FPA is fitted
    float_slowdown: Optional[int] = None

    def apply(self, machine) -> None:
        """Apply the overrides to a freshly built machine (pre-boot)."""
        from repro.memory.cache import Cache
        from repro.memory.tb import TranslationBuffer
        from repro.memory.write_buffer import WriteBuffer

        memory = machine.memory
        if self.cache_size_bytes is not None:
            memory.cache = Cache(size_bytes=self.cache_size_bytes)
        if self.tb_half_entries is not None:
            memory.tb = TranslationBuffer(half_entries=self.tb_half_entries)
        if self.wb_drain_cycles is not None:
            memory.write_buffer = WriteBuffer(drain_cycles=self.wb_drain_cycles)
        if self.decode_overlap is not None:
            machine.ebox.decode_overlap = self.decode_overlap
        if self.float_slowdown is not None:
            machine.ebox.float_slowdown = self.float_slowdown

    def describe(self) -> str:
        """A short human-readable tag for sweep tables."""
        parts = []
        if self.cache_size_bytes is not None:
            parts.append("cache={}KB".format(self.cache_size_bytes // 1024))
        if self.tb_half_entries is not None:
            parts.append("tb={0}+{0}".format(self.tb_half_entries))
        if self.wb_drain_cycles is not None:
            parts.append("wb_drain={}".format(self.wb_drain_cycles))
        if self.decode_overlap is not None:
            parts.append("decode_overlap={}".format(self.decode_overlap))
        if self.float_slowdown is not None:
            parts.append("float_slowdown={}".format(self.float_slowdown))
        return ",".join(parts) or "baseline"


@dataclass(frozen=True)
class RunSpec:
    """One monitored measurement run, fully described by value.

    A spec must pickle: keep ``configure`` a module-level function (or
    ``None``) and express ablations with :class:`MachineConfig`.  When
    both are given, ``config`` applies first.
    """

    workload: str
    instructions: int = 30_000
    warmup_instructions: int = 3_000
    process_count: Optional[int] = None
    seed_offset: int = 0
    config: Optional[MachineConfig] = None
    configure: Optional[Callable] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.config is not None:
            return "{}[{}]".format(self.workload, self.config.describe())
        return self.workload


@dataclass
class EngineRun:
    """What one executed spec ships back to the coordinator."""

    spec: RunSpec
    result: ExperimentResult
    #: raw sparse dump of the histogram board, (counts, stalled_counts)
    #: as {bucket: count} dicts — the wire format used to verify that
    #: parallel and sequential runs agree byte for byte.
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    wall_seconds: float


def _spec_configure(spec: RunSpec):
    """Build the effective configure callable (inside the worker)."""
    config, configure = spec.config, spec.configure
    if config is None and configure is None:
        return None

    def apply(machine):
        if config is not None:
            config.apply(machine)
        if configure is not None:
            configure(machine)

    return apply


def execute_spec(spec: RunSpec) -> EngineRun:
    """Run one spec to completion (this is the pool worker)."""
    started = time.perf_counter()
    result, board = run_workload(
        spec.workload,
        instructions=spec.instructions,
        warmup_instructions=spec.warmup_instructions,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
        return_board=True,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    return EngineRun(
        spec=spec,
        result=result,
        histogram=board.dump_sparse(),
        wall_seconds=time.perf_counter() - started,
    )


def _pool_context():
    """Prefer fork (cheap, shares the warmed program cache); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_specs(specs: Sequence[RunSpec], jobs: int = 1) -> List[EngineRun]:
    """Execute ``specs``, ``jobs`` at a time; results keep spec order.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling
    requirement) and is the reference behaviour: parallel execution
    produces bit-identical payloads, just faster.
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(execute_spec, specs))


def parallel_map(func: Callable, items: Sequence, jobs: int = 1) -> List:
    """Generic deterministic fan-out: ``[func(x) for x in items]``,
    optionally across a process pool.  ``func`` must be a module-level
    function when ``jobs > 1``.  Order is preserved either way."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(func, items))

"""The parallel experiment engine.

The paper's measurements were embarrassingly parallel: five workloads,
each measured independently on its own machine, summed afterwards into
the composite histogram.  This module reproduces that shape for the
simulator — each :class:`RunSpec` describes one monitored run, a process
pool executes the specs on separate interpreters, and the payloads come
back to the coordinating process to be merged by
:func:`repro.core.experiment.composite`.

Three properties the engine guarantees:

* **Determinism.**  A spec fully seeds its run (profile seed +
  ``seed_offset``); every RNG in the simulator is an instance-seeded
  ``random.Random`` and nothing depends on interpreter-level state such
  as string-hash randomization.  ``jobs=4`` therefore produces
  bit-identical histograms, event counters and Table 8 matrices to
  ``jobs=1`` — the regression tests assert this.
* **Picklability.**  Specs cross the process boundary, so ablations are
  expressed declaratively with :class:`MachineConfig` rather than with
  closures (a module-level ``configure`` function also works; a lambda
  does not).  Results come back as :class:`EngineRun` payloads carrying
  the reduced :class:`~repro.core.experiment.ExperimentResult` plus the
  raw sparse histogram dump, so the coordinator can both merge and
  verify byte-for-byte.
* **Fault tolerance.**  :func:`run_specs` takes a
  :class:`~repro.core.resilience.ResiliencePolicy`: per-spec retries
  with exponential backoff, per-spec wall-clock timeouts, recovery from
  an abruptly-dead process pool (respawn it, requeue what was in
  flight, degrade to in-process execution when pools keep dying), and a
  fail-soft ``on_error="collect"`` mode that returns partial results
  plus a structured :class:`~repro.core.resilience.FailureReport`
  instead of aborting the sweep.  The sharded executor self-heals its
  cache — corrupt or unpicklable objects are quarantined and recomputed
  — and shards lost to worker failures are re-run by an in-process
  repair chain.  Because every run is deterministic, a recovered sweep
  is bit-identical to an undisturbed one; the fault-injection tests
  (driven by :mod:`repro.testing.faults`) assert exactly that.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import (
    ExperimentResult,
    MachineStats,
    prepare_workload,
    run_workload,
)
from repro.cpu.events import EventCounters
from repro.testing import faults


class EngineError(RuntimeError):
    """A spec failed inside a pool worker.

    Carries *which* spec died and the worker-side traceback — a bare
    ``BrokenProcessPool`` or a re-raised exception with a coordinator
    stack tells you neither.  Sharded failures additionally carry the
    per-shard status map, so a partial cache/pool failure is diagnosable
    from the error alone.
    """

    def __init__(self, spec_name: str, worker_traceback: str):
        super().__init__(
            "spec {!r} failed in worker:\n{}".format(spec_name, worker_traceback)
        )
        self.spec_name = spec_name
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress notification (see :func:`run_specs`).

    ``kind`` is ``"start"`` (the spec was dispatched), ``"done"``
    (finished, ``wall_seconds`` filled in), ``"retry"`` (an attempt
    failed and the resilience policy is retrying; ``error`` holds the
    summary) or ``"error"`` (failed for good, ``error`` holds the
    summary line; the full traceback rides the :class:`EngineError` or
    :class:`~repro.core.resilience.FailureReport` that follows).
    """

    kind: str
    index: int
    total: int
    name: str
    wall_seconds: float = 0.0
    error: Optional[str] = None


#: The shape run_specs notifies: callback(event) -> None.
ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class MachineConfig:
    """A declarative, picklable machine configuration for ablation runs.

    Each field is an optional override of the 11/780 baseline; ``None``
    means "leave the baseline alone".  This is the process-pool-safe
    replacement for the ``configure(machine)`` closures the examples
    used to build inline.
    """

    #: cache data size (the real machine: 8 KB, 2-way, write-through)
    cache_size_bytes: Optional[int] = None
    #: translation-buffer entries per half (the real machine: 64+64)
    tb_half_entries: Optional[int] = None
    #: write-buffer drain latency in cycles (the real machine: 6)
    wb_drain_cycles: Optional[int] = None
    #: overlap I-Decode with the previous instruction (the 11/750 trick)
    decode_overlap: Optional[bool] = None
    #: float-execute slowdown applied when no FPA is fitted
    float_slowdown: Optional[int] = None

    def apply(self, machine) -> None:
        """Apply the overrides to a freshly built machine (pre-boot)."""
        from repro.memory.cache import Cache
        from repro.memory.tb import TranslationBuffer
        from repro.memory.write_buffer import WriteBuffer

        memory = machine.memory
        if self.cache_size_bytes is not None:
            memory.cache = Cache(size_bytes=self.cache_size_bytes)
        if self.tb_half_entries is not None:
            memory.tb = TranslationBuffer(half_entries=self.tb_half_entries)
        if self.wb_drain_cycles is not None:
            memory.write_buffer = WriteBuffer(drain_cycles=self.wb_drain_cycles)
        if self.decode_overlap is not None:
            machine.ebox.decode_overlap = self.decode_overlap
        if self.float_slowdown is not None:
            machine.ebox.float_slowdown = self.float_slowdown

    def describe(self) -> str:
        """A short human-readable tag for sweep tables."""
        parts = []
        if self.cache_size_bytes is not None:
            parts.append("cache={}KB".format(self.cache_size_bytes // 1024))
        if self.tb_half_entries is not None:
            parts.append("tb={0}+{0}".format(self.tb_half_entries))
        if self.wb_drain_cycles is not None:
            parts.append("wb_drain={}".format(self.wb_drain_cycles))
        if self.decode_overlap is not None:
            parts.append("decode_overlap={}".format(self.decode_overlap))
        if self.float_slowdown is not None:
            parts.append("float_slowdown={}".format(self.float_slowdown))
        return ",".join(parts) or "baseline"


@dataclass(frozen=True)
class RunSpec:
    """One monitored measurement run, fully described by value.

    A spec must pickle: keep ``configure`` a module-level function (or
    ``None``) and express ablations with :class:`MachineConfig`.  When
    both are given, ``config`` applies first.
    """

    workload: str
    instructions: int = 30_000
    warmup_instructions: int = 3_000
    process_count: Optional[int] = None
    seed_offset: int = 0
    config: Optional[MachineConfig] = None
    configure: Optional[Callable] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.config is not None:
            return "{}[{}]".format(self.workload, self.config.describe())
        return self.workload


@dataclass
class EngineRun:
    """What one executed spec ships back to the coordinator."""

    spec: RunSpec
    result: ExperimentResult
    #: raw sparse dump of the histogram board, (counts, stalled_counts)
    #: as {bucket: count} dicts — the wire format used to verify that
    #: parallel and sequential runs agree byte for byte.
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    wall_seconds: float
    #: provenance manifest (repro.obs.provenance.RunManifest)
    manifest: Optional[object] = None
    #: worker-side self-profiling, a MetricsRegistry.snapshot() dict
    metrics: Optional[Dict] = None
    #: intra-workload sharding provenance: how many resumable shards the
    #: measurement was split into, and how many replayed from the cache.
    shard_count: int = 1
    shards_from_cache: int = 0


def _spec_configure(spec: RunSpec):
    """Build the effective configure callable (inside the worker)."""
    config, configure = spec.config, spec.configure
    if config is None and configure is None:
        return None

    def apply(machine):
        if config is not None:
            config.apply(machine)
        if configure is not None:
            configure(machine)

    return apply


def execute_spec(spec: RunSpec, tracer=None) -> EngineRun:
    """Run one spec to completion (this is the pool worker).

    Every run ships back a :class:`~repro.obs.provenance.RunManifest`
    (config hash, seeds, code version, timings) and a metrics snapshot
    (per-phase wall-clock self-profiling from the worker).
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    faults.fire("worker", key=spec.name)
    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    metrics = MetricsRegistry()
    started = time.perf_counter()
    result, board = run_workload(
        spec.workload,
        instructions=spec.instructions,
        warmup_instructions=spec.warmup_instructions,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
        return_board=True,
        tracer=tracer,
        metrics=metrics,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    wall = time.perf_counter() - started
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    snapshot = metrics.snapshot()
    from repro.core.compile import stats_from_snapshot

    manifest.compile = stats_from_snapshot(snapshot)
    return EngineRun(
        spec=spec,
        result=result,
        histogram=board.dump_sparse(),
        wall_seconds=wall,
        manifest=manifest,
        metrics=snapshot,
    )


def _execute_spec_guarded(spec: RunSpec) -> Tuple:
    """Pool-worker wrapper: never raises across the pickle boundary.

    Exceptions re-raised by a future lose their worker stack; shipping
    ``("error", name, traceback_text)`` instead lets the coordinator
    raise an :class:`EngineError` that says exactly which spec died and
    where.
    """
    try:
        return ("ok", execute_spec(spec))
    except Exception:
        return ("error", spec.name, traceback.format_exc())


def _pool_context():
    """Prefer fork (cheap, shares the warmed program cache); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _tb_summary(worker_tb: str) -> str:
    """The last line of a traceback — the one-line progress summary."""
    return worker_tb.strip().splitlines()[-1] if worker_tb else ""


def _run_pool_tasks(
    fn,
    tasks: Sequence[Tuple[int, object]],
    workers: int,
    policy,
    describe: Callable[[int], str],
    on_start=None,
    on_done=None,
    on_retry=None,
):
    """Run guarded tasks through a process pool under a resilience policy.

    ``tasks`` is ``[(task_id, arg), ...]`` and ``fn(arg)`` must return a
    guarded payload (``("ok", ...)`` or ``("error", name, traceback)``).
    Returns ``(payloads, failures, stats)``: ``payloads[task_id]`` is
    ``(payload, attempts)``, ``failures[task_id]`` a
    :class:`~repro.core.resilience.SpecFailure`, and ``stats`` the
    retry/timeout/respawn/degradation counters.

    Three fault classes the bare executor does not survive are handled
    here:

    * a task *raising* — retried with exponential backoff up to the
      policy's attempt budget;
    * a worker *dying abruptly* (``BrokenProcessPool``) — the pool is
      respawned and everything that was in flight requeued; since the
      culprit is unknowable from outside, the crash is charged as one
      attempt against every in-flight task;
    * a task *exceeding its wall-clock budget* — a stuck worker cannot
      be reclaimed individually, so the pool is recycled; the slow task
      is charged an attempt, the innocents requeue for free.

    After ``policy.max_pool_respawns`` recycles the pool is abandoned
    and the remainder runs in-process (degraded mode: retries still
    apply, timeouts cannot preempt).

    A ``KeyboardInterrupt`` cancels outstanding futures, shuts the pool
    down without waiting and re-raises as
    :class:`~repro.core.resilience.SweepInterrupted` carrying everything
    that already finished.
    """
    from repro.core.resilience import SpecFailure, SweepInterrupted

    pending = deque((tid, arg, 1, 0.0) for tid, arg in tasks)
    payloads: Dict[int, Tuple] = {}
    failures: Dict[int, object] = {}
    stats = {"retries": 0, "timeouts": 0, "pool_respawns": 0, "degraded": False}
    max_attempts = policy.retry.max_attempts
    stop_on_failure = policy.on_error == "raise"
    inflight: Dict = {}

    def notify_start(tid, attempt):
        if on_start is not None and attempt == 1:
            on_start(tid)

    def record_success(tid, payload, attempt):
        payloads[tid] = (payload, attempt)
        if on_done is not None:
            on_done(tid, payload)

    def fail_or_retry(tid, arg, attempt, kind, error, tb="") -> bool:
        """Requeue with backoff, or record the final failure (-> True)."""
        if attempt < max_attempts:
            stats["retries"] += 1
            if on_retry is not None:
                on_retry(tid, attempt, kind, error)
            delay = policy.retry.backoff(attempt)
            pending.append((tid, arg, attempt + 1, time.monotonic() + delay))
            return False
        failures[tid] = SpecFailure(
            name=describe(tid),
            index=tid,
            attempts=attempt,
            kind=kind,
            error=error,
            worker_traceback=tb,
        )
        return True

    def recycle(reason_futures, kind, error):
        """The pool is unusable: shut it down, charge ``reason_futures``
        a failed attempt, requeue the innocents for free."""
        nonlocal pool
        stats["pool_respawns"] += 1
        pool.shutdown(wait=False, cancel_futures=True)
        victims = list(inflight.items())
        inflight.clear()
        for future, (tid, arg, attempt, _) in victims:
            if future in reason_futures:
                fail_or_retry(tid, arg, attempt, kind, error)
            else:
                pending.appendleft((tid, arg, attempt, 0.0))
        if stats["pool_respawns"] > policy.max_pool_respawns:
            stats["degraded"] = True
            pool = None
        else:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())

    pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
    try:
        while pending or inflight:
            if stop_on_failure and failures:
                break
            now = time.monotonic()
            if stats["degraded"]:
                # In-process fallback: no pool left to trust.  Retries
                # still apply; timeouts cannot preempt in-process work.
                tid, arg, attempt, not_before = pending.popleft()
                if not_before > now:
                    policy.sleep(not_before - now)
                notify_start(tid, attempt)
                payload = fn(arg)
                if payload[0] == "ok":
                    record_success(tid, payload, attempt)
                else:
                    fail_or_retry(
                        tid, arg, attempt, "error",
                        _tb_summary(payload[-1]), payload[-1],
                    )
                continue
            # Dispatch one task per idle worker; a task whose backoff
            # stamp is still in the future stays queued.
            if pending and len(inflight) < workers:
                waiting = []
                while pending and len(inflight) < workers:
                    tid, arg, attempt, not_before = pending.popleft()
                    if not_before > now:
                        waiting.append((tid, arg, attempt, not_before))
                        continue
                    deadline = (
                        now + policy.spec_timeout if policy.spec_timeout else 0.0
                    )
                    future = pool.submit(fn, arg)
                    inflight[future] = (tid, arg, attempt, deadline)
                    notify_start(tid, attempt)
                for entry in reversed(waiting):
                    pending.appendleft(entry)
            if not inflight:
                # Everything left is backing off; sleep to the earliest
                # stamp instead of spinning.
                wake = min(entry[3] for entry in pending)
                policy.sleep(max(0.0, wake - time.monotonic()))
                continue
            horizons = [meta[3] for meta in inflight.values() if meta[3]]
            horizons += [entry[3] for entry in pending if entry[3]]
            timeout = (
                max(0.0, min(horizons) - time.monotonic()) + 0.02
                if horizons
                else None
            )
            done, _ = wait(list(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                meta = inflight.pop(future)
                tid, arg, attempt, _ = meta
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    inflight[future] = meta  # recycle() charges it below
                    broken = True
                    break
                except Exception as exc:
                    fail_or_retry(
                        tid, arg, attempt, "error", str(exc), traceback.format_exc()
                    )
                    continue
                if payload[0] == "ok":
                    record_success(tid, payload, attempt)
                else:
                    fail_or_retry(
                        tid, arg, attempt, "error",
                        _tb_summary(payload[-1]), payload[-1],
                    )
            if broken:
                recycle(
                    set(inflight),
                    "pool-crash",
                    "a process-pool worker died while the task was in flight",
                )
                continue
            if policy.spec_timeout:
                now = time.monotonic()
                expired = {
                    future
                    for future, meta in inflight.items()
                    if meta[3] and meta[3] <= now
                }
                if expired:
                    stats["timeouts"] += len(expired)
                    recycle(
                        expired,
                        "timeout",
                        "task exceeded the {:.3g}s wall-clock budget".format(
                            policy.spec_timeout
                        ),
                    )
    except KeyboardInterrupt:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        raise SweepInterrupted(payloads=payloads, failures=failures, stats=stats)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    return payloads, failures, stats


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    policy=None,
):
    """Execute ``specs``, ``jobs`` at a time; results keep spec order.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling
    requirement) and is the reference behaviour: parallel execution
    produces bit-identical payloads, just faster.

    ``progress`` receives a :class:`ProgressEvent` when each spec is
    dispatched, retried, completed or failed — the CLI renders these as
    live per-workload status lines.

    ``policy`` (a :class:`~repro.core.resilience.ResiliencePolicy`)
    governs the failure behaviour; the default reproduces the
    historical engine exactly — one attempt, no timeout, and a failing
    spec raises :class:`EngineError` naming the spec and carrying the
    worker-side traceback.  With ``policy.on_error == "collect"`` the
    sweep is fail-soft: the return value is a
    :class:`~repro.core.resilience.SweepResult` whose ``runs`` list has
    ``None`` at failed indices and whose ``report`` tells the story.
    A ``KeyboardInterrupt`` mid-sweep cancels outstanding work, persists
    the partial report when the policy names a path, and re-raises as
    :class:`~repro.core.resilience.SweepInterrupted`.
    """
    from repro.core.resilience import (
        FailureReport,
        ResiliencePolicy,
        SpecFailure,
        SweepInterrupted,
        SweepResult,
    )

    specs = list(specs)
    total = len(specs)
    notify = progress if progress is not None else _ignore_progress
    policy = policy if policy is not None else ResiliencePolicy()
    max_attempts = policy.retry.max_attempts

    results: List[Optional[EngineRun]] = [None] * total
    report = FailureReport(total=total)

    def interrupted(cause):
        report.interrupted = True
        report.completed = [
            spec.name for spec, run in zip(specs, results) if run is not None
        ]
        if policy.interrupt_report_path:
            report.save(policy.interrupt_report_path)
        policy.record_report(report)
        raise SweepInterrupted(report=report) from cause

    def conclude():
        report.completed = [
            spec.name for spec, run in zip(specs, results) if run is not None
        ]
        policy.record_report(report)
        if report.failures and policy.on_error == "raise":
            first = min(report.failures, key=lambda failure: failure.index)
            raise EngineError(first.name, first.worker_traceback or first.error)
        if policy.on_error == "collect":
            return SweepResult(runs=results, report=report)
        return results

    if jobs <= 1 or total <= 1:
        try:
            for index, spec in enumerate(specs):
                notify(ProgressEvent("start", index, total, spec.name))
                attempt = 1
                while True:
                    try:
                        run = execute_spec(spec)
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        worker_tb = traceback.format_exc()
                        if attempt < max_attempts:
                            report.retries += 1
                            notify(
                                ProgressEvent(
                                    "retry", index, total, spec.name, error=str(exc)
                                )
                            )
                            policy.sleep(policy.retry.backoff(attempt))
                            attempt += 1
                            continue
                        notify(
                            ProgressEvent(
                                "error", index, total, spec.name, error=str(exc)
                            )
                        )
                        report.failures.append(
                            SpecFailure(
                                name=spec.name,
                                index=index,
                                attempts=attempt,
                                kind="error",
                                error=str(exc),
                                worker_traceback=worker_tb,
                            )
                        )
                        break
                    if run.manifest is not None:
                        run.manifest.attempts = attempt
                    results[index] = run
                    notify(
                        ProgressEvent(
                            "done", index, total, spec.name,
                            wall_seconds=run.wall_seconds,
                        )
                    )
                    break
                if report.failures and policy.on_error == "raise":
                    break
        except KeyboardInterrupt as exc:
            interrupted(exc)
        return conclude()

    workers = min(jobs, total)

    def describe(index):
        return specs[index].name

    def on_start(index):
        notify(ProgressEvent("start", index, total, specs[index].name))

    def on_done(index, payload):
        notify(
            ProgressEvent(
                "done", index, total, specs[index].name,
                wall_seconds=payload[1].wall_seconds,
            )
        )

    def on_retry(index, attempt, kind, error):
        notify(ProgressEvent("retry", index, total, specs[index].name, error=error))

    def absorb(payloads):
        for index, (payload, attempts) in payloads.items():
            run = payload[1]
            if run.manifest is not None:
                run.manifest.attempts = attempts
            results[index] = run

    tasks = [(index, spec) for index, spec in enumerate(specs)]
    try:
        payloads, failures, stats = _run_pool_tasks(
            _execute_spec_guarded, tasks, workers, policy, describe,
            on_start=on_start, on_done=on_done, on_retry=on_retry,
        )
    except SweepInterrupted as stop:
        absorb(stop.payloads)
        report.retries += stop.stats.get("retries", 0)
        report.timeouts += stop.stats.get("timeouts", 0)
        report.pool_respawns += stop.stats.get("pool_respawns", 0)
        report.failures.extend(
            stop.failures[index] for index in sorted(stop.failures)
        )
        interrupted(stop)
    absorb(payloads)
    report.retries += stats["retries"]
    report.timeouts += stats["timeouts"]
    report.pool_respawns += stats["pool_respawns"]
    report.degraded = stats["degraded"]
    for index in sorted(failures):
        failure = failures[index]
        notify(ProgressEvent("error", index, total, failure.name, error=failure.error))
        report.failures.append(failure)
    return conclude()


def _ignore_progress(event: ProgressEvent) -> None:
    """The default progress sink: drop the event."""


# ----------------------------------------------------------------------
# intra-workload sharding
# ----------------------------------------------------------------------
#
# One workload's N-instruction measurement splits into K resumable
# shards at instruction boundaries i*N//K.  Everything the measurement
# produces is additive — monitor banks, event counters, hardware stats —
# so each shard records its *delta* and merging the deltas in order is
# bit-identical to the uninterrupted run (asserted by the equivalence
# tests, like the composite case).
#
# Simulation is inherently serial (shard i+1 starts from shard i's end
# state), so a cold sharded run executes as one in-process chain that
# banks a machine snapshot at every boundary.  The parallelism and the
# speedup come from the content-addressed cache: finished shards replay
# instantly on re-runs, and shards whose start-boundary snapshot is
# already cached fan out across the process pool.  Boundary offsets are
# absolute instruction counts, so different shard counts share the
# snapshots they have in common (a 2-way split reuses a 4-way split's
# midpoint).
#
# Fault tolerance rides the same structure: a corrupt cached shard or
# snapshot is quarantined (RunCache.quarantine) and treated as a miss,
# and any shard a pool worker failed to produce is recomputed by an
# in-process repair chain from the deepest healthy snapshot — the
# determinism guarantee makes the repaired shards bit-identical to what
# the lost worker would have returned.


@dataclass
class ShardResult:
    """One shard's measured delta; everything in it is additive."""

    index: int
    shard_count: int
    #: measured-instruction offset where this shard began
    start_instruction: int
    instructions: int
    #: sparse (counts, stalled_counts) delta of the histogram banks
    histogram: Tuple[Dict[int, int], Dict[int, int]]
    events: EventCounters
    stats: MachineStats
    wall_seconds: float = 0.0
    #: True when this shard was replayed from the run cache
    from_cache: bool = False


def shard_boundaries(instructions: int, shards: int) -> List[int]:
    """Instruction offsets splitting ``instructions`` into ``shards``.

    ``i*N//K`` spreads any remainder evenly and makes boundaries shared
    between different shard counts coincide exactly, so their cached
    snapshots are interchangeable."""
    if shards < 1:
        raise ValueError("shard count must be >= 1, got {}".format(shards))
    return [instructions * i // shards for i in range(shards + 1)]


def _sparse_delta(after: Dict[int, int], before: Dict[int, int]) -> Dict[int, int]:
    """Per-bucket difference of two sparse dumps (counts only grow)."""
    return {
        bucket: count - before.get(bucket, 0)
        for bucket, count in after.items()
        if count - before.get(bucket, 0)
    }


def _measure_span(kernel, instructions: int, fault_key: Optional[str] = None):
    """Run ``instructions`` measured instructions; return the delta.

    The kernel must already be measuring.  Returns ``(histogram_delta,
    events_delta, stats_delta, wall_seconds)`` — the additive
    contribution of exactly this span, independent of where in the
    measurement it sits.  ``fault_key`` names this span to the
    fault-injection harness (site ``shard.measure``)."""
    if fault_key is not None:
        faults.fire("shard.measure", key=fault_key)
    machine = kernel.machine
    board = machine.monitor.board
    counts_before, stalled_before = board.dump_sparse()
    events_before = copy.deepcopy(machine.events)
    stats_before = MachineStats.from_machine(machine)
    started = time.perf_counter()
    kernel.run(max_instructions=instructions)
    wall = time.perf_counter() - started
    counts_after, stalled_after = board.dump_sparse()
    histogram = (
        _sparse_delta(counts_after, counts_before),
        _sparse_delta(stalled_after, stalled_before),
    )
    return (
        histogram,
        machine.events.minus(events_before),
        MachineStats.from_machine(machine).minus(stats_before),
        wall,
    )


def _shard_cache_keys(spec: RunSpec, boundaries: List[int]):
    """(config hash, per-shard result keys, per-boundary snapshot keys)."""
    from repro.core.runcache import cache_key
    from repro.obs.provenance import config_hash

    chash = config_hash(spec)
    shard_keys = [
        cache_key("shard", config=chash, start=boundaries[i], end=boundaries[i + 1])
        for i in range(len(boundaries) - 1)
    ]
    snapshot_keys = {
        boundary: cache_key("snapshot", config=chash, instruction=boundary)
        for boundary in boundaries[:-1]
    }
    return chash, shard_keys, snapshot_keys


def _store_shard(cache, key: str, shard: ShardResult, spec_name: str, chash: str) -> None:
    cache.put(
        key,
        pickle.dumps(shard, protocol=4),
        meta={
            "kind": "shard",
            "spec": spec_name,
            "config": chash,
            "start": shard.start_instruction,
            "instructions": shard.instructions,
            "shard": "{}/{}".format(shard.index + 1, shard.shard_count),
        },
    )


def _store_boundary_snapshot(
    cache, key: str, kernel, spec_name: str, chash: str, instruction: int
) -> None:
    from repro.core.snapshot import capture

    snapshot = capture(kernel, label="{}@{}".format(spec_name, instruction))
    cache.put(
        key,
        snapshot.to_bytes(),
        meta={
            "kind": "snapshot",
            "spec": spec_name,
            "config": chash,
            "instruction": instruction,
            "digest": snapshot.digest,
        },
    )


def _load_cached_snapshot(cache, key: str):
    """Fetch and restore a boundary snapshot, self-healing corruption.

    Returns ``(kernel, digest)``, or ``(None, None)`` when the snapshot
    is absent *or* damaged — damage is quarantined so the caller's
    recomputation lands in a clean slot.  ``RunCache.get`` already
    catches byte-level rot via the ``.sum`` digest; the except clause
    here catches what slips past it (a truncated legacy object, an
    injected restore failure, a pickle from an incompatible build)."""
    from repro.core.snapshot import MachineSnapshot, SnapshotError, restore

    blob = cache.get(key)
    if blob is None:
        return None, None
    try:
        snapshot = MachineSnapshot.from_bytes(blob)
        kernel = restore(snapshot)
    except (
        SnapshotError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
    ) as exc:
        cache.quarantine(key, reason="snapshot restore failed: {}".format(exc))
        return None, None
    return kernel, snapshot.digest


def _execute_shard_task(task: Dict) -> ShardResult:
    """Measure one shard from its cached start-boundary snapshot.

    Runs in a pool worker (or inline with ``jobs=1``): restore the
    snapshot, measure the span, bank the shard result — and the next
    boundary's snapshot, if nobody has stored it yet — in the cache."""
    from repro.core.runcache import RunCache

    fault_key = "{}@{}".format(task["spec_name"], task["start"])
    faults.fire("shard.task", key=fault_key)
    cache = RunCache(task["cache_root"])
    kernel, _ = _load_cached_snapshot(cache, task["snapshot_key"])
    if kernel is None:
        raise RuntimeError(
            "boundary snapshot at instruction {} is missing or quarantined "
            "in cache {}".format(task["start"], task["cache_root"])
        )
    histogram, events, stats, wall = _measure_span(
        kernel, task["instructions"], fault_key=fault_key
    )
    shard = ShardResult(
        index=task["index"],
        shard_count=task["shard_count"],
        start_instruction=task["start"],
        instructions=task["instructions"],
        histogram=histogram,
        events=events,
        stats=stats,
        wall_seconds=wall,
    )
    end_key = task.get("end_snapshot_key")
    if end_key is not None and not cache.has(end_key):
        _store_boundary_snapshot(
            cache,
            end_key,
            kernel,
            task["spec_name"],
            task["config_hash"],
            task["start"] + task["instructions"],
        )
    _store_shard(cache, task["shard_key"], shard, task["spec_name"], task["config_hash"])
    return shard


def _execute_shard_task_guarded(task: Dict) -> Tuple:
    """Pool wrapper: ship worker failures back as data (cf. specs)."""
    try:
        return ("ok", _execute_shard_task(task))
    except Exception:
        return ("error", task.get("spec_name", "?"), traceback.format_exc())


def _open_chain_kernel(
    spec: RunSpec,
    boundaries: List[int],
    start_index: int,
    cache,
    snapshot_keys: Dict[int, str],
    chash: str,
):
    """Open a measuring kernel for a chain that wants to start at
    ``start_index``.

    Restores the deepest *healthy* cached boundary snapshot at or below
    the requested index — corrupt candidates are quarantined and the
    search continues shallower — falling back to a fresh build + warmup
    at instruction 0.  Returns ``(kernel, anchor_index,
    resumed_digest)``; the caller's chain must run from ``anchor_index``
    (which may be below ``start_index``, recomputing spans whose results
    are already known, because simulation state is only reachable by
    simulating)."""
    if cache is not None:
        for candidate in range(start_index, -1, -1):
            key = snapshot_keys[boundaries[candidate]]
            if not cache.has(key):
                continue
            kernel, digest = _load_cached_snapshot(cache, key)
            if kernel is not None:
                return kernel, candidate, digest
    kernel, _ = prepare_workload(
        spec.workload,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
    )
    kernel.run(max_instructions=spec.warmup_instructions)
    kernel.start_measurement()
    if cache is not None and not cache.has(snapshot_keys[0]):
        _store_boundary_snapshot(cache, snapshot_keys[0], kernel, spec.name, chash, 0)
    return kernel, 0, None


def _run_shard_chain(
    spec: RunSpec,
    boundaries: List[int],
    start_index: int,
    end_index: int,
    results: List[Optional[ShardResult]],
    cache,
    shard_keys: List[str],
    snapshot_keys: Dict[int, str],
    chash: str,
    notify: ProgressCallback,
    shards: int,
) -> Optional[str]:
    """Execute a contiguous run of shards in-process.

    Starts from the deepest healthy cached boundary snapshot (or a
    fresh build + warmup when none survives), emits every missing shard
    result and boundary snapshot into the cache as it passes, and
    returns the digest of the snapshot it resumed from, if any.  Spans
    whose results are already filled are simulated through without
    re-storing — the chain needs their end state, not their numbers."""
    kernel, anchor, resumed_digest = _open_chain_kernel(
        spec, boundaries, start_index, cache, snapshot_keys, chash
    )
    for index in range(anchor, end_index + 1):
        span = boundaries[index + 1] - boundaries[index]
        name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
        notify(ProgressEvent("start", index, shards, name))
        histogram, events, stats, wall = _measure_span(
            kernel, span, fault_key="{}@{}".format(spec.name, boundaries[index])
        )
        if results[index] is None:
            shard = ShardResult(
                index=index,
                shard_count=shards,
                start_instruction=boundaries[index],
                instructions=span,
                histogram=histogram,
                events=events,
                stats=stats,
                wall_seconds=wall,
            )
            results[index] = shard
            if cache is not None:
                _store_shard(cache, shard_keys[index], shard, spec.name, chash)
        notify(ProgressEvent("done", index, shards, name, wall_seconds=wall))
        next_boundary = boundaries[index + 1]
        if cache is not None and index + 1 < shards:
            key = snapshot_keys[next_boundary]
            if not cache.has(key):
                _store_boundary_snapshot(
                    cache, key, kernel, spec.name, chash, next_boundary
                )
    return resumed_digest


def _merge_shard_results(
    spec: RunSpec, shard_results: List[ShardResult]
) -> Tuple[ExperimentResult, Tuple[Dict[int, int], Dict[int, int]]]:
    """Merge shard deltas into one ExperimentResult + sparse histogram.

    The same readout-side machinery the composite uses:
    :meth:`HistogramBoard.merge_from` sums the banks,
    :meth:`EventCounters.merge_from` and :meth:`MachineStats.merge_from`
    sum the companion channels, and one reduction runs over the summed
    banks — bit-identical to reducing the uninterrupted run."""
    from repro.core.monitor import HistogramBoard
    from repro.core.reduction import reduce_histogram
    from repro.ucode.routines import build_layout
    from repro.workloads import profile_by_name

    board = HistogramBoard()
    merged_events = EventCounters()
    merged_stats = MachineStats()
    for shard in shard_results:
        board.merge_from(HistogramBoard.from_sparse(*shard.histogram))
        merged_events.merge_from(shard.events)
        merged_stats.merge_from(shard.stats)
    counts, stalled = board.dump()
    reduction = reduce_histogram(counts, stalled, build_layout(), events=merged_events)
    result = ExperimentResult(
        name=profile_by_name(spec.workload).name,
        reduction=reduction,
        events=merged_events,
        stats=merged_stats,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    return result, board.dump_sparse()


def _shard_status_map(
    results: List[Optional[ShardResult]],
    worker_failures: Dict[int, Tuple[str, str]],
    shards: int,
) -> Dict[int, str]:
    """Per-shard outcome: the diagnosable face of a partial failure."""
    status = {}
    for index in range(shards):
        shard = results[index]
        if shard is not None:
            status[index] = "from-cache" if shard.from_cache else "computed"
        elif index in worker_failures:
            status[index] = "worker failed: {}".format(worker_failures[index][0])
        else:
            status[index] = "unfilled"
    return status


def _shard_failure_text(
    results: List[Optional[ShardResult]],
    worker_failures: Dict[int, Tuple[str, str]],
    chain_failure: Optional[str],
    repair_failure: Optional[str],
    shards: int,
) -> str:
    """Compose the EngineError body for a sharded failure: the
    per-shard status map first, then every traceback we hold."""
    status = _shard_status_map(results, worker_failures, shards)
    lines = ["sharded execution left shards unfilled; per-shard status:"]
    for index in sorted(status):
        lines.append("  shard {}/{}: {}".format(index + 1, shards, status[index]))
    for index in sorted(worker_failures):
        _, worker_tb = worker_failures[index]
        if worker_tb:
            lines.append(
                "worker traceback (shard {}/{}):\n{}".format(
                    index + 1, shards, worker_tb
                )
            )
    if chain_failure:
        lines.append("chain traceback:\n{}".format(chain_failure))
    if repair_failure:
        lines.append("repair-chain traceback:\n{}".format(repair_failure))
    return "\n".join(lines)


def execute_spec_sharded(
    spec: RunSpec,
    shards: int,
    jobs: int = 1,
    cache=None,
    progress: Optional[ProgressCallback] = None,
    policy=None,
) -> EngineRun:
    """Execute one spec as ``shards`` resumable shards.

    With a ``cache`` (a :class:`~repro.core.runcache.RunCache`):
    finished shards replay instantly, shards whose start-boundary
    snapshot is cached run from it — in parallel across the process pool
    when ``jobs > 1`` — and only the rest execute as an in-process chain
    from the deepest cached snapshot.  Without a cache the whole
    measurement runs as one chain.  Either way the merged result is
    bit-identical to :func:`execute_spec` (the equivalence tests assert
    it), and the returned :class:`EngineRun` carries shard provenance in
    its manifest.

    The path is self-healing: corrupt or unpicklable cached objects are
    quarantined and recomputed, a dead pool worker's shards fall to an
    in-process repair chain, and the manifest records how much healing
    happened (``quarantined_objects``, ``repaired_shards``).  Only when
    even the repair chain fails does :class:`EngineError` surface — its
    message carries the per-shard status map and every collected
    traceback, so a partial cache/pool failure is diagnosable from the
    error alone.
    """
    from repro.core.resilience import ResiliencePolicy
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    shards = max(1, min(shards, spec.instructions or 1))
    if shards <= 1:
        return execute_spec(spec)
    policy = policy if policy is not None else ResiliencePolicy()
    notify = progress if progress is not None else _ignore_progress
    started = time.perf_counter()
    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    boundaries = shard_boundaries(spec.instructions, shards)
    chash, shard_keys, snapshot_keys = _shard_cache_keys(spec, boundaries)
    quarantined_before = cache.quarantined_objects() if cache is not None else 0

    results: List[Optional[ShardResult]] = [None] * shards
    if cache is not None:
        for index in range(shards):
            blob = cache.get(shard_keys[index])
            if blob is None:
                continue
            try:
                shard = pickle.loads(blob)
            except Exception as exc:
                # Digest-valid but undeserializable (e.g. written by an
                # incompatible build): quarantine and recompute.
                cache.quarantine(
                    shard_keys[index], reason="unpicklable shard: {}".format(exc)
                )
                continue
            shard.from_cache = True
            results[index] = shard
            name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
            notify(ProgressEvent("start", index, shards, name))
            notify(ProgressEvent("done", index, shards, name))

    #: index -> (summary, worker traceback) for shards lost to workers
    worker_failures: Dict[int, Tuple[str, str]] = {}
    chain_failure: Optional[str] = None
    resumed_digest: Optional[str] = None
    pool_respawns = 0

    def run_chain(start_index: int, end_index: int) -> None:
        nonlocal resumed_digest
        digest = _run_shard_chain(
            spec, boundaries, start_index, end_index, results, cache,
            shard_keys, snapshot_keys, chash, notify, shards,
        )
        if resumed_digest is None:
            resumed_digest = digest

    def collect(index: int, payload: Tuple) -> None:
        if payload[0] == "error":
            _, name, worker_tb = payload
            summary = _tb_summary(worker_tb)
            notify(ProgressEvent("error", index, shards, name, error=summary))
            worker_failures[index] = (summary, worker_tb)
            return
        results[index] = payload[1]
        notify(
            ProgressEvent(
                "done",
                index,
                shards,
                "{}[shard {}/{}]".format(spec.name, index + 1, shards),
                wall_seconds=payload[1].wall_seconds,
            )
        )

    missing = [index for index in range(shards) if results[index] is None]
    if missing:
        can_restore = set()
        if cache is not None:
            can_restore = {
                index
                for index in missing
                if cache.has(snapshot_keys[boundaries[index]])
            }
        chain_needed = [index for index in missing if index not in can_restore]
        chain_span: Optional[Tuple[int, int]] = None
        if chain_needed:
            chain_span = (chain_needed[0], chain_needed[-1])
        # Shards inside the chain interval fall out of the chain's pass
        # for free; only snapshot-backed shards outside it fan out.
        chain_cover = set(range(chain_span[0], chain_span[1] + 1)) if chain_span else set()
        worker_indices = sorted(can_restore - chain_cover)
        worker_tasks = [
            {
                "cache_root": cache.root,
                "index": index,
                "shard_count": shards,
                "start": boundaries[index],
                "instructions": boundaries[index + 1] - boundaries[index],
                "snapshot_key": snapshot_keys[boundaries[index]],
                "shard_key": shard_keys[index],
                "end_snapshot_key": snapshot_keys.get(boundaries[index + 1])
                if index + 1 < shards
                else None,
                "spec_name": spec.name,
                "config_hash": chash,
            }
            for index in worker_indices
        ]

        if worker_tasks and jobs > 1:
            workers = min(jobs, len(worker_tasks))
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
            futures = {}
            try:
                for task in worker_tasks:
                    notify(
                        ProgressEvent(
                            "start",
                            task["index"],
                            shards,
                            "{}[shard {}/{}]".format(
                                spec.name, task["index"] + 1, shards
                            ),
                        )
                    )
                    futures[pool.submit(_execute_shard_task_guarded, task)] = task[
                        "index"
                    ]
                if chain_span is not None:
                    try:
                        run_chain(*chain_span)
                    except KeyboardInterrupt:
                        raise
                    except Exception:
                        chain_failure = traceback.format_exc()
                try:
                    for future in as_completed(futures):
                        collect(futures[future], future.result())
                except BrokenProcessPool:
                    # One dead worker poisons every outstanding future;
                    # whatever did not finish falls to the repair chain.
                    pool_respawns += 1
                    for future, index in futures.items():
                        if results[index] is None and index not in worker_failures:
                            worker_failures[index] = (
                                "process-pool worker died while the shard "
                                "was in flight",
                                "",
                            )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        else:
            for task in worker_tasks:
                notify(
                    ProgressEvent(
                        "start",
                        task["index"],
                        shards,
                        "{}[shard {}/{}]".format(spec.name, task["index"] + 1, shards),
                    )
                )
                collect(task["index"], _execute_shard_task_guarded(task))
            if chain_span is not None:
                try:
                    run_chain(*chain_span)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    chain_failure = traceback.format_exc()

    # Repair pass: anything still unfilled — a failed worker, a corrupt
    # snapshot, a faulted chain — is recomputed as one in-process chain
    # from the deepest healthy snapshot.  Determinism makes the repaired
    # shards bit-identical to what the lost workers would have produced.
    repaired = 0
    unfilled = [index for index in range(shards) if results[index] is None]
    if unfilled:
        try:
            run_chain(min(unfilled), max(unfilled))
        except KeyboardInterrupt:
            raise
        except Exception:
            raise EngineError(
                spec.name,
                _shard_failure_text(
                    results, worker_failures, chain_failure,
                    traceback.format_exc(), shards,
                ),
            )
        repaired = sum(1 for index in unfilled if results[index] is not None)

    still_unfilled = [index for index in range(shards) if results[index] is None]
    if still_unfilled:
        raise EngineError(
            spec.name,
            _shard_failure_text(results, worker_failures, chain_failure, None, shards),
        )

    result, histogram = _merge_shard_results(spec, results)
    wall = time.perf_counter() - started
    cached_count = sum(1 for shard in results if shard.from_cache)
    quarantined = (
        cache.quarantined_objects() - quarantined_before if cache is not None else 0
    )
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    manifest.shards = shards
    manifest.shards_from_cache = cached_count
    manifest.resumed_from = resumed_digest
    manifest.quarantined_objects = quarantined
    manifest.repaired_shards = repaired
    if policy.metrics is not None:
        policy.metrics.counter(
            "engine.quarantined_objects", "corrupt cache objects quarantined"
        ).inc(quarantined)
        policy.metrics.counter(
            "engine.repaired_shards", "shards recomputed by the repair chain"
        ).inc(repaired)
        policy.metrics.counter(
            "engine.pool_respawns",
            "process pools respawned after a death or timeout",
        ).inc(pool_respawns)
    return EngineRun(
        spec=spec,
        result=result,
        histogram=histogram,
        wall_seconds=wall,
        manifest=manifest,
        metrics=None,
        shard_count=shards,
        shards_from_cache=cached_count,
    )


def parallel_map(func: Callable, items: Sequence, jobs: int = 1) -> List:
    """Generic deterministic fan-out: ``[func(x) for x in items]``,
    optionally across a process pool.  ``func`` must be a module-level
    function when ``jobs > 1``.  Order is preserved either way."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(func, items))

"""The parallel experiment engine — compatibility facade.

The engine used to live here as one 1300-line monolith; it is now three
layers, and this module re-exports their public (and
historically-relied-upon private) surface so every existing import —
``from repro.core.engine import RunSpec, run_specs, ...`` — keeps
working unchanged:

* :mod:`repro.core.executor` — how one unit of work runs: the work
  descriptions (:class:`RunSpec`, :class:`MachineConfig`), the payloads
  (:class:`EngineRun`, :class:`ShardResult`), :func:`execute_spec`, the
  resilient process-pool driver, and the shard measurement primitives.
* :mod:`repro.core.cache_resolution` — what is already banked: shard
  and snapshot keys, loaders that quarantine damage, and the run-level
  objects the experiment service dedupes whole sweeps against.
* :mod:`repro.core.scheduler` — what runs and what never runs:
  :func:`run_specs`, :func:`execute_spec_sharded`, and the
  :class:`Scheduler` front door that deduplicates concurrent clients
  against the result index, in-flight jobs and the run cache.

The engine's three guarantees are unchanged and live with the layers
that own them:

* **Determinism.**  A spec fully seeds its run; ``jobs=4`` produces
  bit-identical histograms, event counters and Table 8 matrices to
  ``jobs=1`` — the regression tests assert this.  Determinism is also
  what makes caching and deduplication *sound*: equal
  :func:`~repro.obs.provenance.config_hash` digests mean bit-identical
  results, so a cached or attached payload is indistinguishable from a
  fresh execution.
* **Picklability.**  Specs and results cross the process boundary by
  value; ablations are declarative (:class:`MachineConfig`), and
  :class:`EngineError` round-trips through pickle with its constructor
  extras intact.
* **Fault tolerance.**  Retries with backoff, per-spec timeouts, pool
  respawn and in-process degradation, fail-soft collect mode, cache
  self-healing via quarantine, and in-process repair chains for shards
  lost to worker failures — all governed by a
  :class:`~repro.core.resilience.ResiliencePolicy` and all leaving a
  recovered sweep bit-identical to an undisturbed one.

One seam is intentionally *live* here rather than re-exported by value:
``prepare_workload``.  The sharded chain opener resolves it through
this module at call time (``engine.prepare_workload``), so patching
``repro.core.engine.prepare_workload`` — as the snapshot-reuse tests do
to prove a cached boundary made a rebuild unnecessary — intercepts
every fresh build, wherever the layers trigger it.
"""

from __future__ import annotations

# -- execution layer ---------------------------------------------------
from repro.core.executor import (
    EngineError,
    EngineRun,
    MachineConfig,
    ProgressCallback,
    ProgressEvent,
    RunSpec,
    ShardResult,
    _execute_shard_task,
    _execute_shard_task_guarded,
    _execute_spec_guarded,
    _ignore_progress,
    _measure_span,
    _pool_context,
    _run_pool_tasks,
    _sparse_delta,
    _spec_configure,
    _tb_summary,
    execute_spec,
    parallel_map,
    shard_boundaries,
)

# -- cache-resolution layer --------------------------------------------
from repro.core.cache_resolution import (
    load_cached_shard,
    load_cached_snapshot,
    resolve_cached_run,
    run_cache_key,
    shard_cache_keys,
    store_boundary_snapshot,
    store_run,
    store_shard,
)

# -- scheduling layer --------------------------------------------------
from repro.core.scheduler import (
    Scheduler,
    _merge_shard_results,
    _open_chain_kernel,
    _run_shard_chain,
    _shard_failure_text,
    _shard_status_map,
    execute_spec_sharded,
    run_specs,
)

# The live patch seam for fresh workload builds (see module docstring).
from repro.core.experiment import prepare_workload

# Historical private spellings, kept importable: the resilience and
# fault-tolerance tests drive the engine through these names.
_shard_cache_keys = shard_cache_keys
_store_shard = store_shard
_store_boundary_snapshot = store_boundary_snapshot
_load_cached_snapshot = load_cached_snapshot

__all__ = [
    # execution
    "EngineError",
    "EngineRun",
    "MachineConfig",
    "ProgressCallback",
    "ProgressEvent",
    "RunSpec",
    "ShardResult",
    "execute_spec",
    "parallel_map",
    "shard_boundaries",
    # cache resolution
    "load_cached_shard",
    "load_cached_snapshot",
    "resolve_cached_run",
    "run_cache_key",
    "shard_cache_keys",
    "store_boundary_snapshot",
    "store_run",
    "store_shard",
    # scheduling
    "Scheduler",
    "execute_spec_sharded",
    "run_specs",
    # the live build seam
    "prepare_workload",
]

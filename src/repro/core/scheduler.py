"""The scheduling layer: what runs, in what order, and what never runs.

Top layer of the engine split (scheduler / executor / cache-resolution).
The :mod:`~repro.core.executor` knows how to run one unit of work; the
:mod:`~repro.core.cache_resolution` layer knows what is already banked;
this module decides.  Two entry shapes share one orchestration path:

* the module functions :func:`run_specs` and
  :func:`execute_spec_sharded` — the historical engine API, re-exported
  by the :mod:`repro.core.engine` facade and bit-identical to it;
* the :class:`Scheduler` — the multi-client front door used by the CLI
  ``composite``/``sweep`` commands and the experiment service alike.
  Every client's sweep funnels through ``Scheduler.run_specs``, so
  there is one code path deciding execution, not one per client.

The Scheduler deduplicates three ways before spending simulation time.
A spec's identity is its :func:`~repro.obs.provenance.config_hash`
(the determinism guarantee makes equal hashes mean bit-identical
results), and each unique digest is checked against:

1. the server's bounded **result index** of completed jobs (newest-kept
   LRU) — a repeat sweep resolves instantly;
2. the **in-flight registry** — a concurrent client submitting an
   already-running spec *attaches* to the running ticket and receives
   the same payload when it lands, instead of enqueueing a duplicate
   execution;
3. the content-addressed **RunCache** (run-level objects, see
   :func:`~repro.core.cache_resolution.resolve_cached_run`) — dedupe
   that survives server restarts.

Deduplicated runs carry honest provenance: their manifests mark
``attached_to`` (or ``resumed_from`` for cache hits) and report zero
wall seconds — wall-clock time is recorded once, at the site that
actually executed, never fabricated onto attachments.  Sweep-level
timing is recorded once here (``scheduler.sweep.seconds``).

Thread model: the Scheduler is thread-safe; registry bookkeeping sits
under one lock and actual engine execution is serialized under another
(the simulator's memoized layout/program caches are process-global and
unproven under concurrent in-process mutation, and process pools must
not be forked from several threads at once).  Attached clients block
on a ticket event, not on the execution lock, so waiting is free.
"""

from __future__ import annotations

import copy
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache_resolution import (
    load_cached_shard,
    load_cached_snapshot,
    resolve_cached_run,
    shard_cache_keys,
    store_boundary_snapshot,
    store_run,
    store_shard,
)
from repro.core.executor import (
    EngineError,
    EngineRun,
    ProgressCallback,
    ProgressEvent,
    RunSpec,
    ShardResult,
    _execute_shard_task_guarded,
    _ignore_progress,
    _pool_context,
    _run_pool_tasks,
    _spec_configure,
    _tb_summary,
    execute_spec,
    shard_boundaries,
)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    policy=None,
):
    """Execute ``specs``, ``jobs`` at a time; results keep spec order.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling
    requirement) and is the reference behaviour: parallel execution
    produces bit-identical payloads, just faster.

    ``progress`` receives a :class:`ProgressEvent` when each spec is
    dispatched, retried, completed or failed — the CLI renders these as
    live per-workload status lines.

    ``policy`` (a :class:`~repro.core.resilience.ResiliencePolicy`)
    governs the failure behaviour; the default reproduces the
    historical engine exactly — one attempt, no timeout, and a failing
    spec raises :class:`EngineError` naming the spec and carrying the
    worker-side traceback.  With ``policy.on_error == "collect"`` the
    sweep is fail-soft: the return value is a
    :class:`~repro.core.resilience.SweepResult` whose ``runs`` list has
    ``None`` at failed indices and whose ``report`` tells the story.
    A ``KeyboardInterrupt`` mid-sweep cancels outstanding work, persists
    the partial report when the policy names a path, and re-raises as
    :class:`~repro.core.resilience.SweepInterrupted`.
    """
    from repro.core.executor import _execute_spec_guarded
    from repro.core.resilience import (
        FailureReport,
        ResiliencePolicy,
        SpecFailure,
        SweepInterrupted,
        SweepResult,
    )

    specs = list(specs)
    total = len(specs)
    notify = progress if progress is not None else _ignore_progress
    policy = policy if policy is not None else ResiliencePolicy()
    max_attempts = policy.retry.max_attempts

    results: List[Optional[EngineRun]] = [None] * total
    report = FailureReport(total=total)

    def interrupted(cause):
        report.interrupted = True
        report.completed = [
            spec.name for spec, run in zip(specs, results) if run is not None
        ]
        if policy.interrupt_report_path:
            report.save(policy.interrupt_report_path)
        policy.record_report(report)
        raise SweepInterrupted(report=report) from cause

    def conclude():
        report.completed = [
            spec.name for spec, run in zip(specs, results) if run is not None
        ]
        policy.record_report(report)
        if report.failures and policy.on_error == "raise":
            first = min(report.failures, key=lambda failure: failure.index)
            raise EngineError(first.name, first.worker_traceback or first.error)
        if policy.on_error == "collect":
            return SweepResult(runs=results, report=report)
        return results

    if jobs <= 1 or total <= 1:
        try:
            for index, spec in enumerate(specs):
                notify(ProgressEvent("start", index, total, spec.name))
                attempt = 1
                while True:
                    try:
                        run = execute_spec(spec)
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        worker_tb = traceback.format_exc()
                        if attempt < max_attempts:
                            report.retries += 1
                            notify(
                                ProgressEvent(
                                    "retry", index, total, spec.name, error=str(exc)
                                )
                            )
                            policy.sleep(policy.retry.backoff(attempt))
                            attempt += 1
                            continue
                        notify(
                            ProgressEvent(
                                "error", index, total, spec.name, error=str(exc)
                            )
                        )
                        report.failures.append(
                            SpecFailure(
                                name=spec.name,
                                index=index,
                                attempts=attempt,
                                kind="error",
                                error=str(exc),
                                worker_traceback=worker_tb,
                            )
                        )
                        break
                    if run.manifest is not None:
                        run.manifest.attempts = attempt
                    results[index] = run
                    notify(
                        ProgressEvent(
                            "done", index, total, spec.name,
                            wall_seconds=run.wall_seconds,
                        )
                    )
                    break
                if report.failures and policy.on_error == "raise":
                    break
        except KeyboardInterrupt as exc:
            interrupted(exc)
        return conclude()

    workers = min(jobs, total)

    def describe(index):
        return specs[index].name

    def on_start(index):
        notify(ProgressEvent("start", index, total, specs[index].name))

    def on_done(index, payload):
        notify(
            ProgressEvent(
                "done", index, total, specs[index].name,
                wall_seconds=payload[1].wall_seconds,
            )
        )

    def on_retry(index, attempt, kind, error):
        notify(ProgressEvent("retry", index, total, specs[index].name, error=error))

    def absorb(payloads):
        for index, (payload, attempts) in payloads.items():
            run = payload[1]
            if run.manifest is not None:
                run.manifest.attempts = attempts
            results[index] = run

    tasks = [(index, spec) for index, spec in enumerate(specs)]
    try:
        payloads, failures, stats = _run_pool_tasks(
            _execute_spec_guarded, tasks, workers, policy, describe,
            on_start=on_start, on_done=on_done, on_retry=on_retry,
        )
    except SweepInterrupted as stop:
        absorb(stop.payloads)
        report.retries += stop.stats.get("retries", 0)
        report.timeouts += stop.stats.get("timeouts", 0)
        report.pool_respawns += stop.stats.get("pool_respawns", 0)
        report.failures.extend(
            stop.failures[index] for index in sorted(stop.failures)
        )
        interrupted(stop)
    absorb(payloads)
    report.retries += stats["retries"]
    report.timeouts += stats["timeouts"]
    report.pool_respawns += stats["pool_respawns"]
    report.degraded = stats["degraded"]
    for index in sorted(failures):
        failure = failures[index]
        notify(ProgressEvent("error", index, total, failure.name, error=failure.error))
        report.failures.append(failure)
    return conclude()


# ----------------------------------------------------------------------
# intra-workload sharding
# ----------------------------------------------------------------------
#
# One workload's N-instruction measurement splits into K resumable
# shards at instruction boundaries i*N//K.  Everything the measurement
# produces is additive — monitor banks, event counters, hardware stats —
# so each shard records its *delta* and merging the deltas in order is
# bit-identical to the uninterrupted run (asserted by the equivalence
# tests, like the composite case).
#
# Simulation is inherently serial (shard i+1 starts from shard i's end
# state), so a cold sharded run executes as one in-process chain that
# banks a machine snapshot at every boundary.  The parallelism and the
# speedup come from the content-addressed cache: finished shards replay
# instantly on re-runs, and shards whose start-boundary snapshot is
# already cached fan out across the process pool.  Boundary offsets are
# absolute instruction counts, so different shard counts share the
# snapshots they have in common (a 2-way split reuses a 4-way split's
# midpoint).
#
# Fault tolerance rides the same structure: a corrupt cached shard or
# snapshot is quarantined (RunCache.quarantine) and treated as a miss,
# and any shard a pool worker failed to produce is recomputed by an
# in-process repair chain from the deepest healthy snapshot — the
# determinism guarantee makes the repaired shards bit-identical to what
# the lost worker would have returned.


def _open_chain_kernel(
    spec: RunSpec,
    boundaries: List[int],
    start_index: int,
    cache,
    snapshot_keys: Dict[int, str],
    chash: str,
):
    """Open a measuring kernel for a chain that wants to start at
    ``start_index``.

    Restores the deepest *healthy* cached boundary snapshot at or below
    the requested index — corrupt candidates are quarantined and the
    search continues shallower — falling back to a fresh build + warmup
    at instruction 0.  Returns ``(kernel, anchor_index,
    resumed_digest)``; the caller's chain must run from ``anchor_index``
    (which may be below ``start_index``, recomputing spans whose results
    are already known, because simulation state is only reachable by
    simulating)."""
    # The fresh build goes through the engine facade so tests (and
    # callers) can patch one well-known prepare_workload seam.
    from repro.core import engine as _engine

    if cache is not None:
        for candidate in range(start_index, -1, -1):
            key = snapshot_keys[boundaries[candidate]]
            if not cache.has(key):
                continue
            kernel, digest = load_cached_snapshot(cache, key)
            if kernel is not None:
                return kernel, candidate, digest
    kernel, _ = _engine.prepare_workload(
        spec.workload,
        process_count=spec.process_count,
        seed_offset=spec.seed_offset,
        configure=_spec_configure(spec),
    )
    kernel.run(max_instructions=spec.warmup_instructions)
    kernel.start_measurement()
    if cache is not None and not cache.has(snapshot_keys[0]):
        store_boundary_snapshot(cache, snapshot_keys[0], kernel, spec.name, chash, 0)
    return kernel, 0, None


def _run_shard_chain(
    spec: RunSpec,
    boundaries: List[int],
    start_index: int,
    end_index: int,
    results: List[Optional[ShardResult]],
    cache,
    shard_keys: List[str],
    snapshot_keys: Dict[int, str],
    chash: str,
    notify: ProgressCallback,
    shards: int,
) -> Optional[str]:
    """Execute a contiguous run of shards in-process.

    Starts from the deepest healthy cached boundary snapshot (or a
    fresh build + warmup when none survives), emits every missing shard
    result and boundary snapshot into the cache as it passes, and
    returns the digest of the snapshot it resumed from, if any.  Spans
    whose results are already filled are simulated through without
    re-storing — the chain needs their end state, not their numbers."""
    from repro.core.executor import _measure_span

    kernel, anchor, resumed_digest = _open_chain_kernel(
        spec, boundaries, start_index, cache, snapshot_keys, chash
    )
    for index in range(anchor, end_index + 1):
        span = boundaries[index + 1] - boundaries[index]
        name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
        notify(ProgressEvent("start", index, shards, name))
        histogram, events, stats, wall = _measure_span(
            kernel, span, fault_key="{}@{}".format(spec.name, boundaries[index])
        )
        if results[index] is None:
            shard = ShardResult(
                index=index,
                shard_count=shards,
                start_instruction=boundaries[index],
                instructions=span,
                histogram=histogram,
                events=events,
                stats=stats,
                wall_seconds=wall,
            )
            results[index] = shard
            if cache is not None:
                store_shard(cache, shard_keys[index], shard, spec.name, chash)
        notify(ProgressEvent("done", index, shards, name, wall_seconds=wall))
        next_boundary = boundaries[index + 1]
        if cache is not None and index + 1 < shards:
            key = snapshot_keys[next_boundary]
            if not cache.has(key):
                store_boundary_snapshot(
                    cache, key, kernel, spec.name, chash, next_boundary
                )
    return resumed_digest


def _merge_shard_results(
    spec: RunSpec, shard_results: List[ShardResult]
):
    """Merge shard deltas into one ExperimentResult + sparse histogram.

    The same readout-side machinery the composite uses:
    :meth:`HistogramBoard.merge_from` sums the banks,
    :meth:`EventCounters.merge_from` and :meth:`MachineStats.merge_from`
    sum the companion channels, and one reduction runs over the summed
    banks — bit-identical to reducing the uninterrupted run."""
    from repro.core.experiment import ExperimentResult, MachineStats
    from repro.core.monitor import HistogramBoard
    from repro.core.reduction import reduce_histogram
    from repro.cpu.events import EventCounters
    from repro.ucode.routines import build_layout
    from repro.workloads import profile_by_name

    board = HistogramBoard()
    merged_events = EventCounters()
    merged_stats = MachineStats()
    for shard in shard_results:
        board.merge_from(HistogramBoard.from_sparse(*shard.histogram))
        merged_events.merge_from(shard.events)
        merged_stats.merge_from(shard.stats)
    counts, stalled = board.dump()
    reduction = reduce_histogram(counts, stalled, build_layout(), events=merged_events)
    result = ExperimentResult(
        name=profile_by_name(spec.workload).name,
        reduction=reduction,
        events=merged_events,
        stats=merged_stats,
    )
    if spec.label is not None or spec.config is not None:
        result.name = spec.name
    return result, board.dump_sparse()


def _shard_status_map(
    results: List[Optional[ShardResult]],
    worker_failures: Dict[int, Tuple[str, str]],
    shards: int,
) -> Dict[int, str]:
    """Per-shard outcome: the diagnosable face of a partial failure."""
    status = {}
    for index in range(shards):
        shard = results[index]
        if shard is not None:
            status[index] = "from-cache" if shard.from_cache else "computed"
        elif index in worker_failures:
            status[index] = "worker failed: {}".format(worker_failures[index][0])
        else:
            status[index] = "unfilled"
    return status


def _shard_failure_text(
    results: List[Optional[ShardResult]],
    worker_failures: Dict[int, Tuple[str, str]],
    chain_failure: Optional[str],
    repair_failure: Optional[str],
    shards: int,
) -> str:
    """Compose the EngineError body for a sharded failure: the
    per-shard status map first, then every traceback we hold."""
    status = _shard_status_map(results, worker_failures, shards)
    lines = ["sharded execution left shards unfilled; per-shard status:"]
    for index in sorted(status):
        lines.append("  shard {}/{}: {}".format(index + 1, shards, status[index]))
    for index in sorted(worker_failures):
        _, worker_tb = worker_failures[index]
        if worker_tb:
            lines.append(
                "worker traceback (shard {}/{}):\n{}".format(
                    index + 1, shards, worker_tb
                )
            )
    if chain_failure:
        lines.append("chain traceback:\n{}".format(chain_failure))
    if repair_failure:
        lines.append("repair-chain traceback:\n{}".format(repair_failure))
    return "\n".join(lines)


def _empty_cache_stats() -> Dict[str, int]:
    from repro.core.runcache import RunCache

    return {name: 0 for name in RunCache.STAT_FIELDS}


def execute_spec_sharded(
    spec: RunSpec,
    shards: int,
    jobs: int = 1,
    cache=None,
    progress: Optional[ProgressCallback] = None,
    policy=None,
) -> EngineRun:
    """Execute one spec as ``shards`` resumable shards.

    With a ``cache`` (a :class:`~repro.core.runcache.RunCache`):
    finished shards replay instantly, shards whose start-boundary
    snapshot is cached run from it — in parallel across the process pool
    when ``jobs > 1`` — and only the rest execute as an in-process chain
    from the deepest cached snapshot.  Without a cache the whole
    measurement runs as one chain.  Either way the merged result is
    bit-identical to :func:`~repro.core.executor.execute_spec` (the
    equivalence tests assert it), and the returned :class:`EngineRun`
    carries shard provenance in its manifest.

    The path is self-healing: corrupt or unpicklable cached objects are
    quarantined and recomputed, a dead pool worker's shards fall to an
    in-process repair chain, and the manifest records how much healing
    happened (``quarantined_objects``, ``repaired_shards``).  Only when
    even the repair chain fails does :class:`EngineError` surface — its
    message carries the per-shard status map and every collected
    traceback, so a partial cache/pool failure is diagnosable from the
    error alone.

    Cache traffic is accounted fleet-wide: every pool worker ships its
    per-process hit/miss counters back with its shard and flushes them
    to the cache's persistent ledger, and the manifest's ``cache_stats``
    aggregates workers + coordinator — the per-process counters alone
    silently undercount under the worker fleet.

    Timing note: this function is the *execution site* for a sharded
    run, so wall-clock is recorded here exactly once.  A spec that
    never reaches execution — deduplicated against an in-flight job or
    resolved whole from the cache by the :class:`Scheduler` — gets zero
    wall seconds and ``attached_to``/``resumed_from`` provenance, never
    a copy of this timing.
    """
    from repro.core.resilience import ResiliencePolicy
    from repro.obs.provenance import RunManifest
    from repro.workloads import profile_by_name

    shards = max(1, min(shards, spec.instructions or 1))
    if shards <= 1:
        return execute_spec(spec)
    policy = policy if policy is not None else ResiliencePolicy()
    notify = progress if progress is not None else _ignore_progress
    started = time.perf_counter()
    profile = profile_by_name(spec.workload)
    manifest = RunManifest.for_spec(spec, profile_seed=profile.seed)
    boundaries = shard_boundaries(spec.instructions, shards)
    chash, shard_keys, snapshot_keys = shard_cache_keys(spec, boundaries)
    quarantined_before = cache.quarantined_objects() if cache is not None else 0
    coordinator_before = cache.stats() if cache is not None else None
    worker_cache_stats = _empty_cache_stats()
    worker_flushes = 0

    results: List[Optional[ShardResult]] = [None] * shards
    if cache is not None:
        for index in range(shards):
            shard = load_cached_shard(cache, shard_keys[index])
            if shard is None:
                continue
            results[index] = shard
            name = "{}[shard {}/{}]".format(spec.name, index + 1, shards)
            notify(ProgressEvent("start", index, shards, name))
            notify(ProgressEvent("done", index, shards, name))

    #: index -> (summary, worker traceback) for shards lost to workers
    worker_failures: Dict[int, Tuple[str, str]] = {}
    chain_failure: Optional[str] = None
    resumed_digest: Optional[str] = None
    pool_respawns = 0

    def run_chain(start_index: int, end_index: int) -> None:
        nonlocal resumed_digest
        digest = _run_shard_chain(
            spec, boundaries, start_index, end_index, results, cache,
            shard_keys, snapshot_keys, chash, notify, shards,
        )
        if resumed_digest is None:
            resumed_digest = digest

    def collect(index: int, payload: Tuple) -> None:
        nonlocal worker_flushes
        if payload[0] == "error":
            _, name, worker_tb = payload
            summary = _tb_summary(worker_tb)
            notify(ProgressEvent("error", index, shards, name, error=summary))
            worker_failures[index] = (summary, worker_tb)
            return
        results[index] = payload[1]
        if len(payload) > 2 and payload[2]:
            worker_flushes += 1
            for name, value in payload[2].items():
                if name in worker_cache_stats:
                    worker_cache_stats[name] += value
        notify(
            ProgressEvent(
                "done",
                index,
                shards,
                "{}[shard {}/{}]".format(spec.name, index + 1, shards),
                wall_seconds=payload[1].wall_seconds,
            )
        )

    missing = [index for index in range(shards) if results[index] is None]
    if missing:
        can_restore = set()
        if cache is not None:
            can_restore = {
                index
                for index in missing
                if cache.has(snapshot_keys[boundaries[index]])
            }
        chain_needed = [index for index in missing if index not in can_restore]
        chain_span: Optional[Tuple[int, int]] = None
        if chain_needed:
            chain_span = (chain_needed[0], chain_needed[-1])
        # Shards inside the chain interval fall out of the chain's pass
        # for free; only snapshot-backed shards outside it fan out.
        chain_cover = set(range(chain_span[0], chain_span[1] + 1)) if chain_span else set()
        worker_indices = sorted(can_restore - chain_cover)
        worker_tasks = [
            {
                "cache_root": cache.root,
                "index": index,
                "shard_count": shards,
                "start": boundaries[index],
                "instructions": boundaries[index + 1] - boundaries[index],
                "snapshot_key": snapshot_keys[boundaries[index]],
                "shard_key": shard_keys[index],
                "end_snapshot_key": snapshot_keys.get(boundaries[index + 1])
                if index + 1 < shards
                else None,
                "spec_name": spec.name,
                "config_hash": chash,
            }
            for index in worker_indices
        ]

        if worker_tasks and jobs > 1:
            workers = min(jobs, len(worker_tasks))
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
            futures = {}
            try:
                for task in worker_tasks:
                    notify(
                        ProgressEvent(
                            "start",
                            task["index"],
                            shards,
                            "{}[shard {}/{}]".format(
                                spec.name, task["index"] + 1, shards
                            ),
                        )
                    )
                    futures[pool.submit(_execute_shard_task_guarded, task)] = task[
                        "index"
                    ]
                if chain_span is not None:
                    try:
                        run_chain(*chain_span)
                    except KeyboardInterrupt:
                        raise
                    except Exception:
                        chain_failure = traceback.format_exc()
                try:
                    for future in as_completed(futures):
                        collect(futures[future], future.result())
                except BrokenProcessPool:
                    # One dead worker poisons every outstanding future;
                    # whatever did not finish falls to the repair chain.
                    pool_respawns += 1
                    for future, index in futures.items():
                        if results[index] is None and index not in worker_failures:
                            worker_failures[index] = (
                                "process-pool worker died while the shard "
                                "was in flight",
                                "",
                            )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        else:
            for task in worker_tasks:
                notify(
                    ProgressEvent(
                        "start",
                        task["index"],
                        shards,
                        "{}[shard {}/{}]".format(spec.name, task["index"] + 1, shards),
                    )
                )
                collect(task["index"], _execute_shard_task_guarded(task))
            if chain_span is not None:
                try:
                    run_chain(*chain_span)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    chain_failure = traceback.format_exc()

    # Repair pass: anything still unfilled — a failed worker, a corrupt
    # snapshot, a faulted chain — is recomputed as one in-process chain
    # from the deepest healthy snapshot.  Determinism makes the repaired
    # shards bit-identical to what the lost workers would have produced.
    repaired = 0
    unfilled = [index for index in range(shards) if results[index] is None]
    if unfilled:
        try:
            run_chain(min(unfilled), max(unfilled))
        except KeyboardInterrupt:
            raise
        except Exception:
            raise EngineError(
                spec.name,
                _shard_failure_text(
                    results, worker_failures, chain_failure,
                    traceback.format_exc(), shards,
                ),
                shard_status=_shard_status_map(results, worker_failures, shards),
            )
        repaired = sum(1 for index in unfilled if results[index] is not None)

    still_unfilled = [index for index in range(shards) if results[index] is None]
    if still_unfilled:
        raise EngineError(
            spec.name,
            _shard_failure_text(results, worker_failures, chain_failure, None, shards),
            shard_status=_shard_status_map(results, worker_failures, shards),
        )

    result, histogram = _merge_shard_results(spec, results)
    wall = time.perf_counter() - started
    cached_count = sum(1 for shard in results if shard.from_cache)
    quarantined = (
        cache.quarantined_objects() - quarantined_before if cache is not None else 0
    )
    manifest.wall_seconds = wall
    manifest.instructions_measured = result.instructions
    manifest.cycles_measured = result.stats.cycles
    manifest.shards = shards
    manifest.shards_from_cache = cached_count
    manifest.resumed_from = resumed_digest
    manifest.quarantined_objects = quarantined
    manifest.repaired_shards = repaired
    if cache is not None:
        coordinator_after = cache.stats()
        combined = {
            name: coordinator_after[name] - coordinator_before[name]
            for name in coordinator_before
        }
        for name, value in worker_cache_stats.items():
            combined[name] = combined.get(name, 0) + value
        combined["workers"] = worker_flushes
        manifest.cache_stats = combined
        cache.flush_stats()
    if policy.metrics is not None:
        policy.metrics.counter(
            "engine.quarantined_objects", "corrupt cache objects quarantined"
        ).inc(quarantined)
        policy.metrics.counter(
            "engine.repaired_shards", "shards recomputed by the repair chain"
        ).inc(repaired)
        policy.metrics.counter(
            "engine.pool_respawns",
            "process pools respawned after a death or timeout",
        ).inc(pool_respawns)
    return EngineRun(
        spec=spec,
        result=result,
        histogram=histogram,
        wall_seconds=wall,
        manifest=manifest,
        metrics=None,
        shard_count=shards,
        shards_from_cache=cached_count,
    )


# ----------------------------------------------------------------------
# the multi-client scheduler
# ----------------------------------------------------------------------


class _Ticket:
    """One in-flight unique spec: who runs it, and who is waiting."""

    __slots__ = ("digest", "event", "run", "error")

    def __init__(self, digest: str):
        self.digest = digest
        self.event = threading.Event()
        self.run: Optional[EngineRun] = None
        self.error: Optional[BaseException] = None


class Scheduler:
    """The multi-client front door over the executor and the cache.

    One instance serves every client — CLI commands construct a
    short-lived one per invocation; the experiment service keeps one
    for its whole lifetime and feeds it from many worker threads.  Each
    call to :meth:`run_specs` partitions its sweep into specs that must
    execute and specs that resolve without executing (result index →
    in-flight attach → run cache, in that order), executes the
    remainder through the one orchestration path shared with the
    historical API, and publishes every completed run so concurrent and
    future clients dedupe against it.

    ``dedupe=False`` turns the partitioning off entirely — the facade's
    ``run_specs`` uses that to stay bit-compatible with the historical
    engine (where submitting the same spec twice executed it twice).
    ``run_resolution`` additionally banks and resolves whole runs in
    the content-addressed cache (the service turns this on; shard-level
    caching inside ``execute_spec_sharded`` is independent of it).
    """

    def __init__(
        self,
        jobs: int = 1,
        shards: int = 1,
        cache=None,
        policy=None,
        metrics=None,
        result_index_size: int = 256,
        dedupe: bool = True,
        run_resolution: bool = False,
    ):
        self.jobs = jobs
        self.shards = shards
        self.cache = cache
        self.policy = policy
        self.metrics = metrics
        self.result_index_size = max(1, result_index_size)
        self.dedupe = dedupe
        self.run_resolution = run_resolution
        #: registry + index bookkeeping
        self._lock = threading.Lock()
        #: serializes actual engine execution across client threads
        self._exec_lock = threading.Lock()
        self._inflight: Dict[str, _Ticket] = {}
        self._index: "OrderedDict[str, EngineRun]" = OrderedDict()

    # -- metrics helpers ---------------------------------------------------

    def _count(self, name: str, description: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, description).inc(amount)

    def stats_snapshot(self) -> Dict:
        """Registry + index occupancy and (when wired) the counters."""
        with self._lock:
            payload = {
                "inflight": len(self._inflight),
                "result_index": len(self._index),
                "result_index_size": self.result_index_size,
            }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
        return payload

    # -- the result index --------------------------------------------------

    def _index_put(self, digest: str, run: EngineRun) -> None:
        """Publish a completed run; oldest entries fall off the end."""
        self._index[digest] = run
        self._index.move_to_end(digest)
        while len(self._index) > self.result_index_size:
            self._index.popitem(last=False)

    def result_for(self, digest: str) -> Optional[EngineRun]:
        """Look one completed run up by its config-hash digest —
        the ``GET /results/{digest}`` primitive.  Falls back to the
        run cache when the index has rotated the entry out."""
        with self._lock:
            run = self._index.get(digest)
            if run is not None:
                self._index.move_to_end(digest)
                return run
        if self.run_resolution and self.cache is not None:
            from repro.core.runcache import cache_key

            blob_key = cache_key("run", config=digest)
            import pickle

            blob = self.cache.get(blob_key)
            if blob is not None:
                try:
                    return pickle.loads(blob)
                except Exception as exc:
                    self.cache.quarantine(
                        blob_key, reason="unpicklable run: {}".format(exc)
                    )
        return None

    # -- deduplicated provenance -------------------------------------------

    @staticmethod
    def _attached_copy(run: EngineRun, digest: str) -> EngineRun:
        """A client's view of a run it did not execute.

        Deep-copied so clients cannot corrupt each other's payloads,
        with honest provenance: zero wall seconds (the work happened
        once, elsewhere — copying the executor's timing would
        double-count it in any aggregation over manifests) and
        ``attached_to`` naming the digest it deduplicated against."""
        attached = copy.deepcopy(run)
        attached.wall_seconds = 0.0
        if attached.manifest is not None:
            attached.manifest.wall_seconds = 0.0
            attached.manifest.attached_to = digest
        return attached

    # -- execution ---------------------------------------------------------

    def _execute_batch(self, specs: List[RunSpec], notify, policy):
        """The one orchestration path that actually executes work.

        Unsharded sweeps go through :func:`run_specs` (pool or
        sequential); ``shards > 1`` runs each spec through
        :func:`execute_spec_sharded` with the composite's historical
        collect/raise semantics.  Both shapes return the
        :func:`run_specs` contract: a runs list, or a
        :class:`~repro.core.resilience.SweepResult` in collect mode."""
        if self.shards <= 1:
            return run_specs(specs, jobs=self.jobs, progress=notify, policy=policy)

        from repro.core.resilience import FailureReport, SpecFailure, SweepResult

        total = len(specs)
        runs: List[Optional[EngineRun]] = [None] * total
        report = FailureReport(total=total)
        for index, spec in enumerate(specs):
            try:
                runs[index] = execute_spec_sharded(
                    spec, shards=self.shards, jobs=self.jobs, cache=self.cache,
                    progress=notify, policy=policy,
                )
            except KeyboardInterrupt:
                raise
            except EngineError as error:
                if policy.on_error != "collect":
                    raise
                report.failures.append(
                    SpecFailure(
                        name=spec.name,
                        index=index,
                        attempts=1,
                        kind="error",
                        error=str(error).splitlines()[0],
                        worker_traceback=error.worker_traceback,
                    )
                )
        report.completed = [run.spec.name for run in runs if run is not None]
        if policy.on_error == "collect":
            policy.record_report(report)
            return SweepResult(runs=runs, report=report)
        return runs

    @staticmethod
    def _failure_error(spec: RunSpec, report) -> EngineError:
        """Rebuild the EngineError a collect-mode failure would have
        raised, for ticket fulfilment."""
        if report is not None:
            for failure in report.failures:
                if failure.name == spec.name:
                    return EngineError(
                        failure.name, failure.worker_traceback or failure.error
                    )
        return EngineError(spec.name, "spec failed (no report available)")

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
        policy=None,
    ):
        """Run one client's sweep through the dedupe-aware front door.

        Same contract as the module-level :func:`run_specs` (order
        preserved; collect mode returns a
        :class:`~repro.core.resilience.SweepResult`), except that specs
        resolvable without executing come back as attached copies with
        zeroed wall time and ``attached_to``/``resumed_from``
        provenance.  Thread-safe: any number of client threads may call
        this concurrently and each unique digest executes at most once
        across all of them."""
        from repro.obs.provenance import config_hash
        from repro.core.resilience import (
            FailureReport,
            ResiliencePolicy,
            SpecFailure,
            SweepResult,
        )

        specs = list(specs)
        total = len(specs)
        notify = progress if progress is not None else _ignore_progress
        policy = (
            policy
            if policy is not None
            else (self.policy if self.policy is not None else ResiliencePolicy())
        )
        sweep_started = time.perf_counter()

        resolved: Dict[int, EngineRun] = {}
        waiters: Dict[int, _Ticket] = {}
        batch_attach: Dict[int, int] = {}
        owners: List[int] = []
        tickets: Dict[int, _Ticket] = {}
        digests: List[Optional[str]] = [None] * total

        if not self.dedupe:
            owners = list(range(total))
        else:
            digests = [config_hash(spec) for spec in specs]
            with self._lock:
                seen: Dict[str, int] = {}
                for index, (spec, digest) in enumerate(zip(specs, digests)):
                    if digest in seen:
                        batch_attach[index] = seen[digest]
                        self._count(
                            "scheduler.specs.deduped_batch",
                            "duplicate specs within one sweep attached to the"
                            " batch primary",
                        )
                        continue
                    seen[digest] = index
                    held = self._index.get(digest)
                    if held is not None:
                        self._index.move_to_end(digest)
                        resolved[index] = self._attached_copy(held, digest)
                        self._count(
                            "scheduler.specs.resolved_index",
                            "specs resolved from the bounded result index",
                        )
                        continue
                    ticket = self._inflight.get(digest)
                    if ticket is not None:
                        waiters[index] = ticket
                        self._count(
                            "scheduler.specs.attached_inflight",
                            "specs attached to an already-running job instead"
                            " of executing a duplicate",
                        )
                        continue
                    if self.run_resolution and self.cache is not None:
                        run = resolve_cached_run(self.cache, spec)
                        if run is not None:
                            self._index_put(digest, run)
                            resolved[index] = run
                            self._count(
                                "scheduler.specs.resolved_cache",
                                "specs resolved whole from the run cache",
                            )
                            continue
                    ticket = _Ticket(digest)
                    self._inflight[digest] = ticket
                    tickets[index] = ticket
                    owners.append(index)

        # Progress remap: owner-batch events carry batch-local indices;
        # clients expect sweep-local ones.  Shard-level events (total ==
        # shard count, names carry the spec) pass through untouched.
        if self.shards > 1 or (len(owners) == total and not batch_attach):
            batch_notify = notify
        else:
            def batch_notify(event: ProgressEvent) -> None:
                notify(replace(event, index=owners[event.index], total=total))

        owner_runs: Dict[int, Optional[EngineRun]] = {}
        batch_report = None
        outcome = None
        try:
            if owners or not self.dedupe:
                try:
                    with self._exec_lock:
                        outcome = self._execute_batch(
                            [specs[index] for index in owners], batch_notify, policy
                        )
                except EngineError as error:
                    # Raise-mode batch failure: hand attached clients the
                    # *actual* error before it propagates — the ticket
                    # whose spec failed gets the real traceback, the rest
                    # learn the sweep aborted around them.
                    with self._lock:
                        for index, ticket in tickets.items():
                            if specs[index].name == error.spec_name:
                                ticket.error = error
                            else:
                                ticket.error = EngineError(
                                    specs[index].name,
                                    "the executing sweep aborted on "
                                    "{!r} before this spec completed:\n{}".format(
                                        error.spec_name, error.worker_traceback
                                    ),
                                )
                            ticket.event.set()
                            if self._inflight.get(ticket.digest) is ticket:
                                del self._inflight[ticket.digest]
                    raise
                if isinstance(outcome, SweepResult):
                    batch_runs, batch_report = outcome.runs, outcome.report
                else:
                    batch_runs = outcome
                with self._lock:
                    for position, index in enumerate(owners):
                        run = batch_runs[position]
                        owner_runs[index] = run
                        ticket = tickets.get(index)
                        if run is not None:
                            self._count(
                                "scheduler.specs.executed",
                                "specs this scheduler actually executed",
                            )
                            if digests[index] is not None:
                                if self.run_resolution and self.cache is not None:
                                    store_run(self.cache, specs[index], run)
                                self._index_put(digests[index], run)
                            if ticket is not None:
                                ticket.run = run
                        elif ticket is not None:
                            ticket.error = self._failure_error(
                                specs[index], batch_report
                            )
                        if ticket is not None:
                            ticket.event.set()
                            if self._inflight.get(ticket.digest) is ticket:
                                del self._inflight[ticket.digest]
        finally:
            # Never leave a ticket unfulfilled: a raise/interrupt on the
            # executing thread must release every attached client.
            abandoned = [
                ticket for ticket in tickets.values() if not ticket.event.is_set()
            ]
            if abandoned:
                with self._lock:
                    for ticket in abandoned:
                        if ticket.error is None and ticket.run is None:
                            ticket.error = EngineError(
                                "?", "the executing sweep was interrupted before"
                                " this spec completed"
                            )
                        ticket.event.set()
                        if self._inflight.get(ticket.digest) is ticket:
                            del self._inflight[ticket.digest]

        # Attached clients: wait for the executing thread's verdict.
        waiter_failures: Dict[int, BaseException] = {}
        for index, ticket in waiters.items():
            ticket.event.wait()
            if ticket.run is not None:
                resolved[index] = self._attached_copy(ticket.run, ticket.digest)
            else:
                waiter_failures[index] = ticket.error or EngineError(
                    specs[index].name, "attached job failed without a traceback"
                )

        # In-batch duplicates mirror whatever their primary produced —
        # the payload on success, the failure otherwise (a collect-mode
        # report must account for every sweep index, duplicates included).
        for index, primary in batch_attach.items():
            source = resolved.get(primary)
            if source is None:
                source = owner_runs.get(primary)
            if source is not None:
                resolved[index] = self._attached_copy(source, digests[index])
            elif primary in waiter_failures:
                waiter_failures[index] = waiter_failures[primary]
            elif primary in owner_runs:
                waiter_failures[index] = self._failure_error(
                    specs[index], batch_report
                )

        if self.metrics is not None:
            self.metrics.histogram(
                "scheduler.sweep.seconds",
                "wall-clock of one scheduled sweep, recorded once at the"
                " scheduler layer",
            ).observe(time.perf_counter() - sweep_started)

        if not self.dedupe:
            return outcome

        runs: List[Optional[EngineRun]] = [None] * total
        for index in range(total):
            if index in owner_runs:
                runs[index] = owner_runs[index]
            elif index in resolved:
                runs[index] = resolved[index]

        if policy.on_error == "raise":
            if waiter_failures:
                raise waiter_failures[min(waiter_failures)]
            return runs

        # Collect mode: extend the batch report to cover the whole
        # sweep — attached specs count as completed (or inherit their
        # primary's failure), and totals/indices are sweep-local.
        report = batch_report if batch_report is not None else FailureReport()
        report.total = total
        remapped = []
        for failure in report.failures:
            if failure.index < len(owners):
                failure.index = owners[failure.index]
            remapped.append(failure)
        for index, error in sorted(waiter_failures.items()):
            remapped.append(
                SpecFailure(
                    name=specs[index].name,
                    index=index,
                    attempts=0,
                    kind="attached",
                    error=str(error).splitlines()[0] if str(error) else "attached job failed",
                    worker_traceback=getattr(error, "worker_traceback", ""),
                )
            )
        report.failures = remapped
        report.completed = [
            spec.name for spec, run in zip(specs, runs) if run is not None
        ]
        return SweepResult(runs=runs, report=report)

"""Counter-identity invariant checking: use the counters to *refute*.

The paper's numbers are only trustworthy because independent
instruments agree: the micro-PC histogram, the companion event
counters and the hardware-side statistics all measure the same run,
so identities must hold between them — total cycles is the sum of its
Table 8 classifications, instructions retired is the sum of the
per-opcode counts, a read miss is an I-stream or a D-stream miss.
This module evaluates those identities against any
:class:`~repro.core.experiment.ExperimentResult` (and, when a trace
rode along, between traced-event aggregates and the counters), and on
failure localizes the break to the subsystem — and for histogram
identities the micro-routine — whose numbers disagree.

``repro check`` is the CLI face; the fault-injection site
``monitor.dump`` (action ``miscount``, see
:mod:`repro.testing.faults`) exists so tests and demos can watch a
seeded corruption trip exactly the identity that should catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Identity names -> the subsystem blamed when the identity breaks.
#: "monitor" is the histogram hardware + readout, "reduction" the data
#: reduction, "cpu.events" the companion counters, "memory.cache" /
#: "memory.tb" the hardware-side statistics, "obs.trace" the tracer.
SUBSYSTEM = {
    "cycles.classified": "monitor",
    "cycles.routines": "reduction",
    "instructions.decode_vs_events": "monitor",
    "instructions.opcodes": "cpu.events",
    "memory.read_miss_split": "memory.cache",
    "memory.tb_miss_split": "memory.tb",
    "trace.instructions": "obs.trace",
    "trace.page_faults": "obs.trace",
    "trace.interrupts": "obs.trace",
}


@dataclass
class IdentityOutcome:
    """One identity, evaluated: ``lhs`` must equal ``rhs``."""

    name: str
    description: str
    lhs: float
    rhs: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.lhs == self.rhs

    @property
    def subsystem(self) -> str:
        return SUBSYSTEM.get(self.name, "unknown")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "lhs": self.lhs,
            "rhs": self.rhs,
            "ok": self.ok,
            "subsystem": self.subsystem,
            "detail": self.detail,
        }


@dataclass
class CheckReport:
    """Every identity evaluated against one run."""

    name: str
    outcomes: List[IdentityOutcome] = field(default_factory=list)
    #: identities not evaluated, mapped to why (e.g. trace ring dropped
    #: events) — skipping silently would read as "checked and passed".
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[IdentityOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "skipped": dict(self.skipped),
        }

    def payload(self) -> dict:
        """This report in the stable ``repro.check/v1`` check shape
        (see :func:`schema_envelope`)."""
        return {
            "name": self.name,
            "ok": self.ok,
            "checks": [
                {
                    "name": outcome.name,
                    "description": outcome.description,
                    "expected": outcome.lhs,
                    "actual": outcome.rhs,
                    "ok": outcome.ok,
                    "blame": outcome.subsystem,
                    "detail": outcome.detail,
                }
                for outcome in self.outcomes
            ],
            "skipped": dict(self.skipped),
        }


#: The pinned JSON schema version both ``repro check --json`` and
#: ``repro validate --json`` emit.  Bump only with a migration note;
#: tests/obs/golden/check_schema.json is the contract.
SCHEMA_VERSION = "repro.check/v1"


def schema_envelope(command: str, reports: List[dict]) -> dict:
    """Wrap per-run reports in the stable machine-readable envelope.

    Every report carries ``name`` / ``ok`` / ``checks`` / ``skipped``;
    every check carries ``name`` / ``expected`` / ``actual`` / ``ok`` /
    ``blame`` / ``detail`` (plus command-specific extras: identity
    checks add ``description``, validation checks add ``mode``).
    Consumers key on these fields, never on rendering.
    """
    checks = sum(len(report.get("checks", [])) for report in reports)
    failures = sum(
        1
        for report in reports
        for check in report.get("checks", [])
        if not check["ok"]
    )
    skipped = sum(len(report.get("skipped", {})) for report in reports)
    return {
        "schema": SCHEMA_VERSION,
        "command": command,
        "ok": all(report["ok"] for report in reports),
        "summary": {
            "reports": len(reports),
            "checks": checks,
            "failures": failures,
            "skipped": skipped,
        },
        "reports": reports,
    }


# ---------------------------------------------------------------------------
# identities over one ExperimentResult
# ---------------------------------------------------------------------------


def check_result(
    result,
    counts: Optional[List[int]] = None,
    stalled: Optional[List[int]] = None,
    layout=None,
) -> List[IdentityOutcome]:
    """Evaluate the counter identities an
    :class:`~repro.core.experiment.ExperimentResult` must satisfy.

    ``counts``/``stalled``/``layout`` — the raw histogram banks and the
    control-store map — are optional; when provided, a failing cycle
    identity is localized to the micro-routine whose buckets hold the
    unclassifiable cycles.
    """
    reduction = result.reduction
    events = result.events
    stats = result.stats
    outcomes: List[IdentityOutcome] = []

    matrix_total = sum(
        cycles for columns in reduction.matrix.values() for cycles in columns.values()
    )
    classified = IdentityOutcome(
        "cycles.classified",
        "every counted cycle classifies into a Table 8 cell",
        lhs=matrix_total,
        rhs=reduction.total_cycles,
    )
    routine_total = sum(
        normal + stalled_cycles
        for normal, stalled_cycles in reduction.routine_cycles.values()
    )
    routines = IdentityOutcome(
        "cycles.routines",
        "per-routine cycle totals sum to total cycles",
        lhs=routine_total,
        rhs=reduction.total_cycles,
    )
    if counts is not None and stalled is not None and layout is not None:
        detail = localize_unclassified(counts, stalled, layout)
        if detail:
            for outcome in (classified, routines):
                if not outcome.ok:
                    outcome.detail = detail
    outcomes.append(classified)
    outcomes.append(routines)

    outcomes.append(
        IdentityOutcome(
            "instructions.decode_vs_events",
            "decode-dispatch executions equal instructions retired",
            lhs=reduction.instructions,
            rhs=events.instructions,
            detail=(
                ""
                if reduction.instructions == events.instructions
                else "the monitor's decode-dispatch bucket and the event "
                "counter disagree; both gate on the same measurement "
                "interval, so one instrument miscounted"
            ),
        )
    )
    outcomes.append(
        IdentityOutcome(
            "instructions.opcodes",
            "instructions retired equal the per-opcode count sum",
            lhs=sum(events.opcode_counts.values()),
            rhs=events.instructions,
        )
    )
    outcomes.append(
        IdentityOutcome(
            "memory.read_miss_split",
            "cache read misses split exactly into I-stream + D-stream",
            lhs=stats.cache_i_read_misses + stats.cache_d_read_misses,
            rhs=stats.cache_read_misses,
        )
    )
    outcomes.append(
        IdentityOutcome(
            "memory.tb_miss_split",
            "TB misses split exactly into I-stream + D-stream",
            lhs=stats.tb_i_misses + stats.tb_d_misses,
            rhs=stats.tb_misses,
        )
    )
    return outcomes


def localize_unclassified(
    counts: List[int], stalled: List[int], layout
) -> str:
    """Name the micro-routine responsible for unclassifiable cycles.

    Walks the histogram exactly like the reduction does and collects
    every bucket whose counts contribute to the cycle total but to no
    Table 8 column — stalled-bank entries at compute or IB-wait
    microinstructions, which no legitimate run produces.  Returns a
    human-readable verdict naming the worst offender (empty string when
    every cycle classifies).
    """
    from repro.ucode.microword import MicroSlot

    store = layout.store
    offenders: List[Tuple[int, int, str, str]] = []
    for address in store.used_addresses():
        stalled_count = stalled[address] if address < len(stalled) else 0
        if not stalled_count:
            continue
        routine, slot = store.lookup(address)
        if slot in (MicroSlot.READ, MicroSlot.WRITE):
            continue  # stall banks are legitimate at memory slots
        offenders.append((stalled_count, address, routine.name, slot.name))
    if not offenders:
        return ""
    offenders.sort(reverse=True)
    total = sum(entry[0] for entry in offenders)
    worst_count, address, routine_name, slot_name = offenders[0]
    return (
        "{} unclassifiable stalled cycles across {} bucket(s); worst: "
        "{} cycles at bucket {} — micro-routine {} ({} slot, which "
        "never stalls)".format(
            total, len(offenders), worst_count, address, routine_name, slot_name
        )
    )


# ---------------------------------------------------------------------------
# identities between a trace and the counters
# ---------------------------------------------------------------------------


def check_trace(source, whole_run_events, dropped: int = 0):
    """Identities between traced-event aggregates and event counters.

    ``source`` is anything :class:`repro.obs.query.TraceQuery` accepts;
    ``whole_run_events`` is the :class:`~repro.cpu.events.EventCounters`
    sum over the *entire* run (boot + warmup + measurement + Null
    process), because the tracer is attached from machine construction
    and never gates.  Returns ``(outcomes, skipped)``; all three
    identities are skipped when the ring dropped events — counts over a
    truncated window prove nothing.
    """
    from repro.obs.query import TraceQuery

    skipped: Dict[str, str] = {}
    if dropped:
        reason = "trace ring dropped {} events; aggregates not exact".format(dropped)
        return [], {
            "trace.instructions": reason,
            "trace.page_faults": reason,
            "trace.interrupts": reason,
        }
    query = TraceQuery(source)
    outcomes = [
        IdentityOutcome(
            "trace.instructions",
            "closed EBOX instruction spans equal instructions retired",
            lhs=query.where(track="EBOX", phase="E").count(),
            rhs=whole_run_events.instructions,
        ),
        IdentityOutcome(
            "trace.page_faults",
            "traced page-fault instants equal the page-fault counter",
            lhs=query.where(track="VMS", name="page fault").count(),
            rhs=whole_run_events.page_faults,
        ),
        IdentityOutcome(
            "trace.interrupts",
            "traced interrupt spans equal interrupts delivered",
            lhs=query.where(track="VMS", name="interrupt", phase="B").count(),
            rhs=whole_run_events.interrupts_delivered,
        ),
    ]
    return outcomes, skipped


# ---------------------------------------------------------------------------
# run-and-check (what `repro check` executes per workload)
# ---------------------------------------------------------------------------


def run_checked_workload(
    profile_name: str,
    instructions: int = 30_000,
    warmup_instructions: int = 3_000,
    trace: bool = False,
    tracer_capacity: int = 1_048_576,
    seed_offset: int = 0,
    process_count: Optional[int] = None,
):
    """Run one workload exactly like
    :func:`~repro.core.experiment.run_workload` and check every
    identity against it.

    Returns ``(report, result)``.  The orchestration is inlined (not a
    call to ``run_workload``) for two reasons: the histogram must be
    dumped exactly once — the ``monitor.dump`` fault site corrupts the
    *readout*, and checking a second, clean readout would hide the
    corruption the checker is supposed to catch — and the whole-run
    event totals need the pre-measurement counter object that
    ``start_measurement`` swaps out.
    """
    from repro.core.experiment import (
        ExperimentResult,
        MachineStats,
        prepare_workload,
    )
    from repro.core.reduction import reduce_histogram
    from repro.cpu.events import EventCounters
    from repro.obs.trace import Tracer

    tracer = Tracer(capacity=tracer_capacity) if trace else None
    kernel, monitor = prepare_workload(
        profile_name,
        process_count=process_count,
        seed_offset=seed_offset,
        tracer=tracer,
    )
    machine = kernel.machine
    kernel.run(max_instructions=warmup_instructions)
    baseline = MachineStats.from_machine(machine)
    pre_events = machine.events  # start_measurement swaps in a fresh set
    kernel.start_measurement()
    kernel.run(max_instructions=instructions)
    kernel.stop_measurement()

    counts, stalled = monitor.board.dump()  # the one (faultable) readout
    reduction = reduce_histogram(
        counts, stalled, machine.layout, events=machine.events
    )
    stats = MachineStats.from_machine(machine).minus(baseline)
    result = ExperimentResult(
        name=profile_name, reduction=reduction, events=machine.events, stats=stats
    )

    report = CheckReport(name=profile_name)
    report.outcomes.extend(
        check_result(result, counts=counts, stalled=stalled, layout=machine.layout)
    )
    if tracer is not None:
        whole_run = EventCounters()
        whole_run.merge_from(pre_events)
        whole_run.merge_from(machine.events)
        whole_run.merge_from(kernel.null_events)
        trace_outcomes, trace_skipped = check_trace(
            tracer, whole_run, dropped=tracer.dropped
        )
        report.outcomes.extend(trace_outcomes)
        report.skipped.update(trace_skipped)
    return report, result

"""A small structured logger for the CLI and the engine.

Two output channels, deliberately separated:

* :func:`emit` — *command output*: the tables and summaries a command
  exists to produce.  Always printed, always to stdout, never decorated.
* :class:`Logger` — *diagnostics*: status, progress, debug detail.
  Written to stderr as ``LEVEL name: message key=value ...`` lines, so
  scripts piping table output never see them and log lines stay
  machine-parseable.

The threshold comes from (highest wins): :func:`set_level` (the CLI's
``--verbose``/``-q`` flags call this), else the ``REPRO_LOG``
environment variable (``debug`` / ``info`` / ``warn`` / ``error``),
else ``info``.  No dependency on :mod:`logging` — the simulator needs
four levels and zero configuration surface, not handler graphs.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional

DEBUG = 10
INFO = 20
WARN = 30
ERROR = 40

LEVELS = {"debug": DEBUG, "info": INFO, "warn": WARN, "warning": WARN, "error": ERROR}
_LEVEL_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARN: "WARN", ERROR: "ERROR"}

#: Explicit override (set_level); None means "consult REPRO_LOG".
_level_override: Optional[int] = None


def level_from_env(default: int = INFO) -> int:
    """Resolve the threshold the ``REPRO_LOG`` env var asks for."""
    name = os.environ.get("REPRO_LOG", "").strip().lower()
    return LEVELS.get(name, default)


def set_level(level: Optional[int]) -> None:
    """Set (or with ``None`` clear) the explicit threshold override."""
    global _level_override
    if level is not None and level not in _LEVEL_NAMES:
        raise ValueError("unknown log level {!r}".format(level))
    _level_override = level


def current_level() -> int:
    return _level_override if _level_override is not None else level_from_env()


def emit(text: str = "") -> None:
    """Command output (tables, summaries): stdout, unconditional."""
    print(text)


class Logger:
    """A named logger writing structured lines to stderr."""

    def __init__(self, name: str, stream=None):
        self.name = name
        self._stream = stream  # None: resolve sys.stderr at call time

    def _log(self, level: int, message: str, fields: dict) -> None:
        if level < current_level():
            return
        stream = self._stream if self._stream is not None else sys.stderr
        parts = [
            "{:.3f}".format(time.time()),
            _LEVEL_NAMES[level],
            "{}:".format(self.name),
            message,
        ]
        for key in sorted(fields):
            value = fields[key]
            if isinstance(value, float):
                value = "{:.3f}".format(value)
            parts.append("{}={}".format(key, value))
        print(" ".join(parts), file=stream)

    def debug(self, message: str, **fields) -> None:
        self._log(DEBUG, message, fields)

    def info(self, message: str, **fields) -> None:
        self._log(INFO, message, fields)

    def warn(self, message: str, **fields) -> None:
        self._log(WARN, message, fields)

    warning = warn

    def error(self, message: str, **fields) -> None:
        self._log(ERROR, message, fields)


def get_logger(name: str) -> Logger:
    return Logger(name)

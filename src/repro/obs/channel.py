"""A cheap structured event channel for the compiled hot path.

The :class:`~repro.obs.trace.Tracer` narrates every microcycle, which
is exactly why attaching one forces the EBOX back onto the interpreted
path — the compiled replay (repro.core.compile) charges whole
instructions at a time and has nothing to say per cycle.  That left the
JIT observability-dark: the faster the simulator got, the less we could
see of *why*.

:class:`EventChannel` is the narrow channel that works *with* the
compiled path enabled.  It records only compile-tier lifecycle events —
a record compiled, a record promoted to generated code, a superblock
formed, a deopt and its reason, an interpreter fallback and its cause —
each a single tuple appended to a bounded ring.  Emission sites sit on
the compiler's own slow paths (resolution, promotion, window close,
deopt), never inside a generated body, so an attached channel leaves
the replayed instruction stream bit-identical (tests assert this).

Events normalize into the same record shape the trace query engine
consumes (:meth:`EventChannel.to_trace_events`), on a synthetic "JIT"
track, so ``repro query`` can answer "why did this superblock deopt"
over either a live channel or a store that archived one.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import List, Optional, Tuple

#: The synthetic track compile-lifecycle events normalize onto (the five
#: Tracer tracks narrate the pipeline; this one narrates the compiler).
JIT_TRACK = "JIT"

#: Event kinds, in lifecycle order.
KIND_RECORD_FORMED = "record formed"
KIND_TIER_UP = "tier up"
KIND_SUPERBLOCK_FORMED = "superblock formed"
KIND_DEOPT = "deopt"
KIND_FALLBACK = "fallback"

KINDS = (
    KIND_RECORD_FORMED,
    KIND_TIER_UP,
    KIND_SUPERBLOCK_FORMED,
    KIND_DEOPT,
    KIND_FALLBACK,
)


class EventChannel:
    """A bounded ring of ``(cycle, kind, label, value)`` tuples.

    ``kind`` is one of :data:`KINDS`; ``label`` is the one categorical
    annotation worth keeping (a mnemonic, a deopt reason, a fallback
    cause); ``value`` is a small integer payload (instructions retired
    before a deopt, a record's byte length).  Strictly passive and
    bounded, like the tracer; unlike the tracer, attaching one does not
    change which execution path runs.
    """

    def __init__(self, capacity: int = 65_536):
        if capacity <= 0:
            raise ValueError("channel capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._emitted = 0

    # -- emission (the compiler side) ----------------------------------

    def emit(self, cycle: int, kind: str, label: str, value: int = 0) -> None:
        self._emitted += 1
        self._events.append((cycle, kind, label, value))

    # -- readout -------------------------------------------------------

    def events(self) -> List[Tuple[int, str, str, int]]:
        """Retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        return self._emitted

    @property
    def dropped(self) -> int:
        return self._emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0

    def kind_counts(self) -> Counter:
        """How many of each lifecycle kind the ring retains."""
        return Counter(kind for _cycle, kind, _label, _value in self._events)

    def label_counts(self, kind: str) -> Counter:
        """Label histogram for one kind (deopt reasons, fallback causes)."""
        return Counter(
            label
            for _cycle, event_kind, label, _value in self._events
            if event_kind == kind
        )

    def to_trace_events(self) -> List[tuple]:
        """The retained events in :meth:`Tracer.events` tuple shape.

        ``(phase, track, ts, name, dur, args)`` instants on the
        :data:`JIT_TRACK` track — the adapter that lets
        :class:`repro.obs.query.TraceQuery` and the v2 store treat
        lifecycle events exactly like pipeline events.  ``label`` rides
        in ``args`` so the store's aux column picks it up.
        """
        return [
            ("I", JIT_TRACK, cycle, kind, value, {"reason": label} if label else None)
            for cycle, kind, label, value in self._events
        ]


def merged_events(*channels: Optional[EventChannel]) -> List[tuple]:
    """Trace-shaped events from several channels, cycle-ordered."""
    out: List[tuple] = []
    for channel in channels:
        if channel is not None:
            out.extend(channel.to_trace_events())
    out.sort(key=lambda event: event[2])
    return out

"""Run provenance: the manifest every engine run carries.

The paper's experimenters could answer "which machine, which day, which
workload, how long" for every histogram they banked; a simulator should
do at least as well.  A :class:`RunManifest` pins down everything needed
to reproduce (or distrust) one :class:`~repro.core.engine.EngineRun`:
the spec's configuration hash, the seeds actually used, the code
version (package version plus git commit when available), and the
wall-clock timings.

Manifests are plain picklable data — they cross the process-pool
boundary inside ``EngineRun`` payloads and serialize with
``to_dict()``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

_git_commit_cache: Optional[str] = None
_git_commit_probed = False


def code_version() -> str:
    from repro import __version__

    return __version__


def git_commit() -> Optional[str]:
    """The repository HEAD, or None outside a git checkout.

    Probed once per process (fork workers inherit the cache), so a
    sweep of hundreds of specs costs one subprocess, not hundreds.
    """
    global _git_commit_cache, _git_commit_probed
    if not _git_commit_probed:
        _git_commit_probed = True
        try:
            _git_commit_cache = (
                subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    capture_output=True,
                    timeout=5,
                    cwd=None,
                )
                .stdout.decode()
                .strip()
                or None
            )
        except (OSError, subprocess.SubprocessError):
            _git_commit_cache = None
    return _git_commit_cache


def config_hash(spec) -> str:
    """A stable digest of everything that determines a spec's result.

    Two specs with equal hashes produce bit-identical histograms (the
    engine's determinism guarantee); anything that could change the
    measurement — workload, budgets, seeds, ablation config, even the
    name of a ``configure`` hook — feeds the digest.
    """
    config = spec.config
    payload = {
        "workload": spec.workload,
        "instructions": spec.instructions,
        "warmup_instructions": spec.warmup_instructions,
        "process_count": spec.process_count,
        "seed_offset": spec.seed_offset,
        "config": None
        if config is None
        else {name: getattr(config, name) for name in sorted(config.__dataclass_fields__)},
        "configure": None
        if spec.configure is None
        else "{}.{}".format(
            getattr(spec.configure, "__module__", "?"),
            getattr(spec.configure, "__qualname__", repr(spec.configure)),
        ),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class RunManifest:
    """Everything needed to identify and reproduce one engine run."""

    spec_name: str
    workload: str
    config_hash: str
    profile_seed: int
    seed_offset: int
    instructions_requested: int
    warmup_instructions: int
    code_version: str = field(default_factory=code_version)
    git_commit: Optional[str] = None
    python_version: str = field(default_factory=platform.python_version)
    started_at: float = 0.0
    wall_seconds: float = 0.0
    instructions_measured: int = 0
    cycles_measured: int = 0
    #: intra-workload sharding provenance (1 = unsharded, the default)
    shards: int = 1
    #: how many of those shards replayed from the content-addressed cache
    shards_from_cache: int = 0
    #: sha256 of the boundary snapshot a resumed chain restarted from
    #: (or, for a run resolved whole from the cache, its run-level key)
    resumed_from: Optional[str] = None
    #: config hash of the in-flight or indexed job this run attached to
    #: instead of executing — a deduplicated run did no work of its own,
    #: which is also why its ``wall_seconds`` is zero rather than a copy
    #: of the executing job's timing
    attached_to: Optional[str] = None
    #: true cache traffic for this run, aggregated across the
    #: coordinator *and* every pool worker that touched the cache on its
    #: behalf (per-process ``RunCache`` counters alone undercount under
    #: the worker fleet) — ``None`` when the run used no cache
    cache_stats: Optional[Dict] = None
    #: engine executions this run needed (1 = succeeded first try; >1
    #: means the resilience layer retried it)
    attempts: int = 1
    #: corrupt cache objects quarantined while this run executed
    quarantined_objects: int = 0
    #: shards recomputed by the in-process repair chain after a pool
    #: worker failed or its cached inputs turned out corrupt
    repaired_shards: int = 0
    #: replay-compiler diagnostics (``sim.compile.*``: JIT hits/misses,
    #: fast-path fractions, routines specialized) — ``None`` when the
    #: run's metrics carried none (sharded resume paths, old snapshots)
    compile: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def for_spec(cls, spec, profile_seed: int, started_at: Optional[float] = None) -> "RunManifest":
        """Build the pre-run manifest for ``spec`` (timings filled in by
        the engine when the run completes)."""
        return cls(
            spec_name=spec.name,
            workload=spec.workload,
            config_hash=config_hash(spec),
            profile_seed=profile_seed,
            seed_offset=spec.seed_offset,
            instructions_requested=spec.instructions,
            warmup_instructions=spec.warmup_instructions,
            git_commit=git_commit(),
            started_at=started_at if started_at is not None else time.time(),
        )

"""repro.obs — the observability layer.

The paper's whole method was observability: a passive board watching the
micro-PC without perturbing the machine.  This package turns the same
discipline on the simulator itself:

* :mod:`repro.obs.trace` — cycle-level event tracing into a bounded ring
  buffer, exported as Chrome trace-event JSON (Perfetto-loadable) or a
  compact binary dump.  Off by default; near-zero cost when off.
* :mod:`repro.obs.metrics` — typed counters / gauges / histograms plus
  wall-clock self-profiling of the simulator (phase timings,
  instructions/sec, cycles/sec).
* :mod:`repro.obs.query` — the indexed VAXTRACE v2 store and the
  filter/aggregate query engine behind ``repro query`` (live tracers,
  stored captures and v1 dumps all answer the same questions).
* :mod:`repro.obs.channel` — the bounded compile-lifecycle event
  channel (record/superblock formation, tier-ups, deopts, fallbacks)
  that, unlike a tracer, leaves the compiled hot path enabled.
* :mod:`repro.obs.invariants` — counter-identity checking between the
  independent instruments (``repro check``), with subsystem and
  micro-routine localization of any disagreement.
* :mod:`repro.obs.log` — a small structured logger for the CLI and the
  engine (level from ``--verbose``/``-q`` or the ``REPRO_LOG`` env var).
* :mod:`repro.obs.provenance` — run manifests: config hash, seeds, code
  version and timings attached to every :class:`~repro.core.engine.EngineRun`.

Like the monitor, every collector here only *receives* notifications —
nothing in this package holds a reference into the machine, and tracing
on versus off produces bit-identical histograms (asserted by tests).
"""

from repro.obs.channel import EventChannel
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import RunManifest
from repro.obs.query import TraceQuery, open_store, write_store
from repro.obs.trace import Tracer, tracing_enabled

__all__ = [
    "EventChannel",
    "MetricsRegistry",
    "RunManifest",
    "TraceQuery",
    "Tracer",
    "get_logger",
    "open_store",
    "tracing_enabled",
    "write_store",
]
